//! Cross-crate integration tests: the paper's headline claims asserted
//! end-to-end through the facade crate.

use qtp::prelude::*;
use qtp::simnet::marker::{Marker, TokenBucketMarker};
use std::time::Duration;

/// AF dumbbell with a RIO core, one conditioned pair + one out-of-profile
/// TCP aggressor pair.
fn af_scenario(seed: u64) -> (qtp::simnet::sim::Simulator, Dumbbell) {
    let cfg = DumbbellConfig {
        pairs: 2,
        bottleneck_rate: Rate::from_mbps(10),
        bottleneck_delay: Duration::from_millis(10),
        bottleneck_queue: QueueConfig::Rio(RioParams::default()),
        ..DumbbellConfig::default()
    };
    Dumbbell::build(&cfg, seed)
}

fn attach_bg_tcp(sim: &mut qtp::simnet::sim::Simulator, net: &Dumbbell, pair: usize) {
    let bg = sim.register_flow("bg");
    let bga = sim.register_flow("bg-ack");
    sim.attach_agent(
        net.senders[pair],
        Box::new(TcpSender::new(
            bg,
            net.receivers[pair],
            TcpConfig::new(TcpFlavor::NewReno),
        )),
    );
    sim.attach_agent(
        net.receivers[pair],
        Box::new(TcpReceiver::new(bg, bga, net.senders[pair], false, 1000)),
    );
    sim.set_marker(
        net.sender_access[pair],
        bg,
        Marker::TokenBucket(TokenBucketMarker::new(Rate::ZERO, 0)),
    );
}

/// The paper's §4 claim as a single assertion: with a 4 Mbit/s reservation
/// on a 10 Mbit/s AF bottleneck against an aggressor, QTPAF achieves its
/// target and TCP does not.
#[test]
fn qtpaf_achieves_negotiated_qos_where_tcp_fails() {
    const SECS: u64 = 40;
    let g = Rate::from_mbps(4);

    // QTPAF run.
    let (mut sim, net) = af_scenario(1);
    let h = attach_pair(
        &mut sim,
        net.senders[0],
        net.receivers[0],
        "qtpaf",
        &ConnectionPlan::new(Profile::qtp_af(g)),
    );
    sim.set_marker(
        net.sender_access[0],
        h.data_flow,
        Marker::TokenBucket(TokenBucketMarker::new(g, 20_000)),
    );
    attach_bg_tcp(&mut sim, &net, 1);
    sim.run_until(SimTime::from_secs(SECS));
    let qtpaf_rate = sim
        .stats()
        .flow(h.data_flow)
        .throughput_bps(Duration::from_secs(SECS));

    // TCP-with-reservation run.
    let (mut sim, net) = af_scenario(1);
    let data = sim.register_flow("tcp");
    let ack = sim.register_flow("tcp-ack");
    sim.attach_agent(
        net.senders[0],
        Box::new(TcpSender::new(
            data,
            net.receivers[0],
            TcpConfig::new(TcpFlavor::NewReno),
        )),
    );
    sim.attach_agent(
        net.receivers[0],
        Box::new(TcpReceiver::new(data, ack, net.senders[0], false, 1000)),
    );
    sim.set_marker(
        net.sender_access[0],
        data,
        Marker::TokenBucket(TokenBucketMarker::new(g, 20_000)),
    );
    attach_bg_tcp(&mut sim, &net, 1);
    sim.run_until(SimTime::from_secs(SECS));
    let tcp_rate = sim
        .stats()
        .flow(data)
        .throughput_bps(Duration::from_secs(SECS));

    assert!(
        qtpaf_rate >= 0.95 * g.bps() as f64,
        "QTPAF must hold its reservation: got {:.2} of 4 Mbit/s",
        qtpaf_rate / 1e6
    );
    assert!(
        tcp_rate < 0.9 * g.bps() as f64,
        "TCP should fail the reservation in this scenario: got {:.2} Mbit/s",
        tcp_rate / 1e6
    );
}

/// QTPAF keeps full reliability while holding the rate on a lossy path.
#[test]
fn qtpaf_is_reliable_end_to_end() {
    let mut b = NetworkBuilder::new();
    let s = b.host();
    let r = b.host();
    b.simplex_link(
        s,
        r,
        LinkConfig::new(Rate::from_mbps(10), Duration::from_millis(10))
            .with_loss(LossModel::gilbert_elliott(0.01, 0.3, 0.0, 0.6))
            .with_queue(QueueConfig::DropTailPkts(300)),
    );
    b.simplex_link(
        r,
        s,
        LinkConfig::new(Rate::from_mbps(10), Duration::from_millis(10)),
    );
    let mut sim = b.build(3);
    let plan = ConnectionPlan::new(Profile::qtp_af(Rate::from_mbps(1))).finite(2000);
    let h = attach_pair(&mut sim, s, r, "rel", &plan);
    sim.run_until(SimTime::from_secs(120));
    assert_eq!(
        sim.stats().flow(h.data_flow).bytes_app_delivered,
        2000 * 1000,
        "bursty wireless loss must not cost a single application byte"
    );
}

/// Negotiation downgrades work end-to-end through the facade.
#[test]
fn negotiation_downgrade_full_stack() {
    let mut b = NetworkBuilder::new();
    let s = b.host();
    let r = b.host();
    b.duplex_link(
        s,
        r,
        LinkConfig::new(Rate::from_mbps(10), Duration::from_millis(10)),
    );
    let mut sim = b.build(4);
    // Offer QTPAF (Full reliability); server refuses reliability.
    let plan = ConnectionPlan::new(Profile::qtp_af(Rate::from_mbps(2))).policy(ServerPolicy {
        allow_reliability: false,
        ..ServerPolicy::default()
    });
    let h = attach_pair(&mut sim, s, r, "dg", &plan);
    sim.run_until(SimTime::from_secs(10));
    // Data still flows and nothing is ever retransmitted.
    assert!(sim.stats().flow(h.data_flow).pkts_arrived > 100);
    assert_eq!(h.tx.read(|d| d.tx_retransmissions), 0);
}

/// Two QTP flows sharing a bottleneck split it roughly fairly.
#[test]
fn two_tfrc_flows_share_fairly() {
    const SECS: u64 = 60;
    let cfg = DumbbellConfig {
        pairs: 2,
        bottleneck_rate: Rate::from_mbps(10),
        bottleneck_delay: Duration::from_millis(10),
        bottleneck_queue: QueueConfig::DropTailPkts(50),
        ..DumbbellConfig::default()
    };
    let (mut sim, net) = Dumbbell::build(&cfg, 5);
    let h1 = attach_pair(
        &mut sim,
        net.senders[0],
        net.receivers[0],
        "a",
        &ConnectionPlan::new(Profile::tfrc()),
    );
    let h2 = attach_pair(
        &mut sim,
        net.senders[1],
        net.receivers[1],
        "b",
        &ConnectionPlan::new(Profile::qtp_light()),
    );
    sim.run_until(SimTime::from_secs(SECS));
    let r1 = sim
        .stats()
        .flow(h1.data_flow)
        .throughput_bps(Duration::from_secs(SECS));
    let r2 = sim
        .stats()
        .flow(h2.data_flow)
        .throughput_bps(Duration::from_secs(SECS));
    let fairness = jain_index(&[r1, r2]);
    assert!(
        fairness > 0.85,
        "standard and light flows should share fairly: {:.2} vs {:.2} Mbit/s (J={fairness:.3})",
        r1 / 1e6,
        r2 / 1e6
    );
    // And together they should not overdrive the link.
    assert!(r1 + r2 < 10.5e6);
}

/// The facade's prelude exposes a working surface (doc example shape).
#[test]
fn facade_quickstart_shape() {
    let mut b = NetworkBuilder::new();
    let server = b.host();
    let mobile = b.host();
    b.duplex_link(
        server,
        mobile,
        LinkConfig::new(Rate::from_mbps(10), Duration::from_millis(20))
            .with_loss(LossModel::bernoulli(0.01)),
    );
    let mut sim = b.build(42);
    let h = attach_pair(
        &mut sim,
        server,
        mobile,
        "stream",
        &ConnectionPlan::new(Profile::qtp_light()),
    );
    sim.run_until(SimTime::from_secs(10));
    let stats = sim.stats().flow(h.data_flow);
    assert!(stats.bytes_app_delivered > 0);
    assert!(h.rx.read(|d| d.rx_ops_per_packet()) < 20.0);
}
