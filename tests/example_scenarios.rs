//! The examples' headline claims, asserted under the same seeds.
//!
//! `examples/wireless_loss.rs` and `examples/mobile_receiver.rs` print
//! reports produced by [`qtp::scenarios`]; these tests pin the claims the
//! prose makes about those numbers, so the examples cannot silently rot
//! into printing results that no longer support their own story. Shorter
//! horizons than the binaries keep the suite fast — the orderings are
//! robust well before the examples' full run length.

#[test]
fn wireless_loss_rate_based_beats_tcp_on_bursty_path() {
    let r = qtp::scenarios::wireless_loss(11, 20);
    // ~1.6% bursty erasure: every loss burst halves TCP's window while
    // rate-based control smooths through it. The seeded gap is ~1.26x at
    // this horizon; 1.1x leaves slack without weakening the ordering.
    assert!(
        r.light_goodput_bps > 1.1 * r.tcp_goodput_bps,
        "QTPlight {:.2} Mb should clearly beat TCP {:.2} Mb",
        r.light_goodput_bps / 1e6,
        r.tcp_goodput_bps / 1e6
    );
    assert!(
        r.partial_goodput_bps > 1.1 * r.tcp_goodput_bps,
        "partial reliability must not give the advantage back"
    );
    // The 200 ms TTL composition actually exercises both halves of the
    // reliability policy: it retransmits recent frames and abandons
    // stale ones.
    assert!(r.partial_retransmissions > 0, "no retransmissions seen");
    assert!(r.partial_abandoned > 0, "no frames abandoned as stale");
}

#[test]
fn mobile_receiver_light_cuts_receiver_work_at_same_goodput() {
    let std_run = qtp::scenarios::mobile_receiver(false, 0.02, 99, 15);
    let light_run = qtp::scenarios::mobile_receiver(true, 0.02, 99, 15);
    // Same goodput (within 10%): moving loss estimation to the sender
    // must not cost throughput.
    let ratio = light_run.goodput_bps / std_run.goodput_bps;
    assert!(
        (0.9..=1.1).contains(&ratio),
        "goodput parity broken: ratio {ratio:.3}"
    );
    // The headline: dramatically less receiver work and state.
    assert!(
        std_run.rx_ops_per_packet > 3.0 * light_run.rx_ops_per_packet,
        "receiver work reduction collapsed: {:.1} vs {:.1} ops/pkt",
        std_run.rx_ops_per_packet,
        light_run.rx_ops_per_packet
    );
    assert!(
        light_run.rx_state_bytes < std_run.rx_state_bytes,
        "QTPlight receiver should hold less estimator state"
    );
}

#[test]
fn mobile_handover_stream_survives_and_adapts() {
    let ho = qtp::scenarios::mobile_handover(true, 99);
    // Before the switch the clean 10 Mbit/s WLAN hop carries a healthy
    // stream; afterwards the stream keeps flowing under the 2 Mbit/s
    // cellular ceiling instead of stalling out.
    assert!(
        ho.pre_switch_goodput_bps > 2e6,
        "pre-switch goodput too low: {:.2} Mb",
        ho.pre_switch_goodput_bps / 1e6
    );
    assert!(
        ho.post_switch_goodput_bps > 0.2e6,
        "stream stalled after handover: {:.2} Mb",
        ho.post_switch_goodput_bps / 1e6
    );
    assert!(
        ho.post_switch_goodput_bps < ho.target_rate_bps,
        "post-switch goodput cannot exceed the new ceiling"
    );
    assert!(
        ho.post_switch_goodput_bps < ho.pre_switch_goodput_bps,
        "the slower hop must actually bind"
    );
}
