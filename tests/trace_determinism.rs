//! The strongest reproducibility check: two runs with the same seed emit
//! **identical packet-event traces** (not just identical aggregate
//! counters), including under stochastic loss and AQM. This is what makes
//! every number in `EXPERIMENTS.md` exactly regenerable.

use qtp::prelude::*;
use qtp::simnet::trace::TraceEvent;
use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

fn traced_run(seed: u64) -> Vec<TraceEvent> {
    let events = Rc::new(RefCell::new(Vec::new()));
    let sink = events.clone();

    let cfg = DumbbellConfig {
        pairs: 2,
        bottleneck_rate: Rate::from_mbps(3),
        bottleneck_delay: Duration::from_millis(8),
        bottleneck_queue: QueueConfig::Red(RedParams::default()),
        ..DumbbellConfig::default()
    };
    let (mut sim, net) = Dumbbell::build(&cfg, seed);
    sim.set_trace(Box::new(move |e| sink.borrow_mut().push(e.clone())));

    // A QTPlight connection plus a Poisson background flow: exercises
    // endpoints, RED randomness and source randomness together.
    let _h = attach_pair(
        &mut sim,
        net.senders[0],
        net.receivers[0],
        "qtp",
        &ConnectionPlan::new(Profile::qtp_light()),
    );
    let bg = sim.register_flow("bg");
    sim.attach_agent(
        net.senders[1],
        Box::new(PoissonSource::new(
            bg,
            net.receivers[1],
            800,
            Rate::from_mbps(1),
        )),
    );
    sim.attach_agent(net.receivers[1], Box::new(Sink));
    sim.run_until(SimTime::from_secs(5));

    // The simulator still owns the sink closure (and its Rc clone); read
    // the events out rather than unwrapping.
    let out = events.borrow().clone();
    out
}

#[test]
fn same_seed_identical_event_trace() {
    let a = traced_run(2024);
    let b = traced_run(2024);
    assert!(!a.is_empty(), "trace must capture events");
    assert_eq!(a.len(), b.len(), "event counts differ");
    for (i, (x, y)) in a.iter().zip(&b).enumerate() {
        assert_eq!(x, y, "first divergence at event {i}");
    }
}

#[test]
fn different_seed_different_trace() {
    let a = traced_run(1);
    let b = traced_run(2);
    // Poisson arrivals and RED draws differ, so the traces must diverge.
    assert_ne!(a, b);
}

#[test]
fn trace_events_are_time_ordered() {
    let trace = traced_run(7);
    for w in trace.windows(2) {
        assert!(w[0].at() <= w[1].at(), "trace went backwards in time");
    }
}
