//! Property tests for the TFRC mechanisms: equation shape, loss-interval
//! history invariants, detector soundness, and the token-bucket/marker
//! conformance properties used by the AF experiments.

use proptest::prelude::*;
use qtp::simnet::marker::{Marker, TokenBucketMarker};
use qtp::simnet::packet::{Color, Packet};
use qtp::simnet::time::{Rate, SimTime};
use qtp::tfrc::{inverse, throughput, LossDetector, LossIntervalHistory};
use std::collections::BTreeSet;
use std::time::Duration;

proptest! {
    /// The throughput equation is monotonically non-increasing in both the
    /// loss event rate and the RTT, and linear in segment size.
    #[test]
    fn equation_monotonicity(
        p1 in 1e-6f64..1.0,
        p2 in 1e-6f64..1.0,
        rtt_ms in 1u64..2_000,
        s in 100u32..9_000,
    ) {
        let (lo, hi) = if p1 < p2 { (p1, p2) } else { (p2, p1) };
        let r = Duration::from_millis(rtt_ms);
        prop_assert!(throughput(s, r, lo) >= throughput(s, r, hi));
        // RTT monotonicity.
        let r2 = Duration::from_millis(rtt_ms * 2);
        prop_assert!(throughput(s, r, lo) >= throughput(s, r2, lo));
        // Linearity in s (within float tolerance).
        let x1 = throughput(s, r, lo);
        let x2 = throughput(2 * s, r, lo);
        prop_assert!((x2 / x1 - 2.0).abs() < 1e-9);
    }

    /// inverse() really inverts the equation over the meaningful range.
    #[test]
    fn equation_inverse_roundtrip(p in 1e-5f64..0.9, rtt_ms in 5u64..1_000) {
        let r = Duration::from_millis(rtt_ms);
        let x = throughput(1000, r, p);
        let p_back = inverse(1000, r, x);
        prop_assert!((p_back - p).abs() / p < 1e-4, "p={p}, back={p_back}");
    }

    /// The weighted average loss interval always lies between the minimum
    /// and maximum retained interval (with the open interval counted only
    /// when it raises the average).
    #[test]
    fn wali_bounded_by_extremes(
        intervals in prop::collection::vec(1u64..5_000, 1..20),
        open_extra in 0u64..10_000,
    ) {
        let mut h = LossIntervalHistory::new();
        let mut seq = 0u64;
        h.record_first_loss(seq, intervals[0] as f64);
        for &len in &intervals[1..] {
            seq += len;
            h.record_loss_event(seq);
        }
        let highest = seq + open_extra;
        let avg = h.average_interval(highest).unwrap();
        let retained: Vec<f64> = h.intervals().to_vec();
        let min = retained.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = retained.iter().cloned().fold(0.0, f64::max);
        let open_len = (highest - seq + 1) as f64;
        prop_assert!(avg >= min - 1e-9, "avg {avg} below min {min}");
        prop_assert!(
            avg <= max.max(open_len) + 1e-9,
            "avg {avg} above max({max}, open {open_len})"
        );
        // p is the reciprocal.
        let p = h.loss_event_rate(highest);
        prop_assert!((p - 1.0 / avg.max(1.0)).abs() < 1e-12);
    }

    /// Loss detector soundness: every declared-lost sequence was truly
    /// never fed to the detector, and no sequence is declared twice.
    #[test]
    fn detector_never_declares_received(
        drop_set in prop::collection::btree_set(1u64..200, 0..40),
    ) {
        let mut d = LossDetector::new();
        let mut declared = BTreeSet::new();
        for seq in 0..200u64 {
            if drop_set.contains(&seq) {
                continue;
            }
            for lost in d.on_packet(seq, SimTime::from_micros(seq * 50)) {
                prop_assert!(drop_set.contains(&lost.seq), "declared received seq {}", lost.seq);
                prop_assert!(declared.insert(lost.seq), "double declaration of {}", lost.seq);
            }
        }
        // Completeness: every dropped seq with >=3 received above it is
        // eventually declared (the last few may lack the dupthresh).
        for &s in &drop_set {
            let above = (s + 1..200).filter(|x| !drop_set.contains(x)).count();
            if above >= 3 {
                prop_assert!(declared.contains(&s), "seq {s} should have been declared");
            }
        }
    }

    /// Token-bucket marker conformance: over any packet pattern, green
    /// bytes never exceed CIR * elapsed + CBS.
    #[test]
    fn token_bucket_green_conformance(
        gaps_us in prop::collection::vec(1u64..5_000, 1..300),
        cir_kbps in 64u64..10_000,
        cbs in 1_500u32..50_000,
    ) {
        let cir = Rate::from_kbps(cir_kbps);
        let mut m = Marker::TokenBucket(TokenBucketMarker::new(cir, cbs));
        let mut now = SimTime::ZERO;
        let mut green_bytes = 0u64;
        for gap in gaps_us {
            now += Duration::from_micros(gap);
            let mut p = Packet::new(0, 0, 0, 1, 1_000, now, Vec::new());
            m.mark(now, &mut p);
            if p.color == Color::Green {
                green_bytes += 1_000;
            }
        }
        let budget = cir.bytes_per_sec() * now.as_secs_f64() + cbs as f64;
        prop_assert!(
            (green_bytes as f64) <= budget + 1_000.0,
            "green {green_bytes} exceeds budget {budget}"
        );
    }
}
