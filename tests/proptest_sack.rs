//! Property tests for the SACK substrate: range-set invariants, reassembly
//! correctness under arbitrary reordering/duplication, block generation
//! rules and scoreboard soundness.

use proptest::prelude::*;
use qtp::sack::{RangeSet, ReceiverBuffer, Scoreboard, SeqRange};
use qtp::simnet::time::SimTime;
use std::collections::BTreeSet;

proptest! {
    /// RangeSet agrees with a naive BTreeSet model under arbitrary
    /// insert/remove sequences, and its invariants always hold.
    #[test]
    fn rangeset_matches_set_model(ops in prop::collection::vec((any::<bool>(), 0u64..200), 1..400)) {
        let mut rs = RangeSet::new();
        let mut model = BTreeSet::new();
        for (insert, v) in ops {
            if insert {
                prop_assert_eq!(rs.insert(v), model.insert(v));
            } else {
                prop_assert_eq!(rs.remove(v), model.remove(&v));
            }
            rs.check_invariants().map_err(TestCaseError::fail)?;
        }
        prop_assert_eq!(rs.len(), model.len() as u64);
        for v in 0..200 {
            prop_assert_eq!(rs.contains(v), model.contains(&v));
        }
        prop_assert_eq!(rs.first(), model.iter().next().copied());
    }

    /// insert_range reports exactly the number of new values.
    #[test]
    fn rangeset_insert_range_counts(ranges in prop::collection::vec((0u64..300, 1u64..30), 1..60)) {
        let mut rs = RangeSet::new();
        let mut model = BTreeSet::new();
        for (start, len) in ranges {
            let added = rs.insert_range(SeqRange::new(start, start + len));
            let mut model_added = 0;
            for v in start..start + len {
                if model.insert(v) {
                    model_added += 1;
                }
            }
            prop_assert_eq!(added, model_added);
            rs.check_invariants().map_err(TestCaseError::fail)?;
        }
    }

    /// holes_within returns exactly the complement within the window.
    #[test]
    fn rangeset_holes_are_complement(
        values in prop::collection::btree_set(0u64..100, 0..60),
        lo in 0u64..50,
        width in 1u64..60,
    ) {
        let mut rs = RangeSet::new();
        for &v in &values {
            rs.insert(v);
        }
        let hi = lo + width;
        let holes = rs.holes_within(lo, hi);
        // Every hole value is missing; every non-hole value in-window is present.
        let mut hole_vals = BTreeSet::new();
        for h in &holes {
            for v in h.start..h.end {
                hole_vals.insert(v);
            }
        }
        for v in lo..hi {
            prop_assert_eq!(hole_vals.contains(&v), !values.contains(&v));
        }
        // Holes are sorted and disjoint.
        for w in holes.windows(2) {
            prop_assert!(w[0].end < w[1].start || w[0].end <= w[1].start);
        }
    }

    /// Reassembly: any arrival permutation with duplicates delivers exactly
    /// the full prefix, and SACK blocks are always disjoint, sorted-per-
    /// block, above the cumulative ack and bounded in count.
    #[test]
    fn reassembly_exactness(mut order in Just(()).prop_flat_map(|_| {
        prop::collection::vec(0u64..64, 64..200)
    })) {
        // Ensure every seq 0..64 appears at least once: append a shuffle.
        order.extend(0..64);
        let mut buf = ReceiverBuffer::new();
        let mut delivered = 0;
        for &seq in &order {
            if let qtp::sack::Arrival::New { delivered: d } = buf.on_packet(seq) {
                delivered += d;
            }
            let blocks = buf.sack_blocks(4);
            prop_assert!(blocks.len() <= 4);
            for b in &blocks {
                prop_assert!(b.start < b.end);
                prop_assert!(b.start > buf.cum_ack());
            }
            // Blocks pairwise disjoint.
            for i in 0..blocks.len() {
                for j in i + 1..blocks.len() {
                    let (a, b2) = (&blocks[i], &blocks[j]);
                    prop_assert!(a.end <= b2.start || b2.end <= a.start);
                }
            }
        }
        prop_assert_eq!(delivered, 64);
        prop_assert_eq!(buf.cum_ack(), 64);
        prop_assert_eq!(buf.delivered_total(), 64);
        prop_assert_eq!(buf.buffered(), 0);
    }

    /// Scoreboard: cumulative accounting never loses a sequence — every
    /// sent sequence is exactly one of {cum-acked, sacked, lost-pending,
    /// in-flight} and counts match.
    #[test]
    fn scoreboard_conservation(
        n in 10u64..100,
        cum in 0u64..50,
        blocks in prop::collection::vec((0u64..100, 1u64..10), 0..4),
    ) {
        let mut sb = Scoreboard::new();
        for k in 0..n {
            sb.register_send(SimTime::from_micros(k));
        }
        let cum = cum.min(n);
        let blocks: Vec<SeqRange> = blocks
            .into_iter()
            .filter(|(s, _)| *s < n)
            .map(|(s, l)| SeqRange::new(s, (s + l).min(n)))
            .collect();
        let _ = sb.on_feedback(cum, &blocks);
        let outstanding = sb.in_flight();
        let lost: u64 = sb.lost_pending().map(|r| r.len()).sum();
        // in_flight is defined as total - sacked - lost; so this identity
        // plus non-negativity is the conservation check.
        prop_assert!(outstanding + lost <= n - sb.cum_ack());
        prop_assert!(sb.cum_ack() >= cum.min(n));
        prop_assert!(sb.highest_seen() <= n);
    }
}

#[test]
fn simtime_reexport_paths_work() {
    // Guard against facade path regressions used above.
    let t = SimTime::from_millis(5);
    assert_eq!(t.as_nanos(), 5_000_000);
}
