//! Property tests for the composed transport: negotiation totality,
//! estimator/receiver p-equivalence on arbitrary loss patterns, and
//! reliability-policy coherence.

use proptest::prelude::*;
use qtp::core::{CapabilitySet, CcKind, FeedbackMode, SenderLossEstimator, ServerPolicy};
use qtp::sack::{LossDecision, ReliabilityMode, ReliabilityPolicy, SeqRange};
use qtp::simnet::time::{Rate, SimTime};
use qtp::tfrc::LossIntervalHistory;
use std::time::Duration;

fn arb_caps() -> impl Strategy<Value = CapabilitySet> {
    let rel = prop_oneof![
        Just(ReliabilityMode::None),
        Just(ReliabilityMode::Full),
        (1u64..1_000_000).prop_map(|us| ReliabilityMode::PartialTtl(Duration::from_micros(us))),
        (0u32..16).prop_map(ReliabilityMode::PartialRetx),
    ];
    let fb = prop_oneof![
        Just(FeedbackMode::ReceiverLoss),
        Just(FeedbackMode::SenderLoss)
    ];
    let cc = prop_oneof![
        Just(CcKind::Tfrc),
        (1u64..1_000_000_000).prop_map(|bps| CcKind::Gtfrc {
            target: Rate::from_bps(bps)
        }),
    ];
    (rel, fb, cc).prop_map(|(reliability, feedback, cc)| CapabilitySet {
        reliability,
        feedback,
        cc,
    })
}

fn arb_policy() -> impl Strategy<Value = ServerPolicy> {
    (
        any::<bool>(),
        any::<bool>(),
        prop::option::of(1u64..100_000_000),
    )
        .prop_map(|(allow_sender_loss, allow_reliability, max)| ServerPolicy {
            allow_sender_loss,
            allow_reliability,
            max_target: max.map(Rate::from_bps),
        })
}

proptest! {
    /// Negotiation is total (never rejects), idempotent (negotiating the
    /// chosen set again changes nothing) and policy-respecting.
    #[test]
    fn negotiation_total_idempotent_and_sound(
        offered in arb_caps(),
        policy in arb_policy(),
    ) {
        let chosen = policy.negotiate(offered);
        // Idempotence.
        prop_assert_eq!(policy.negotiate(chosen), chosen);
        // Policy soundness.
        if !policy.allow_sender_loss {
            prop_assert_ne!(chosen.feedback, FeedbackMode::SenderLoss);
        }
        if !policy.allow_reliability {
            prop_assert!(!chosen.reliability.retransmits());
        }
        if let (CcKind::Gtfrc { target }, Some(max)) = (chosen.cc, policy.max_target) {
            prop_assert!(target <= max);
        }
        // Degradation only: the chosen set never *adds* capability.
        if offered.feedback == FeedbackMode::ReceiverLoss {
            prop_assert_eq!(chosen.feedback, FeedbackMode::ReceiverLoss);
        }
        if !offered.reliability.retransmits() {
            prop_assert!(!chosen.reliability.retransmits());
        }
    }

    /// The sender-side estimator computes exactly the same loss event rate
    /// as a receiver-side history fed the same loss-event sequence — the
    /// QTPlight equivalence property, over arbitrary event layouts.
    #[test]
    fn sender_estimator_equals_receiver_history(
        gaps in prop::collection::vec(1u64..500, 1..40),
        x_recv in 1_000.0f64..1e7,
    ) {
        let rtt = Duration::from_millis(100);
        let mut est = SenderLossEstimator::new(1000);
        let mut hist = LossIntervalHistory::new();
        let mut seq = 0u64;
        // Events spaced > RTT apart in send time so grouping is 1:1.
        for (k, gap) in gaps.iter().enumerate() {
            seq += gap;
            let ts = SimTime::from_millis((k as u64 + 1) * 1_000);
            est.on_losses(&[(seq, ts)], rtt, x_recv);
            if k == 0 {
                let p0 = qtp::tfrc::inverse(1000, rtt, x_recv.max(1000.0));
                hist.record_first_loss(seq, (1.0 / p0).max(1.0));
            } else {
                hist.record_loss_event(seq);
            }
        }
        let highest = seq + 10;
        let p_est = est.loss_event_rate(highest);
        let p_hist = hist.loss_event_rate(highest);
        prop_assert!((p_est - p_hist).abs() < 1e-12, "{p_est} vs {p_hist}");
    }

    /// Reliability policies are coherent: Full never abandons, None never
    /// retransmits, PartialRetx respects its budget exactly, and the
    /// forward point never runs backwards.
    #[test]
    fn policy_decisions_coherent(
        mode_sel in 0u8..4,
        ttl_ms in 1u64..1_000,
        budget in 0u32..8,
        losses in prop::collection::vec((0u64..1_000, 0u64..2_000, 0u32..10), 1..50),
    ) {
        let mode = match mode_sel {
            0 => ReliabilityMode::None,
            1 => ReliabilityMode::Full,
            2 => ReliabilityMode::PartialTtl(Duration::from_millis(ttl_ms)),
            _ => ReliabilityMode::PartialRetx(budget),
        };
        let mut p = ReliabilityPolicy::new(mode);
        p.register_adu(SeqRange::new(0, 1_000), SimTime::ZERO);
        let mut last_fp = 0u64;
        for (seq, now_ms, retx) in losses {
            let d = p.on_loss(seq, SimTime::from_millis(now_ms), retx);
            match mode {
                ReliabilityMode::Full => prop_assert_eq!(d, LossDecision::Retransmit),
                ReliabilityMode::None => prop_assert_eq!(d, LossDecision::Abandon),
                ReliabilityMode::PartialTtl(ttl) => {
                    let age = Duration::from_millis(now_ms);
                    if age < ttl {
                        prop_assert_eq!(d, LossDecision::Retransmit);
                    } else {
                        prop_assert_eq!(d, LossDecision::Abandon);
                    }
                }
                ReliabilityMode::PartialRetx(b) => {
                    prop_assert_eq!(
                        d,
                        if retx < b { LossDecision::Retransmit } else { LossDecision::Abandon }
                    );
                }
            }
            // Forward point is monotone.
            if let Some(fp) = p.forward_point(0) {
                prop_assert!(fp >= last_fp);
                last_fp = fp;
            }
        }
    }
}
