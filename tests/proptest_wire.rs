//! Property tests for the wire codecs: any syntactically valid packet
//! round-trips exactly; any truncation of a valid encoding is rejected
//! rather than mis-parsed.

use proptest::prelude::*;
use qtp::core::{CapabilitySet, CcKind, FeedbackMode, QtpPacket};
use qtp::sack::{ReliabilityMode, SeqRange};
use qtp::simnet::time::Rate;
use qtp::tcp::{TcpHeader, TcpKind};
use std::time::Duration;

fn arb_caps() -> impl Strategy<Value = CapabilitySet> {
    let rel = prop_oneof![
        Just(ReliabilityMode::None),
        Just(ReliabilityMode::Full),
        (1u64..10_000_000).prop_map(|us| ReliabilityMode::PartialTtl(Duration::from_micros(us))),
        (0u32..64).prop_map(ReliabilityMode::PartialRetx),
    ];
    let fb = prop_oneof![
        Just(FeedbackMode::ReceiverLoss),
        Just(FeedbackMode::SenderLoss)
    ];
    let cc = prop_oneof![
        Just(CcKind::Tfrc),
        (1u64..1_000_000_000).prop_map(|bps| CcKind::Gtfrc {
            target: Rate::from_bps(bps)
        }),
        (1u64..1_000_000_000).prop_map(|bps| CcKind::Fixed {
            rate: Rate::from_bps(bps)
        }),
    ];
    (rel, fb, cc).prop_map(|(reliability, feedback, cc)| CapabilitySet {
        reliability,
        feedback,
        cc,
    })
}

fn arb_blocks() -> impl Strategy<Value = Vec<SeqRange>> {
    prop::collection::vec((0u64..1 << 40, 1u64..1 << 16), 0..4).prop_map(|v| {
        v.into_iter()
            .map(|(s, l)| SeqRange::new(s, s + l))
            .collect()
    })
}

fn arb_qtp_packet() -> impl Strategy<Value = QtpPacket> {
    prop_oneof![
        (any::<u64>(), arb_caps())
            .prop_map(|(ts_nanos, offered)| QtpPacket::Syn { ts_nanos, offered }),
        (any::<u64>(), arb_caps()).prop_map(|(ts_echo_nanos, chosen)| QtpPacket::SynAck {
            ts_echo_nanos,
            chosen
        }),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u32>(),
            any::<bool>()
        )
            .prop_map(|(seq, ts_nanos, adu_ts_nanos, rtt_hint_micros, is_retx)| {
                QtpPacket::Data {
                    seq,
                    ts_nanos,
                    adu_ts_nanos,
                    rtt_hint_micros,
                    is_retx,
                }
            }),
        (
            any::<u64>(),
            any::<u32>(),
            any::<u64>(),
            prop::option::of(0u32..=1_000_000_000),
            any::<u64>(),
            arb_blocks()
        )
            .prop_map(
                |(ts_echo_nanos, t_delay_micros, x_recv, p_ppb, cum_ack, blocks)| {
                    QtpPacket::Feedback {
                        ts_echo_nanos,
                        t_delay_micros,
                        x_recv,
                        p_ppb,
                        cum_ack,
                        blocks,
                    }
                }
            ),
        any::<u64>().prop_map(|new_cum| QtpPacket::Forward { new_cum }),
    ]
}

proptest! {
    #[test]
    fn qtp_packets_roundtrip(pkt in arb_qtp_packet()) {
        let bytes = pkt.encode();
        let back = QtpPacket::decode(&bytes).expect("decode of own encoding");
        prop_assert_eq!(back, pkt);
    }

    #[test]
    fn qtp_truncations_rejected(pkt in arb_qtp_packet(), cut_frac in 0.0f64..1.0) {
        let bytes = pkt.encode();
        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        prop_assert!(QtpPacket::decode(&bytes[..cut]).is_err());
    }

    #[test]
    fn tcp_headers_roundtrip(
        kind_ack in any::<bool>(),
        seq in any::<u64>(),
        ack in any::<u64>(),
        ts in any::<u64>(),
        blocks in prop::collection::vec((0u64..1 << 40, 1u64..1 << 12), 0..3),
    ) {
        let blocks: Vec<SeqRange> = blocks.into_iter().map(|(s, l)| SeqRange::new(s, s + l)).collect();
        let h = if kind_ack {
            TcpHeader::ack(ack, ts, blocks)
        } else {
            TcpHeader::data(seq, ts)
        };
        let back = TcpHeader::decode(&h.encode()).unwrap();
        prop_assert_eq!(back.kind, if kind_ack { TcpKind::Ack } else { TcpKind::Data });
        prop_assert_eq!(back, h);
    }

    #[test]
    fn tcp_truncations_rejected(ts in any::<u64>(), cut in 0usize..26) {
        let h = TcpHeader::data(1, ts);
        let bytes = h.encode();
        prop_assert!(TcpHeader::decode(&bytes[..cut.min(bytes.len() - 1)]).is_err());
    }
}
