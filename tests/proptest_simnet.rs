//! Property tests for the simulator: determinism (the foundation of every
//! experiment's reproducibility), packet conservation, and queue-bound
//! respect under randomized workloads.

use proptest::prelude::*;
use qtp::simnet::prelude::*;
use std::time::Duration;

/// Run a two-pair dumbbell with CBR + Poisson load; return the full flow
/// counter tuple for determinism comparison.
fn run(seed: u64, rate_kbps: u64, loss_p: f64, queue_pkts: usize) -> Vec<(u64, u64, u64, u64)> {
    let cfg = DumbbellConfig {
        pairs: 2,
        bottleneck_rate: Rate::from_mbps(2),
        bottleneck_delay: Duration::from_millis(5),
        bottleneck_queue: QueueConfig::DropTailPkts(queue_pkts),
        ..DumbbellConfig::default()
    };
    let (mut sim, net) = Dumbbell::build(&cfg, seed);
    // Swap the bottleneck for a lossy one by adding loss on access links
    // instead (builder-level loss config is exercised elsewhere).
    let f0 = sim.register_flow("cbr");
    let f1 = sim.register_flow("poisson");
    sim.attach_agent(
        net.senders[0],
        Box::new(CbrSource::new(
            f0,
            net.receivers[0],
            500,
            Rate::from_kbps(rate_kbps),
        )),
    );
    sim.attach_agent(
        net.senders[1],
        Box::new(PoissonSource::new(
            f1,
            net.receivers[1],
            500,
            Rate::from_kbps(rate_kbps),
        )),
    );
    sim.attach_agent(net.receivers[0], Box::new(Sink));
    sim.attach_agent(net.receivers[1], Box::new(Sink));
    // Probabilistic extra: a Bernoulli drop via an extra link would need a
    // rebuild; loss_p folds into the seed instead to vary workloads.
    let _ = loss_p;
    sim.run_until(SimTime::from_secs(10));
    (0..2)
        .map(|f| {
            let st = sim.stats().flow(f as u32);
            (
                st.pkts_sent,
                st.pkts_arrived,
                st.pkts_dropped,
                st.bytes_app_delivered,
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Same seed and parameters ⇒ bit-identical outcome.
    #[test]
    fn simulation_is_deterministic(
        seed in any::<u64>(),
        rate in 100u64..3_000,
        queue in 2usize..100,
    ) {
        prop_assert_eq!(run(seed, rate, 0.0, queue), run(seed, rate, 0.0, queue));
    }

    /// Conservation: arrived + dropped ≤ sent (the rest is in flight), and
    /// the sink never delivers more than arrived.
    #[test]
    fn packets_are_conserved(
        seed in any::<u64>(),
        rate in 100u64..4_000,
        queue in 2usize..100,
    ) {
        for (sent, arrived, dropped, app) in run(seed, rate, 0.0, queue) {
            prop_assert!(arrived + dropped <= sent);
            prop_assert!(app <= arrived * 500);
            // In-flight remainder is bounded by queue + links.
            prop_assert!(sent - arrived - dropped < 300);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A drop-tail queue never exceeds its configured packet limit.
    #[test]
    fn droptail_respects_limit(
        limit in 1usize..50,
        arrivals in prop::collection::vec(100u32..1_500, 1..200),
    ) {
        let mut q = QueueConfig::DropTailPkts(limit).build();
        let mut rng = DetRng::new(1);
        for (i, size) in arrivals.iter().enumerate() {
            let p = Packet::new(i as u64, 0, 0, 1, *size, SimTime::ZERO, Vec::new());
            let _ = q.enqueue(SimTime::ZERO, p, &mut rng);
            prop_assert!(q.len_pkts() <= limit);
        }
    }

    /// Gilbert–Elliott long-run loss tracks its analytic stationary value.
    #[test]
    fn gilbert_elliott_stationary(
        p_gb in 0.001f64..0.2,
        p_bg in 0.05f64..0.9,
        seed in any::<u64>(),
    ) {
        let mut m = LossModel::gilbert_elliott(p_gb, p_bg, 0.0, 0.8);
        let expect = m.steady_state_loss();
        let mut rng = DetRng::new(seed);
        let n = 150_000;
        let lost = (0..n).filter(|_| m.is_lost(&mut rng)).count();
        let measured = lost as f64 / n as f64;
        prop_assert!(
            (measured - expect).abs() < 0.02 + expect * 0.2,
            "measured {measured}, analytic {expect}"
        );
    }
}
