//! Property tests for the simulator: determinism (the foundation of every
//! experiment's reproducibility), packet conservation, queue-bound respect
//! under randomized workloads, and scheduler exactness (the calendar queue
//! is an order-preserving drop-in for the binary heap it replaced).

use proptest::prelude::*;
use qtp::simnet::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Duration;

/// Run a two-pair dumbbell with CBR + Poisson load; return the full flow
/// counter tuple for determinism comparison.
fn run(seed: u64, rate_kbps: u64, loss_p: f64, queue_pkts: usize) -> Vec<(u64, u64, u64, u64)> {
    let cfg = DumbbellConfig {
        pairs: 2,
        bottleneck_rate: Rate::from_mbps(2),
        bottleneck_delay: Duration::from_millis(5),
        bottleneck_queue: QueueConfig::DropTailPkts(queue_pkts),
        ..DumbbellConfig::default()
    };
    let (mut sim, net) = Dumbbell::build(&cfg, seed);
    // Swap the bottleneck for a lossy one by adding loss on access links
    // instead (builder-level loss config is exercised elsewhere).
    let f0 = sim.register_flow("cbr");
    let f1 = sim.register_flow("poisson");
    sim.attach_agent(
        net.senders[0],
        Box::new(CbrSource::new(
            f0,
            net.receivers[0],
            500,
            Rate::from_kbps(rate_kbps),
        )),
    );
    sim.attach_agent(
        net.senders[1],
        Box::new(PoissonSource::new(
            f1,
            net.receivers[1],
            500,
            Rate::from_kbps(rate_kbps),
        )),
    );
    sim.attach_agent(net.receivers[0], Box::new(Sink));
    sim.attach_agent(net.receivers[1], Box::new(Sink));
    // Probabilistic extra: a Bernoulli drop via an extra link would need a
    // rebuild; loss_p folds into the seed instead to vary workloads.
    let _ = loss_p;
    sim.run_until(SimTime::from_secs(10));
    (0..2)
        .map(|f| {
            let st = sim.stats().flow(f as u32);
            (
                st.pkts_sent,
                st.pkts_arrived,
                st.pkts_dropped,
                st.bytes_app_delivered,
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Same seed and parameters ⇒ bit-identical outcome.
    #[test]
    fn simulation_is_deterministic(
        seed in any::<u64>(),
        rate in 100u64..3_000,
        queue in 2usize..100,
    ) {
        prop_assert_eq!(run(seed, rate, 0.0, queue), run(seed, rate, 0.0, queue));
    }

    /// Conservation: arrived + dropped ≤ sent (the rest is in flight), and
    /// the sink never delivers more than arrived.
    #[test]
    fn packets_are_conserved(
        seed in any::<u64>(),
        rate in 100u64..4_000,
        queue in 2usize..100,
    ) {
        for (sent, arrived, dropped, app) in run(seed, rate, 0.0, queue) {
            prop_assert!(arrived + dropped <= sent);
            prop_assert!(app <= arrived * 500);
            // In-flight remainder is bounded by queue + links.
            prop_assert!(sent - arrived - dropped < 300);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A drop-tail queue never exceeds its configured packet limit.
    #[test]
    fn droptail_respects_limit(
        limit in 1usize..50,
        arrivals in prop::collection::vec(100u32..1_500, 1..200),
    ) {
        let mut q = QueueConfig::DropTailPkts(limit).build();
        let mut rng = DetRng::new(1);
        for (i, size) in arrivals.iter().enumerate() {
            let p = QueuedPacket {
                id: PacketId::from_raw(i as u32),
                wire_size: *size,
                color: Color::Green,
            };
            let _ = q.enqueue(SimTime::ZERO, p, &mut rng);
            prop_assert!(q.len_pkts() <= limit);
        }
    }

    /// The calendar queue pops exactly what a `BinaryHeap` keyed by
    /// `(time, seq)` would, under arbitrary interleavings of pushes and
    /// pops — including pushes behind the calendar's current day, bursts
    /// of equal timestamps (which must come back in insertion order, since
    /// `seq` increases monotonically), and far-future outliers that force
    /// the direct-scan day jump.
    #[test]
    fn calendar_queue_is_a_drop_in_for_binary_heap(
        ops in prop::collection::vec((0u32..13, 0u64..5_000_000), 1..600),
    ) {
        let mut cal = CalendarQueue::new();
        let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut seq = 0u64;
        for (sel, raw) in ops {
            // Weighted toward pushes so the queue grows through resize
            // thresholds; timestamps mix three scales (same-tick bursts,
            // short horizons, wide spreads) plus a far-future outlier, so
            // bucket widths from 1 to millions all get exercised.
            let at = match sel {
                0..=2 => Some(raw % 50),
                3..=5 => Some(raw % 5_000),
                6..=7 => Some(raw),
                8 => Some(u64::MAX - 1),
                _ => None, // pop
            };
            match at {
                Some(at) => {
                    seq += 1;
                    cal.push(at, seq, seq);
                    heap.push(Reverse((at, seq)));
                }
                None => {
                    let want = heap.pop().map(|Reverse((at, s))| (at, s, s));
                    prop_assert_eq!(cal.pop(), want);
                }
            }
            prop_assert_eq!(cal.len(), heap.len());
        }
        // Drain: remaining contents must agree in full pop order.
        while let Some(Reverse((at, s))) = heap.pop() {
            prop_assert_eq!(cal.pop(), Some((at, s, s)));
        }
        prop_assert!(cal.is_empty());
    }

    /// Gilbert–Elliott long-run loss tracks its analytic stationary value.
    #[test]
    fn gilbert_elliott_stationary(
        p_gb in 0.001f64..0.2,
        p_bg in 0.05f64..0.9,
        seed in any::<u64>(),
    ) {
        let mut m = LossModel::gilbert_elliott(p_gb, p_bg, 0.0, 0.8);
        let expect = m.steady_state_loss();
        let mut rng = DetRng::new(seed);
        let n = 150_000;
        let lost = (0..n).filter(|_| m.is_lost(&mut rng)).count();
        let measured = lost as f64 / n as f64;
        prop_assert!(
            (measured - expect).abs() < 0.02 + expect * 0.2,
            "measured {measured}, analytic {expect}"
        );
    }
}
