//! Offline shim for the `criterion` crate.
//!
//! Implements the subset used by this workspace's benches:
//! `Criterion::bench_function`, `Bencher::{iter, iter_batched}`, `black_box`,
//! `BatchSize`, `criterion_group!`, `criterion_main!`.
//!
//! Behaviour: when the binary is invoked with `--bench` (what `cargo bench`
//! passes to `harness = false` bench targets) each benchmark runs a short
//! calibrated measurement loop and prints a `time: … ns/iter` line. Under any
//! other invocation (e.g. `cargo test`) each benchmark body runs exactly once
//! as a smoke test. A positional argument filters benchmarks by substring,
//! matching cargo's `cargo bench -- <filter>` convention.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup; the shim only distinguishes
/// per-iteration setup, which all variants here use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Benchmark driver handed to `criterion_group!` functions.
pub struct Criterion {
    filter: Option<String>,
    measure: bool,
    target_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut measure = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" => measure = true,
                "--test" => measure = false,
                a if a.starts_with("--") => {}
                a => filter = Some(a.to_string()),
            }
        }
        let target_time = std::env::var("CRITERION_TARGET_TIME_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .map(Duration::from_millis)
            .unwrap_or_else(|| Duration::from_millis(200));
        Criterion {
            filter,
            measure,
            target_time,
        }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(ref needle) = self.filter {
            if !id.contains(needle.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            measure: self.measure,
            target_time: self.target_time,
            report: None,
        };
        f(&mut b);
        match b.report {
            Some((iters, total)) if self.measure => {
                let ns = total.as_nanos() as f64 / iters as f64;
                println!("{id:<50} time: {ns:>12.1} ns/iter ({iters} iters)");
            }
            _ => println!("{id:<50} ok (smoke)"),
        }
        self
    }
}

/// Per-benchmark measurement loop.
pub struct Bencher {
    measure: bool,
    target_time: Duration,
    report: Option<(u64, Duration)>,
}

impl Bencher {
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        if !self.measure {
            black_box(routine());
            return;
        }
        // Calibrate: grow the iteration count until the batch is long enough
        // to time reliably, then measure one batch sized to the target time.
        let mut n: u64 = 1;
        let per_iter = loop {
            let t = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            let dt = t.elapsed();
            if dt > Duration::from_millis(5) || n >= 1 << 30 {
                break dt.as_secs_f64() / n as f64;
            }
            n *= 8;
        };
        let iters =
            ((self.target_time.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 1 << 32);
        let t = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.report = Some((iters, t.elapsed()));
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        if !self.measure {
            black_box(routine(setup()));
            return;
        }
        // Measure routine time only, excluding setup, one input at a time.
        let mut n: u64 = 1;
        let per_iter = loop {
            let mut total = Duration::ZERO;
            for _ in 0..n {
                let input = setup();
                let t = Instant::now();
                black_box(routine(input));
                total += t.elapsed();
            }
            if total > Duration::from_millis(5) || n >= 1 << 30 {
                break total.as_secs_f64() / n as f64;
            }
            n *= 8;
        };
        let iters =
            ((self.target_time.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 1 << 32);
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            total += t.elapsed();
        }
        self.report = Some((iters, total));
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        let mut c = Criterion {
            filter: None,
            measure: false,
            target_time: Duration::from_millis(1),
        };
        let mut runs = 0;
        c.bench_function("demo", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
        let mut batched = 0;
        c.bench_function("demo2", |b| {
            b.iter_batched(|| 3u32, |x| batched += x, BatchSize::SmallInput)
        });
        assert_eq!(batched, 3);
    }

    #[test]
    fn measure_mode_reports() {
        let mut c = Criterion {
            filter: None,
            measure: true,
            target_time: Duration::from_millis(5),
        };
        c.bench_function("spin", |b| b.iter(|| black_box(2u64).pow(10)));
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("match-me".into()),
            measure: false,
            target_time: Duration::from_millis(1),
        };
        let mut runs = 0;
        c.bench_function("other", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 0);
        c.bench_function("yes/match-me/x", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }
}
