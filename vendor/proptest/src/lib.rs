//! Offline shim for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's test suites
//! use, with fully deterministic case generation (the RNG is seeded from the
//! test function's name) and **no shrinking**: a failing case reports its
//! case number; re-running the test replays the identical sequence.

pub mod test_runner {
    use std::fmt;

    /// Error type returned (via `?` or `prop_assert*!`) from a property body.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property failed.
        Fail(String),
        /// The input was rejected (not a failure).
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl fmt::Display) -> Self {
            TestCaseError::Fail(msg.to_string())
        }

        pub fn reject(msg: impl fmt::Display) -> Self {
            TestCaseError::Reject(msg.to_string())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
            }
        }
    }

    /// Runner configuration. Only `cases` is honoured by the shim.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(256);
            ProptestConfig { cases }
        }
    }

    /// Deterministic splitmix64 RNG seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed deterministically from a test identifier.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the name, folded into a fixed global seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng {
                state: h ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// A generator of values of type `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree / shrinking: `generate`
    /// produces the value directly.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { source: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Type-erased strategy (also what `prop_oneof!` arms become).
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        pub(crate) source: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        pub(crate) source: S,
        pub(crate) f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.source.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let k = rng.below(self.arms.len() as u64) as usize;
            self.arms[k].generate(rng)
        }
    }

    /// `any::<T>()` support for primitive types.
    pub trait ArbitraryValue {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_uint {
        ($($t:ty),*) => {$(
            impl ArbitraryValue for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl ArbitraryValue for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    // No `ArbitraryValue for f64`: real proptest's `any::<f64>()` covers the
    // full domain (negatives, infinities, NaN) and a [0,1)-only shim would
    // silently weaken such a property. Use an explicit float range instead;
    // misuse fails to compile.

    pub struct Any<T>(PhantomData<T>);

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: ArbitraryValue>() -> Any<T> {
        Any(PhantomData)
    }

    // Integer range strategies: `lo..hi` and `lo..=hi`.
    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! sint_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }
    sint_range_strategy!(i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    // Tuple strategies up to arity 6.
    macro_rules! tuple_strategy {
        ($($s:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// Collection length specification.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.min + rng.below((self.max - self.min + 1) as u64) as usize
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            // Like real proptest, duplicates may make the set smaller than
            // the drawn target size.
            let n = self.size.pick(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// `prop::collection::btree_set(element, size)`.
    pub fn btree_set<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy {
            elem,
            size: size.into(),
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            // Some with probability 3/4 (real proptest also biases to Some).
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// `prop::option::of(strategy)`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace alias matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: `{:?}` == `{:?}`",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        $crate::prop_assert!(lhs == rhs, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        $crate::prop_assert!(
            lhs != rhs,
            "assertion failed: `{:?}` != `{:?}`",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        $crate::prop_assert!(lhs != rhs, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = ($cfg:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                // Build the (possibly expensive) strategy tree once, as a
                // tuple strategy; each case only draws values from it.
                let __strategies = ($($strat,)+);
                for case in 0..config.cases {
                    let ($($pat,)+) =
                        $crate::strategy::Strategy::generate(&__strategies, &mut rng);
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => {
                            panic!(
                                "property `{}` failed at case {}/{}: {}",
                                stringify!($name),
                                case + 1,
                                config.cases,
                                msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        use crate::test_runner::TestRng;
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let mut c = TestRng::deterministic("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        use crate::test_runner::TestRng;
        let mut rng = TestRng::deterministic("bounds");
        for _ in 0..1000 {
            let v = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let f = (0.5f64..1.5).generate(&mut rng);
            assert!((0.5..1.5).contains(&f));
            let i = (0u32..=3).generate(&mut rng);
            assert!(i <= 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_pipeline_works(
            v in prop::collection::vec((any::<bool>(), 0u64..100), 1..20),
            opt in prop::option::of(1u32..5),
            choice in prop_oneof![Just(0u8), Just(1u8), 2u8..10],
        ) {
            prop_assert!(v.len() < 20);
            for (_, x) in &v {
                prop_assert!(*x < 100);
            }
            if let Some(o) = opt {
                prop_assert!((1..5).contains(&o));
            }
            prop_assert!(choice < 10);
            prop_assert_eq!(choice as u64 * 2, u64::from(choice) * 2);
            prop_assert_ne!(v.len(), 999);
        }
    }
}
