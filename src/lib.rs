//! # qtp — a versatile transport protocol
//!
//! Full reproduction of *"Towards a Versatile Transport Protocol"*
//! (Jourjon, Lochin, Sénac — CoNEXT 2006): a reconfigurable transport
//! built by composing **TFRC** congestion control (RFC 3448) with
//! **SACK** selective acknowledgments (RFC 2018), yielding — among other
//! compositions — the paper's two named instances:
//!
//! * **QTPAF** — gTFRC (guaranteed TFRC, `X = max(g, X_tfrc)`) plus full
//!   SACK reliability, for DiffServ Assured-Forwarding networks;
//! * **QTPlight** — TFRC whose loss-event-rate estimation runs at the
//!   *sender* from SACK feedback, freeing resource-limited receivers.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`simnet`] | deterministic discrete-event network simulator (links, RED/RIO, DiffServ markers, Gilbert–Elliott loss, dumbbells, statistics) |
//! | [`tfrc`] | RFC 3448 sender/receiver, throughput equation, loss-interval history, gTFRC |
//! | [`sack`] | range sets, reassembly + SACK block generation, scoreboard, reliability policies |
//! | [`tcp`] | TCP NewReno / SACK baseline agents |
//! | [`core`] | the composed QTP endpoints (sans-io, behind the `Endpoint` driver seam), wire formats, capability negotiation, and the **session layer** ([`core::session`]): fluent `Profile`s, poll-style `Session`s, the backend seam |
//! | [`io`] | real-socket backend: UDP datagram framing, wall clock, blocking event loop, multi-flow connection mux, and the `UdpBackend`/`MuxBackend` bindings |
//! | [`metrics`] | deterministic processing-cost accounting |
//!
//! ## Quickstart — send bytes, receive bytes
//!
//! Applications talk to QTP through the **stream data plane**: a plan
//! with a [`core::stream::StreamConfig`] yields a `SendStream` /
//! `RecvStream` pair — `send` with backpressure on one side, `recv` plus
//! a wire-level FIN/FIN-ACK close on the other. The same plan runs
//! unchanged on the deterministic simulator, on one blocking UDP socket
//! pair (`UdpDriver`), or multiplexed with hundreds of other flows over
//! a single socket (`MuxDriver`):
//!
//! ```
//! use qtp::prelude::*;
//! use std::time::Duration;
//!
//! // A 10 Mbit/s duplex path, 40 ms RTT, 1% forward loss.
//! let mut b = NetworkBuilder::new();
//! let (a, z) = (b.host(), b.host());
//! let link = LinkConfig::new(Rate::from_mbps(10), Duration::from_millis(20));
//! b.simplex_link(a, z, link.clone().with_loss(LossModel::bernoulli(0.01)));
//! b.simplex_link(z, a, link);
//! let mut sim = b.build(1);
//!
//! // One QTPAF connection (full reliability over a 2 Mbit/s gTFRC
//! // floor) carrying a real byte stream.
//! let plan = ConnectionPlan::new(Profile::qtp_af(Rate::from_mbps(2)))
//!     .stream(StreamConfig::default());
//! let h = attach_pair(&mut sim, a, z, "file", &plan);
//! let (tx, rx) = (h.tx_stream.unwrap(), h.rx_stream.unwrap());
//!
//! tx.send(b"hello, versatile transport").unwrap();
//! tx.finish();
//! sim.run_until(SimTime::ZERO + Duration::from_secs(5));
//!
//! let mut got = Vec::new();
//! while let Some(chunk) = rx.recv() {
//!     got.extend(chunk);
//! }
//! assert_eq!(got, b"hello, versatile transport"); // byte-exact despite loss
//! assert!(rx.is_finished(), "FIN / FIN-ACK completed");
//! ```
//!
//! Under partial reliability the stream switches to message mode:
//! `send_with_ttl` tags each message with a playout lifetime and the
//! *receiver* drops retransmissions that arrive stale
//! (`RecvStream::ttl_dropped` counts them) — see the A3 experiment.
//!
//! Custom compositions use the fluent builder —
//! `Profile::new().reliability(Reliability::Ttl(..)).feedback(..).cc(..).build()?`
//! — and hand-written event loops can drive a [`core::session::Session`]
//! directly through its poll-style surface (`handle_input` /
//! `poll_transmit` / `poll_timeout` / `on_timeout` / `poll_event`).
//!
//! Synthetic workloads (greedy, finite, CBR) for experiments that only
//! measure rates are described on the plan itself —
//! [`core::session::ConnectionPlan::finite`] /
//! [`core::session::ConnectionPlan::app`] — and executed on any
//! [`core::session::Backend`], which reports typed
//! [`core::session::ConnectionOutcome`]s.
//!
//! See `docs/ARCHITECTURE.md` for the architecture and the experiment
//! index, and run `cargo run -p qtp-bench --release --bin expt -- all` to
//! regenerate every evaluation result.
//!
//! ## Deprecation path
//!
//! The pre-session free functions (`attach_qtp`, `qtp_af_sender`,
//! `qtp_light_sender`, `qtp_light_partial_sender`, `qtp_standard_sender`,
//! `cbr_app`) remain as deprecated shims; replace them with
//! [`core::session::Profile`] presets, [`core::session::ConnectionPlan`]
//! and [`core::session::attach_pair`]. The prelude's direct [`AppModel`]
//! re-export is deprecated the same way: applications move real bytes
//! over streams, and experiments reach synthetic models through
//! `ConnectionPlan::finite` / `ConnectionPlan::app` (naming the enum as
//! `qtp::core::AppModel` where a custom model is genuinely wanted).
//! Everything in this repository builds with `-D deprecated`.

pub use qtp_core as core;
pub use qtp_io as io;
pub use qtp_metrics as metrics;
pub use qtp_sack as sack;
pub use qtp_simnet as simnet;
pub use qtp_tcp as tcp;
pub use qtp_tfrc as tfrc;

pub mod app;
pub mod scenarios;

/// Everything a simulation driver typically needs.
pub mod prelude {
    pub use qtp_core::stream::{RecvStream, SendStream, StreamConfig, StreamError};
    /// Deprecated in the prelude: applications move real bytes over
    /// streams (`ConnectionPlan::stream`); experiments describe synthetic
    /// workloads with `ConnectionPlan::finite` / `ConnectionPlan::app`
    /// and can name the enum as `qtp::core::AppModel` when a custom
    /// model is genuinely wanted.
    #[deprecated(
        note = "use ConnectionPlan::stream (real data) or ConnectionPlan::finite/app \
                (synthetic workloads); name the enum as qtp::core::AppModel if needed"
    )]
    pub use qtp_core::AppModel;
    pub use qtp_core::{
        attach_pair, attach_pairs, Backend, CapabilitySet, CapsError, CcKind, ConnectionOutcome,
        ConnectionPlan, FeedbackMode, PairHandles, Probe, Profile, ProfileBuilder, ProfileError,
        QtpHandles, QtpReceiver, QtpReceiverConfig, QtpSender, QtpSenderConfig, Reliability,
        ServerPolicy, Session, SessionEvent, SessionEvents, SimBackend, SimHost, SimTopology,
    };
    #[allow(deprecated)]
    pub use qtp_core::{
        attach_qtp, cbr_app, qtp_af_sender, qtp_light_partial_sender, qtp_light_sender,
        qtp_standard_sender,
    };
    pub use qtp_io::{
        drive_mux_pair, drive_pair, Accepted, ConnId, MuxBackend, MuxConfig, MuxDriver, UdpBackend,
        UdpDriver,
    };
    pub use qtp_sack::ReliabilityMode;
    pub use qtp_simnet::prelude::*;
    pub use qtp_tcp::{TcpConfig, TcpFlavor, TcpReceiver, TcpSender};
}
