//! # qtp — a versatile transport protocol
//!
//! Full reproduction of *"Towards a Versatile Transport Protocol"*
//! (Jourjon, Lochin, Sénac — CoNEXT 2006): a reconfigurable transport
//! built by composing **TFRC** congestion control (RFC 3448) with
//! **SACK** selective acknowledgments (RFC 2018), yielding — among other
//! compositions — the paper's two named instances:
//!
//! * **QTPAF** — gTFRC (guaranteed TFRC, `X = max(g, X_tfrc)`) plus full
//!   SACK reliability, for DiffServ Assured-Forwarding networks;
//! * **QTPlight** — TFRC whose loss-event-rate estimation runs at the
//!   *sender* from SACK feedback, freeing resource-limited receivers.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`simnet`] | deterministic discrete-event network simulator (links, RED/RIO, DiffServ markers, Gilbert–Elliott loss, dumbbells, statistics) |
//! | [`tfrc`] | RFC 3448 sender/receiver, throughput equation, loss-interval history, gTFRC |
//! | [`sack`] | range sets, reassembly + SACK block generation, scoreboard, reliability policies |
//! | [`tcp`] | TCP NewReno / SACK baseline agents |
//! | [`core`] | the composed QTP endpoints (sans-io, behind the `Endpoint` driver seam), wire formats, capability negotiation, named instances |
//! | [`io`] | real-socket backend: UDP datagram framing, wall clock, blocking event loop, multi-flow connection mux |
//! | [`metrics`] | deterministic processing-cost accounting |
//!
//! ## Quickstart
//!
//! ```
//! use std::time::Duration;
//! use qtp::prelude::*;
//!
//! // A 10 Mbit/s, 40 ms RTT path with 1% random loss.
//! let mut b = NetworkBuilder::new();
//! let server = b.host();
//! let mobile = b.host();
//! b.duplex_link(server, mobile,
//!     LinkConfig::new(Rate::from_mbps(10), Duration::from_millis(20))
//!         .with_loss(LossModel::bernoulli(0.01)));
//! let mut sim = b.build(42);
//!
//! // A QTPlight connection: sender-side loss estimation, light receiver.
//! let h = attach_qtp(&mut sim, server, mobile, "stream",
//!     qtp_light_sender(), QtpReceiverConfig::default());
//! sim.run_until(SimTime::from_secs(10));
//!
//! let stats = sim.stats().flow(h.data_flow);
//! assert!(stats.bytes_app_delivered > 0);
//! // The receiver did almost no work per packet:
//! assert!(h.rx.read(|d| d.rx_ops_per_packet()) < 20.0);
//! ```
//!
//! See `DESIGN.md` for the architecture and the experiment index, and run
//! `cargo run -p qtp-bench --release --bin expt -- all` to regenerate
//! every evaluation result.

pub use qtp_core as core;
pub use qtp_io as io;
pub use qtp_metrics as metrics;
pub use qtp_sack as sack;
pub use qtp_simnet as simnet;
pub use qtp_tcp as tcp;
pub use qtp_tfrc as tfrc;

/// Everything a simulation driver typically needs.
pub mod prelude {
    pub use qtp_core::{
        attach_qtp, cbr_app, qtp_af_sender, qtp_light_partial_sender, qtp_light_sender,
        qtp_standard_sender, AppModel, CapabilitySet, CcKind, FeedbackMode, Probe, QtpHandles,
        QtpReceiver, QtpReceiverConfig, QtpSender, QtpSenderConfig, ServerPolicy,
    };
    pub use qtp_io::{
        drive_mux_pair, drive_pair, Accepted, ConnId, MuxConfig, MuxDriver, UdpDriver,
    };
    pub use qtp_sack::ReliabilityMode;
    pub use qtp_simnet::prelude::*;
    pub use qtp_tcp::{TcpConfig, TcpFlavor, TcpReceiver, TcpSender};
}
