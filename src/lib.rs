//! # qtp — a versatile transport protocol
//!
//! Full reproduction of *"Towards a Versatile Transport Protocol"*
//! (Jourjon, Lochin, Sénac — CoNEXT 2006): a reconfigurable transport
//! built by composing **TFRC** congestion control (RFC 3448) with
//! **SACK** selective acknowledgments (RFC 2018), yielding — among other
//! compositions — the paper's two named instances:
//!
//! * **QTPAF** — gTFRC (guaranteed TFRC, `X = max(g, X_tfrc)`) plus full
//!   SACK reliability, for DiffServ Assured-Forwarding networks;
//! * **QTPlight** — TFRC whose loss-event-rate estimation runs at the
//!   *sender* from SACK feedback, freeing resource-limited receivers.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`simnet`] | deterministic discrete-event network simulator (links, RED/RIO, DiffServ markers, Gilbert–Elliott loss, dumbbells, statistics) |
//! | [`tfrc`] | RFC 3448 sender/receiver, throughput equation, loss-interval history, gTFRC |
//! | [`sack`] | range sets, reassembly + SACK block generation, scoreboard, reliability policies |
//! | [`tcp`] | TCP NewReno / SACK baseline agents |
//! | [`core`] | the composed QTP endpoints (sans-io, behind the `Endpoint` driver seam), wire formats, capability negotiation, and the **session layer** ([`core::session`]): fluent `Profile`s, poll-style `Session`s, the backend seam |
//! | [`io`] | real-socket backend: UDP datagram framing, wall clock, blocking event loop, multi-flow connection mux, and the `UdpBackend`/`MuxBackend` bindings |
//! | [`metrics`] | deterministic processing-cost accounting |
//!
//! ## Quickstart
//!
//! Describe a connection once — the service profile to negotiate and the
//! traffic to send — then run it on any backend. The same plan runs
//! unchanged on the deterministic simulator, on one blocking UDP socket
//! pair (`UdpBackend`), or multiplexed with hundreds of other flows over
//! a single socket (`MuxBackend`):
//!
//! ```
//! use qtp::prelude::*;
//! use std::time::Duration;
//!
//! // A QTPlight connection (sender-side loss estimation, light
//! // receiver), 40 packets of 1000 B.
//! let plan = ConnectionPlan::new(Profile::qtp_light())
//!     .label("stream")
//!     .finite(40);
//!
//! // Run it over a simulated 10 Mbit/s, 40 ms RTT path with 1% loss.
//! let mut backend =
//!     SimBackend::isolated(Rate::from_mbps(10), Duration::from_millis(20), 0.01);
//! let outcome = &backend.run(std::slice::from_ref(&plan)).unwrap()[0];
//!
//! // The application observes negotiation and delivery as typed data —
//! // no reaching into endpoint internals.
//! assert!(outcome.negotiated.is_some(), "handshake completed");
//! assert!(outcome.delivered_bytes > 0);
//! // The receiver did almost no work per packet (the QTPlight claim):
//! assert!(outcome.rx.rx_ops_per_packet() < 20.0);
//! ```
//!
//! Custom compositions use the fluent builder —
//! `Profile::new().reliability(Reliability::Ttl(..)).feedback(..).cc(..).build()?`
//! — and hand-written event loops can drive a [`core::session::Session`]
//! directly through its poll-style surface (`handle_input` /
//! `poll_transmit` / `poll_timeout` / `on_timeout` / `poll_event`).
//!
//! See `docs/ARCHITECTURE.md` for the architecture and the experiment
//! index, and run `cargo run -p qtp-bench --release --bin expt -- all` to
//! regenerate every evaluation result.
//!
//! ## Deprecation path
//!
//! The pre-session free functions (`attach_qtp`, `qtp_af_sender`,
//! `qtp_light_sender`, `qtp_light_partial_sender`, `qtp_standard_sender`,
//! `cbr_app`) remain as deprecated shims; replace them with
//! [`core::session::Profile`] presets, [`core::session::ConnectionPlan`]
//! and [`core::session::attach_pair`]. Everything in this repository
//! builds with `-D deprecated`.

pub use qtp_core as core;
pub use qtp_io as io;
pub use qtp_metrics as metrics;
pub use qtp_sack as sack;
pub use qtp_simnet as simnet;
pub use qtp_tcp as tcp;
pub use qtp_tfrc as tfrc;

pub mod app;

/// Everything a simulation driver typically needs.
pub mod prelude {
    pub use qtp_core::{
        attach_pair, AppModel, Backend, CapabilitySet, CapsError, CcKind, ConnectionOutcome,
        ConnectionPlan, FeedbackMode, PairHandles, Probe, Profile, ProfileBuilder, ProfileError,
        QtpHandles, QtpReceiver, QtpReceiverConfig, QtpSender, QtpSenderConfig, Reliability,
        ServerPolicy, Session, SessionEvent, SessionEvents, SimBackend, SimTopology,
    };
    #[allow(deprecated)]
    pub use qtp_core::{
        attach_qtp, cbr_app, qtp_af_sender, qtp_light_partial_sender, qtp_light_sender,
        qtp_standard_sender,
    };
    pub use qtp_io::{
        drive_mux_pair, drive_pair, Accepted, ConnId, MuxBackend, MuxConfig, MuxDriver, UdpBackend,
        UdpDriver,
    };
    pub use qtp_sack::ReliabilityMode;
    pub use qtp_simnet::prelude::*;
    pub use qtp_tcp::{TcpConfig, TcpFlavor, TcpReceiver, TcpSender};
}
