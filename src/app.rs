//! The shared application driver: run [`ConnectionPlan`]s on any
//! [`Backend`] and report what happened.
//!
//! This is the "one program, every I/O strategy" helper the examples
//! share: `quickstart` runs it on the simulator *and* on real sockets,
//! `udp_loopback` on the blocking UDP driver, `many_flows` on the
//! connection multiplexer and on a simulated dumbbell — all with exactly
//! the same call.

use crate::prelude::*;
use std::io;

/// Compact rendering of a negotiated capability set, one token per axis
/// (e.g. `Full/ReceiverLoss/gTFRC(500kbit/s)`).
pub fn caps_brief(caps: &CapabilitySet) -> String {
    let rel = match caps.reliability {
        ReliabilityMode::None => "None".to_string(),
        ReliabilityMode::Full => "Full".to_string(),
        ReliabilityMode::PartialTtl(d) => format!("Ttl({}ms)", d.as_millis()),
        ReliabilityMode::PartialRetx(n) => format!("Budget({n})"),
    };
    let fb = match caps.feedback {
        FeedbackMode::ReceiverLoss => "ReceiverLoss",
        FeedbackMode::SenderLoss => "SenderLoss",
    };
    let cc = match caps.cc {
        CcKind::Tfrc => "TFRC".to_string(),
        CcKind::Gtfrc { target } => format!("gTFRC({}kbit/s)", target.bps() / 1000),
        CcKind::Fixed { rate } => format!("Fixed({}kbit/s)", rate.bps() / 1000),
        CcKind::Cubic => "CUBIC".to_string(),
        CcKind::BbrLite => "BBR-lite".to_string(),
    };
    format!("{rel}/{fb}/{cc}")
}

/// Run `plans` on `backend` and print one line per connection plus a
/// fairness headline. Returns the outcomes for further inspection.
///
/// The point of this helper is what it does *not* contain: nothing in it
/// knows whether the bytes crossed a simulated bottleneck, a pair of UDP
/// sockets, or one multiplexed socket carrying every flow at once.
pub fn run_and_report(
    backend: &mut dyn Backend,
    plans: &[ConnectionPlan],
) -> io::Result<Vec<ConnectionOutcome>> {
    let outcomes = backend.run(plans)?;
    println!("[{}] ran {} connection(s):", backend.name(), outcomes.len());
    let shown = outcomes.len().min(8);
    for o in outcomes.iter().take(shown) {
        println!(
            "  {:<10} {:<28} delivered {:>8} B  goodput {:>9.1} kbit/s  {}",
            o.label,
            o.negotiated
                .as_ref()
                .map(caps_brief)
                .unwrap_or_else(|| "(no handshake)".into()),
            o.delivered_bytes,
            o.goodput_bps / 1e3,
            match o.completion_s {
                Some(t) => format!("done in {t:.3} s"),
                None => "incomplete".into(),
            },
        );
    }
    if outcomes.len() > shown {
        println!("  … {} more", outcomes.len() - shown);
    }
    let goodputs: Vec<f64> = outcomes.iter().map(|o| o.goodput_bps).collect();
    let completed = outcomes.iter().filter(|o| o.completion_s.is_some()).count();
    println!(
        "  {} of {} completed, jain fairness {:.4}, total delivered {} B",
        completed,
        outcomes.len(),
        jain_index(&goodputs),
        outcomes.iter().map(|o| o.delivered_bytes).sum::<u64>(),
    );
    Ok(outcomes)
}
