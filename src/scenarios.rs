//! Seeded example scenarios, shared between `examples/` and the
//! integration tests.
//!
//! Each function builds its topology, runs the session-layer transport
//! under a fixed seed, and returns the headline numbers the example
//! prints. The examples are thin formatters over these; the tests in
//! `tests/example_scenarios.rs` assert the headlines — so an example
//! cannot silently rot into printing nonsense.

use crate::prelude::*;
use std::time::Duration;

/// One bursty 5 Mbit/s wireless path (Gilbert–Elliott, ~1.6% average
/// erasure) shared by every `wireless_loss` contender.
fn wireless_path(seed: u64) -> (Simulator, NodeId, NodeId) {
    let mut b = NetworkBuilder::new();
    let s = b.host();
    let r = b.host();
    b.simplex_link(
        s,
        r,
        LinkConfig::new(Rate::from_mbps(5), Duration::from_millis(20))
            .with_loss(LossModel::gilbert_elliott(0.01, 0.3, 0.0, 0.5))
            .with_queue(QueueConfig::DropTailPkts(200)),
    );
    b.simplex_link(
        r,
        s,
        LinkConfig::new(Rate::from_mbps(5), Duration::from_millis(20)),
    );
    (b.build(seed), s, r)
}

/// Headline numbers of the `wireless_loss` example.
#[derive(Debug, Clone)]
pub struct WirelessLossReport {
    /// TCP SACK goodput over the bursty path (bit/s).
    pub tcp_goodput_bps: f64,
    /// QTPlight (no retransmission) goodput (bit/s).
    pub light_goodput_bps: f64,
    /// QTPlight + 200 ms partial reliability goodput (bit/s).
    pub partial_goodput_bps: f64,
    /// Retransmissions the partial-reliability sender performed.
    pub partial_retransmissions: u64,
    /// Frames the partial-reliability sender abandoned as stale.
    pub partial_abandoned: u64,
}

/// Paper §2 motivation: rate-based control vs TCP over bursty wireless
/// loss, plus the partial-reliability composition. Deterministic in
/// `seed`; `secs` is the run horizon per contender.
pub fn wireless_loss(seed: u64, secs: u64) -> WirelessLossReport {
    let horizon = Duration::from_secs(secs);

    let (mut sim, s, r) = wireless_path(seed);
    let data = sim.register_flow("tcp");
    let ack = sim.register_flow("tcp-ack");
    sim.attach_agent(
        s,
        Box::new(TcpSender::new(data, r, TcpConfig::new(TcpFlavor::Sack))),
    );
    sim.attach_agent(r, Box::new(TcpReceiver::new(data, ack, s, true, 1000)));
    sim.run_until(SimTime::ZERO + horizon);
    let tcp_goodput_bps = sim.stats().flow(data).goodput_bps(horizon);

    let (mut sim, s, r) = wireless_path(seed);
    let h = attach_pair(
        &mut sim,
        s,
        r,
        "light",
        &ConnectionPlan::new(Profile::qtp_light()),
    );
    sim.run_until(SimTime::ZERO + horizon);
    let light_goodput_bps = sim.stats().flow(h.data_flow).goodput_bps(horizon);

    let (mut sim, s, r) = wireless_path(seed);
    let hp = attach_pair(
        &mut sim,
        s,
        r,
        "partial",
        &ConnectionPlan::new(
            Profile::qtp_light_partial(Duration::from_millis(200)).expect("nonzero TTL"),
        ),
    );
    sim.run_until(SimTime::ZERO + horizon);
    let partial_goodput_bps = sim.stats().flow(hp.data_flow).goodput_bps(horizon);
    let pd = hp.tx.snapshot();

    WirelessLossReport {
        tcp_goodput_bps,
        light_goodput_bps,
        partial_goodput_bps,
        partial_retransmissions: pd.tx_retransmissions,
        partial_abandoned: pd.tx_abandoned,
    }
}

/// Headline numbers of one `mobile_receiver` contender.
#[derive(Debug, Clone)]
pub struct MobileRun {
    /// Application goodput at the mobile receiver (bit/s).
    pub goodput_bps: f64,
    /// Receiver-side processing cost per delivered packet.
    pub rx_ops_per_packet: f64,
    /// Peak receiver-side estimator state (bytes).
    pub rx_state_bytes: usize,
    /// Feedback packets the receiver sent.
    pub rx_feedback_sent: u64,
}

/// Paper §3: a streaming server feeding a resource-limited mobile
/// receiver across a WAN hop plus a lossy wireless last hop. `light`
/// selects QTPlight (sender-side loss estimation) over standard TFRC.
pub fn mobile_receiver(light: bool, loss_p: f64, seed: u64, secs: u64) -> MobileRun {
    let horizon = Duration::from_secs(secs);
    let mut b = NetworkBuilder::new();
    let server = b.host();
    let mobile = b.host();
    let r = b.router();
    b.duplex_link(
        server,
        r,
        LinkConfig::new(Rate::from_mbps(100), Duration::from_millis(15)),
    );
    b.duplex_link(
        r,
        mobile,
        LinkConfig::new(Rate::from_mbps(10), Duration::from_millis(5))
            .with_loss(LossModel::bernoulli(loss_p)),
    );
    let mut sim = b.build(seed);
    let profile = if light {
        Profile::qtp_light()
    } else {
        Profile::tfrc()
    };
    let h = attach_pair(
        &mut sim,
        server,
        mobile,
        "video",
        &ConnectionPlan::new(profile),
    );
    sim.run_until(SimTime::ZERO + horizon);
    MobileRun {
        goodput_bps: sim.stats().flow(h.data_flow).goodput_bps(horizon),
        rx_ops_per_packet: h.rx.read(|d| d.rx_ops_per_packet()),
        rx_state_bytes: h.rx.read(|d| d.rx_state_bytes_peak),
        rx_feedback_sent: h.rx.read(|d| d.rx_feedback_sent),
    }
}

/// Headline numbers of the mobile handover extension.
#[derive(Debug, Clone)]
pub struct HandoverReport {
    /// Goodput while still on the clean WLAN last hop (bit/s).
    pub pre_switch_goodput_bps: f64,
    /// Goodput after the switch to the slower cellular hop (bit/s).
    pub post_switch_goodput_bps: f64,
    /// Post-switch last-hop capacity (bit/s) — the adaptation ceiling.
    pub target_rate_bps: f64,
}

/// Mid-run path switch: the mobile walks out of WLAN coverage onto a
/// slower, lossier cellular hop and the stream must survive and adapt —
/// the session keeps running across [`Handover::switch`] with no
/// reconnect. Deterministic in `seed`.
pub fn mobile_handover(light: bool, seed: u64) -> HandoverReport {
    let cfg = HandoverConfig {
        initial: LinkConfig::new(Rate::from_mbps(10), Duration::from_millis(5)),
        target: LinkConfig::new(Rate::from_mbps(2), Duration::from_millis(30))
            .with_loss(LossModel::gilbert_elliott(0.02, 0.3, 0.0, 0.3)),
        switch_at: Duration::from_secs(15),
        ..HandoverConfig::default()
    };
    let (mut sim, ho) = Handover::build(&cfg, seed);
    let profile = if light {
        Profile::qtp_light()
    } else {
        Profile::tfrc()
    };
    let h = attach_pair(
        &mut sim,
        ho.server,
        ho.mobile,
        "video",
        &ConnectionPlan::new(profile),
    );

    sim.run_until(SimTime::ZERO + cfg.switch_at);
    let at_switch = sim.stats().flow(h.data_flow).bytes_app_delivered;
    ho.switch(&mut sim);
    let total = Duration::from_secs(30);
    sim.run_until(SimTime::ZERO + total);
    let at_end = sim.stats().flow(h.data_flow).bytes_app_delivered;

    let post = total - cfg.switch_at;
    HandoverReport {
        pre_switch_goodput_bps: at_switch as f64 * 8.0 / cfg.switch_at.as_secs_f64(),
        post_switch_goodput_bps: (at_end - at_switch) as f64 * 8.0 / post.as_secs_f64(),
        target_rate_bps: cfg.target.rate.bps() as f64,
    }
}
