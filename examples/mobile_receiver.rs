//! The QTPlight story (paper §3): a powerful streaming server feeding a
//! resource-limited mobile receiver. Compare the receiver's processing
//! load and memory footprint under standard TFRC (receiver-side loss
//! estimation) and QTPlight (sender-side).
//!
//! ```text
//! cargo run --example mobile_receiver
//! ```

use qtp::prelude::*;
use std::time::Duration;

const SECS: u64 = 30;

fn run(light: bool, loss_p: f64) -> (PairHandles, f64) {
    let mut b = NetworkBuilder::new();
    let server = b.host();
    let mobile = b.host();
    // A WAN hop then a lossy wireless last hop.
    let r = b.router();
    b.duplex_link(
        server,
        r,
        LinkConfig::new(Rate::from_mbps(100), Duration::from_millis(15)),
    );
    b.duplex_link(
        r,
        mobile,
        LinkConfig::new(Rate::from_mbps(10), Duration::from_millis(5))
            .with_loss(LossModel::bernoulli(loss_p)),
    );
    let mut sim = b.build(99);
    let profile = if light {
        Profile::qtp_light()
    } else {
        Profile::tfrc()
    };
    let h = attach_pair(
        &mut sim,
        server,
        mobile,
        "video",
        &ConnectionPlan::new(profile),
    );
    sim.run_until(SimTime::from_secs(SECS));
    let goodput = sim
        .stats()
        .flow(h.data_flow)
        .goodput_bps(Duration::from_secs(SECS));
    (h, goodput)
}

fn main() {
    println!("Streaming server -> mobile receiver over a 2%-lossy wireless hop\n");
    println!(
        "{:<28}{:>14}{:>16}{:>16}{:>14}",
        "profile", "goodput", "rx ops/pkt", "rx state (B)", "fb pkts"
    );
    for (name, light) in [("standard TFRC", false), ("QTPlight", true)] {
        let (h, goodput) = run(light, 0.02);
        println!(
            "{:<28}{:>11.2} Mb{:>16.1}{:>16}{:>14}",
            name,
            goodput / 1e6,
            h.rx.read(|d| d.rx_ops_per_packet()),
            h.rx.read(|d| d.rx_state_bytes_peak),
            h.rx.read(|d| d.rx_feedback_sent),
        );
    }
    println!();
    let (std_h, _) = run(false, 0.02);
    let (light_h, _) = run(true, 0.02);
    let reduction = std_h.rx.read(|d| d.rx_ops_per_packet())
        / light_h.rx.read(|d| d.rx_ops_per_packet()).max(1e-9);
    println!(
        "QTPlight reduces the mobile receiver's per-packet work by {reduction:.1}x at the\n\
         same goodput — the loss-interval history and loss-event grouping now run\n\
         on the server (paper §3: \"the receiver load [is] dramatically decreased\")."
    );
}
