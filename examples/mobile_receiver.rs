//! The QTPlight story (paper §3): a powerful streaming server feeding a
//! resource-limited mobile receiver. Compare the receiver's processing
//! load and memory footprint under standard TFRC (receiver-side loss
//! estimation) and QTPlight (sender-side), then walk the mobile out of
//! WLAN coverage mid-stream: a handover onto a slower, lossier cellular
//! hop that the session must survive and adapt to without reconnecting.
//!
//! The run logic lives in [`qtp::scenarios`] (`mobile_receiver`,
//! `mobile_handover`), shared with the integration test that asserts
//! these headlines (`tests/example_scenarios.rs`); this binary only
//! formats the report.
//!
//! ```text
//! cargo run --example mobile_receiver
//! ```

fn main() {
    println!("Streaming server -> mobile receiver over a 2%-lossy wireless hop\n");
    println!(
        "{:<28}{:>14}{:>16}{:>16}{:>14}",
        "profile", "goodput", "rx ops/pkt", "rx state (B)", "fb pkts"
    );
    let std_run = qtp::scenarios::mobile_receiver(false, 0.02, 99, 30);
    let light_run = qtp::scenarios::mobile_receiver(true, 0.02, 99, 30);
    for (name, run) in [("standard TFRC", &std_run), ("QTPlight", &light_run)] {
        println!(
            "{:<28}{:>11.2} Mb{:>16.1}{:>16}{:>14}",
            name,
            run.goodput_bps / 1e6,
            run.rx_ops_per_packet,
            run.rx_state_bytes,
            run.rx_feedback_sent,
        );
    }
    println!();
    let reduction = std_run.rx_ops_per_packet / light_run.rx_ops_per_packet.max(1e-9);
    println!(
        "QTPlight reduces the mobile receiver's per-packet work by {reduction:.1}x at the\n\
         same goodput — the loss-interval history and loss-event grouping now run\n\
         on the server (paper §3: \"the receiver load [is] dramatically decreased\").\n"
    );

    println!("Mid-stream handover: 10 Mbit/s WLAN -> 2 Mbit/s bursty cellular at t=15s\n");
    let ho = qtp::scenarios::mobile_handover(true, 99);
    println!(
        "{:<28}{:>11.2} Mb pre-switch, {:>5.2} Mb post-switch (ceiling {:.0} Mb)",
        "QTPlight",
        ho.pre_switch_goodput_bps / 1e6,
        ho.post_switch_goodput_bps / 1e6,
        ho.target_rate_bps / 1e6,
    );
    println!(
        "\nThe stream survives the path switch and re-converges under the new\n\
         ceiling — no reconnect, no receiver-side estimator to resynchronise."
    );
}
