//! The selfish-receiver attack (Georg & Gorinsky, cited in paper §3): a
//! receiver under-reports its loss event rate to grab more bandwidth.
//! Standard TFRC trusts the receiver and is fooled; QTPlight computes the
//! loss rate at the sender and is immune.
//!
//! ```text
//! cargo run --example selfish_receiver
//! ```

use qtp::prelude::*;
use std::time::Duration;

const SECS: u64 = 40;

fn run(light: bool, selfish_factor: f64) -> f64 {
    let mut b = NetworkBuilder::new();
    let s = b.host();
    let r = b.host();
    b.simplex_link(
        s,
        r,
        LinkConfig::new(Rate::from_mbps(50), Duration::from_millis(30))
            .with_loss(LossModel::bernoulli(0.02))
            .with_queue(QueueConfig::DropTailPkts(500)),
    );
    b.simplex_link(
        r,
        s,
        LinkConfig::new(Rate::from_mbps(50), Duration::from_millis(30)),
    );
    let mut sim = b.build(5);
    let profile = if light {
        Profile::qtp_light()
    } else {
        Profile::tfrc()
    };
    let plan = ConnectionPlan::new(profile).selfish_factor(selfish_factor);
    let h = attach_pair(&mut sim, s, r, "x", &plan);
    sim.run_until(SimTime::from_secs(SECS));
    sim.stats()
        .flow(h.data_flow)
        .throughput_bps(Duration::from_secs(SECS))
}

fn main() {
    println!("2% lossy path; receiver divides its reported loss rate by k\n");
    println!(
        "{:>6} {:>22} {:>22}",
        "k", "standard TFRC (Mbit/s)", "QTPlight (Mbit/s)"
    );
    let honest_std = run(false, 1.0);
    let honest_light = run(true, 1.0);
    for k in [1.0, 2.0, 10.0, 100.0] {
        let std = run(false, k);
        let light = run(true, k);
        println!(
            "{:>6} {:>15.2} ({:>4.1}x) {:>15.2} ({:>4.2}x)",
            k,
            std / 1e6,
            std / honest_std,
            light / 1e6,
            light / honest_light
        );
    }
    println!(
        "\nWith sender-side estimation there is no loss report to falsify: the\n\
         sender counts its own losses from SACK feedback (paper §3: \"the sender\n\
         is no longer dependent of the accuracy and the veracity of the\n\
         information given by the receiver\")."
    );
}
