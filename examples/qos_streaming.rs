//! QTPAF over a DiffServ Assured-Forwarding network (the paper's §4
//! scenario): a flow with a negotiated 4 Mbit/s guarantee competes with an
//! aggressive out-of-profile TCP flow across a RIO core. Compare with a
//! TCP flow holding the same reservation.
//!
//! ```text
//! cargo run --example qos_streaming
//! ```

use qtp::prelude::*;
use qtp::simnet::marker::{Marker, TokenBucketMarker};
use std::time::Duration;

const SECS: u64 = 30;

/// Run one scenario; returns per-second throughput of the guaranteed flow.
fn run(use_qtpaf: bool, g: Rate) -> Vec<f64> {
    let cfg = DumbbellConfig {
        pairs: 2,
        bottleneck_rate: Rate::from_mbps(10),
        bottleneck_delay: Duration::from_millis(10),
        bottleneck_queue: QueueConfig::Rio(RioParams::default()),
        ..DumbbellConfig::default()
    };
    let (mut sim, net) = Dumbbell::build(&cfg, 7);
    sim.set_sample_interval(Duration::from_secs(1));

    // Pair 0: the flow under test, with an edge conditioner for g.
    let flow = if use_qtpaf {
        attach_pair(
            &mut sim,
            net.senders[0],
            net.receivers[0],
            "guaranteed",
            &ConnectionPlan::new(Profile::qtp_af(g)),
        )
        .data_flow
    } else {
        let data = sim.register_flow("guaranteed");
        let ack = sim.register_flow("guaranteed-ack");
        sim.attach_agent(
            net.senders[0],
            Box::new(TcpSender::new(
                data,
                net.receivers[0],
                TcpConfig::new(TcpFlavor::NewReno),
            )),
        );
        sim.attach_agent(
            net.receivers[0],
            Box::new(TcpReceiver::new(data, ack, net.senders[0], false, 1000)),
        );
        data
    };
    sim.set_marker(
        net.sender_access[0],
        flow,
        Marker::TokenBucket(TokenBucketMarker::new(g, 20_000)),
    );

    // Pair 1: out-of-profile TCP aggressor (everything marked red).
    let bg = sim.register_flow("bg");
    let bga = sim.register_flow("bg-ack");
    sim.attach_agent(
        net.senders[1],
        Box::new(TcpSender::new(
            bg,
            net.receivers[1],
            TcpConfig::new(TcpFlavor::NewReno),
        )),
    );
    sim.attach_agent(
        net.receivers[1],
        Box::new(TcpReceiver::new(bg, bga, net.senders[1], false, 1000)),
    );
    sim.set_marker(
        net.sender_access[1],
        bg,
        Marker::TokenBucket(TokenBucketMarker::new(Rate::ZERO, 0)),
    );

    sim.run_until(SimTime::from_secs(SECS));
    sim.stats()
        .flow(flow)
        .arrive_series_bps(Duration::from_secs(1))
}

fn main() {
    let g = Rate::from_mbps(4);
    println!("Assured Forwarding class, 10 Mbit/s RIO core, guarantee g = {g}");
    println!("flow under test vs an out-of-profile TCP aggressor\n");
    let qtpaf = run(true, g);
    let tcp = run(false, g);
    println!("  t(s)   QTPAF(Mbit/s)   TCP-with-reservation(Mbit/s)");
    for i in 0..qtpaf.len() {
        println!(
            "  {:>3}    {:>8.2}        {:>8.2}",
            i + 1,
            qtpaf[i] / 1e6,
            tcp[i] / 1e6
        );
    }
    let steady = |xs: &[f64]| xs[10..].iter().sum::<f64>() / (xs.len() - 10) as f64 / 1e6;
    println!(
        "\nsteady-state mean: QTPAF {:.2} Mbit/s vs TCP {:.2} Mbit/s (target 4.00)",
        steady(&qtpaf),
        steady(&tcp)
    );
    println!("QTPAF holds the negotiated rate; TCP cannot — the paper's §4 claim.");
}
