//! Quickstart: open a QTP connection over a simulated lossy path and watch
//! the negotiated transport work.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use qtp::prelude::*;
use std::time::Duration;

fn main() {
    // Build a simple path: server --(10 Mbit/s, 40 ms RTT, 1% loss)-- client.
    let mut b = NetworkBuilder::new();
    let server = b.host();
    let client = b.host();
    b.duplex_link(
        server,
        client,
        LinkConfig::new(Rate::from_mbps(10), Duration::from_millis(20))
            .with_loss(LossModel::bernoulli(0.01)),
    );
    let mut sim = b.build(42);

    // Attach a QTPlight connection (the mobile-receiver profile) and run.
    let h = attach_qtp(
        &mut sim,
        server,
        client,
        "stream",
        qtp_light_sender(),
        QtpReceiverConfig::default(),
    );
    sim.set_sample_interval(Duration::from_secs(1));
    sim.run_until(SimTime::from_secs(20));

    let f = sim.stats().flow(h.data_flow);
    println!("QTPlight over a 10 Mbit/s, 40 ms RTT path with 1% loss");
    println!("------------------------------------------------------");
    println!(
        "goodput:        {:.2} Mbit/s",
        f.goodput_bps(Duration::from_secs(20)) / 1e6
    );
    println!(
        "packets:        {} arrived, {} lost in the network",
        f.pkts_arrived, f.pkts_dropped
    );
    println!(
        "receiver load:  {:.1} ops/packet, peak state {} bytes",
        h.rx.read(|d| d.rx_ops_per_packet()),
        h.rx.read(|d| d.rx_state_bytes_peak)
    );
    println!(
        "sender rtt est: {:.1} ms",
        h.tx.read(|d| d.rtt_estimate_s) * 1e3
    );
    println!("\nthroughput per second (Mbit/s):");
    for (i, bps) in f
        .arrive_series_bps(Duration::from_secs(1))
        .iter()
        .enumerate()
    {
        println!(
            "  t={:>2}s  {:>6.2}  {}",
            i + 1,
            bps / 1e6,
            "#".repeat((bps / 4e5) as usize)
        );
    }
}
