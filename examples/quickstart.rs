//! Quickstart: describe a QTP connection once, run it on two different
//! backends — the deterministic simulator and real UDP sockets — with the
//! *same* application code (`qtp::app::run_and_report`).
//!
//! ```text
//! cargo run --example quickstart
//! ```

use qtp::app::run_and_report;
use qtp::prelude::*;
use std::time::Duration;

fn main() -> std::io::Result<()> {
    // The application's intent, backend-neutral: a QTPlight connection
    // (sender-side loss estimation, light receiver) moving 200 packets,
    // plus a fully-reliable QTPAF connection with a 500 kbit/s floor.
    let plans = [
        ConnectionPlan::new(Profile::qtp_light())
            .label("stream")
            .finite(200),
        ConnectionPlan::new(Profile::qtp_af(Rate::from_kbps(500)))
            .label("bulk")
            .finite(200),
    ];

    // Backend 1: a simulated 10 Mbit/s, 40 ms RTT path with 1% loss.
    println!("same plans, two backends\n");
    let mut sim = SimBackend::isolated(Rate::from_mbps(10), Duration::from_millis(20), 0.01);
    let sim_outcomes = run_and_report(&mut sim, &plans)?;

    // Backend 2: real UDP sockets on loopback, blocking event loop.
    println!();
    let mut udp = UdpBackend::default();
    let udp_outcomes = run_and_report(&mut udp, &plans)?;

    // Negotiation is a pure function of offer × policy, so both backends
    // granted the identical service.
    for (a, b) in sim_outcomes.iter().zip(&udp_outcomes) {
        assert_eq!(
            a.negotiated, b.negotiated,
            "{}: same service granted",
            a.label
        );
    }
    // The reliable connection delivered everything on both.
    assert_eq!(sim_outcomes[1].delivered_bytes, 200 * 1000);
    assert_eq!(udp_outcomes[1].delivered_bytes, 200 * 1000);
    println!("\nOK: identical negotiated service and reliable delivery on both backends");
    Ok(())
}
