//! Motivation experiment (paper §2): rate-based congestion control vs TCP
//! over a bursty wireless channel (Gilbert–Elliott loss), plus the
//! partial-reliability composition: a QTPlight stream that retransmits
//! only frames still young enough to matter.
//!
//! ```text
//! cargo run --example wireless_loss
//! ```

use qtp::prelude::*;
use std::time::Duration;

const SECS: u64 = 40;

fn path(seed: u64) -> (qtp::simnet::sim::Simulator, NodeId, NodeId) {
    let mut b = NetworkBuilder::new();
    let s = b.host();
    let r = b.host();
    b.simplex_link(
        s,
        r,
        LinkConfig::new(Rate::from_mbps(5), Duration::from_millis(20))
            .with_loss(LossModel::gilbert_elliott(0.01, 0.3, 0.0, 0.5))
            .with_queue(QueueConfig::DropTailPkts(200)),
    );
    b.simplex_link(
        r,
        s,
        LinkConfig::new(Rate::from_mbps(5), Duration::from_millis(20)),
    );
    (b.build(seed), s, r)
}

fn main() {
    println!("5 Mbit/s wireless path, Gilbert-Elliott bursty loss (~1.6% average)\n");

    // TCP baseline.
    let (mut sim, s, r) = path(11);
    let data = sim.register_flow("tcp");
    let ack = sim.register_flow("tcp-ack");
    sim.attach_agent(
        s,
        Box::new(TcpSender::new(data, r, TcpConfig::new(TcpFlavor::Sack))),
    );
    sim.attach_agent(r, Box::new(TcpReceiver::new(data, ack, s, true, 1000)));
    sim.run_until(SimTime::from_secs(SECS));
    let tcp_goodput = sim
        .stats()
        .flow(data)
        .goodput_bps(Duration::from_secs(SECS));

    // QTPlight unreliable stream.
    let (mut sim, s, r) = path(11);
    let h = attach_pair(
        &mut sim,
        s,
        r,
        "light",
        &ConnectionPlan::new(Profile::qtp_light()),
    );
    sim.run_until(SimTime::from_secs(SECS));
    let light_goodput = sim
        .stats()
        .flow(h.data_flow)
        .goodput_bps(Duration::from_secs(SECS));

    // QTPlight with 200 ms partial reliability: late frames are abandoned.
    let (mut sim, s, r) = path(11);
    let hp = attach_pair(
        &mut sim,
        s,
        r,
        "partial",
        &ConnectionPlan::new(
            Profile::qtp_light_partial(Duration::from_millis(200)).expect("nonzero TTL"),
        ),
    );
    sim.run_until(SimTime::from_secs(SECS));
    let partial_goodput = sim
        .stats()
        .flow(hp.data_flow)
        .goodput_bps(Duration::from_secs(SECS));
    let pd = hp.tx.snapshot();

    println!("{:<34}{:>12}", "transport", "goodput");
    println!(
        "{:<34}{:>9.2} Mb",
        "TCP SACK (full reliability)",
        tcp_goodput / 1e6
    );
    println!(
        "{:<34}{:>9.2} Mb",
        "QTPlight (no retransmission)",
        light_goodput / 1e6
    );
    println!(
        "{:<34}{:>9.2} Mb   ({} retx, {} frames abandoned)",
        "QTPlight + PartialTtl(200ms)",
        partial_goodput / 1e6,
        pd.tx_retransmissions,
        pd.tx_abandoned
    );
    println!(
        "\nRate-based control rides through loss bursts that implode TCP's window\n\
         (paper §2), and the SACK composition recovers recent frames without\n\
         blocking on stale ones."
    );
}
