//! Motivation experiment (paper §2): rate-based congestion control vs TCP
//! over a bursty wireless channel (Gilbert–Elliott loss), plus the
//! partial-reliability composition: a QTPlight stream that retransmits
//! only frames still young enough to matter.
//!
//! The run logic lives in [`qtp::scenarios::wireless_loss`], shared with
//! the integration test that asserts these headlines
//! (`tests/example_scenarios.rs`); this binary only formats the report.
//!
//! ```text
//! cargo run --example wireless_loss
//! ```

fn main() {
    println!("5 Mbit/s wireless path, Gilbert-Elliott bursty loss (~1.6% average)\n");

    let r = qtp::scenarios::wireless_loss(11, 40);

    println!("{:<34}{:>12}", "transport", "goodput");
    println!(
        "{:<34}{:>9.2} Mb",
        "TCP SACK (full reliability)",
        r.tcp_goodput_bps / 1e6
    );
    println!(
        "{:<34}{:>9.2} Mb",
        "QTPlight (no retransmission)",
        r.light_goodput_bps / 1e6
    );
    println!(
        "{:<34}{:>9.2} Mb   ({} retx, {} frames abandoned)",
        "QTPlight + PartialTtl(200ms)",
        r.partial_goodput_bps / 1e6,
        r.partial_retransmissions,
        r.partial_abandoned
    );
    println!(
        "\nRate-based control rides through loss bursts that implode TCP's window\n\
         (paper §2), and the SACK composition recovers recent frames without\n\
         blocking on stale ones."
    );
}
