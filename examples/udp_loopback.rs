//! Run a QTP connection over *real* UDP sockets on loopback.
//!
//! The same `QtpSender`/`QtpReceiver` state machines that power the
//! discrete-event experiments here negotiate a capability profile and
//! complete a fully reliable transfer between two `std::net::UdpSocket`s
//! on 127.0.0.1, driven by `qtp-io`'s blocking event loop:
//!
//! ```text
//! cargo run --example udp_loopback
//! ```

use qtp::prelude::*;
use std::time::{Duration, Instant};

const PACKETS: u64 = 100;
const PAYLOAD: u64 = 1000;

fn main() -> std::io::Result<()> {
    // Offer the QTPAF profile (gTFRC with a 500 kbit/s floor, full
    // reliability, receiver-side loss estimation) and a finite backlog.
    let mut cfg = qtp_af_sender(Rate::from_kbps(500));
    cfg.app = AppModel::Finite { packets: PACKETS };

    // Receiver side: bind first so the sender knows where to SYN.
    let receiver = QtpReceiver::new(0, 1, 0, QtpReceiverConfig::default(), Probe::new());
    let mut rx = UdpDriver::server(receiver, "127.0.0.1:0")?;
    let peer = rx.local_addr()?;
    println!("receiver listening on {peer}");

    // Sender side. Keep a probe handle to read endpoint-internal
    // measurements after the run, exactly as the simulator experiments do.
    let tx_probe = Probe::new();
    let sender = QtpSender::new(0, 1, cfg, tx_probe.clone());
    let mut tx = UdpDriver::client(sender, "127.0.0.1:0", peer)?;
    println!("sender bound on {}", tx.local_addr()?);

    // Both ends in one thread: alternate short blocking slices until the
    // transfer is complete (every ADU delivered, every ack seen).
    let t0 = Instant::now();
    let done = drive_pair(&mut tx, &mut rx, Duration::from_secs(30), |tx, rx| {
        rx.endpoint().delivered_packets() >= PACKETS && tx.endpoint().all_acked()
    })?;
    assert!(done, "transfer timed out");
    let elapsed = t0.elapsed();

    let chosen = tx
        .endpoint()
        .negotiated()
        .expect("handshake completed, so a profile was chosen");
    println!("negotiated profile: {chosen:?}");
    println!(
        "delivered {} ADUs ({} bytes) in {:.1} ms",
        rx.endpoint().delivered_packets(),
        rx.delivered_bytes(),
        elapsed.as_secs_f64() * 1e3,
    );
    println!(
        "datagrams: {} sent / {} feedback; retransmissions: {}; rtt estimate: {:.3} ms",
        tx.stats().datagrams_sent,
        rx.stats().datagrams_sent,
        tx_probe.read(|d| d.tx_retransmissions),
        tx_probe.read(|d| d.rtt_estimate_s) * 1e3,
    );
    assert_eq!(rx.delivered_bytes(), PACKETS * PAYLOAD);
    println!("OK: reliable transfer over real UDP sockets complete");
    Ok(())
}
