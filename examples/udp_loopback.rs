//! Run a QTP connection over *real* UDP sockets on loopback.
//!
//! The same `ConnectionPlan` the simulator experiments use here
//! negotiates a capability profile and completes a fully reliable
//! transfer between two `std::net::UdpSocket`s on 127.0.0.1, driven by
//! `qtp-io`'s blocking event loop behind the `UdpBackend` seam — through
//! the same shared helper (`qtp::app::run_and_report`) as the quickstart
//! and many-flows examples:
//!
//! ```text
//! cargo run --example udp_loopback
//! ```

use qtp::app::run_and_report;
use qtp::prelude::*;

const PACKETS: u64 = 100;
const PAYLOAD: u64 = 1000;

fn main() -> std::io::Result<()> {
    // Offer the QTPAF profile (gTFRC with a 500 kbit/s floor, full
    // reliability, receiver-side loss estimation) and a finite backlog.
    let plan = ConnectionPlan::new(Profile::qtp_af(Rate::from_kbps(500)))
        .label("af")
        .finite(PACKETS);

    let mut backend = UdpBackend::default();
    let outcomes = run_and_report(&mut backend, std::slice::from_ref(&plan))?;
    let o = &outcomes[0];

    assert!(o.completion_s.is_some(), "transfer timed out");
    let chosen = o
        .negotiated
        .expect("handshake completed, so a profile was chosen");
    println!("\nnegotiated profile: {chosen:?}");
    println!(
        "retransmissions: {}; rtt estimate: {:.3} ms; feedback pkts: {}",
        o.tx.tx_retransmissions,
        o.tx.rtt_estimate_s * 1e3,
        o.rx.rx_feedback_sent,
    );
    assert_eq!(o.delivered_bytes, PACKETS * PAYLOAD);
    // Typed events replace probe-poking for the application-visible facts.
    assert!(o
        .tx_events
        .iter()
        .any(|e| matches!(e, SessionEvent::Connected { .. })));
    println!("OK: reliable transfer over real UDP sockets complete");
    Ok(())
}
