//! Many QTP flows at once — the versatile-transport thesis at scale.
//!
//! The same 64 mixed-capability `ConnectionPlan`s (reliable gTFRC, light,
//! TTL-partial, plain TFRC) run twice through the one shared helper
//! (`qtp::app::run_and_report`):
//!
//! * on the **mux backend** — 64 concurrent connections between ONE
//!   client UDP socket and ONE server UDP socket on loopback, the server
//!   accepting each connection on its first frame and routing datagrams
//!   by `(peer, flow id)`;
//! * on the **sim backend** — the same plans over a shared-bottleneck
//!   dumbbell in the deterministic simulator (the full parameterised
//!   scenario family, up to 1000 flows, lives in `qtp-bench`:
//!   `cargo run --release -p qtp-bench --bin manyflow`).
//!
//! ```text
//! cargo run --example many_flows
//! ```

use qtp::app::run_and_report;
use qtp::prelude::*;
use std::time::Duration;

const FLOWS: usize = 64;
const PACKETS: u64 = 15;
const PAYLOAD: u64 = 1000;

/// Cycle the capability space: reliable gTFRC, light, TTL-partial, plain
/// TFRC — the same mixed workload for every backend.
fn plans() -> Vec<ConnectionPlan> {
    (0..FLOWS)
        .map(|i| {
            let profile = match i % 4 {
                0 => Profile::qtp_af(Rate::from_kbps(300)),
                1 => Profile::qtp_light(),
                2 => Profile::qtp_light_partial(Duration::from_millis(500)).expect("nonzero TTL"),
                _ => Profile::tfrc(),
            };
            ConnectionPlan::new(profile)
                .label(format!("flow{i:02}"))
                .finite(PACKETS)
        })
        .collect()
}

fn main() -> std::io::Result<()> {
    let plans = plans();

    // One socket pair, 64 connections, accept-on-first-frame.
    println!("{FLOWS} mixed-profile connections over ONE socket pair (mux backend)\n");
    let mut mux = MuxBackend::default();
    let mux_outcomes = run_and_report(&mut mux, &plans)?;
    assert!(
        mux_outcomes.iter().all(|o| o.completion_s.is_some()),
        "64-flow mux transfer timed out"
    );
    // Reliable flows delivered everything, over real sockets.
    let af_delivered: u64 = mux_outcomes
        .iter()
        .step_by(4)
        .map(|o| o.delivered_bytes)
        .sum();
    assert_eq!(af_delivered, (FLOWS as u64 / 4) * PACKETS * PAYLOAD);

    // The same plans across a simulated shared bottleneck.
    println!("\nsame plans over a shared 10 Mbit/s dumbbell (sim backend)\n");
    let mut sim = SimBackend::dumbbell(DumbbellConfig {
        bottleneck_rate: Rate::from_mbps(10),
        bottleneck_queue: QueueConfig::DropTailPkts(FLOWS.max(50)),
        ..DumbbellConfig::default()
    })
    .horizon(Duration::from_secs(60));
    let sim_outcomes = run_and_report(&mut sim, &plans)?;
    assert!(sim_outcomes.iter().map(|o| o.delivered_bytes).sum::<u64>() > 0);

    // Whatever carried the bytes, the granted service per flow is the same.
    for (a, b) in mux_outcomes.iter().zip(&sim_outcomes) {
        assert_eq!(a.negotiated, b.negotiated, "{}: same service", a.label);
    }
    println!("\nOK: many-flow mux + sim scenario family complete");
    Ok(())
}
