//! Many QTP flows at once — the versatile-transport thesis at scale.
//!
//! Part 1 runs 64 concurrent fully-reliable QTP connections between ONE
//! client UDP socket and ONE server UDP socket on loopback, using the
//! connection multiplexer (`qtp_io::mux`): the server accepts each
//! connection on its first frame, routes datagrams by `(peer, flow id)`,
//! and reaps the connections once they fall idle.
//!
//! Part 2 runs a mixed-capability 32-flow dumbbell in the deterministic
//! simulator and reports per-profile goodput plus the Jain fairness index
//! (the full parameterised scenario family, up to 1000 flows, lives in
//! `qtp-bench`: `cargo run --release -p qtp-bench --bin manyflow`).
//!
//! ```text
//! cargo run --example many_flows
//! ```

use qtp::prelude::*;
use std::time::{Duration, Instant};

const FLOWS: u32 = 64;
const PACKETS: u64 = 15;
const PAYLOAD: u64 = 1000;

fn main() -> std::io::Result<()> {
    mux_part()?;
    sim_part();
    Ok(())
}

/// One socket pair, 64 reliable connections, accept-on-first-frame.
fn mux_part() -> std::io::Result<()> {
    let mut server: MuxDriver<QtpReceiver> = MuxDriver::bind("127.0.0.1:0")?;
    server.set_acceptor(|peer, frame| {
        // Convention: connection i owns data flow 2i and feedback 2i+1.
        if frame.flow % 2 != 0 {
            return None;
        }
        let _ = peer; // routing is per (peer, flow); any peer may connect
        Some(Accepted {
            endpoint: QtpReceiver::new(
                frame.flow,
                frame.flow + 1,
                0,
                QtpReceiverConfig::default(),
                Probe::new(),
            ),
            flows: vec![frame.flow, frame.flow + 1],
        })
    });
    let server_addr = server.local_addr()?;
    println!("server mux listening on {server_addr}");

    let mut client: MuxDriver<QtpSender> = MuxDriver::bind("127.0.0.1:0")?;
    let mut conns = Vec::new();
    for i in 0..FLOWS {
        let mut cfg = qtp_af_sender(Rate::from_kbps(500));
        cfg.app = AppModel::Finite { packets: PACKETS };
        let data = 2 * i;
        let sender = QtpSender::new(data, 0, cfg, Probe::new());
        conns.push(client.add_connection(server_addr, vec![data, data + 1], sender)?);
    }
    println!(
        "client mux on {} carrying {} connections",
        client.local_addr()?,
        client.conn_count()
    );

    let t0 = Instant::now();
    let done = drive_mux_pair(&mut client, &mut server, Duration::from_secs(60), |c, _| {
        conns.iter().all(|id| {
            let tx = c.endpoint(*id).unwrap();
            tx.sent_new() == PACKETS && tx.all_acked()
        })
    })?;
    assert!(done, "64-flow transfer timed out");
    let elapsed = t0.elapsed();

    let delivered: u64 = server
        .conn_ids()
        .iter()
        .map(|id| server.conn_stats(*id).unwrap().delivered_bytes)
        .sum();
    println!(
        "{} connections negotiated + delivered {} bytes reliably in {:.1} ms",
        server.conn_count(),
        delivered,
        elapsed.as_secs_f64() * 1e3,
    );
    println!(
        "server socket: {} datagrams in / {} out, {} accepts, {} timers",
        server.stats().datagrams_received,
        server.stats().datagrams_sent,
        server.stats().conns_accepted,
        server.stats().timers_fired,
    );
    assert_eq!(delivered, u64::from(FLOWS) * PACKETS * PAYLOAD);

    // Lifecycle tail: once idle, the reaper clears all server state.
    std::thread::sleep(Duration::from_millis(20));
    let reaped = server.reap_stale(Duration::from_millis(10));
    println!(
        "reaped {} idle connections; {} remain",
        reaped.len(),
        server.conn_count()
    );
    assert_eq!(server.conn_count(), 0);
    Ok(())
}

/// Mixed-profile dumbbell in the simulator, with a fairness headline.
fn sim_part() {
    const N: usize = 32;
    let (mut sim, net) = Dumbbell::build(
        &DumbbellConfig {
            pairs: N,
            bottleneck_rate: Rate::from_mbps(10),
            bottleneck_queue: QueueConfig::DropTailPkts(N.max(50)),
            ..DumbbellConfig::default()
        },
        42,
    );
    let mut handles = Vec::new();
    for i in 0..N {
        // Cycle the capability space: reliable gTFRC, light, TTL-partial,
        // plain TFRC — all sharing one bottleneck.
        let mut cfg = match i % 4 {
            0 => qtp_af_sender(Rate::from_kbps(300)),
            1 => qtp_light_sender(),
            2 => qtp_light_partial_sender(Duration::from_millis(500)),
            _ => qtp_standard_sender(),
        };
        cfg.app = AppModel::Finite { packets: 40 };
        handles.push(attach_qtp(
            &mut sim,
            net.senders[i],
            net.receivers[i],
            &format!("flow{i:02}"),
            cfg,
            QtpReceiverConfig::default(),
        ));
    }
    let horizon = SimTime::from_secs(30);
    sim.run_until(horizon);

    let goodputs: Vec<f64> = handles
        .iter()
        .map(|h| {
            sim.stats()
                .flow(h.data_flow)
                .goodput_bps(Duration::from_secs(30))
        })
        .collect();
    let delivered: u64 = handles
        .iter()
        .map(|h| sim.stats().flow(h.data_flow).bytes_app_delivered)
        .sum();
    println!(
        "\nsim dumbbell: {} mixed-profile flows delivered {} bytes, jain fairness {:.4}",
        N,
        delivered,
        jain_index(&goodputs),
    );
    assert!(delivered > 0);
    println!("OK: many-flow mux + sim scenario family complete");
}
