//! The discrete-event engine: topology, routing, agents and the event loop.
//!
//! # Model
//!
//! A network is a set of **nodes** (hosts or routers) connected by simplex
//! [`Link`]s. Hosts run an [`Agent`] — a sans-io state machine that reacts
//! to packet arrivals and timers and emits send/timer commands through a
//! [`Ctx`]. Routers forward using static shortest-path routes computed at
//! build time.
//!
//! Determinism: events execute in `(time, insertion sequence)` order and all
//! randomness flows from per-component [`DetRng`] streams derived from the
//! master seed, so a simulation is a pure function of (topology, agents,
//! seed) — the property test in `tests/determinism.rs` checks exactly this.
//!
//! # Timers
//!
//! Timers are fire-and-forget: `set_timer_in(d, token)` schedules a wakeup
//! that cannot be cancelled. Agents that re-arm timers should carry a
//! generation counter in their state and ignore stale tokens; the transports
//! built on this simulator all follow that pattern (the QTP endpoints share
//! it as `qtp_core::driver::TimerGens`, which encodes `kind | (gen << 2)`
//! tokens and rejects superseded generations).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Duration;

use crate::link::{Link, LinkConfig};
use crate::packet::{FlowId, LinkId, NodeId, Packet};
use crate::queue::DropReason;
use crate::rng::DetRng;
use crate::stats::Stats;
use crate::time::SimTime;
use crate::trace::{TraceEvent, TraceSink};

/// What a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// Endpoint: runs an agent; receives packets addressed to it.
    Host,
    /// Interior: forwards packets toward their destination.
    Router,
}

/// A node in the topology.
#[derive(Debug)]
pub struct Node {
    /// Own id (index into the simulator's node table).
    pub id: NodeId,
    /// Host or router.
    pub kind: NodeKind,
    /// `next_hop[dst]` is the outgoing link toward `dst`, if reachable.
    pub(crate) next_hop: Vec<Option<LinkId>>,
}

/// The execution context handed to agents. Commands are buffered and applied
/// by the simulator after the callback returns.
pub struct Ctx<'a> {
    /// Current virtual time.
    pub now: SimTime,
    /// The node this agent runs on.
    pub node: NodeId,
    /// Measurement sink (agents report application-level delivery here).
    pub stats: &'a mut Stats,
    /// This node's private random stream.
    pub rng: &'a mut DetRng,
    uid_counter: &'a mut u64,
    cmds: Vec<Cmd>,
}

enum Cmd {
    Send(Packet),
    Timer { at: SimTime, token: u64 },
}

impl<'a> Ctx<'a> {
    /// Send a fully-formed packet (advanced use; normally use
    /// [`Ctx::send_new`]).
    pub fn send(&mut self, pkt: Packet) {
        self.cmds.push(Cmd::Send(pkt));
    }

    /// Build and send a packet from this node.
    ///
    /// `wire_size` is the total on-wire size (transport header + payload);
    /// `header` is the encoded transport header.
    pub fn send_new(&mut self, flow: FlowId, dst: NodeId, wire_size: u32, header: Vec<u8>) {
        *self.uid_counter += 1;
        let pkt = Packet::new(
            *self.uid_counter,
            flow,
            self.node,
            dst,
            wire_size,
            self.now,
            header,
        );
        self.cmds.push(Cmd::Send(pkt));
    }

    /// Schedule a wakeup at an absolute time.
    pub fn set_timer_at(&mut self, at: SimTime, token: u64) {
        self.cmds.push(Cmd::Timer { at, token });
    }

    /// Schedule a wakeup `d` from now.
    pub fn set_timer_in(&mut self, d: Duration, token: u64) {
        let at = self.now + d;
        self.cmds.push(Cmd::Timer { at, token });
    }
}

/// A protocol endpoint or traffic source attached to a host node.
///
/// All methods receive the [`Ctx`] for the node at the current instant.
pub trait Agent {
    /// Called once when the simulation starts.
    fn on_start(&mut self, _ctx: &mut Ctx) {}
    /// Called when a packet addressed to this node arrives.
    fn on_packet(&mut self, _ctx: &mut Ctx, _pkt: Packet) {}
    /// Called when a timer set by this agent fires.
    fn on_timer(&mut self, _ctx: &mut Ctx, _token: u64) {}
}

#[derive(Debug)]
enum EventKind {
    Arrival { node: NodeId, pkt: Packet },
    TxComplete { link: LinkId },
    Timer { node: NodeId, token: u64 },
    Sample,
}

struct Event {
    at: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Builds a topology, then turns it into a runnable [`Simulator`].
pub struct NetworkBuilder {
    nodes: Vec<NodeKind>,
    links: Vec<(NodeId, NodeId, LinkConfig)>,
}

impl NetworkBuilder {
    pub fn new() -> Self {
        NetworkBuilder {
            nodes: Vec::new(),
            links: Vec::new(),
        }
    }

    /// Add an endpoint node.
    pub fn host(&mut self) -> NodeId {
        self.nodes.push(NodeKind::Host);
        self.nodes.len() - 1
    }

    /// Add a forwarding node.
    pub fn router(&mut self) -> NodeId {
        self.nodes.push(NodeKind::Router);
        self.nodes.len() - 1
    }

    /// Add a simplex link from `a` to `b`. Returns its id.
    pub fn simplex_link(&mut self, a: NodeId, b: NodeId, cfg: LinkConfig) -> LinkId {
        assert!(a < self.nodes.len() && b < self.nodes.len(), "unknown node");
        assert_ne!(a, b, "self-links are not allowed");
        self.links.push((a, b, cfg));
        self.links.len() - 1
    }

    /// Add a duplex link (two simplex links with the same configuration).
    /// Returns `(a→b, b→a)` link ids.
    pub fn duplex_link(&mut self, a: NodeId, b: NodeId, cfg: LinkConfig) -> (LinkId, LinkId) {
        let ab = self.simplex_link(a, b, cfg.clone());
        let ba = self.simplex_link(b, a, cfg);
        (ab, ba)
    }

    /// Finalize: compute routes and produce a simulator.
    ///
    /// Routes are shortest-path by hop count (BFS per destination), with the
    /// lowest-numbered link breaking ties, so routing is deterministic.
    pub fn build(self, master_seed: u64) -> Simulator {
        let n = self.nodes.len();
        // adjacency: for each node, outgoing (link, to) in insertion order.
        let mut adj: Vec<Vec<(LinkId, NodeId)>> = vec![Vec::new(); n];
        for (id, (a, b, _)) in self.links.iter().enumerate() {
            adj[*a].push((id, *b));
        }
        let mut nodes: Vec<Node> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(id, kind)| Node {
                id,
                kind: *kind,
                next_hop: vec![None; n],
            })
            .collect();
        // BFS from each destination over reversed edges to fill next_hop.
        for dst in 0..n {
            let mut dist = vec![usize::MAX; n];
            dist[dst] = 0;
            let mut frontier = std::collections::VecDeque::new();
            frontier.push_back(dst);
            while let Some(v) = frontier.pop_front() {
                // For each link u -> v, u can reach dst through it.
                for (id, (a, b, _)) in self.links.iter().enumerate() {
                    if *b == v && dist[*a] == usize::MAX {
                        dist[*a] = dist[v] + 1;
                        nodes[*a].next_hop[dst] = Some(id);
                        frontier.push_back(*a);
                    } else if *b == v && dist[*a] == dist[v] + 1 {
                        // Tie: keep the lowest link id for determinism.
                        if let Some(cur) = nodes[*a].next_hop[dst] {
                            if id < cur {
                                nodes[*a].next_hop[dst] = Some(id);
                            }
                        }
                    }
                }
            }
        }
        let mut stats = Stats::new();
        let links: Vec<Link> = self
            .links
            .iter()
            .enumerate()
            .map(|(id, (a, b, cfg))| {
                stats.register_link();
                Link::new(id, *a, *b, cfg, master_seed)
            })
            .collect();
        let node_rngs = (0..n)
            .map(|i| DetRng::stream(master_seed, 0x40DE ^ i as u64))
            .collect();
        let agents = (0..n).map(|_| None).collect();
        Simulator {
            now: SimTime::ZERO,
            seq: 0,
            events: BinaryHeap::new(),
            nodes,
            links,
            agents,
            node_rngs,
            stats,
            uid_counter: 0,
            trace: None,
            sample_interval: None,
            started: false,
        }
    }
}

impl Default for NetworkBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// The discrete-event simulator.
pub struct Simulator {
    now: SimTime,
    seq: u64,
    events: BinaryHeap<Reverse<Event>>,
    nodes: Vec<Node>,
    links: Vec<Link>,
    agents: Vec<Option<Box<dyn Agent>>>,
    node_rngs: Vec<DetRng>,
    stats: Stats,
    uid_counter: u64,
    trace: Option<TraceSink>,
    sample_interval: Option<Duration>,
    started: bool,
}

impl Simulator {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The measurement sink.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Mutable access to measurements (e.g. to reset between phases).
    pub fn stats_mut(&mut self) -> &mut Stats {
        &mut self.stats
    }

    /// Register a flow for statistics; returns the id packets must carry.
    pub fn register_flow(&mut self, name: &str) -> FlowId {
        self.stats.register_flow(name.to_string())
    }

    /// Attach the agent that runs on `node`. Replaces any previous agent.
    pub fn attach_agent(&mut self, node: NodeId, agent: Box<dyn Agent>) {
        assert_eq!(
            self.nodes[node].kind,
            NodeKind::Host,
            "agents attach to hosts"
        );
        self.agents[node] = Some(agent);
    }

    /// Install a per-flow traffic conditioner at a link's ingress.
    pub fn set_marker(&mut self, link: LinkId, flow: FlowId, marker: crate::marker::Marker) {
        self.links[link].set_marker(flow, marker);
    }

    /// Enable periodic statistics sampling (throughput series).
    pub fn set_sample_interval(&mut self, interval: Duration) {
        self.sample_interval = Some(interval);
        self.stats.sample_interval = Some(interval);
    }

    /// Install a trace sink receiving every packet event.
    pub fn set_trace(&mut self, sink: TraceSink) {
        self.trace = Some(sink);
    }

    /// Direct read access to a link (queue occupancy etc.).
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id]
    }

    fn push_event(&mut self, at: SimTime, kind: EventKind) {
        self.seq += 1;
        self.events.push(Reverse(Event {
            at,
            seq: self.seq,
            kind,
        }));
    }

    fn trace_emit(&mut self, ev: TraceEvent) {
        if let Some(sink) = &mut self.trace {
            sink(&ev);
        }
    }

    /// Invoke one agent callback with a fresh `Ctx`, then apply its commands.
    fn with_agent<F>(&mut self, node: NodeId, f: F)
    where
        F: FnOnce(&mut dyn Agent, &mut Ctx),
    {
        let Some(mut agent) = self.agents[node].take() else {
            return;
        };
        let mut ctx = Ctx {
            now: self.now,
            node,
            stats: &mut self.stats,
            rng: &mut self.node_rngs[node],
            uid_counter: &mut self.uid_counter,
            cmds: Vec::new(),
        };
        f(agent.as_mut(), &mut ctx);
        let cmds = std::mem::take(&mut ctx.cmds);
        self.agents[node] = Some(agent);
        for cmd in cmds {
            match cmd {
                Cmd::Send(pkt) => self.inject(node, pkt),
                Cmd::Timer { at, token } => self.push_event(at, EventKind::Timer { node, token }),
            }
        }
    }

    /// A source node hands a packet to the network.
    fn inject(&mut self, node: NodeId, pkt: Packet) {
        self.stats.on_send(&pkt);
        self.trace_emit(TraceEvent::Send {
            at: self.now,
            node,
            flow: pkt.flow,
            uid: pkt.uid,
            size: pkt.wire_size,
        });
        self.forward(node, pkt);
    }

    /// Route a packet from `node` one hop toward its destination.
    fn forward(&mut self, node: NodeId, pkt: Packet) {
        if pkt.dst == node {
            // Degenerate loopback: deliver immediately.
            self.deliver(node, pkt);
            return;
        }
        match self.nodes[node].next_hop[pkt.dst] {
            Some(link) => self.transmit_on(link, pkt),
            None => self.stats.on_no_route(pkt.flow),
        }
    }

    /// Offer a packet to a link's conditioner + queue, and kick the
    /// serializer if idle.
    fn transmit_on(&mut self, link_id: LinkId, mut pkt: Packet) {
        let now = self.now;
        let link = &mut self.links[link_id];
        if let Some(marker) = link.markers.get_mut(&pkt.flow) {
            marker.mark(now, &mut pkt);
        }
        let color = pkt.color;
        let flow = pkt.flow;
        let uid = pkt.uid;
        let wire_size = pkt.wire_size;
        match link.queue.enqueue(now, pkt, &mut link.rng) {
            Err((dropped, reason)) => {
                self.stats.on_drop(link_id, &dropped, reason);
                self.trace_emit(TraceEvent::Drop {
                    at: now,
                    link: link_id,
                    flow,
                    uid,
                    color,
                    reason,
                });
            }
            Ok(()) => {
                let qlen = self.links[link_id].queue.len_pkts();
                self.stats.on_enqueue(link_id, color, wire_size);
                self.trace_emit(TraceEvent::Enqueue {
                    at: now,
                    link: link_id,
                    flow,
                    uid,
                    color,
                    queue_len: qlen,
                });
                if !self.links[link_id].transmitting {
                    self.start_tx(link_id);
                }
            }
        }
    }

    /// Begin serializing the next queued packet, if any.
    fn start_tx(&mut self, link_id: LinkId) {
        let now = self.now;
        let link = &mut self.links[link_id];
        let Some(pkt) = link.queue.dequeue(now) else {
            link.transmitting = false;
            return;
        };
        let tx = link.rate.tx_time(pkt.wire_size);
        link.transmitting = true;
        link.in_flight = Some(pkt);
        self.push_event(now + tx, EventKind::TxComplete { link: link_id });
    }

    /// Serialization finished: launch the packet into propagation (unless
    /// the loss model eats it) and start the next transmission.
    fn on_tx_complete(&mut self, link_id: LinkId) {
        let link = &mut self.links[link_id];
        let pkt = link
            .in_flight
            .take()
            .expect("TxComplete without in-flight packet");
        let lost = link.loss.is_lost(&mut link.rng);
        let delay = link.delay;
        let to = link.to;
        self.stats.on_transmit(link_id);
        if lost {
            let (flow, uid, color) = (pkt.flow, pkt.uid, pkt.color);
            self.stats.on_drop(link_id, &pkt, DropReason::LinkLoss);
            self.trace_emit(TraceEvent::Drop {
                at: self.now,
                link: link_id,
                flow,
                uid,
                color,
                reason: DropReason::LinkLoss,
            });
        } else {
            let at = self.now + delay;
            self.push_event(at, EventKind::Arrival { node: to, pkt });
        }
        self.start_tx(link_id);
    }

    /// A packet arrived at `node` after propagation.
    fn on_arrival(&mut self, node: NodeId, pkt: Packet) {
        if pkt.dst == node {
            self.deliver(node, pkt);
        } else {
            self.forward(node, pkt);
        }
    }

    fn deliver(&mut self, node: NodeId, pkt: Packet) {
        self.stats.on_arrive(self.now, &pkt);
        self.trace_emit(TraceEvent::Deliver {
            at: self.now,
            node,
            flow: pkt.flow,
            uid: pkt.uid,
        });
        self.with_agent(node, |agent, ctx| agent.on_packet(ctx, pkt));
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        if let Some(interval) = self.sample_interval {
            self.push_event(SimTime::ZERO + interval, EventKind::Sample);
        }
        for node in 0..self.nodes.len() {
            self.with_agent(node, |agent, ctx| agent.on_start(ctx));
        }
    }

    /// Run until virtual time `t` (inclusive of events at `t`).
    pub fn run_until(&mut self, t: SimTime) {
        self.start_if_needed();
        while let Some(Reverse(ev)) = self.events.peek() {
            if ev.at > t {
                break;
            }
            let Reverse(ev) = self.events.pop().unwrap();
            debug_assert!(ev.at >= self.now, "event time went backwards");
            self.now = ev.at;
            match ev.kind {
                EventKind::Arrival { node, pkt } => self.on_arrival(node, pkt),
                EventKind::TxComplete { link } => self.on_tx_complete(link),
                EventKind::Timer { node, token } => {
                    self.with_agent(node, |agent, ctx| agent.on_timer(ctx, token))
                }
                EventKind::Sample => {
                    self.stats.sample_tick();
                    if let Some(interval) = self.sample_interval {
                        let at = self.now + interval;
                        self.push_event(at, EventKind::Sample);
                    }
                }
            }
        }
        self.now = t;
    }

    /// Run for a span of virtual time from the current instant.
    pub fn run_for(&mut self, d: Duration) {
        let t = self.now + d;
        self.run_until(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Rate;

    /// Sends `n` packets of `size` bytes, `gap` apart, starting at t=0.
    struct Blaster {
        flow: FlowId,
        dst: NodeId,
        n: u32,
        size: u32,
        gap: Duration,
        sent: u32,
    }

    impl Agent for Blaster {
        fn on_start(&mut self, ctx: &mut Ctx) {
            ctx.set_timer_in(Duration::ZERO, 0);
        }
        fn on_timer(&mut self, ctx: &mut Ctx, _token: u64) {
            if self.sent < self.n {
                ctx.send_new(self.flow, self.dst, self.size, Vec::new());
                self.sent += 1;
                ctx.set_timer_in(self.gap, 0);
            }
        }
    }

    /// Records arrival times.
    struct Recorder {
        arrivals: std::rc::Rc<std::cell::RefCell<Vec<SimTime>>>,
    }

    impl Agent for Recorder {
        fn on_packet(&mut self, ctx: &mut Ctx, _pkt: Packet) {
            self.arrivals.borrow_mut().push(ctx.now);
        }
    }

    fn two_hosts(rate: Rate, delay: Duration) -> (Simulator, NodeId, NodeId) {
        let mut b = NetworkBuilder::new();
        let a = b.host();
        let c = b.host();
        b.duplex_link(a, c, LinkConfig::new(rate, delay));
        (b.build(1), a, c)
    }

    #[test]
    fn single_packet_latency_is_tx_plus_prop() {
        let (mut sim, a, c) = two_hosts(Rate::from_mbps(10), Duration::from_millis(5));
        let flow = sim.register_flow("f");
        let arrivals = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        sim.attach_agent(
            a,
            Box::new(Blaster {
                flow,
                dst: c,
                n: 1,
                size: 1250,
                gap: Duration::from_millis(1),
                sent: 0,
            }),
        );
        sim.attach_agent(
            c,
            Box::new(Recorder {
                arrivals: arrivals.clone(),
            }),
        );
        sim.run_until(SimTime::from_secs(1));
        // 1250 B at 10 Mbit/s = 1 ms tx, + 5 ms prop = 6 ms.
        assert_eq!(arrivals.borrow().as_slice(), &[SimTime::from_millis(6)]);
        assert_eq!(sim.stats().flow(flow).pkts_arrived, 1);
    }

    #[test]
    fn serialization_spaces_back_to_back_packets() {
        let (mut sim, a, c) = two_hosts(Rate::from_mbps(10), Duration::from_millis(5));
        let flow = sim.register_flow("f");
        let arrivals = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        sim.attach_agent(
            a,
            Box::new(Blaster {
                flow,
                dst: c,
                n: 3,
                size: 1250,
                gap: Duration::ZERO, // all at t=0: queue at the link
                sent: 0,
            }),
        );
        sim.attach_agent(
            c,
            Box::new(Recorder {
                arrivals: arrivals.clone(),
            }),
        );
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(
            arrivals.borrow().as_slice(),
            &[
                SimTime::from_millis(6),
                SimTime::from_millis(7),
                SimTime::from_millis(8)
            ],
            "packets serialize 1 ms apart"
        );
    }

    #[test]
    fn router_forwards_between_hosts() {
        let mut b = NetworkBuilder::new();
        let a = b.host();
        let r = b.router();
        let c = b.host();
        b.duplex_link(
            a,
            r,
            LinkConfig::new(Rate::from_mbps(10), Duration::from_millis(1)),
        );
        b.duplex_link(
            r,
            c,
            LinkConfig::new(Rate::from_mbps(10), Duration::from_millis(1)),
        );
        let mut sim = b.build(7);
        let flow = sim.register_flow("f");
        let arrivals = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        sim.attach_agent(
            a,
            Box::new(Blaster {
                flow,
                dst: c,
                n: 1,
                size: 1250,
                gap: Duration::ZERO,
                sent: 0,
            }),
        );
        sim.attach_agent(
            c,
            Box::new(Recorder {
                arrivals: arrivals.clone(),
            }),
        );
        sim.run_until(SimTime::from_secs(1));
        // two hops: 2 * (1 ms tx + 1 ms prop) = 4 ms.
        assert_eq!(arrivals.borrow().as_slice(), &[SimTime::from_millis(4)]);
    }

    #[test]
    fn droptail_queue_overflows_under_burst() {
        let mut b = NetworkBuilder::new();
        let a = b.host();
        let c = b.host();
        b.simplex_link(
            a,
            c,
            LinkConfig::new(Rate::from_kbps(100), Duration::from_millis(1))
                .with_queue(crate::queue::QueueConfig::DropTailPkts(5)),
        );
        let mut sim = b.build(3);
        let flow = sim.register_flow("f");
        sim.attach_agent(
            a,
            Box::new(Blaster {
                flow,
                dst: c,
                n: 50,
                size: 1250,
                gap: Duration::ZERO,
                sent: 0,
            }),
        );
        sim.run_until(SimTime::from_secs(30));
        let f = sim.stats().flow(flow);
        // 1 in flight + 5 queued survive the burst of 50.
        assert_eq!(f.pkts_arrived, 6);
        assert_eq!(f.pkts_dropped, 44);
    }

    #[test]
    fn link_loss_model_drops_packets() {
        let mut b = NetworkBuilder::new();
        let a = b.host();
        let c = b.host();
        b.simplex_link(
            a,
            c,
            LinkConfig::new(Rate::from_mbps(10), Duration::from_millis(1))
                .with_loss(crate::loss::LossModel::periodic(2)),
        );
        let mut sim = b.build(3);
        let flow = sim.register_flow("f");
        sim.attach_agent(
            a,
            Box::new(Blaster {
                flow,
                dst: c,
                n: 10,
                size: 100,
                gap: Duration::from_millis(10),
                sent: 0,
            }),
        );
        sim.run_until(SimTime::from_secs(1));
        let f = sim.stats().flow(flow);
        assert_eq!(f.pkts_arrived, 5);
        assert_eq!(f.pkts_dropped, 5);
    }

    #[test]
    fn sampling_produces_series() {
        let (mut sim, a, c) = two_hosts(Rate::from_mbps(10), Duration::from_millis(1));
        let flow = sim.register_flow("f");
        sim.set_sample_interval(Duration::from_millis(100));
        sim.attach_agent(
            a,
            Box::new(Blaster {
                flow,
                dst: c,
                n: 100,
                size: 1250,
                gap: Duration::from_millis(10),
                sent: 0,
            }),
        );
        sim.run_until(SimTime::from_secs(2));
        let series = &sim.stats().flow(flow).arrive_series;
        assert_eq!(series.len(), 20);
        // Flow sends 1250 B per 10 ms for 1 s -> 12_500 B per 100 ms window.
        assert!(series[..9].iter().all(|&b| (12_000..=13_000).contains(&b)));
        assert!(
            series[12..].iter().all(|&b| b == 0),
            "source stopped at 1 s"
        );
    }

    #[test]
    fn determinism_same_seed_same_outcome() {
        fn run(seed: u64) -> (u64, u64) {
            let mut b = NetworkBuilder::new();
            let a = b.host();
            let c = b.host();
            b.simplex_link(
                a,
                c,
                LinkConfig::new(Rate::from_mbps(1), Duration::from_millis(1))
                    .with_loss(crate::loss::LossModel::bernoulli(0.3)),
            );
            let mut sim = b.build(seed);
            let flow = sim.register_flow("f");
            sim.attach_agent(
                a,
                Box::new(Blaster {
                    flow,
                    dst: c,
                    n: 1000,
                    size: 500,
                    gap: Duration::from_millis(1),
                    sent: 0,
                }),
            );
            sim.run_until(SimTime::from_secs(5));
            let f = sim.stats().flow(flow);
            (f.pkts_arrived, f.pkts_dropped)
        }
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).0, run(43).0, "different seeds should differ here");
    }

    #[test]
    #[should_panic(expected = "agents attach to hosts")]
    fn cannot_attach_agent_to_router() {
        let mut b = NetworkBuilder::new();
        let _a = b.host();
        let r = b.router();
        let c = b.host();
        b.duplex_link(_a, r, LinkConfig::new(Rate::from_mbps(1), Duration::ZERO));
        b.duplex_link(r, c, LinkConfig::new(Rate::from_mbps(1), Duration::ZERO));
        let mut sim = b.build(1);
        struct Noop;
        impl Agent for Noop {}
        sim.attach_agent(r, Box::new(Noop));
    }
}
