//! The discrete-event engine: topology, routing, agents and the event loop.
//!
//! # Model
//!
//! A network is a set of **nodes** (hosts or routers) connected by simplex
//! [`Link`]s. Hosts run an [`Agent`] — a sans-io state machine that reacts
//! to packet arrivals and timers and emits send/timer commands through a
//! [`Ctx`]. Routers forward using static shortest-path routes computed at
//! build time.
//!
//! Determinism: events execute in `(time, insertion sequence)` order and all
//! randomness flows from per-component [`DetRng`] streams derived from the
//! master seed, so a simulation is a pure function of (topology, agents,
//! seed) — the property test in `tests/determinism.rs` checks exactly this.
//!
//! # Scaling design
//!
//! The hot path is built for 10^5-flow runs:
//!
//! * Packets live in a [`PacketArena`]; events, queues and links pass 4-byte
//!   [`PacketId`]s. A packet's slot (and its header buffer) is recycled at
//!   delivery, drop, or routing failure.
//! * The scheduler is a [`CalendarQueue`] — amortized O(1) push/pop instead
//!   of an O(log n) global heap — popping in exactly the same `(time, seq)`
//!   order, so fixed-seed outputs are byte-identical to the old heap.
//! * Routes use pendant compression: hosts that hang off a single router
//!   (every host in a dumbbell) share their router's routing row, so route
//!   construction and storage are near-linear in nodes + links instead of
//!   the O(V·E) per destination a dense table costs. The compression is
//!   exact — `routes_match_reference_bfs` checks it against the plain
//!   per-destination BFS on randomized topologies.
//!
//! # Timers
//!
//! Timers are fire-and-forget: `set_timer_in(d, token)` schedules a wakeup
//! that cannot be cancelled. Agents that re-arm timers should carry a
//! generation counter in their state and ignore stale tokens; the transports
//! built on this simulator all follow that pattern (the QTP endpoints share
//! it as `qtp_core::driver::TimerGens`, which encodes `kind | (gen << 2)`
//! tokens and rejects superseded generations).

use std::time::Duration;

use crate::arena::{PacketArena, PacketId};
use crate::calendar::CalendarQueue;
use crate::link::{Link, LinkConfig};
use crate::packet::{FlowId, LinkId, NodeId, Packet, QueuedPacket};
use crate::queue::DropReason;
use crate::rng::DetRng;
use crate::stats::Stats;
use crate::time::SimTime;
use crate::trace::{TraceEvent, TraceSink};

/// What a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// Endpoint: runs an agent; receives packets addressed to it.
    Host,
    /// Interior: forwards packets toward their destination.
    Router,
}

/// A node in the topology.
#[derive(Debug)]
pub struct Node {
    /// Own id (index into the simulator's node table).
    pub id: NodeId,
    /// Host or router.
    pub kind: NodeKind,
}

/// Static routing tables, stored compressed.
///
/// A **pendant** is a node all of whose links (in and out) connect to one
/// neighbor, its *representative*. Pendants never transit traffic — any
/// walk through one goes representative → pendant → representative and can
/// be shortened — so shortest-path routing only needs real tables for the
/// **core** (every non-pendant node):
///
/// * `route(n, pendant d)` = `route(n, rep(d))`, and at `rep(d)` the next
///   hop is the lowest-id direct link to `d`.
/// * `route(pendant h, t)` = `h`'s lowest-id uplink, iff `t` is reachable
///   from `rep(h)`.
///
/// When two nodes are *only* connected to each other, each qualifies as the
/// other's pendant; the higher id becomes the pendant so the pair still has
/// a core member. In a dumbbell with 10^5 host pairs the core is just the
/// two routers: building routes is one scan of the links plus a BFS over a
/// 2-node core graph, versus the old dense table's O(V·E) per destination.
///
/// Tie-breaking matches the reference BFS exactly: among links leaving `n`
/// toward any node one hop closer to the destination, the lowest link id
/// wins (checked property-style in the tests).
pub(crate) struct Routes {
    /// Core representative per node (self for core nodes).
    rep: Vec<NodeId>,
    /// Pendant → lowest-id link to its representative.
    uplink: Vec<Option<LinkId>>,
    /// Pendant → lowest-id link *from* its representative.
    downlink: Vec<Option<LinkId>>,
    /// Dense index into the core tables (`u32::MAX` for pendants).
    core_index: Vec<u32>,
    core_count: usize,
    /// `core_next[i * core_count + j]`: next link from core `i` toward
    /// core `j` (`None` when unreachable or `i == j`).
    core_next: Vec<Option<LinkId>>,
}

impl Routes {
    fn build(n: usize, links: &[(NodeId, NodeId, LinkConfig)]) -> Routes {
        // Pass 1: one-distinct-neighbor summary per node.
        let mut nbr: Vec<Option<NodeId>> = vec![None; n];
        let mut multi = vec![false; n];
        let note =
            |x: usize, y: usize, nbr: &mut Vec<Option<NodeId>>, multi: &mut Vec<bool>| match nbr[x]
            {
                None => nbr[x] = Some(y),
                Some(p) if p != y => multi[x] = true,
                _ => {}
            };
        for &(a, b, _) in links {
            note(a, b, &mut nbr, &mut multi);
            note(b, a, &mut nbr, &mut multi);
        }
        // Pass 2: classify. For a mutually-exclusive pair (two nodes linked
        // only to each other) the higher id is the pendant.
        let mut rep: Vec<NodeId> = (0..n).collect();
        for h in 0..n {
            if multi[h] {
                continue;
            }
            let Some(r) = nbr[h] else { continue };
            let mutual = !multi[r] && nbr[r] == Some(h);
            if !mutual || h > r {
                rep[h] = r;
            }
        }
        // Pass 3: pendant up/down links and the core node list.
        let mut uplink: Vec<Option<LinkId>> = vec![None; n];
        let mut downlink: Vec<Option<LinkId>> = vec![None; n];
        for (id, &(a, b, _)) in links.iter().enumerate() {
            if rep[a] != a && b == rep[a] && uplink[a].is_none() {
                uplink[a] = Some(id); // first hit is the lowest id
            }
            if rep[b] != b && a == rep[b] && downlink[b].is_none() {
                downlink[b] = Some(id);
            }
        }
        let core: Vec<NodeId> = (0..n).filter(|&x| rep[x] == x).collect();
        let mut core_index = vec![u32::MAX; n];
        for (i, &c) in core.iter().enumerate() {
            core_index[c] = i as u32;
        }
        let c = core.len();
        // Core-only adjacency, forward (for next-hop selection) and reversed
        // (for the per-destination BFS).
        let mut cadj: Vec<Vec<(LinkId, u32)>> = vec![Vec::new(); c];
        let mut radj: Vec<Vec<u32>> = vec![Vec::new(); c];
        for (id, &(a, b, _)) in links.iter().enumerate() {
            if rep[a] == a && rep[b] == b {
                let (ia, ib) = (core_index[a], core_index[b]);
                cadj[ia as usize].push((id, ib));
                radj[ib as usize].push(ia);
            }
        }
        // BFS from each core destination over reversed edges, then pick the
        // lowest link id among links to any predecessor-level node — the
        // same rule the reference per-destination BFS applies.
        let mut core_next: Vec<Option<LinkId>> = vec![None; c * c];
        let mut dist = vec![u32::MAX; c];
        let mut frontier = std::collections::VecDeque::new();
        for j in 0..c {
            dist.iter_mut().for_each(|d| *d = u32::MAX);
            dist[j] = 0;
            frontier.clear();
            frontier.push_back(j as u32);
            while let Some(v) = frontier.pop_front() {
                for &u in &radj[v as usize] {
                    if dist[u as usize] == u32::MAX {
                        dist[u as usize] = dist[v as usize] + 1;
                        frontier.push_back(u);
                    }
                }
            }
            for (i, out) in cadj.iter().enumerate() {
                if i == j || dist[i] == u32::MAX {
                    continue;
                }
                let hop = out
                    .iter()
                    .filter(|&&(_, b)| dist[b as usize] == dist[i] - 1)
                    .map(|&(id, _)| id)
                    .min();
                core_next[i * c + j] = hop;
            }
        }
        Routes {
            rep,
            uplink,
            downlink,
            core_index,
            core_count: c,
            core_next,
        }
    }

    #[inline]
    fn core_hop(&self, a: NodeId, b: NodeId) -> Option<LinkId> {
        let i = self.core_index[a] as usize;
        let j = self.core_index[b] as usize;
        self.core_next[i * self.core_count + j]
    }

    /// The outgoing link `n` uses toward `dst` (`n != dst`), if reachable.
    #[inline]
    pub(crate) fn next_hop(&self, n: NodeId, dst: NodeId) -> Option<LinkId> {
        debug_assert_ne!(n, dst);
        let rd = self.rep[dst];
        let rn = self.rep[n];
        if rn != n {
            // Pendant: the only exit is the uplink, valid iff dst is
            // actually reachable from the representative.
            let up = self.uplink[n]?;
            if dst == rn {
                return Some(up);
            }
            if dst != rd && self.downlink[dst].is_none() {
                return None;
            }
            if rd != rn && self.core_hop(rn, rd).is_none() {
                return None;
            }
            return Some(up);
        }
        if dst == rd {
            // Core to core.
            return self.core_hop(n, dst);
        }
        // Core to pendant: descend at the destination's representative.
        let down = self.downlink[dst]?;
        if rd == n {
            return Some(down);
        }
        self.core_hop(n, rd)
    }
}

/// The execution context handed to agents. Commands are buffered and applied
/// by the simulator after the callback returns.
pub struct Ctx<'a> {
    /// Current virtual time.
    pub now: SimTime,
    /// The node this agent runs on.
    pub node: NodeId,
    /// Measurement sink (agents report application-level delivery here).
    pub stats: &'a mut Stats,
    /// This node's private random stream.
    pub rng: &'a mut DetRng,
    uid_counter: &'a mut u64,
    cmds: Vec<Cmd>,
}

enum Cmd {
    Send(Packet),
    Timer { at: SimTime, token: u64 },
}

impl<'a> Ctx<'a> {
    /// Send a fully-formed packet (advanced use; normally use
    /// [`Ctx::send_new`]).
    pub fn send(&mut self, pkt: Packet) {
        self.cmds.push(Cmd::Send(pkt));
    }

    /// Build and send a packet from this node.
    ///
    /// `wire_size` is the total on-wire size (transport header + payload);
    /// `header` is the encoded transport header.
    pub fn send_new(&mut self, flow: FlowId, dst: NodeId, wire_size: u32, header: Vec<u8>) {
        *self.uid_counter += 1;
        let pkt = Packet::new(
            *self.uid_counter,
            flow,
            self.node,
            dst,
            wire_size,
            self.now,
            header,
        );
        self.cmds.push(Cmd::Send(pkt));
    }

    /// Schedule a wakeup at an absolute time.
    pub fn set_timer_at(&mut self, at: SimTime, token: u64) {
        self.cmds.push(Cmd::Timer { at, token });
    }

    /// Schedule a wakeup `d` from now.
    pub fn set_timer_in(&mut self, d: Duration, token: u64) {
        let at = self.now + d;
        self.cmds.push(Cmd::Timer { at, token });
    }
}

/// A protocol endpoint or traffic source attached to a host node.
///
/// All methods receive the [`Ctx`] for the node at the current instant.
pub trait Agent {
    /// Called once when the simulation starts.
    fn on_start(&mut self, _ctx: &mut Ctx) {}
    /// Called when a packet addressed to this node arrives. The packet is
    /// borrowed from the simulator's arena; copy out what must outlive the
    /// callback.
    fn on_packet(&mut self, _ctx: &mut Ctx, _pkt: &Packet) {}
    /// Called when a timer set by this agent fires.
    fn on_timer(&mut self, _ctx: &mut Ctx, _token: u64) {}
}

/// Scheduled work. Compact by design: packets are referenced by arena id,
/// never embedded, so the scheduler moves fixed 24-ish-byte payloads.
#[derive(Debug)]
enum EventKind {
    Arrival { node: NodeId, pkt: PacketId },
    TxComplete { link: LinkId },
    Timer { node: NodeId, token: u64 },
    Sample,
}

/// Builds a topology, then turns it into a runnable [`Simulator`].
pub struct NetworkBuilder {
    nodes: Vec<NodeKind>,
    links: Vec<(NodeId, NodeId, LinkConfig)>,
}

impl NetworkBuilder {
    pub fn new() -> Self {
        NetworkBuilder {
            nodes: Vec::new(),
            links: Vec::new(),
        }
    }

    /// Add an endpoint node.
    pub fn host(&mut self) -> NodeId {
        self.nodes.push(NodeKind::Host);
        self.nodes.len() - 1
    }

    /// Add a forwarding node.
    pub fn router(&mut self) -> NodeId {
        self.nodes.push(NodeKind::Router);
        self.nodes.len() - 1
    }

    /// Add a simplex link from `a` to `b`. Returns its id.
    pub fn simplex_link(&mut self, a: NodeId, b: NodeId, cfg: LinkConfig) -> LinkId {
        assert!(a < self.nodes.len() && b < self.nodes.len(), "unknown node");
        assert_ne!(a, b, "self-links are not allowed");
        self.links.push((a, b, cfg));
        self.links.len() - 1
    }

    /// Add a duplex link (two simplex links with the same configuration).
    /// Returns `(a→b, b→a)` link ids.
    pub fn duplex_link(&mut self, a: NodeId, b: NodeId, cfg: LinkConfig) -> (LinkId, LinkId) {
        let ab = self.simplex_link(a, b, cfg.clone());
        let ba = self.simplex_link(b, a, cfg);
        (ab, ba)
    }

    /// Add an asymmetric duplex link: different configurations per
    /// direction (e.g. a fast forward path over a slow return channel).
    /// Returns `(a→b, b→a)` link ids.
    pub fn duplex_link_asym(
        &mut self,
        a: NodeId,
        b: NodeId,
        fwd: LinkConfig,
        rev: LinkConfig,
    ) -> (LinkId, LinkId) {
        let ab = self.simplex_link(a, b, fwd);
        let ba = self.simplex_link(b, a, rev);
        (ab, ba)
    }

    /// Finalize: compute routes and produce a simulator.
    ///
    /// Routes are shortest-path by hop count, with the lowest-numbered link
    /// breaking ties, so routing is deterministic. See [`Routes`] for how
    /// the tables stay near-linear in the topology size.
    pub fn build(self, master_seed: u64) -> Simulator {
        let n = self.nodes.len();
        let routes = Routes::build(n, &self.links);
        let nodes: Vec<Node> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(id, kind)| Node { id, kind: *kind })
            .collect();
        let mut stats = Stats::new();
        let links: Vec<Link> = self
            .links
            .iter()
            .enumerate()
            .map(|(id, (a, b, cfg))| {
                stats.register_link();
                Link::new(id, *a, *b, cfg, master_seed)
            })
            .collect();
        let node_rngs = (0..n)
            .map(|i| DetRng::stream(master_seed, 0x40DE ^ i as u64))
            .collect();
        let agents = (0..n).map(|_| None).collect();
        Simulator {
            now: SimTime::ZERO,
            seq: 0,
            events: CalendarQueue::new(),
            events_processed: 0,
            arena: PacketArena::new(),
            cmd_pool: Vec::new(),
            routes,
            nodes,
            links,
            agents,
            node_rngs,
            stats,
            uid_counter: 0,
            trace: None,
            sample_interval: None,
            started: false,
        }
    }
}

impl Default for NetworkBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// The discrete-event simulator.
pub struct Simulator {
    now: SimTime,
    seq: u64,
    events: CalendarQueue<EventKind>,
    events_processed: u64,
    arena: PacketArena,
    /// Recycled command buffers for agent callbacks (a stack, so nested
    /// callbacks — e.g. loopback delivery during command application — each
    /// get their own buffer without allocating).
    cmd_pool: Vec<Vec<Cmd>>,
    routes: Routes,
    nodes: Vec<Node>,
    links: Vec<Link>,
    agents: Vec<Option<Box<dyn Agent>>>,
    node_rngs: Vec<DetRng>,
    stats: Stats,
    uid_counter: u64,
    trace: Option<TraceSink>,
    sample_interval: Option<Duration>,
    started: bool,
}

impl Simulator {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The measurement sink.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Mutable access to measurements (e.g. to reset between phases).
    pub fn stats_mut(&mut self) -> &mut Stats {
        &mut self.stats
    }

    /// Total events dispatched so far — the denominator of the events/s
    /// throughput metric the scaling benchmarks report.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// High-water mark of concurrently live packets (arena slots created).
    /// A deterministic memory-footprint proxy.
    pub fn packet_pool_high_water(&self) -> usize {
        self.arena.capacity()
    }

    /// Register a flow for statistics; returns the id packets must carry.
    pub fn register_flow(&mut self, name: &str) -> FlowId {
        self.stats.register_flow(name.to_string())
    }

    /// Attach the agent that runs on `node`. Replaces any previous agent.
    pub fn attach_agent(&mut self, node: NodeId, agent: Box<dyn Agent>) {
        assert_eq!(
            self.nodes[node].kind,
            NodeKind::Host,
            "agents attach to hosts"
        );
        self.agents[node] = Some(agent);
    }

    /// Install a per-flow traffic conditioner at a link's ingress.
    pub fn set_marker(&mut self, link: LinkId, flow: FlowId, marker: crate::marker::Marker) {
        self.links[link].set_marker(flow, marker);
    }

    /// Enable periodic statistics sampling (throughput series).
    pub fn set_sample_interval(&mut self, interval: Duration) {
        self.sample_interval = Some(interval);
        self.stats.sample_interval = Some(interval);
    }

    /// Install a trace sink receiving every packet event.
    pub fn set_trace(&mut self, sink: TraceSink) {
        self.trace = Some(sink);
    }

    /// Direct read access to a link (queue occupancy etc.).
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id]
    }

    /// Change a link's serialization rate mid-run (mobility handover: the
    /// path under a connection changes character at a switch instant).
    /// Takes effect from the next packet serialized; a packet already on
    /// the wire keeps its original timing.
    pub fn set_link_rate(&mut self, id: LinkId, rate: crate::time::Rate) {
        self.links[id].rate = rate;
    }

    /// Change a link's propagation delay mid-run. Packets already in
    /// propagation keep their scheduled arrival.
    pub fn set_link_delay(&mut self, id: LinkId, delay: Duration) {
        self.links[id].delay = delay;
    }

    /// Replace a link's loss model mid-run (e.g. handover from a clean to
    /// a bursty-loss path).
    pub fn set_link_loss(&mut self, id: LinkId, loss: crate::loss::LossModel) {
        self.links[id].loss = loss;
    }

    /// Replace a link's path impairment model mid-run.
    pub fn set_link_path(&mut self, id: LinkId, path: crate::path::PathModel) {
        self.links[id].path = path;
    }

    fn push_event(&mut self, at: SimTime, kind: EventKind) {
        self.seq += 1;
        self.events.push(at.as_nanos(), self.seq, kind);
    }

    fn trace_emit(&mut self, ev: TraceEvent) {
        if let Some(sink) = &mut self.trace {
            sink(&ev);
        }
    }

    /// Invoke one agent callback with a fresh `Ctx`, then apply its commands.
    fn with_agent<F>(&mut self, node: NodeId, f: F)
    where
        F: FnOnce(&mut dyn Agent, &mut Ctx),
    {
        let Some(mut agent) = self.agents[node].take() else {
            return;
        };
        let mut ctx = Ctx {
            now: self.now,
            node,
            stats: &mut self.stats,
            rng: &mut self.node_rngs[node],
            uid_counter: &mut self.uid_counter,
            cmds: self.cmd_pool.pop().unwrap_or_default(),
        };
        f(agent.as_mut(), &mut ctx);
        let cmds = ctx.cmds;
        self.agents[node] = Some(agent);
        self.apply_cmds(node, cmds);
    }

    /// Apply buffered commands, then return the buffer to the pool.
    fn apply_cmds(&mut self, node: NodeId, mut cmds: Vec<Cmd>) {
        for cmd in cmds.drain(..) {
            match cmd {
                Cmd::Send(pkt) => self.inject(node, pkt),
                Cmd::Timer { at, token } => self.push_event(at, EventKind::Timer { node, token }),
            }
        }
        self.cmd_pool.push(cmds);
    }

    /// A source node hands a packet to the network.
    fn inject(&mut self, node: NodeId, pkt: Packet) {
        self.stats.on_send(&pkt);
        self.trace_emit(TraceEvent::Send {
            at: self.now,
            node,
            flow: pkt.flow,
            uid: pkt.uid,
            size: pkt.wire_size,
        });
        let id = self.arena.alloc(pkt);
        self.forward(node, id);
    }

    /// Route a packet from `node` one hop toward its destination.
    fn forward(&mut self, node: NodeId, id: PacketId) {
        let dst = self.arena.get(id).dst;
        if dst == node {
            // Degenerate loopback: deliver immediately.
            self.deliver(node, id);
            return;
        }
        match self.routes.next_hop(node, dst) {
            Some(link) => self.transmit_on(link, id),
            None => {
                self.stats.on_no_route(self.arena.get(id).flow);
                self.arena.release(id);
            }
        }
    }

    /// Offer a packet to a link's conditioner + queue, and kick the
    /// serializer if idle.
    fn transmit_on(&mut self, link_id: LinkId, id: PacketId) {
        let now = self.now;
        let link = &mut self.links[link_id];
        let pkt = self.arena.get_mut(id);
        if let Some(marker) = link.markers.get_mut(pkt.flow) {
            marker.mark(now, pkt);
        }
        let qp = QueuedPacket {
            id,
            wire_size: pkt.wire_size,
            color: pkt.color,
        };
        let (flow, uid) = (pkt.flow, pkt.uid);
        match link.queue.enqueue(now, qp, &mut link.rng) {
            Err((dropped, reason)) => {
                self.stats
                    .on_drop(link_id, self.arena.get(dropped.id), reason);
                self.trace_emit(TraceEvent::Drop {
                    at: now,
                    link: link_id,
                    flow,
                    uid,
                    color: dropped.color,
                    reason,
                });
                self.arena.release(dropped.id);
            }
            Ok(()) => {
                let qlen = self.links[link_id].queue.len_pkts();
                self.stats.on_enqueue(link_id, qp.color, qp.wire_size);
                self.trace_emit(TraceEvent::Enqueue {
                    at: now,
                    link: link_id,
                    flow,
                    uid,
                    color: qp.color,
                    queue_len: qlen,
                });
                if !self.links[link_id].transmitting {
                    self.start_tx(link_id);
                }
            }
        }
    }

    /// Begin serializing the next queued packet, if any.
    fn start_tx(&mut self, link_id: LinkId) {
        let now = self.now;
        let link = &mut self.links[link_id];
        let Some(qp) = link.queue.dequeue(now) else {
            link.transmitting = false;
            return;
        };
        let tx = link.rate.tx_time(qp.wire_size);
        link.transmitting = true;
        link.in_flight = Some(qp);
        self.push_event(now + tx, EventKind::TxComplete { link: link_id });
    }

    /// Serialization finished: launch the packet into propagation (unless
    /// the loss model or a corrupting path model eats it) and start the
    /// next transmission.
    ///
    /// Path impairments run only for active models: a no-op [`PathModel`]
    /// makes zero draws and schedules exactly the unimpaired arrival, so
    /// fixed-seed outputs of existing scenarios stay byte-identical.
    fn on_tx_complete(&mut self, link_id: LinkId) {
        let link = &mut self.links[link_id];
        let qp = link
            .in_flight
            .take()
            .expect("TxComplete without in-flight packet");
        let lost = link.loss.is_lost(&mut link.rng);
        // (extra propagation delay, Some(extra) when a duplicate spawns);
        // None when the path model corrupted (erased) the packet.
        let fate = if lost || link.path.is_noop() {
            Some((Duration::ZERO, None))
        } else {
            link.path.apply(&mut link.path_rng)
        };
        let delay = link.delay;
        let to = link.to;
        self.stats.on_transmit(link_id);
        match fate {
            None => self.drop_in_flight(link_id, qp),
            Some(_) if lost => self.drop_in_flight(link_id, qp),
            Some((extra, dup)) => {
                let at = self.now + delay + extra;
                self.push_event(
                    at,
                    EventKind::Arrival {
                        node: to,
                        pkt: qp.id,
                    },
                );
                if let Some(dup_extra) = dup {
                    // A wire-level duplicate: same uid and headers, its own
                    // jitter draw. The transport above dedups by sequence.
                    let copy = self.arena.get(qp.id).clone();
                    let copy_id = self.arena.alloc(copy);
                    self.push_event(
                        self.now + delay + dup_extra,
                        EventKind::Arrival {
                            node: to,
                            pkt: copy_id,
                        },
                    );
                }
            }
        }
        self.start_tx(link_id);
    }

    /// Drop a packet that died in flight (loss model or corruption-as-
    /// erasure — both count as [`DropReason::LinkLoss`]).
    fn drop_in_flight(&mut self, link_id: LinkId, qp: QueuedPacket) {
        let (flow, uid) = {
            let pkt = self.arena.get(qp.id);
            (pkt.flow, pkt.uid)
        };
        self.stats
            .on_drop(link_id, self.arena.get(qp.id), DropReason::LinkLoss);
        self.trace_emit(TraceEvent::Drop {
            at: self.now,
            link: link_id,
            flow,
            uid,
            color: qp.color,
            reason: DropReason::LinkLoss,
        });
        self.arena.release(qp.id);
    }

    /// A packet arrived at `node` after propagation.
    fn on_arrival(&mut self, node: NodeId, id: PacketId) {
        if self.arena.get(id).dst == node {
            self.deliver(node, id);
        } else {
            self.forward(node, id);
        }
    }

    /// Hand a packet to the agent on its destination node, then release it.
    ///
    /// Open-coded rather than going through [`Simulator::with_agent`] so the
    /// agent can borrow the packet from the arena while the `Ctx` borrows
    /// the (disjoint) stats/rng fields.
    fn deliver(&mut self, node: NodeId, id: PacketId) {
        self.stats.on_arrive(self.now, self.arena.get(id));
        let (flow, uid) = {
            let pkt = self.arena.get(id);
            (pkt.flow, pkt.uid)
        };
        self.trace_emit(TraceEvent::Deliver {
            at: self.now,
            node,
            flow,
            uid,
        });
        let Some(mut agent) = self.agents[node].take() else {
            self.arena.release(id);
            return;
        };
        let mut ctx = Ctx {
            now: self.now,
            node,
            stats: &mut self.stats,
            rng: &mut self.node_rngs[node],
            uid_counter: &mut self.uid_counter,
            cmds: self.cmd_pool.pop().unwrap_or_default(),
        };
        agent.on_packet(&mut ctx, self.arena.get(id));
        let cmds = ctx.cmds;
        self.arena.release(id);
        self.agents[node] = Some(agent);
        self.apply_cmds(node, cmds);
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        if let Some(interval) = self.sample_interval {
            self.push_event(SimTime::ZERO + interval, EventKind::Sample);
        }
        for node in 0..self.nodes.len() {
            self.with_agent(node, |agent, ctx| agent.on_start(ctx));
        }
    }

    /// Run until virtual time `t` (inclusive of events at `t`).
    pub fn run_until(&mut self, t: SimTime) {
        self.start_if_needed();
        while let Some((at_ns, seq, kind)) = self.events.pop() {
            let at = SimTime::from_nanos(at_ns);
            if at > t {
                // Past the horizon: put it back under its original sequence
                // number so a later run_until resumes in exact order.
                self.events.push(at_ns, seq, kind);
                break;
            }
            debug_assert!(at >= self.now, "event time went backwards");
            self.now = at;
            self.events_processed += 1;
            match kind {
                EventKind::Arrival { node, pkt } => self.on_arrival(node, pkt),
                EventKind::TxComplete { link } => self.on_tx_complete(link),
                EventKind::Timer { node, token } => {
                    self.with_agent(node, |agent, ctx| agent.on_timer(ctx, token))
                }
                EventKind::Sample => {
                    self.stats.sample_tick();
                    if let Some(interval) = self.sample_interval {
                        let at = self.now + interval;
                        self.push_event(at, EventKind::Sample);
                    }
                }
            }
        }
        self.now = t;
    }

    /// Run for a span of virtual time from the current instant.
    pub fn run_for(&mut self, d: Duration) {
        let t = self.now + d;
        self.run_until(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Rate;

    /// Sends `n` packets of `size` bytes, `gap` apart, starting at t=0.
    struct Blaster {
        flow: FlowId,
        dst: NodeId,
        n: u32,
        size: u32,
        gap: Duration,
        sent: u32,
    }

    impl Agent for Blaster {
        fn on_start(&mut self, ctx: &mut Ctx) {
            ctx.set_timer_in(Duration::ZERO, 0);
        }
        fn on_timer(&mut self, ctx: &mut Ctx, _token: u64) {
            if self.sent < self.n {
                ctx.send_new(self.flow, self.dst, self.size, Vec::new());
                self.sent += 1;
                ctx.set_timer_in(self.gap, 0);
            }
        }
    }

    /// Records arrival times.
    struct Recorder {
        arrivals: std::rc::Rc<std::cell::RefCell<Vec<SimTime>>>,
    }

    impl Agent for Recorder {
        fn on_packet(&mut self, ctx: &mut Ctx, _pkt: &Packet) {
            self.arrivals.borrow_mut().push(ctx.now);
        }
    }

    fn two_hosts(rate: Rate, delay: Duration) -> (Simulator, NodeId, NodeId) {
        let mut b = NetworkBuilder::new();
        let a = b.host();
        let c = b.host();
        b.duplex_link(a, c, LinkConfig::new(rate, delay));
        (b.build(1), a, c)
    }

    #[test]
    fn single_packet_latency_is_tx_plus_prop() {
        let (mut sim, a, c) = two_hosts(Rate::from_mbps(10), Duration::from_millis(5));
        let flow = sim.register_flow("f");
        let arrivals = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        sim.attach_agent(
            a,
            Box::new(Blaster {
                flow,
                dst: c,
                n: 1,
                size: 1250,
                gap: Duration::from_millis(1),
                sent: 0,
            }),
        );
        sim.attach_agent(
            c,
            Box::new(Recorder {
                arrivals: arrivals.clone(),
            }),
        );
        sim.run_until(SimTime::from_secs(1));
        // 1250 B at 10 Mbit/s = 1 ms tx, + 5 ms prop = 6 ms.
        assert_eq!(arrivals.borrow().as_slice(), &[SimTime::from_millis(6)]);
        assert_eq!(sim.stats().flow(flow).pkts_arrived, 1);
        assert!(sim.events_processed() > 0);
    }

    #[test]
    fn serialization_spaces_back_to_back_packets() {
        let (mut sim, a, c) = two_hosts(Rate::from_mbps(10), Duration::from_millis(5));
        let flow = sim.register_flow("f");
        let arrivals = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        sim.attach_agent(
            a,
            Box::new(Blaster {
                flow,
                dst: c,
                n: 3,
                size: 1250,
                gap: Duration::ZERO, // all at t=0: queue at the link
                sent: 0,
            }),
        );
        sim.attach_agent(
            c,
            Box::new(Recorder {
                arrivals: arrivals.clone(),
            }),
        );
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(
            arrivals.borrow().as_slice(),
            &[
                SimTime::from_millis(6),
                SimTime::from_millis(7),
                SimTime::from_millis(8)
            ],
            "packets serialize 1 ms apart"
        );
    }

    #[test]
    fn router_forwards_between_hosts() {
        let mut b = NetworkBuilder::new();
        let a = b.host();
        let r = b.router();
        let c = b.host();
        b.duplex_link(
            a,
            r,
            LinkConfig::new(Rate::from_mbps(10), Duration::from_millis(1)),
        );
        b.duplex_link(
            r,
            c,
            LinkConfig::new(Rate::from_mbps(10), Duration::from_millis(1)),
        );
        let mut sim = b.build(7);
        let flow = sim.register_flow("f");
        let arrivals = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        sim.attach_agent(
            a,
            Box::new(Blaster {
                flow,
                dst: c,
                n: 1,
                size: 1250,
                gap: Duration::ZERO,
                sent: 0,
            }),
        );
        sim.attach_agent(
            c,
            Box::new(Recorder {
                arrivals: arrivals.clone(),
            }),
        );
        sim.run_until(SimTime::from_secs(1));
        // two hops: 2 * (1 ms tx + 1 ms prop) = 4 ms.
        assert_eq!(arrivals.borrow().as_slice(), &[SimTime::from_millis(4)]);
    }

    #[test]
    fn droptail_queue_overflows_under_burst() {
        let mut b = NetworkBuilder::new();
        let a = b.host();
        let c = b.host();
        b.simplex_link(
            a,
            c,
            LinkConfig::new(Rate::from_kbps(100), Duration::from_millis(1))
                .with_queue(crate::queue::QueueConfig::DropTailPkts(5)),
        );
        let mut sim = b.build(3);
        let flow = sim.register_flow("f");
        sim.attach_agent(
            a,
            Box::new(Blaster {
                flow,
                dst: c,
                n: 50,
                size: 1250,
                gap: Duration::ZERO,
                sent: 0,
            }),
        );
        sim.run_until(SimTime::from_secs(30));
        let f = sim.stats().flow(flow);
        // 1 in flight + 5 queued survive the burst of 50.
        assert_eq!(f.pkts_arrived, 6);
        assert_eq!(f.pkts_dropped, 44);
        // Every packet's arena slot was released (delivered or dropped):
        // the pool high-water mark tracks peak concurrency, not volume.
        assert!(sim.packet_pool_high_water() <= 7);
    }

    #[test]
    fn link_loss_model_drops_packets() {
        let mut b = NetworkBuilder::new();
        let a = b.host();
        let c = b.host();
        b.simplex_link(
            a,
            c,
            LinkConfig::new(Rate::from_mbps(10), Duration::from_millis(1))
                .with_loss(crate::loss::LossModel::periodic(2)),
        );
        let mut sim = b.build(3);
        let flow = sim.register_flow("f");
        sim.attach_agent(
            a,
            Box::new(Blaster {
                flow,
                dst: c,
                n: 10,
                size: 100,
                gap: Duration::from_millis(10),
                sent: 0,
            }),
        );
        sim.run_until(SimTime::from_secs(1));
        let f = sim.stats().flow(flow);
        assert_eq!(f.pkts_arrived, 5);
        assert_eq!(f.pkts_dropped, 5);
    }

    #[test]
    fn sampling_produces_series() {
        let (mut sim, a, c) = two_hosts(Rate::from_mbps(10), Duration::from_millis(1));
        let flow = sim.register_flow("f");
        sim.set_sample_interval(Duration::from_millis(100));
        sim.attach_agent(
            a,
            Box::new(Blaster {
                flow,
                dst: c,
                n: 100,
                size: 1250,
                gap: Duration::from_millis(10),
                sent: 0,
            }),
        );
        sim.run_until(SimTime::from_secs(2));
        let series = &sim.stats().flow(flow).arrive_series;
        assert_eq!(series.len(), 20);
        // Flow sends 1250 B per 10 ms for 1 s -> 12_500 B per 100 ms window.
        assert!(series[..9].iter().all(|&b| (12_000..=13_000).contains(&b)));
        assert!(
            series[12..].iter().all(|&b| b == 0),
            "source stopped at 1 s"
        );
    }

    #[test]
    fn determinism_same_seed_same_outcome() {
        fn run(seed: u64) -> (u64, u64) {
            let mut b = NetworkBuilder::new();
            let a = b.host();
            let c = b.host();
            b.simplex_link(
                a,
                c,
                LinkConfig::new(Rate::from_mbps(1), Duration::from_millis(1))
                    .with_loss(crate::loss::LossModel::bernoulli(0.3)),
            );
            let mut sim = b.build(seed);
            let flow = sim.register_flow("f");
            sim.attach_agent(
                a,
                Box::new(Blaster {
                    flow,
                    dst: c,
                    n: 1000,
                    size: 500,
                    gap: Duration::from_millis(1),
                    sent: 0,
                }),
            );
            sim.run_until(SimTime::from_secs(5));
            let f = sim.stats().flow(flow);
            (f.pkts_arrived, f.pkts_dropped)
        }
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).0, run(43).0, "different seeds should differ here");
    }

    #[test]
    fn run_until_resumes_across_horizons() {
        // The event loop re-queues the first past-horizon event; a split run
        // must behave exactly like a single long run.
        fn run(split: bool) -> (u64, u64) {
            let (mut sim, a, c) = two_hosts(Rate::from_mbps(10), Duration::from_millis(5));
            let flow = sim.register_flow("f");
            sim.attach_agent(
                a,
                Box::new(Blaster {
                    flow,
                    dst: c,
                    n: 200,
                    size: 1250,
                    gap: Duration::from_millis(7),
                    sent: 0,
                }),
            );
            sim.attach_agent(c, Box::new(crate::agents::Sink));
            if split {
                for ms in 1..=2000 {
                    sim.run_until(SimTime::from_millis(ms));
                }
            } else {
                sim.run_until(SimTime::from_secs(2));
            }
            let f = sim.stats().flow(flow);
            (f.pkts_arrived, sim.events_processed())
        }
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn duplicating_path_delivers_extra_copies() {
        let mut b = NetworkBuilder::new();
        let a = b.host();
        let c = b.host();
        b.simplex_link(
            a,
            c,
            LinkConfig::new(Rate::from_mbps(10), Duration::from_millis(1))
                .with_path(crate::path::PathModel::none().with_duplicate(1.0)),
        );
        let mut sim = b.build(3);
        let flow = sim.register_flow("f");
        sim.attach_agent(
            a,
            Box::new(Blaster {
                flow,
                dst: c,
                n: 10,
                size: 100,
                gap: Duration::from_millis(10),
                sent: 0,
            }),
        );
        sim.run_until(SimTime::from_secs(1));
        let f = sim.stats().flow(flow);
        assert_eq!(f.pkts_sent, 10);
        assert_eq!(f.pkts_arrived, 20, "every packet duplicated exactly once");
    }

    #[test]
    fn corrupting_path_erases_packets() {
        let mut b = NetworkBuilder::new();
        let a = b.host();
        let c = b.host();
        b.simplex_link(
            a,
            c,
            LinkConfig::new(Rate::from_mbps(10), Duration::from_millis(1))
                .with_path(crate::path::PathModel::none().with_corrupt(1.0)),
        );
        let mut sim = b.build(3);
        let flow = sim.register_flow("f");
        sim.attach_agent(
            a,
            Box::new(Blaster {
                flow,
                dst: c,
                n: 10,
                size: 100,
                gap: Duration::from_millis(10),
                sent: 0,
            }),
        );
        sim.run_until(SimTime::from_secs(1));
        let f = sim.stats().flow(flow);
        assert_eq!(f.pkts_arrived, 0);
        assert_eq!(f.pkts_dropped, 10, "corruption counts as link loss");
    }

    /// Records `(uid, arrival time)` pairs in delivery order: arrival
    /// *times* are monotone by event-loop construction, so reordering is
    /// only visible as uid inversions.
    struct UidRecorder {
        arrivals: std::rc::Rc<std::cell::RefCell<Vec<(u64, SimTime)>>>,
    }

    impl Agent for UidRecorder {
        fn on_packet(&mut self, ctx: &mut Ctx, pkt: &Packet) {
            self.arrivals.borrow_mut().push((pkt.uid, ctx.now));
        }
    }

    #[test]
    fn reordering_path_bounds_extra_delay() {
        let jitter = Duration::from_millis(20);
        let mut b = NetworkBuilder::new();
        let a = b.host();
        let c = b.host();
        b.simplex_link(
            a,
            c,
            LinkConfig::new(Rate::from_mbps(100), Duration::from_millis(5))
                .with_path(crate::path::PathModel::none().with_reorder(1.0, jitter)),
        );
        let mut sim = b.build(17);
        let flow = sim.register_flow("f");
        let arrivals = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        sim.attach_agent(
            a,
            Box::new(Blaster {
                flow,
                dst: c,
                n: 100,
                size: 1250,
                gap: Duration::from_millis(1),
                sent: 0,
            }),
        );
        sim.attach_agent(
            c,
            Box::new(UidRecorder {
                arrivals: arrivals.clone(),
            }),
        );
        sim.run_until(SimTime::from_secs(5));
        let arrivals = arrivals.borrow();
        assert_eq!(arrivals.len(), 100, "reordering never loses packets");
        // Packet uids are 1..=100 in send order; packet k's nominal arrival
        // is (k-1) ms send offset + 0.1 ms tx + 5 ms prop (the access link
        // never queues at this rate).
        let tx = Rate::from_mbps(100).tx_time(1250);
        for &(uid, at) in arrivals.iter() {
            let nominal = SimTime::from_millis(uid - 1) + Duration::from_millis(5) + tx;
            assert!(at >= nominal, "uid {uid} arrived before its nominal time");
            assert!(
                at.saturating_since(nominal) <= jitter,
                "uid {uid} displaced beyond the jitter bound"
            );
        }
        let displaced = arrivals.windows(2).filter(|w| w[1].0 < w[0].0).count();
        assert!(displaced > 0, "full jitter at 1 ms spacing must reorder");
    }

    #[test]
    fn noop_path_model_is_event_identical() {
        // A link with an explicit no-op PathModel must produce exactly the
        // event count, arrivals, and pool high-water of a plain link.
        fn run(with_noop_model: bool) -> (u64, u64, usize) {
            let mut b = NetworkBuilder::new();
            let a = b.host();
            let c = b.host();
            let mut cfg = LinkConfig::new(Rate::from_mbps(1), Duration::from_millis(1))
                .with_loss(crate::loss::LossModel::bernoulli(0.3));
            if with_noop_model {
                cfg = cfg.with_path(crate::path::PathModel::none());
            }
            b.simplex_link(a, c, cfg);
            let mut sim = b.build(42);
            let flow = sim.register_flow("f");
            sim.attach_agent(
                a,
                Box::new(Blaster {
                    flow,
                    dst: c,
                    n: 500,
                    size: 500,
                    gap: Duration::from_millis(1),
                    sent: 0,
                }),
            );
            sim.run_until(SimTime::from_secs(3));
            let f = sim.stats().flow(flow);
            (
                f.pkts_arrived,
                sim.events_processed(),
                sim.packet_pool_high_water(),
            )
        }
        assert_eq!(run(false), run(true));
    }

    #[test]
    #[should_panic(expected = "agents attach to hosts")]
    fn cannot_attach_agent_to_router() {
        let mut b = NetworkBuilder::new();
        let _a = b.host();
        let r = b.router();
        let c = b.host();
        b.duplex_link(_a, r, LinkConfig::new(Rate::from_mbps(1), Duration::ZERO));
        b.duplex_link(r, c, LinkConfig::new(Rate::from_mbps(1), Duration::ZERO));
        let mut sim = b.build(1);
        struct Noop;
        impl Agent for Noop {}
        sim.attach_agent(r, Box::new(Noop));
    }

    /// The dense per-destination BFS the compressed routes replaced; kept as
    /// the reference oracle for equivalence testing.
    fn reference_routes(
        n: usize,
        links: &[(NodeId, NodeId, LinkConfig)],
    ) -> Vec<Vec<Option<LinkId>>> {
        let mut next_hop = vec![vec![None; n]; n];
        for dst in 0..n {
            let mut dist = vec![usize::MAX; n];
            dist[dst] = 0;
            let mut frontier = std::collections::VecDeque::new();
            frontier.push_back(dst);
            while let Some(v) = frontier.pop_front() {
                for (id, (a, b, _)) in links.iter().enumerate() {
                    if *b == v && dist[*a] == usize::MAX {
                        dist[*a] = dist[v] + 1;
                        next_hop[*a][dst] = Some(id);
                        frontier.push_back(*a);
                    } else if *b == v && dist[*a] == dist[v] + 1 {
                        if let Some(cur) = next_hop[*a][dst] {
                            if id < cur {
                                next_hop[*a][dst] = Some(id);
                            }
                        }
                    }
                }
            }
        }
        next_hop
    }

    #[test]
    fn routes_match_reference_bfs() {
        let cfg = || LinkConfig::new(Rate::from_mbps(1), Duration::from_millis(1));
        // Randomized topologies: a small router mesh, pendant hosts (some
        // duplex, some send-only, some receive-only), a mutual pair, and an
        // isolated node. Seeded, so failures reproduce.
        let mut rng = DetRng::new(0x0075_0F75);
        for round in 0..40 {
            let routers = 1 + (rng.next_u64() % 5) as usize;
            let hosts = (rng.next_u64() % 12) as usize;
            let n = routers + hosts + 3; // + mutual pair + isolated node
            let mut links: Vec<(NodeId, NodeId, LinkConfig)> = Vec::new();
            // Random router mesh (simplex edges, possibly asymmetric).
            for _ in 0..(routers * 2) {
                let a = (rng.next_u64() % routers as u64) as usize;
                let b = (rng.next_u64() % routers as u64) as usize;
                if a != b {
                    links.push((a, b, cfg()));
                }
            }
            // Pendant hosts off random routers.
            for h in 0..hosts {
                let host = routers + h;
                let r = (rng.next_u64() % routers as u64) as usize;
                match rng.next_u64() % 3 {
                    0 => {
                        links.push((host, r, cfg()));
                        links.push((r, host, cfg()));
                    }
                    1 => links.push((host, r, cfg())),
                    _ => links.push((r, host, cfg())),
                }
                // Occasionally a second parallel link (tie-break coverage).
                if rng.next_u64() % 4 == 0 {
                    links.push((host, r, cfg()));
                }
            }
            // A mutual pair: two nodes linked only to each other.
            let (m1, m2) = (n - 3, n - 2);
            links.push((m1, m2, cfg()));
            links.push((m2, m1, cfg()));
            // n-1 is isolated.
            let reference = reference_routes(n, &links);
            let routes = Routes::build(n, &links);
            for (a, ref_row) in reference.iter().enumerate() {
                for (dst, &ref_hop) in ref_row.iter().enumerate() {
                    if a == dst {
                        continue;
                    }
                    assert_eq!(
                        routes.next_hop(a, dst),
                        ref_hop,
                        "round {round}: route {a} -> {dst} diverged ({links:?})"
                    );
                }
            }
        }
    }
}
