//! Simplex links: a queue, a serializer and a propagation pipe.
//!
//! A [`Link`] owns its egress queue, an optional per-flow marker bank (the
//! DiffServ traffic conditioner sits at the entry of an edge link) and a
//! loss model applied to packets in flight. Timing is orchestrated by the
//! simulator; the link only holds state.

use std::time::Duration;

use crate::loss::LossModel;
use crate::marker::Marker;
use crate::packet::{FlowId, LinkId, NodeId, QueuedPacket};
use crate::path::PathModel;
use crate::queue::{AqmQueue, QueueConfig};
use crate::rng::DetRng;
use crate::time::Rate;

/// Per-flow traffic conditioners for one link, stored densely.
///
/// Flow ids are small integers, so a link's markers live in a `Vec` indexed
/// by `flow - base` instead of a `BTreeMap`: lookup on the forwarding hot
/// path is a bounds check and an `Option` load. `base` is the smallest
/// marked flow id, so the common shapes stay compact — most links have no
/// markers (empty vec), an access link conditions exactly its own flow
/// (one slot regardless of the flow id's magnitude), and a core link
/// conditioning every flow gets one dense table.
#[derive(Debug, Default)]
pub(crate) struct MarkerBank {
    base: FlowId,
    slots: Vec<Option<Marker>>,
}

impl MarkerBank {
    /// Install (or replace) the conditioner for `flow`.
    pub(crate) fn set(&mut self, flow: FlowId, marker: Marker) {
        if self.slots.is_empty() {
            self.base = flow;
        } else if flow < self.base {
            // Grow downward: shift existing slots up. Rare (setup only).
            let shift = (self.base - flow) as usize;
            let mut grown: Vec<Option<Marker>> = Vec::with_capacity(self.slots.len() + shift);
            grown.resize_with(shift, || None);
            grown.append(&mut self.slots);
            self.slots = grown;
            self.base = flow;
        }
        let i = (flow - self.base) as usize;
        if self.slots.len() <= i {
            self.slots.resize_with(i + 1, || None);
        }
        self.slots[i] = Some(marker);
    }

    /// The conditioner for `flow`, if one is installed.
    #[inline]
    pub(crate) fn get_mut(&mut self, flow: FlowId) -> Option<&mut Marker> {
        let i = flow.checked_sub(self.base)? as usize;
        self.slots.get_mut(i)?.as_mut()
    }

    /// Whether `flow` has a conditioner.
    pub(crate) fn contains(&self, flow: FlowId) -> bool {
        flow.checked_sub(self.base)
            .and_then(|i| self.slots.get(i as usize))
            .is_some_and(Option::is_some)
    }
}

/// Static description of a simplex link.
#[derive(Debug, Clone)]
pub struct LinkConfig {
    /// Serialization rate.
    pub rate: Rate,
    /// One-way propagation delay.
    pub delay: Duration,
    /// Egress queue discipline.
    pub queue: QueueConfig,
    /// In-flight loss process.
    pub loss: LossModel,
    /// In-flight path impairments (reordering, duplication, corruption).
    pub path: PathModel,
}

impl LinkConfig {
    /// A sensible default: rate + delay with a 100-packet drop-tail queue
    /// and no transmission loss.
    pub fn new(rate: Rate, delay: Duration) -> Self {
        LinkConfig {
            rate,
            delay,
            queue: QueueConfig::DropTailPkts(100),
            loss: LossModel::None,
            path: PathModel::none(),
        }
    }

    /// Replace the queue discipline.
    pub fn with_queue(mut self, queue: QueueConfig) -> Self {
        self.queue = queue;
        self
    }

    /// Replace the loss model.
    pub fn with_loss(mut self, loss: LossModel) -> Self {
        self.loss = loss;
        self
    }

    /// Replace the path impairment model.
    pub fn with_path(mut self, path: PathModel) -> Self {
        self.path = path;
        self
    }
}

/// Runtime state of a simplex link.
pub struct Link {
    /// Own id (index into the simulator's link table).
    pub id: LinkId,
    /// Upstream node.
    pub from: NodeId,
    /// Downstream node.
    pub to: NodeId,
    /// Serialization rate.
    pub rate: Rate,
    /// Propagation delay.
    pub delay: Duration,
    /// Egress queue.
    pub(crate) queue: AqmQueue,
    /// Loss process for packets in flight.
    pub(crate) loss: LossModel,
    /// Path impairment model for packets in flight.
    pub(crate) path: PathModel,
    /// Per-flow traffic conditioners applied at enqueue.
    pub(crate) markers: MarkerBank,
    /// Whether a packet is currently being serialized.
    pub(crate) transmitting: bool,
    /// The packet on the wire (being serialized), if any.
    pub(crate) in_flight: Option<QueuedPacket>,
    /// Private randomness for AQM and loss decisions.
    pub(crate) rng: DetRng,
    /// Separate randomness for path impairments: an independent stream, so
    /// enabling a `PathModel` never perturbs the loss/AQM draws, and a
    /// no-op model makes no draws at all (the byte-identity contract).
    pub(crate) path_rng: DetRng,
}

impl Link {
    pub(crate) fn new(id: LinkId, from: NodeId, to: NodeId, cfg: &LinkConfig, seed: u64) -> Self {
        Link {
            id,
            from,
            to,
            rate: cfg.rate,
            delay: cfg.delay,
            queue: cfg.queue.build(),
            loss: cfg.loss.clone(),
            path: cfg.path.clone(),
            markers: MarkerBank::default(),
            transmitting: false,
            in_flight: None,
            rng: DetRng::stream(seed, 0x11AC ^ id as u64),
            path_rng: DetRng::stream(seed, 0x9A77 ^ id as u64),
        }
    }

    /// Attach a traffic conditioner for one flow at this link's ingress.
    pub fn set_marker(&mut self, flow: FlowId, marker: Marker) {
        self.markers.set(flow, marker);
    }

    /// Whether a conditioner is installed for `flow`.
    pub fn has_marker(&self, flow: FlowId) -> bool {
        self.markers.contains(flow)
    }

    /// Packets currently queued (excluding the one being serialized).
    pub fn queue_len(&self) -> usize {
        self.queue.len_pkts()
    }

    /// Bytes currently queued.
    pub fn queue_bytes(&self) -> usize {
        self.queue.len_bytes()
    }
}

impl std::fmt::Debug for Link {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Link")
            .field("id", &self.id)
            .field("from", &self.from)
            .field("to", &self.to)
            .field("rate", &self.rate)
            .field("delay", &self.delay)
            .field("queue_len", &self.queue.len_pkts())
            .field("transmitting", &self.transmitting)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::marker::TokenBucketMarker;

    #[test]
    fn config_builders() {
        let cfg = LinkConfig::new(Rate::from_mbps(10), Duration::from_millis(5))
            .with_queue(QueueConfig::DropTailPkts(7))
            .with_loss(LossModel::bernoulli(0.1));
        let link = Link::new(0, 1, 2, &cfg, 42);
        assert_eq!(link.rate, Rate::from_mbps(10));
        assert_eq!(link.delay, Duration::from_millis(5));
        assert_eq!(link.queue_len(), 0);
        assert!(!link.transmitting);
    }

    #[test]
    fn marker_registration() {
        let cfg = LinkConfig::new(Rate::from_mbps(1), Duration::ZERO);
        let mut link = Link::new(0, 0, 1, &cfg, 1);
        link.set_marker(
            3,
            Marker::TokenBucket(TokenBucketMarker::new(Rate::from_kbps(500), 3000)),
        );
        assert!(link.has_marker(3));
        assert!(!link.has_marker(4));
        assert!(!link.has_marker(2), "below-base lookups are misses");
    }

    #[test]
    fn marker_bank_grows_in_both_directions() {
        let cfg = LinkConfig::new(Rate::from_mbps(1), Duration::ZERO);
        let mut link = Link::new(0, 0, 1, &cfg, 1);
        let tb = || Marker::TokenBucket(TokenBucketMarker::new(Rate::from_kbps(500), 3000));
        link.set_marker(100, tb());
        link.set_marker(3, tb()); // below base: shifts the table down
        link.set_marker(50, tb());
        for f in [3, 50, 100] {
            assert!(link.has_marker(f), "flow {f}");
            assert!(link.markers.get_mut(f).is_some(), "flow {f}");
        }
        for f in [0, 2, 4, 49, 51, 99, 101] {
            assert!(!link.has_marker(f), "flow {f}");
            assert!(link.markers.get_mut(f).is_none(), "flow {f}");
        }
    }
}
