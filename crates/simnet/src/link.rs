//! Simplex links: a queue, a serializer and a propagation pipe.
//!
//! A [`Link`] owns its egress queue, an optional per-flow marker bank (the
//! DiffServ traffic conditioner sits at the entry of an edge link) and a
//! loss model applied to packets in flight. Timing is orchestrated by the
//! simulator; the link only holds state.

use std::collections::BTreeMap;
use std::time::Duration;

use crate::loss::LossModel;
use crate::marker::Marker;
use crate::packet::{FlowId, LinkId, NodeId, Packet};
use crate::queue::{AqmQueue, QueueConfig};
use crate::rng::DetRng;
use crate::time::Rate;

/// Static description of a simplex link.
#[derive(Debug, Clone)]
pub struct LinkConfig {
    /// Serialization rate.
    pub rate: Rate,
    /// One-way propagation delay.
    pub delay: Duration,
    /// Egress queue discipline.
    pub queue: QueueConfig,
    /// In-flight loss process.
    pub loss: LossModel,
}

impl LinkConfig {
    /// A sensible default: rate + delay with a 100-packet drop-tail queue
    /// and no transmission loss.
    pub fn new(rate: Rate, delay: Duration) -> Self {
        LinkConfig {
            rate,
            delay,
            queue: QueueConfig::DropTailPkts(100),
            loss: LossModel::None,
        }
    }

    /// Replace the queue discipline.
    pub fn with_queue(mut self, queue: QueueConfig) -> Self {
        self.queue = queue;
        self
    }

    /// Replace the loss model.
    pub fn with_loss(mut self, loss: LossModel) -> Self {
        self.loss = loss;
        self
    }
}

/// Runtime state of a simplex link.
pub struct Link {
    /// Own id (index into the simulator's link table).
    pub id: LinkId,
    /// Upstream node.
    pub from: NodeId,
    /// Downstream node.
    pub to: NodeId,
    /// Serialization rate.
    pub rate: Rate,
    /// Propagation delay.
    pub delay: Duration,
    /// Egress queue.
    pub(crate) queue: AqmQueue,
    /// Loss process for packets in flight.
    pub(crate) loss: LossModel,
    /// Per-flow traffic conditioners applied at enqueue.
    pub(crate) markers: BTreeMap<FlowId, Marker>,
    /// Whether a packet is currently being serialized.
    pub(crate) transmitting: bool,
    /// The packet on the wire (being serialized), if any.
    pub(crate) in_flight: Option<Packet>,
    /// Private randomness for AQM and loss decisions.
    pub(crate) rng: DetRng,
}

impl Link {
    pub(crate) fn new(id: LinkId, from: NodeId, to: NodeId, cfg: &LinkConfig, seed: u64) -> Self {
        Link {
            id,
            from,
            to,
            rate: cfg.rate,
            delay: cfg.delay,
            queue: cfg.queue.build(),
            loss: cfg.loss.clone(),
            markers: BTreeMap::new(),
            transmitting: false,
            in_flight: None,
            rng: DetRng::stream(seed, 0x11AC ^ id as u64),
        }
    }

    /// Attach a traffic conditioner for one flow at this link's ingress.
    pub fn set_marker(&mut self, flow: FlowId, marker: Marker) {
        self.markers.insert(flow, marker);
    }

    /// Packets currently queued (excluding the one being serialized).
    pub fn queue_len(&self) -> usize {
        self.queue.len_pkts()
    }

    /// Bytes currently queued.
    pub fn queue_bytes(&self) -> usize {
        self.queue.len_bytes()
    }
}

impl std::fmt::Debug for Link {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Link")
            .field("id", &self.id)
            .field("from", &self.from)
            .field("to", &self.to)
            .field("rate", &self.rate)
            .field("delay", &self.delay)
            .field("queue_len", &self.queue.len_pkts())
            .field("transmitting", &self.transmitting)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::marker::TokenBucketMarker;

    #[test]
    fn config_builders() {
        let cfg = LinkConfig::new(Rate::from_mbps(10), Duration::from_millis(5))
            .with_queue(QueueConfig::DropTailPkts(7))
            .with_loss(LossModel::bernoulli(0.1));
        let link = Link::new(0, 1, 2, &cfg, 42);
        assert_eq!(link.rate, Rate::from_mbps(10));
        assert_eq!(link.delay, Duration::from_millis(5));
        assert_eq!(link.queue_len(), 0);
        assert!(!link.transmitting);
    }

    #[test]
    fn marker_registration() {
        let cfg = LinkConfig::new(Rate::from_mbps(1), Duration::ZERO);
        let mut link = Link::new(0, 0, 1, &cfg, 1);
        link.set_marker(
            3,
            Marker::TokenBucket(TokenBucketMarker::new(Rate::from_kbps(500), 3000)),
        );
        assert!(link.markers.contains_key(&3));
        assert!(!link.markers.contains_key(&4));
    }
}
