//! # qtp-simnet — deterministic packet-network simulator
//!
//! The experimental substrate for the QTP transport reproduction: a
//! discrete-event, packet-level network simulator in the spirit of ns-2,
//! but deterministic by construction (same seed ⇒ bit-identical run) and
//! sans-io (protocol agents are plain state machines driven by the event
//! loop; they never touch clocks or sockets).
//!
//! ## What it models
//!
//! * **Links** with serialization rate, propagation delay, an egress queue
//!   and an in-flight loss process.
//! * **Queues**: drop-tail, RED, and RIO (RED In/Out) — the DiffServ
//!   Assured-Forwarding core queue.
//! * **Markers**: two-color token bucket, srTCM (RFC 2697), trTCM
//!   (RFC 2698) edge traffic conditioners.
//! * **Loss models**: Bernoulli and Gilbert–Elliott (bursty wireless).
//! * **Agents**: anything implementing [`sim::Agent`] — the QTP/TFRC/TCP
//!   endpoints live in sibling crates; CBR/Poisson/on-off background
//!   sources ship here.
//! * **Measurement**: per-flow counters and throughput series, per-link
//!   drop breakdowns by cause and DiffServ color, fairness and smoothness
//!   summary statistics.
//!
//! ## Quick example
//!
//! ```
//! use std::time::Duration;
//! use qtp_simnet::prelude::*;
//!
//! let mut b = NetworkBuilder::new();
//! let tx = b.host();
//! let rx = b.host();
//! b.duplex_link(tx, rx, LinkConfig::new(Rate::from_mbps(10), Duration::from_millis(5)));
//! let mut sim = b.build(42);
//! let flow = sim.register_flow("cbr");
//! sim.attach_agent(tx, Box::new(CbrSource::new(flow, rx, 1250, Rate::from_mbps(2))));
//! sim.attach_agent(rx, Box::new(Sink));
//! sim.run_until(SimTime::from_secs(10));
//! let got = sim.stats().flow(flow).throughput_bps(Duration::from_secs(10));
//! assert!((got - 2e6).abs() < 2e4);
//! ```

pub mod agents;
pub mod arena;
pub mod calendar;
pub mod link;
pub mod loss;
pub mod marker;
pub mod packet;
pub mod path;
pub mod queue;
pub mod rng;
pub mod sim;
pub mod stats;
pub mod time;
pub mod topology;
pub mod trace;

/// One-stop imports for simulation drivers.
pub mod prelude {
    pub use crate::agents::{CbrSource, OnOffSource, PoissonSource, Sink};
    pub use crate::arena::{PacketArena, PacketId};
    pub use crate::calendar::CalendarQueue;
    pub use crate::link::LinkConfig;
    pub use crate::loss::LossModel;
    pub use crate::marker::{Marker, SrTcm, TokenBucketMarker, TrTcm};
    pub use crate::packet::{Color, FlowId, LinkId, NodeId, Packet, QueuedPacket};
    pub use crate::path::{PathModel, ReorderSpec};
    pub use crate::queue::{DropReason, QueueConfig, RedParams, RioParams};
    pub use crate::rng::DetRng;
    pub use crate::sim::{Agent, Ctx, NetworkBuilder, Simulator};
    pub use crate::stats::{cov, jain_index, mean, std_dev, Stats};
    pub use crate::time::{Rate, SimTime};
    pub use crate::topology::{
        Dumbbell, DumbbellConfig, Handover, HandoverConfig, LongFatPipe, LongFatPipeConfig,
    };
    pub use crate::trace::TraceEvent;
}
