//! Generic traffic agents: constant-bit-rate, Poisson and on/off sources,
//! plus a counting sink. These provide the background load in the DiffServ
//! experiments and the raw-UDP comparison points.

use std::time::Duration;

use crate::packet::{FlowId, NodeId, Packet};
use crate::sim::{Agent, Ctx};
use crate::time::{Rate, SimTime};

/// Constant-bit-rate source: a packet of `pkt_size` every
/// `pkt_size * 8 / rate` seconds between `start` and `stop`.
pub struct CbrSource {
    flow: FlowId,
    dst: NodeId,
    pkt_size: u32,
    interval: Duration,
    start: SimTime,
    stop: SimTime,
}

impl CbrSource {
    pub fn new(flow: FlowId, dst: NodeId, pkt_size: u32, rate: Rate) -> Self {
        CbrSource {
            flow,
            dst,
            pkt_size,
            interval: rate.tx_time(pkt_size),
            start: SimTime::ZERO,
            stop: SimTime::MAX,
        }
    }

    /// Restrict the active period.
    pub fn active(mut self, start: SimTime, stop: SimTime) -> Self {
        self.start = start;
        self.stop = stop;
        self
    }
}

impl Agent for CbrSource {
    fn on_start(&mut self, ctx: &mut Ctx) {
        ctx.set_timer_at(self.start, 0);
    }

    fn on_timer(&mut self, ctx: &mut Ctx, _token: u64) {
        if ctx.now >= self.stop {
            return;
        }
        ctx.send_new(self.flow, self.dst, self.pkt_size, Vec::new());
        ctx.set_timer_in(self.interval, 0);
    }
}

/// Poisson source: exponential inter-packet gaps with the given mean rate.
pub struct PoissonSource {
    flow: FlowId,
    dst: NodeId,
    pkt_size: u32,
    mean_interval_s: f64,
    stop: SimTime,
}

impl PoissonSource {
    pub fn new(flow: FlowId, dst: NodeId, pkt_size: u32, rate: Rate) -> Self {
        PoissonSource {
            flow,
            dst,
            pkt_size,
            mean_interval_s: pkt_size as f64 * 8.0 / rate.bps() as f64,
            stop: SimTime::MAX,
        }
    }

    /// Stop sending after `stop`.
    pub fn until(mut self, stop: SimTime) -> Self {
        self.stop = stop;
        self
    }
}

impl Agent for PoissonSource {
    fn on_start(&mut self, ctx: &mut Ctx) {
        let gap = ctx.rng.exponential(self.mean_interval_s);
        ctx.set_timer_in(Duration::from_secs_f64(gap), 0);
    }

    fn on_timer(&mut self, ctx: &mut Ctx, _token: u64) {
        if ctx.now >= self.stop {
            return;
        }
        ctx.send_new(self.flow, self.dst, self.pkt_size, Vec::new());
        let gap = ctx.rng.exponential(self.mean_interval_s);
        ctx.set_timer_in(Duration::from_secs_f64(gap), 0);
    }
}

/// Exponential on/off source: CBR while "on", silent while "off", with
/// exponentially distributed period lengths — the classic bursty background
/// workload of DiffServ studies.
pub struct OnOffSource {
    flow: FlowId,
    dst: NodeId,
    pkt_size: u32,
    interval: Duration,
    mean_on_s: f64,
    mean_off_s: f64,
    on: bool,
    /// When the current on-period ends (only meaningful while `on`).
    period_end: SimTime,
}

/// Timer tokens used by [`OnOffSource`].
const TOKEN_SEND: u64 = 0;
const TOKEN_TOGGLE: u64 = 1;

impl OnOffSource {
    pub fn new(
        flow: FlowId,
        dst: NodeId,
        pkt_size: u32,
        on_rate: Rate,
        mean_on: Duration,
        mean_off: Duration,
    ) -> Self {
        OnOffSource {
            flow,
            dst,
            pkt_size,
            interval: on_rate.tx_time(pkt_size),
            mean_on_s: mean_on.as_secs_f64(),
            mean_off_s: mean_off.as_secs_f64(),
            on: false,
            period_end: SimTime::ZERO,
        }
    }
}

impl Agent for OnOffSource {
    fn on_start(&mut self, ctx: &mut Ctx) {
        // Begin with an off-period so sources desynchronize naturally.
        let off = ctx.rng.exponential(self.mean_off_s);
        ctx.set_timer_in(Duration::from_secs_f64(off), TOKEN_TOGGLE);
    }

    fn on_timer(&mut self, ctx: &mut Ctx, token: u64) {
        match token {
            TOKEN_TOGGLE => {
                self.on = !self.on;
                if self.on {
                    let on_len = ctx.rng.exponential(self.mean_on_s);
                    self.period_end = ctx.now + Duration::from_secs_f64(on_len);
                    ctx.set_timer_at(self.period_end, TOKEN_TOGGLE);
                    ctx.set_timer_in(Duration::ZERO, TOKEN_SEND);
                } else {
                    let off_len = ctx.rng.exponential(self.mean_off_s);
                    ctx.set_timer_in(Duration::from_secs_f64(off_len), TOKEN_TOGGLE);
                }
            }
            TOKEN_SEND => {
                if self.on && ctx.now < self.period_end {
                    ctx.send_new(self.flow, self.dst, self.pkt_size, Vec::new());
                    ctx.set_timer_in(self.interval, TOKEN_SEND);
                }
            }
            _ => unreachable!("unknown token"),
        }
    }
}

/// Counts everything it receives as application-delivered bytes. Attach to
/// the destination host of raw (transport-less) flows so goodput equals
/// arrival rate.
pub struct Sink;

impl Agent for Sink {
    fn on_packet(&mut self, ctx: &mut Ctx, pkt: &Packet) {
        ctx.stats.app_deliver(pkt.flow, pkt.wire_size as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkConfig;
    use crate::sim::NetworkBuilder;

    fn harness() -> (crate::sim::Simulator, NodeId, NodeId) {
        let mut b = NetworkBuilder::new();
        let a = b.host();
        let c = b.host();
        b.duplex_link(
            a,
            c,
            LinkConfig::new(Rate::from_mbps(100), Duration::from_millis(1)),
        );
        (b.build(5), a, c)
    }

    #[test]
    fn cbr_hits_configured_rate() {
        let (mut sim, a, c) = harness();
        let flow = sim.register_flow("cbr");
        sim.attach_agent(
            a,
            Box::new(CbrSource::new(flow, c, 1250, Rate::from_mbps(2))),
        );
        sim.attach_agent(c, Box::new(Sink));
        sim.run_until(SimTime::from_secs(10));
        let bps = sim
            .stats()
            .flow(flow)
            .throughput_bps(Duration::from_secs(10));
        assert!((bps - 2_000_000.0).abs() < 20_000.0, "bps={bps}");
        // Sink delivered everything.
        assert_eq!(
            sim.stats().flow(flow).bytes_app_delivered,
            sim.stats().flow(flow).bytes_arrived
        );
    }

    #[test]
    fn cbr_respects_active_window() {
        let (mut sim, a, c) = harness();
        let flow = sim.register_flow("cbr");
        sim.attach_agent(
            a,
            Box::new(
                CbrSource::new(flow, c, 1250, Rate::from_mbps(2))
                    .active(SimTime::from_secs(2), SimTime::from_secs(4)),
            ),
        );
        sim.run_until(SimTime::from_secs(10));
        let sent = sim.stats().flow(flow).bytes_sent;
        // 2 s at 2 Mbit/s = 500 kB.
        assert!((sent as f64 - 500_000.0).abs() < 10_000.0, "sent={sent}");
    }

    #[test]
    fn poisson_mean_rate_is_close() {
        let (mut sim, a, c) = harness();
        let flow = sim.register_flow("poisson");
        sim.attach_agent(
            a,
            Box::new(PoissonSource::new(flow, c, 1250, Rate::from_mbps(2))),
        );
        sim.run_until(SimTime::from_secs(60));
        let bps = sim.stats().flow(flow).bytes_sent as f64 * 8.0 / 60.0;
        assert!(
            (bps - 2_000_000.0).abs() < 100_000.0,
            "mean offered rate {bps}"
        );
    }

    #[test]
    fn onoff_duty_cycle_halves_mean_rate() {
        let (mut sim, a, c) = harness();
        let flow = sim.register_flow("onoff");
        sim.attach_agent(
            a,
            Box::new(OnOffSource::new(
                flow,
                c,
                1250,
                Rate::from_mbps(4),
                Duration::from_millis(500),
                Duration::from_millis(500),
            )),
        );
        sim.run_until(SimTime::from_secs(120));
        let bps = sim.stats().flow(flow).bytes_sent as f64 * 8.0 / 120.0;
        // 50% duty cycle of 4 Mbit/s ~ 2 Mbit/s; generous tolerance since
        // period lengths are exponential.
        assert!(
            (bps - 2_000_000.0).abs() < 400_000.0,
            "mean offered rate {bps}"
        );
    }
}
