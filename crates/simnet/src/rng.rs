//! Deterministic pseudo-random number generation.
//!
//! Every stochastic element of the simulator (loss models, RED, traffic
//! sources) draws from its own [`DetRng`] stream, seeded from the master
//! simulation seed plus a stream identifier. Streams are independent, so
//! adding a flow or a queue never perturbs the draws of existing components —
//! a property plain `rand` sharing one generator would not give us, and the
//! reason experiment outputs are bit-reproducible across runs.
//!
//! The generator is xoshiro256** (public domain, Blackman & Vigna), seeded
//! through SplitMix64 as its authors recommend.

/// SplitMix64 step, used for seeding and stream derivation.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256** generator.
#[derive(Debug, Clone)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro must not start from the all-zero state.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E3779B97F4A7C15;
        }
        DetRng { s }
    }

    /// Derive an independent stream from a master seed and a stream id.
    ///
    /// Mixing through SplitMix64 twice decorrelates consecutive ids.
    pub fn stream(master_seed: u64, stream_id: u64) -> Self {
        let mut sm = master_seed ^ stream_id.wrapping_mul(0xA24BAED4963EE407);
        let s0 = splitmix64(&mut sm);
        let s1 = splitmix64(&mut sm);
        DetRng::new(s0 ^ s1.rotate_left(17))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    ///
    /// Uses Lemire rejection to avoid modulo bias.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let t = n.wrapping_neg() % n;
            while lo < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform float in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Exponentially distributed value with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        // Inverse-CDF; 1 - U avoids ln(0).
        -mean * (1.0 - self.next_f64()).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn streams_are_independent() {
        let mut a = DetRng::stream(7, 0);
        let mut b = DetRng::stream(7, 1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = DetRng::new(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn chance_frequency_close_to_p() {
        let mut r = DetRng::new(11);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.chance(0.3)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.3).abs() < 0.01, "freq={freq}");
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = DetRng::new(13);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = r.below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = DetRng::new(17);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.exponential(5.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn uniform_bounds() {
        let mut r = DetRng::new(19);
        for _ in 0..1_000 {
            let x = r.uniform(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }
}
