//! Link egress queues and active queue management.
//!
//! Three disciplines are provided:
//!
//! * [`DropTailQueue`] — FIFO with a byte or packet limit.
//! * [`RedQueue`] — Random Early Detection in the classic ns-2 formulation
//!   (EWMA average queue, count-corrected drop probability, optional
//!   "gentle" ramp above `max_th`).
//! * [`RioQueue`] — RED with In/Out (coupled "RIO-C"), the standard core
//!   queue for DiffServ Assured Forwarding: green (in-profile) packets are
//!   judged against the *in* average and thresholds, other packets against
//!   the *total* average with more aggressive thresholds, so congestion
//!   discards out-of-profile traffic first.
//!
//! Queues are deliberately passive: they decide accept/drop at enqueue time
//! and hand packets back at dequeue time; the link owns serialization timing.

use std::collections::VecDeque;

use crate::packet::{Color, QueuedPacket};
use crate::rng::DetRng;
use crate::time::SimTime;

/// Why a queue refused a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropReason {
    /// Hard limit reached (tail drop).
    QueueFull,
    /// RED/RIO probabilistic early drop.
    EarlyDrop,
    /// RED/RIO forced drop (average beyond hard threshold).
    ForcedDrop,
    /// Lost by the link's loss model (never produced by queues; shares the
    /// enum so statistics can aggregate every loss cause).
    LinkLoss,
}

/// Result of an enqueue attempt: the packet comes back on rejection so the
/// caller can trace it and release its arena slot.
pub type EnqueueResult = Result<(), (QueuedPacket, DropReason)>;

/// Configuration for any of the supported queue disciplines.
#[derive(Debug, Clone)]
pub enum QueueConfig {
    /// FIFO limited to a number of packets.
    DropTailPkts(usize),
    /// FIFO limited to a number of bytes.
    DropTailBytes(usize),
    /// Single-average RED.
    Red(RedParams),
    /// Two-average RED with In/Out (DiffServ AF core queue).
    Rio(RioParams),
}

impl QueueConfig {
    /// Instantiate the discipline.
    pub fn build(&self) -> AqmQueue {
        match self {
            QueueConfig::DropTailPkts(n) => AqmQueue::DropTail(DropTailQueue::with_pkt_limit(*n)),
            QueueConfig::DropTailBytes(b) => AqmQueue::DropTail(DropTailQueue::with_byte_limit(*b)),
            QueueConfig::Red(p) => AqmQueue::Red(RedQueue::new(p.clone())),
            QueueConfig::Rio(p) => AqmQueue::Rio(RioQueue::new(p.clone())),
        }
    }
}

/// A queue discipline instance. Enum dispatch keeps the hot path free of
/// virtual calls and the set of disciplines is closed by design.
#[derive(Debug)]
pub enum AqmQueue {
    DropTail(DropTailQueue),
    Red(RedQueue),
    Rio(RioQueue),
}

impl AqmQueue {
    /// Offer a packet to the queue.
    pub fn enqueue(&mut self, now: SimTime, pkt: QueuedPacket, rng: &mut DetRng) -> EnqueueResult {
        match self {
            AqmQueue::DropTail(q) => q.enqueue(pkt),
            AqmQueue::Red(q) => q.enqueue(now, pkt, rng),
            AqmQueue::Rio(q) => q.enqueue(now, pkt, rng),
        }
    }

    /// Remove the next packet to transmit.
    pub fn dequeue(&mut self, now: SimTime) -> Option<QueuedPacket> {
        match self {
            AqmQueue::DropTail(q) => q.dequeue(),
            AqmQueue::Red(q) => q.dequeue(now),
            AqmQueue::Rio(q) => q.dequeue(now),
        }
    }

    /// Packets currently queued.
    pub fn len_pkts(&self) -> usize {
        match self {
            AqmQueue::DropTail(q) => q.fifo.len(),
            AqmQueue::Red(q) => q.fifo.len(),
            AqmQueue::Rio(q) => q.fifo.len(),
        }
    }

    /// Bytes currently queued.
    pub fn len_bytes(&self) -> usize {
        match self {
            AqmQueue::DropTail(q) => q.bytes,
            AqmQueue::Red(q) => q.bytes,
            AqmQueue::Rio(q) => q.bytes,
        }
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len_pkts() == 0
    }
}

/// Plain FIFO with a hard limit.
#[derive(Debug)]
pub struct DropTailQueue {
    fifo: VecDeque<QueuedPacket>,
    bytes: usize,
    limit_pkts: usize,
    limit_bytes: usize,
}

impl DropTailQueue {
    /// FIFO bounded by packet count.
    pub fn with_pkt_limit(limit: usize) -> Self {
        DropTailQueue {
            fifo: VecDeque::new(),
            bytes: 0,
            limit_pkts: limit,
            limit_bytes: usize::MAX,
        }
    }

    /// FIFO bounded by byte count.
    pub fn with_byte_limit(limit: usize) -> Self {
        DropTailQueue {
            fifo: VecDeque::new(),
            bytes: 0,
            limit_pkts: usize::MAX,
            limit_bytes: limit,
        }
    }

    fn enqueue(&mut self, pkt: QueuedPacket) -> EnqueueResult {
        if self.fifo.len() + 1 > self.limit_pkts
            || self.bytes + pkt.wire_size as usize > self.limit_bytes
        {
            return Err((pkt, DropReason::QueueFull));
        }
        self.bytes += pkt.wire_size as usize;
        self.fifo.push_back(pkt);
        Ok(())
    }

    fn dequeue(&mut self) -> Option<QueuedPacket> {
        let pkt = self.fifo.pop_front()?;
        self.bytes -= pkt.wire_size as usize;
        Some(pkt)
    }
}

/// RED parameters (thresholds in packets, as in ns-2's default mode).
#[derive(Debug, Clone)]
pub struct RedParams {
    /// Average queue length below which no packet is dropped.
    pub min_th: f64,
    /// Average queue length above which every packet is dropped (or, with
    /// `gentle`, the start of the ramp toward certain drop at `2*max_th`).
    pub max_th: f64,
    /// Maximum early-drop probability at `max_th`.
    pub max_p: f64,
    /// EWMA weight for the average queue size.
    pub w_q: f64,
    /// Hard limit in packets (tail drop beyond this).
    pub limit_pkts: usize,
    /// Gentle mode: linear ramp `max_p → 1` between `max_th` and `2*max_th`
    /// instead of a cliff.
    pub gentle: bool,
    /// Mean packet transmission time, used to age the average across idle
    /// periods (ns-2's `ptc` idle compensation).
    pub mean_pkt_time_s: f64,
}

impl Default for RedParams {
    fn default() -> Self {
        RedParams {
            min_th: 5.0,
            max_th: 15.0,
            max_p: 0.1,
            w_q: 0.002,
            limit_pkts: 60,
            gentle: true,
            mean_pkt_time_s: 0.001,
        }
    }
}

/// The EWMA/count state RED keeps per managed average.
#[derive(Debug, Clone)]
struct RedVar {
    avg: f64,
    /// Packets since the last early drop; drives the count correction that
    /// spaces drops out evenly.
    count: i64,
}

impl RedVar {
    fn new() -> Self {
        RedVar {
            avg: 0.0,
            count: -1,
        }
    }

    /// Update the average on packet arrival given the instantaneous queue
    /// length `q` (in packets).
    fn update_avg(&mut self, q: f64, w_q: f64, idle: Option<f64>, mean_pkt_time_s: f64) {
        if let Some(idle_s) = idle {
            // Queue was idle: decay the average as if `m` small packets had
            // been transmitted through an empty queue.
            let m = (idle_s / mean_pkt_time_s).max(0.0);
            self.avg *= (1.0 - w_q).powf(m);
        }
        self.avg = (1.0 - w_q) * self.avg + w_q * q;
    }

    /// Decide whether to early/force-drop at the current average.
    fn drop_decision(&mut self, p: &RedParams, rng: &mut DetRng) -> Option<DropReason> {
        let hard_max = if p.gentle { 2.0 * p.max_th } else { p.max_th };
        if self.avg < p.min_th {
            self.count = -1;
            return None;
        }
        if self.avg >= hard_max {
            self.count = 0;
            return Some(DropReason::ForcedDrop);
        }
        // Base probability p_b.
        let p_b = if self.avg < p.max_th {
            p.max_p * (self.avg - p.min_th) / (p.max_th - p.min_th)
        } else {
            // gentle region
            p.max_p + (1.0 - p.max_p) * (self.avg - p.max_th) / p.max_th
        };
        self.count += 1;
        // Count correction: p_a = p_b / (1 - count * p_b).
        let denom = 1.0 - self.count as f64 * p_b;
        let p_a = if denom <= 0.0 {
            1.0
        } else {
            (p_b / denom).min(1.0)
        };
        if rng.chance(p_a) {
            self.count = 0;
            Some(DropReason::EarlyDrop)
        } else {
            None
        }
    }
}

/// Classic single-average RED.
#[derive(Debug)]
pub struct RedQueue {
    params: RedParams,
    var: RedVar,
    fifo: VecDeque<QueuedPacket>,
    bytes: usize,
    /// Time the queue went idle, if currently empty.
    idle_since: Option<SimTime>,
}

impl RedQueue {
    pub fn new(params: RedParams) -> Self {
        RedQueue {
            params,
            var: RedVar::new(),
            fifo: VecDeque::new(),
            bytes: 0,
            idle_since: Some(SimTime::ZERO),
        }
    }

    /// Current average queue estimate (exposed for tests and stats).
    pub fn avg(&self) -> f64 {
        self.var.avg
    }

    fn enqueue(&mut self, now: SimTime, pkt: QueuedPacket, rng: &mut DetRng) -> EnqueueResult {
        let idle = self
            .idle_since
            .take()
            .map(|t| now.saturating_since(t).as_secs_f64());
        self.var.update_avg(
            self.fifo.len() as f64,
            self.params.w_q,
            idle,
            self.params.mean_pkt_time_s,
        );
        if let Some(reason) = self.var.drop_decision(&self.params, rng) {
            return Err((pkt, reason));
        }
        if self.fifo.len() + 1 > self.params.limit_pkts {
            return Err((pkt, DropReason::QueueFull));
        }
        self.bytes += pkt.wire_size as usize;
        self.fifo.push_back(pkt);
        Ok(())
    }

    fn dequeue(&mut self, now: SimTime) -> Option<QueuedPacket> {
        let pkt = self.fifo.pop_front()?;
        self.bytes -= pkt.wire_size as usize;
        if self.fifo.is_empty() {
            self.idle_since = Some(now);
        }
        Some(pkt)
    }
}

/// RIO-C parameters: separate RED parameter sets for in-profile (green)
/// traffic and for the aggregate.
#[derive(Debug, Clone)]
pub struct RioParams {
    /// Thresholds applied to *green* packets against the green-only average.
    pub in_params: RedParams,
    /// Thresholds applied to yellow/red packets against the *total* average.
    /// Conventionally more aggressive (`min_th_out < min_th_in`).
    pub out_params: RedParams,
}

impl Default for RioParams {
    fn default() -> Self {
        // Clark & Fang style: OUT thresholds below IN so out-of-profile
        // traffic absorbs the early discards, with moderate max_p so TCP
        // sees spaced single drops rather than RTO-inducing bursts (the
        // parameterization the AF assurance studies use).
        let in_params = RedParams {
            min_th: 50.0,
            max_th: 90.0,
            max_p: 0.02,
            w_q: 0.002,
            limit_pkts: 120,
            gentle: true,
            mean_pkt_time_s: 0.001,
        };
        let out_params = RedParams {
            min_th: 15.0,
            max_th: 45.0,
            max_p: 0.1,
            w_q: 0.002,
            limit_pkts: 120,
            gentle: true,
            mean_pkt_time_s: 0.001,
        };
        RioParams {
            in_params,
            out_params,
        }
    }
}

/// RED with In/Out, coupled variant (RIO-C).
#[derive(Debug)]
pub struct RioQueue {
    params: RioParams,
    in_var: RedVar,
    total_var: RedVar,
    fifo: VecDeque<QueuedPacket>,
    bytes: usize,
    in_pkts: usize,
    idle_since: Option<SimTime>,
}

impl RioQueue {
    pub fn new(params: RioParams) -> Self {
        RioQueue {
            params,
            in_var: RedVar::new(),
            total_var: RedVar::new(),
            fifo: VecDeque::new(),
            bytes: 0,
            in_pkts: 0,
            idle_since: Some(SimTime::ZERO),
        }
    }

    /// Current (in, total) average queue estimates.
    pub fn avgs(&self) -> (f64, f64) {
        (self.in_var.avg, self.total_var.avg)
    }

    fn enqueue(&mut self, now: SimTime, pkt: QueuedPacket, rng: &mut DetRng) -> EnqueueResult {
        let idle = self
            .idle_since
            .take()
            .map(|t| now.saturating_since(t).as_secs_f64());
        let is_in = pkt.color == Color::Green;
        // The total average always advances; the in average only when an
        // in-profile packet arrives (Clark & Fang).
        self.total_var.update_avg(
            self.fifo.len() as f64,
            self.params.out_params.w_q,
            idle,
            self.params.out_params.mean_pkt_time_s,
        );
        if is_in {
            self.in_var.update_avg(
                self.in_pkts as f64,
                self.params.in_params.w_q,
                idle,
                self.params.in_params.mean_pkt_time_s,
            );
        }
        let decision = if is_in {
            self.in_var.drop_decision(&self.params.in_params, rng)
        } else {
            self.total_var.drop_decision(&self.params.out_params, rng)
        };
        if let Some(reason) = decision {
            return Err((pkt, reason));
        }
        let limit = if is_in {
            self.params.in_params.limit_pkts
        } else {
            self.params.out_params.limit_pkts
        };
        if self.fifo.len() + 1 > limit {
            return Err((pkt, DropReason::QueueFull));
        }
        self.bytes += pkt.wire_size as usize;
        if is_in {
            self.in_pkts += 1;
        }
        self.fifo.push_back(pkt);
        Ok(())
    }

    fn dequeue(&mut self, now: SimTime) -> Option<QueuedPacket> {
        let pkt = self.fifo.pop_front()?;
        self.bytes -= pkt.wire_size as usize;
        if pkt.color == Color::Green {
            self.in_pkts -= 1;
        }
        if self.fifo.is_empty() {
            self.idle_since = Some(now);
        }
        Some(pkt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn pkt(uid: u64, size: u32, color: Color) -> QueuedPacket {
        QueuedPacket {
            id: crate::arena::PacketId::from_raw(uid as u32),
            wire_size: size,
            color,
        }
    }

    #[test]
    fn droptail_respects_pkt_limit() {
        let mut q = QueueConfig::DropTailPkts(2).build();
        let mut rng = DetRng::new(1);
        assert!(q
            .enqueue(SimTime::ZERO, pkt(1, 100, Color::Green), &mut rng)
            .is_ok());
        assert!(q
            .enqueue(SimTime::ZERO, pkt(2, 100, Color::Green), &mut rng)
            .is_ok());
        let err = q
            .enqueue(SimTime::ZERO, pkt(3, 100, Color::Green), &mut rng)
            .unwrap_err();
        assert_eq!(err.1, DropReason::QueueFull);
        assert_eq!(err.0.id.index(), 3);
        assert_eq!(q.len_pkts(), 2);
    }

    #[test]
    fn droptail_respects_byte_limit() {
        let mut q = QueueConfig::DropTailBytes(250).build();
        let mut rng = DetRng::new(1);
        assert!(q
            .enqueue(SimTime::ZERO, pkt(1, 100, Color::Green), &mut rng)
            .is_ok());
        assert!(q
            .enqueue(SimTime::ZERO, pkt(2, 100, Color::Green), &mut rng)
            .is_ok());
        assert!(q
            .enqueue(SimTime::ZERO, pkt(3, 100, Color::Green), &mut rng)
            .is_err());
        assert_eq!(q.len_bytes(), 200);
    }

    #[test]
    fn droptail_fifo_order() {
        let mut q = QueueConfig::DropTailPkts(10).build();
        let mut rng = DetRng::new(1);
        for i in 0..5 {
            q.enqueue(SimTime::ZERO, pkt(i, 100, Color::Green), &mut rng)
                .unwrap();
        }
        for i in 0..5 {
            assert_eq!(q.dequeue(SimTime::ZERO).unwrap().id.index(), i as u32);
        }
        assert!(q.dequeue(SimTime::ZERO).is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn red_no_drops_below_min_threshold() {
        let params = RedParams {
            min_th: 100.0,
            max_th: 200.0,
            limit_pkts: 1000,
            ..RedParams::default()
        };
        let mut q = RedQueue::new(params);
        let mut rng = DetRng::new(7);
        // Instantaneous queue stays far below min_th=100.
        for i in 0..50 {
            assert!(q
                .enqueue(SimTime::ZERO, pkt(i, 100, Color::Green), &mut rng)
                .is_ok());
        }
    }

    #[test]
    fn red_forces_drops_at_saturated_average() {
        // Tiny thresholds and a huge EWMA weight drive avg up immediately.
        let params = RedParams {
            min_th: 1.0,
            max_th: 2.0,
            max_p: 1.0,
            w_q: 1.0,
            limit_pkts: 1000,
            gentle: false,
            mean_pkt_time_s: 0.001,
        };
        let mut q = RedQueue::new(params);
        let mut rng = DetRng::new(7);
        let mut dropped = 0;
        for i in 0..100 {
            if q.enqueue(SimTime::ZERO, pkt(i, 100, Color::Green), &mut rng)
                .is_err()
            {
                dropped += 1;
            }
        }
        assert!(dropped > 50, "dropped={dropped}");
    }

    #[test]
    fn red_average_decays_when_idle() {
        let params = RedParams {
            w_q: 0.5,
            mean_pkt_time_s: 0.001,
            limit_pkts: 1000,
            min_th: 1000.0, // never drop; we only observe the average
            max_th: 2000.0,
            ..RedParams::default()
        };
        let mut q = RedQueue::new(params);
        let mut rng = DetRng::new(7);
        for i in 0..20 {
            q.enqueue(SimTime::ZERO, pkt(i, 100, Color::Green), &mut rng)
                .unwrap();
        }
        let avg_busy = q.avg();
        assert!(avg_busy > 1.0);
        // Drain, then come back after one second of idleness.
        while q.dequeue(SimTime::from_millis(1)).is_some() {}
        q.enqueue(SimTime::from_secs(1), pkt(99, 100, Color::Green), &mut rng)
            .unwrap();
        assert!(
            q.avg() < avg_busy * 0.01,
            "idle decay should collapse the average: {} vs {}",
            q.avg(),
            avg_busy
        );
    }

    #[test]
    fn rio_discards_out_before_in() {
        // Hold the queue near 25 packets: that is above the OUT thresholds
        // (min 10, max 30) but below the IN minimum (40), so red packets are
        // early-dropped while green packets sail through. Parameters pinned
        // explicitly so the test is independent of the defaults.
        let params = RioParams {
            in_params: RedParams {
                min_th: 40.0,
                max_th: 70.0,
                max_p: 0.02,
                w_q: 0.002,
                limit_pkts: 100,
                gentle: true,
                mean_pkt_time_s: 0.001,
            },
            out_params: RedParams {
                min_th: 10.0,
                max_th: 30.0,
                max_p: 0.5,
                w_q: 0.002,
                limit_pkts: 100,
                gentle: true,
                mean_pkt_time_s: 0.001,
            },
        };
        let mut q = RioQueue::new(params);
        let mut rng = DetRng::new(11);
        // Build a 25-packet backlog of green (below every IN threshold).
        for i in 0..25u64 {
            q.enqueue(SimTime::ZERO, pkt(i, 1000, Color::Green), &mut rng)
                .unwrap();
        }
        let mut dropped = [0u32; 3];
        let mut offered = [0u32; 3];
        for i in 25..8000u64 {
            let color = if i % 2 == 0 { Color::Green } else { Color::Red };
            offered[color.index()] += 1;
            let accepted = q
                .enqueue(SimTime::ZERO, pkt(i, 1000, color), &mut rng)
                .is_ok();
            if !accepted {
                dropped[color.index()] += 1;
            } else {
                // One-in-one-out keeps occupancy pinned at ~25.
                q.dequeue(SimTime::ZERO);
            }
        }
        let red_rate = dropped[2] as f64 / offered[2] as f64;
        let green_rate = dropped[0] as f64 / offered[0] as f64;
        assert!(red_rate > 0.05, "red should see early drops: {red_rate:.3}");
        assert!(
            green_rate < red_rate / 10.0,
            "green drop rate {green_rate:.4} should be far below red {red_rate:.3}"
        );
    }

    #[test]
    fn rio_in_average_only_counts_green() {
        let mut q = RioQueue::new(RioParams {
            in_params: RedParams {
                w_q: 1.0,
                min_th: 1000.0,
                max_th: 2000.0,
                limit_pkts: 10_000,
                ..RedParams::default()
            },
            out_params: RedParams {
                w_q: 1.0,
                min_th: 1000.0,
                max_th: 2000.0,
                limit_pkts: 10_000,
                ..RedParams::default()
            },
        });
        let mut rng = DetRng::new(13);
        for i in 0..10u64 {
            q.enqueue(SimTime::ZERO, pkt(i, 100, Color::Red), &mut rng)
                .unwrap();
        }
        let (avg_in, avg_total) = q.avgs();
        assert_eq!(avg_in, 0.0, "no green packet arrived yet");
        assert!(avg_total > 0.0);
    }

    #[test]
    fn red_count_spacing_reduces_burst_drops() {
        // With the count correction, consecutive early drops should be rare:
        // measure the longest run of consecutive drops in the early-drop band.
        let params = RedParams {
            min_th: 2.0,
            max_th: 50.0,
            max_p: 0.1,
            w_q: 1.0, // avg == instantaneous queue
            limit_pkts: 1000,
            gentle: true,
            mean_pkt_time_s: 0.001,
        };
        let mut q = RedQueue::new(params);
        let mut rng = DetRng::new(5);
        // Hold the queue around 26 packets -> p_b ~ 0.05.
        for i in 0..26 {
            let _ = q.enqueue(SimTime::ZERO, pkt(i, 100, Color::Green), &mut rng);
        }
        let mut longest_run = 0;
        let mut run = 0;
        for i in 26..5000u64 {
            let res = q.enqueue(SimTime::ZERO, pkt(i, 100, Color::Green), &mut rng);
            if res.is_err() {
                run += 1;
                longest_run = longest_run.max(run);
            } else {
                run = 0;
                q.dequeue(SimTime::ZERO); // keep occupancy constant
            }
        }
        assert!(longest_run <= 3, "longest_run={longest_run}");
    }
}
