//! The network-layer view of a packet.
//!
//! The simulator forwards packets between nodes without interpreting their
//! transport headers: `header` is an opaque byte vector that the endpoint
//! that owns the flow encodes and decodes. The only fields the network reads
//! are addressing (`src`, `dst`, `flow`), the wire size (for serialization
//! delay and queue occupancy) and the DiffServ `color` (set by edge markers,
//! read by RIO queues).

use crate::time::SimTime;

/// Identifies a transport flow end-to-end. Assigned by the simulator when a
/// flow is registered; carried by every packet of that flow.
pub type FlowId = u32;

/// Index of a node in the simulated topology.
pub type NodeId = usize;

/// Index of a (simplex) link in the simulated topology.
pub type LinkId = usize;

/// DiffServ drop precedence, as assigned by an edge traffic conditioner.
///
/// For the Assured Forwarding experiments only two levels matter: `Green`
/// (in-profile, protected) and `Red` (out-of-profile, dropped first). `Yellow`
/// exists for the three-color markers (srTCM/trTCM).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Color {
    /// In-profile traffic, committed rate. Lowest drop precedence.
    Green,
    /// Excess within the peak/excess burst allowance (three-color markers).
    Yellow,
    /// Out-of-profile traffic. Highest drop precedence.
    Red,
}

impl Color {
    /// All colors, in increasing drop-precedence order.
    pub const ALL: [Color; 3] = [Color::Green, Color::Yellow, Color::Red];

    /// Stable small index for per-color counters.
    pub fn index(self) -> usize {
        match self {
            Color::Green => 0,
            Color::Yellow => 1,
            Color::Red => 2,
        }
    }
}

/// A packet in flight through the simulated network.
#[derive(Debug, Clone)]
pub struct Packet {
    /// Globally unique id, assigned at creation; used for tracing.
    pub uid: u64,
    /// The flow this packet belongs to.
    pub flow: FlowId,
    /// Originating node.
    pub src: NodeId,
    /// Destination node; the simulator routes hop-by-hop toward it.
    pub dst: NodeId,
    /// Total size on the wire in bytes (headers + payload). Determines
    /// serialization time and byte-mode queue occupancy.
    pub wire_size: u32,
    /// DiffServ drop precedence. Packets start `Green`; edge markers may
    /// re-color them.
    pub color: Color,
    /// Time the packet was handed to the network by its source.
    pub created_at: SimTime,
    /// Opaque transport header bytes. The network never reads these.
    ///
    /// Simulated application payload is *not* materialized: `wire_size`
    /// accounts for it, which keeps memory use independent of payload size.
    pub header: Vec<u8>,
}

impl Packet {
    /// Convenience constructor; `uid` must come from the simulator's
    /// allocator ([`crate::sim::Simulator::next_uid`]) for trace uniqueness,
    /// or can be 0 in unit tests that don't care.
    pub fn new(
        uid: u64,
        flow: FlowId,
        src: NodeId,
        dst: NodeId,
        wire_size: u32,
        created_at: SimTime,
        header: Vec<u8>,
    ) -> Self {
        Packet {
            uid,
            flow,
            src,
            dst,
            wire_size,
            color: Color::Green,
            created_at,
            header,
        }
    }
}

/// The slice of a packet that queues and links work with while the full
/// packet sits in the [`crate::arena::PacketArena`]: enough to compute
/// occupancy (`wire_size`), AQM decisions (`color`) and serialization time,
/// without touching the arena from inside a queue.
///
/// `color` is a snapshot taken after the link's marker ran; the arena copy
/// is updated in the same step, so the two never disagree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueuedPacket {
    /// Handle to the full packet in the arena.
    pub id: crate::arena::PacketId,
    /// Total on-wire size in bytes.
    pub wire_size: u32,
    /// Drop precedence at enqueue time (post-marking).
    pub color: Color,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn color_index_is_stable() {
        assert_eq!(Color::Green.index(), 0);
        assert_eq!(Color::Yellow.index(), 1);
        assert_eq!(Color::Red.index(), 2);
        for (i, c) in Color::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn color_ordering_tracks_drop_precedence() {
        assert!(Color::Green < Color::Yellow);
        assert!(Color::Yellow < Color::Red);
    }

    #[test]
    fn new_packet_defaults_green() {
        let p = Packet::new(1, 2, 0, 1, 1500, SimTime::ZERO, vec![0xAB]);
        assert_eq!(p.color, Color::Green);
        assert_eq!(p.wire_size, 1500);
        assert_eq!(p.header, vec![0xAB]);
    }
}
