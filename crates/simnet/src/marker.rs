//! DiffServ edge traffic conditioners (packet markers).
//!
//! A marker watches one flow at the network edge and stamps each packet with
//! a drop precedence [`Color`] according to a token-bucket profile:
//!
//! * [`TokenBucketMarker`] — the two-color conditioner used by the Assured
//!   Forwarding literature this paper builds on (Seddigh et al.): packets
//!   within the committed rate are `Green` (in-profile), the rest `Red`.
//! * [`SrTcm`] — single-rate three-color marker, RFC 2697 (CIR/CBS/EBS).
//! * [`TrTcm`] — two-rate three-color marker, RFC 2698 (CIR/CBS + PIR/PBS).
//!
//! All markers here are color-blind (they ignore incoming color), which is
//! the standard configuration at a first-hop conditioner.

use crate::packet::{Color, Packet};
use crate::time::{Rate, SimTime};

/// A continuously-refilled token bucket, in bytes.
#[derive(Debug, Clone)]
struct Bucket {
    tokens: f64,
    capacity: f64,
    /// Fill rate in bytes per second.
    rate: f64,
    last: SimTime,
}

impl Bucket {
    fn new(rate: Rate, capacity_bytes: u32) -> Self {
        Bucket {
            tokens: capacity_bytes as f64,
            capacity: capacity_bytes as f64,
            rate: rate.bytes_per_sec(),
            last: SimTime::ZERO,
        }
    }

    fn refill(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + dt * self.rate).min(self.capacity);
    }

    /// True (and consumes) if `bytes` tokens are available.
    fn try_take(&mut self, bytes: u32) -> bool {
        if self.tokens >= bytes as f64 {
            self.tokens -= bytes as f64;
            true
        } else {
            false
        }
    }
}

/// Any of the supported marker types.
#[derive(Debug, Clone)]
pub enum Marker {
    /// Leave the packet's color untouched.
    Null,
    /// Two-color committed-rate marker (AF in/out profile).
    TokenBucket(TokenBucketMarker),
    /// RFC 2697 single-rate three-color marker.
    SrTcm(SrTcm),
    /// RFC 2698 two-rate three-color marker.
    TrTcm(TrTcm),
}

impl Marker {
    /// Stamp `pkt.color` according to the profile at time `now`.
    pub fn mark(&mut self, now: SimTime, pkt: &mut Packet) {
        match self {
            Marker::Null => {}
            Marker::TokenBucket(m) => pkt.color = m.color_of(now, pkt.wire_size),
            Marker::SrTcm(m) => pkt.color = m.color_of(now, pkt.wire_size),
            Marker::TrTcm(m) => pkt.color = m.color_of(now, pkt.wire_size),
        }
    }
}

/// Two-color token bucket: `Green` within (CIR, CBS), else `Red`.
#[derive(Debug, Clone)]
pub struct TokenBucketMarker {
    bucket: Bucket,
}

impl TokenBucketMarker {
    /// `cir`: committed information rate; `cbs`: committed burst size, bytes.
    pub fn new(cir: Rate, cbs_bytes: u32) -> Self {
        TokenBucketMarker {
            bucket: Bucket::new(cir, cbs_bytes),
        }
    }

    fn color_of(&mut self, now: SimTime, bytes: u32) -> Color {
        self.bucket.refill(now);
        if self.bucket.try_take(bytes) {
            Color::Green
        } else {
            Color::Red
        }
    }
}

/// RFC 2697 single-rate three-color marker.
///
/// One rate (CIR) feeds two cascaded buckets: the committed bucket (CBS)
/// and, with its overflow, the excess bucket (EBS). Green if C covers the
/// packet, yellow if E does, red otherwise.
#[derive(Debug, Clone)]
pub struct SrTcm {
    cir: f64,
    c_tokens: f64,
    cbs: f64,
    e_tokens: f64,
    ebs: f64,
    last: SimTime,
}

impl SrTcm {
    pub fn new(cir: Rate, cbs_bytes: u32, ebs_bytes: u32) -> Self {
        SrTcm {
            cir: cir.bytes_per_sec(),
            c_tokens: cbs_bytes as f64,
            cbs: cbs_bytes as f64,
            e_tokens: ebs_bytes as f64,
            ebs: ebs_bytes as f64,
            last: SimTime::ZERO,
        }
    }

    fn refill(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last).as_secs_f64();
        self.last = now;
        let mut add = dt * self.cir;
        let c_room = self.cbs - self.c_tokens;
        if add <= c_room {
            self.c_tokens += add;
            return;
        }
        self.c_tokens = self.cbs;
        add -= c_room;
        self.e_tokens = (self.e_tokens + add).min(self.ebs);
    }

    fn color_of(&mut self, now: SimTime, bytes: u32) -> Color {
        self.refill(now);
        let b = bytes as f64;
        if self.c_tokens >= b {
            self.c_tokens -= b;
            Color::Green
        } else if self.e_tokens >= b {
            self.e_tokens -= b;
            Color::Yellow
        } else {
            Color::Red
        }
    }
}

/// RFC 2698 two-rate three-color marker.
///
/// Red if the packet exceeds the peak bucket (PIR/PBS); otherwise yellow if
/// it exceeds the committed bucket (CIR/CBS); otherwise green (consuming
/// from both).
#[derive(Debug, Clone)]
pub struct TrTcm {
    peak: Bucket,
    committed: Bucket,
}

impl TrTcm {
    pub fn new(cir: Rate, cbs_bytes: u32, pir: Rate, pbs_bytes: u32) -> Self {
        TrTcm {
            peak: Bucket::new(pir, pbs_bytes),
            committed: Bucket::new(cir, cbs_bytes),
        }
    }

    fn color_of(&mut self, now: SimTime, bytes: u32) -> Color {
        self.peak.refill(now);
        self.committed.refill(now);
        let b = bytes as f64;
        if self.peak.tokens < b {
            return Color::Red;
        }
        self.peak.tokens -= b;
        if self.committed.tokens < b {
            Color::Yellow
        } else {
            self.committed.tokens -= b;
            Color::Green
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PKT: u32 = 1000;

    fn drain_colors(marker: &mut Marker, n: usize, interval_us: u64) -> Vec<Color> {
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let now = SimTime::from_micros(i as u64 * interval_us);
            let mut p = Packet::new(i as u64, 0, 0, 1, PKT, now, Vec::new());
            marker.mark(now, &mut p);
            out.push(p.color);
        }
        out
    }

    #[test]
    fn null_marker_preserves_color() {
        let mut m = Marker::Null;
        let mut p = Packet::new(0, 0, 0, 1, PKT, SimTime::ZERO, Vec::new());
        p.color = Color::Red;
        m.mark(SimTime::ZERO, &mut p);
        assert_eq!(p.color, Color::Red);
    }

    #[test]
    fn token_bucket_long_run_green_rate_matches_cir() {
        // Offer 10 Mbit/s (1000B every 800 us) against CIR = 5 Mbit/s:
        // about half the packets should end up green.
        let mut m = Marker::TokenBucket(TokenBucketMarker::new(Rate::from_mbps(5), 3 * PKT));
        let colors = drain_colors(&mut m, 10_000, 800);
        let green = colors.iter().filter(|&&c| c == Color::Green).count();
        let frac = green as f64 / colors.len() as f64;
        assert!((frac - 0.5).abs() < 0.02, "green fraction {frac}");
    }

    #[test]
    fn token_bucket_all_green_when_within_profile() {
        // Offer 1 Mbit/s against CIR = 5 Mbit/s: everything green.
        let mut m = Marker::TokenBucket(TokenBucketMarker::new(Rate::from_mbps(5), 3 * PKT));
        let colors = drain_colors(&mut m, 1_000, 8_000);
        assert!(colors.iter().all(|&c| c == Color::Green));
    }

    #[test]
    fn token_bucket_burst_allowance() {
        // A 3-packet burst at t=0 fits CBS = 3 packets; the 4th is red.
        let mut tb = TokenBucketMarker::new(Rate::from_kbps(1), 3 * PKT);
        assert_eq!(tb.color_of(SimTime::ZERO, PKT), Color::Green);
        assert_eq!(tb.color_of(SimTime::ZERO, PKT), Color::Green);
        assert_eq!(tb.color_of(SimTime::ZERO, PKT), Color::Green);
        assert_eq!(tb.color_of(SimTime::ZERO, PKT), Color::Red);
    }

    #[test]
    fn srtcm_yellow_band_between_green_and_red() {
        // CBS covers 2 packets, EBS 2 more; an instantaneous 6-packet burst
        // is G G Y Y R R.
        let mut m = SrTcm::new(Rate::from_kbps(1), 2 * PKT, 2 * PKT);
        let colors: Vec<Color> = (0..6).map(|_| m.color_of(SimTime::ZERO, PKT)).collect();
        assert_eq!(
            colors,
            vec![
                Color::Green,
                Color::Green,
                Color::Yellow,
                Color::Yellow,
                Color::Red,
                Color::Red
            ]
        );
    }

    #[test]
    fn srtcm_excess_bucket_fills_from_committed_overflow() {
        let mut m = SrTcm::new(Rate::from_bytes_per_sec(1000), PKT, PKT);
        // Drain both buckets.
        for _ in 0..2 {
            m.color_of(SimTime::ZERO, PKT);
        }
        assert_eq!(m.color_of(SimTime::ZERO, PKT), Color::Red);
        // After 3 seconds at 1000 B/s, C fills (1000) then E gets the rest.
        let later = SimTime::from_secs(3);
        assert_eq!(m.color_of(later, PKT), Color::Green);
        assert_eq!(m.color_of(later, PKT), Color::Yellow);
    }

    #[test]
    fn trtcm_red_when_peak_exceeded() {
        // PIR tiny: everything beyond the first packet (PBS) is red even
        // though CIR is huge.
        let mut m = TrTcm::new(Rate::from_mbps(100), 10 * PKT, Rate::from_kbps(1), PKT);
        assert_eq!(m.color_of(SimTime::ZERO, PKT), Color::Green);
        assert_eq!(m.color_of(SimTime::ZERO, PKT), Color::Red);
    }

    #[test]
    fn trtcm_yellow_between_cir_and_pir() {
        // CIR covers 1 packet, PIR covers 3: G then Y Y then R.
        let mut m = TrTcm::new(Rate::from_kbps(1), PKT, Rate::from_kbps(1), 3 * PKT);
        assert_eq!(m.color_of(SimTime::ZERO, PKT), Color::Green);
        assert_eq!(m.color_of(SimTime::ZERO, PKT), Color::Yellow);
        assert_eq!(m.color_of(SimTime::ZERO, PKT), Color::Yellow);
        assert_eq!(m.color_of(SimTime::ZERO, PKT), Color::Red);
    }

    #[test]
    fn bucket_never_exceeds_capacity() {
        let mut b = Bucket::new(Rate::from_mbps(10), 5000);
        b.tokens = 0.0;
        b.refill(SimTime::from_secs(1_000));
        assert!(b.tokens <= 5000.0);
        assert_eq!(b.tokens, 5000.0);
    }
}
