//! Virtual time and link-rate primitives.
//!
//! The simulator measures time in integer nanoseconds since the start of the
//! simulation ([`SimTime`]). Spans of time are ordinary [`std::time::Duration`]
//! values, so protocol code reads naturally (`now + rtt`).
//!
//! [`Rate`] is a bit-rate newtype used for link capacities and transport
//! sending rates; it knows how to convert a packet size into a serialization
//! delay without losing precision.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// A point in virtual time, in nanoseconds since simulation start.
///
/// `SimTime` is totally ordered and cheap to copy. Arithmetic with
/// [`Duration`] is saturating on overflow (a simulation running for 584 years
/// has other problems).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinitely far" timer.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from fractional seconds. Negative values clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            SimTime::ZERO
        } else {
            SimTime((s * 1e9).round() as u64)
        }
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch as a float (for statistics and display).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds since the epoch as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Elapsed duration since `earlier`, or [`Duration::ZERO`] if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }

    /// Checked subtraction producing a span.
    pub fn checked_since(self, earlier: SimTime) -> Option<Duration> {
        self.0.checked_sub(earlier.0).map(Duration::from_nanos)
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.as_nanos() as u64))
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<Duration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: Duration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.as_nanos() as u64))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    /// Panics in debug builds if `rhs` is later than `self`; saturates in
    /// release builds (mirrors integer subtraction semantics).
    fn sub(self, rhs: SimTime) -> Duration {
        debug_assert!(self >= rhs, "SimTime subtraction went negative");
        Duration::from_nanos(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// A bit-rate (bits per second).
///
/// Used for link capacities, token-bucket rates and transport sending rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Rate(u64);

impl Rate {
    /// Zero rate. A link with zero rate never transmits.
    pub const ZERO: Rate = Rate(0);

    /// Construct from bits per second.
    pub const fn from_bps(bps: u64) -> Self {
        Rate(bps)
    }

    /// Construct from kilobits per second (10^3).
    pub const fn from_kbps(kbps: u64) -> Self {
        Rate(kbps * 1_000)
    }

    /// Construct from megabits per second (10^6).
    pub const fn from_mbps(mbps: u64) -> Self {
        Rate(mbps * 1_000_000)
    }

    /// Construct from fractional megabits per second.
    pub fn from_mbps_f64(mbps: f64) -> Self {
        Rate((mbps * 1e6).round().max(0.0) as u64)
    }

    /// Construct from bytes per second.
    pub const fn from_bytes_per_sec(bps: u64) -> Self {
        Rate(bps * 8)
    }

    /// Bits per second.
    pub const fn bps(self) -> u64 {
        self.0
    }

    /// Bytes per second as a float.
    pub fn bytes_per_sec(self) -> f64 {
        self.0 as f64 / 8.0
    }

    /// Megabits per second as a float.
    pub fn mbps(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time to serialize `bytes` onto a link of this rate, rounded up to the
    /// nearest nanosecond. Returns a very large duration for a zero rate.
    pub fn tx_time(self, bytes: u32) -> Duration {
        if self.0 == 0 {
            return Duration::from_secs(u64::MAX / 2_000_000_000);
        }
        let bits = bytes as u128 * 8;
        let nanos = (bits * 1_000_000_000).div_ceil(self.0 as u128);
        Duration::from_nanos(nanos as u64)
    }
}

impl fmt::Display for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}Mbit/s", self.mbps())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}kbit/s", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}bit/s", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simtime_constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1_000));
        assert_eq!(SimTime::from_secs_f64(1.5), SimTime::from_millis(1_500));
    }

    #[test]
    fn simtime_arithmetic() {
        let t = SimTime::from_secs(1) + Duration::from_millis(250);
        assert_eq!(t.as_nanos(), 1_250_000_000);
        assert_eq!(t - SimTime::from_secs(1), Duration::from_millis(250));
        assert_eq!(
            t.saturating_since(SimTime::from_secs(2)),
            Duration::ZERO,
            "earlier-instant saturates"
        );
        assert_eq!(t.checked_since(SimTime::from_secs(2)), None);
    }

    #[test]
    fn simtime_negative_float_clamps() {
        assert_eq!(SimTime::from_secs_f64(-3.0), SimTime::ZERO);
    }

    #[test]
    fn simtime_ordering_and_minmax() {
        let a = SimTime::from_millis(10);
        let b = SimTime::from_millis(20);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn rate_conversions() {
        let r = Rate::from_mbps(10);
        assert_eq!(r.bps(), 10_000_000);
        assert_eq!(r.bytes_per_sec(), 1_250_000.0);
        assert_eq!(Rate::from_kbps(1_000), Rate::from_mbps(1));
        assert_eq!(Rate::from_bytes_per_sec(125), Rate::from_kbps(1));
    }

    #[test]
    fn tx_time_exact() {
        // 1250 bytes at 10 Mbit/s = 1 ms exactly.
        let r = Rate::from_mbps(10);
        assert_eq!(r.tx_time(1250), Duration::from_millis(1));
        // 1 byte at 1 Gbit/s = 8 ns.
        assert_eq!(Rate::from_mbps(1000).tx_time(1), Duration::from_nanos(8));
    }

    #[test]
    fn tx_time_rounds_up() {
        // 1 byte at 3 bit/s: 8/3 s = 2.666..s -> rounds up to ceil in nanos.
        let d = Rate::from_bps(3).tx_time(1);
        assert_eq!(d, Duration::from_nanos(2_666_666_667));
    }

    #[test]
    fn zero_rate_is_effectively_infinite() {
        assert!(Rate::ZERO.tx_time(1) > Duration::from_secs(1_000_000));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Rate::from_mbps(10)), "10.000Mbit/s");
        assert_eq!(format!("{}", Rate::from_kbps(64)), "64.000kbit/s");
        assert_eq!(format!("{}", Rate::from_bps(42)), "42bit/s");
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500000s");
    }
}
