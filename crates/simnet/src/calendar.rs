//! The event scheduler: a calendar queue with a near-window heap.
//!
//! The simulator's original scheduler was a global `BinaryHeap` keyed by
//! `(time, seq)`. That is O(log n) per operation with n = every pending
//! event in the simulation — at 10^5 flows the heap holds hundreds of
//! thousands of events and every push/pop walks a cold, pointer-hopping
//! tree of large entries. A calendar queue (Brown 1988) exploits what a
//! discrete-event simulation guarantees: pops are monotone in time, and
//! most events are scheduled a short, bounded distance into the future.
//! Events hash into time-indexed buckets ("days"); popping scans the
//! current day and only consults other buckets when the day is empty.
//! Amortized O(1) per operation when event times are reasonably spread.
//!
//! # Determinism
//!
//! Pop order is **exactly** ascending `(time, seq)` — byte-identical to
//! the `BinaryHeap<Reverse<Event>>` it replaces. Two mechanisms make the
//! burst case (many events at the same instant, e.g. 10^5 flow start
//! timers at t=0) both correct and fast:
//!
//! * Events due inside the *current* day are not left in their bucket but
//!   moved into a small `BinaryHeap` (`near`), so same-tick bursts cost
//!   O(log k) per event instead of O(k) bucket rescans.
//! * An event pushed *behind* the current day (time earlier than the
//!   day's start) goes straight into `near`, so it can never be missed by
//!   the forward bucket scan. The simulator never does this (time is
//!   monotone), but the structure stays correct for arbitrary inputs —
//!   the drop-in proptest against a model heap exercises exactly this.
//!
//! Bucket count and width adapt to the number of queued events: the
//! calendar resizes (O(n), amortized) when the load factor leaves
//! [1/8, 4], aiming the bucket width at the mean event spacing so a day
//! holds O(1) events. A full fruitless sweep of the calendar (all events
//! far in the future) falls back to a direct O(n) minimum scan and jumps
//! the day straight to it, so sparse tails don't cost a bucket-by-bucket
//! crawl.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One scheduled entry: priority `(at, seq)` plus the payload.
#[derive(Debug, Clone)]
struct Entry<T> {
    at: u64,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Calendar-queue event scheduler. See the module docs for the design.
///
/// Priorities are `(at, seq)` pairs popped in ascending order; `seq` is
/// supplied by the caller and must be unique (the simulator uses its
/// event counter), which makes the pop order a total order — there are
/// no ambiguous ties for the bucket layout to leak through.
#[derive(Debug)]
pub struct CalendarQueue<T> {
    /// Future events, bucketed by `(at / width) % nbuckets`.
    buckets: Vec<Vec<Entry<T>>>,
    /// Power-of-two bucket count.
    mask: usize,
    /// Day width in time units (≥ 1).
    width: u64,
    /// Index of the current day's bucket.
    cur: usize,
    /// Exclusive upper bound of the current day: events with
    /// `at < day_end` are due in this day. u128 so the last day before
    /// `u64::MAX` needs no special casing.
    day_end: u128,
    /// Events due in the current day (or pushed behind it), popped in
    /// exact `(at, seq)` order.
    near: BinaryHeap<Reverse<Entry<T>>>,
    /// Total queued events (buckets + near).
    len: usize,
}

const MIN_BUCKETS: usize = 8;

impl<T> CalendarQueue<T> {
    /// An empty scheduler.
    pub fn new() -> Self {
        CalendarQueue {
            buckets: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            mask: MIN_BUCKETS - 1,
            width: 1,
            cur: 0,
            day_end: 1,
            near: BinaryHeap::new(),
            len: 0,
        }
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedule `item` at priority `(at, seq)`.
    pub fn push(&mut self, at: u64, seq: u64, item: T) {
        let e = Entry { at, seq, item };
        self.len += 1;
        if (at as u128) < self.day_end {
            // Due today (or pushed behind the current day): the forward
            // bucket scan must not be able to miss it.
            self.near.push(Reverse(e));
        } else {
            let b = ((at / self.width) as usize) & self.mask;
            self.buckets[b].push(e);
        }
        if self.len > 4 * self.buckets.len() {
            self.resize();
        }
    }

    /// Remove and return the minimum-priority event.
    pub fn pop(&mut self) -> Option<(u64, u64, T)> {
        if self.len == 0 {
            return None;
        }
        if self.near.is_empty() {
            self.advance_to_next_event();
        }
        let Reverse(e) = self.near.pop().expect("advance found an event");
        self.len -= 1;
        if self.len < self.buckets.len() / 8 && self.buckets.len() > MIN_BUCKETS {
            self.resize();
        }
        Some((e.at, e.seq, e.item))
    }

    /// Walk days forward until at least one due event lands in `near`.
    /// Caller guarantees the queue is non-empty and `near` is empty.
    fn advance_to_next_event(&mut self) {
        for _ in 0..=self.buckets.len() {
            // Move everything due in the current day into the near heap.
            let day_end = self.day_end;
            let bucket = &mut self.buckets[self.cur];
            let mut i = 0;
            while i < bucket.len() {
                if (bucket[i].at as u128) < day_end {
                    self.near.push(Reverse(bucket.swap_remove(i)));
                } else {
                    i += 1;
                }
            }
            if !self.near.is_empty() {
                return;
            }
            self.cur = (self.cur + 1) & self.mask;
            self.day_end += self.width as u128;
        }
        // A whole year of empty days: every event is far away. Find the
        // global minimum directly and jump the calendar to its day.
        let (b, at) = self
            .buckets
            .iter()
            .enumerate()
            .flat_map(|(b, v)| v.iter().map(move |e| (b, e)))
            .min_by_key(|&(_, e)| (e.at, e.seq))
            .map(|(b, e)| (b, e.at))
            .expect("queue is non-empty");
        self.cur = b;
        self.day_end = (at as u128 / self.width as u128 + 1) * self.width as u128;
        let day_end = self.day_end;
        let bucket = &mut self.buckets[b];
        let mut i = 0;
        while i < bucket.len() {
            if (bucket[i].at as u128) < day_end {
                self.near.push(Reverse(bucket.swap_remove(i)));
            } else {
                i += 1;
            }
        }
    }

    /// Rebuild the calendar for the current event count: bucket count
    /// tracks `len` and the day width tracks the mean spacing of queued
    /// events, so a day holds O(1) events.
    fn resize(&mut self) {
        let target = (self.len.max(1)).next_power_of_two().max(MIN_BUCKETS);
        let mut entries: Vec<Entry<T>> = Vec::with_capacity(self.len);
        for b in &mut self.buckets {
            entries.append(b);
        }
        let floor = self.day_end.saturating_sub(self.width as u128) as u64;
        let (mut lo, mut hi) = (u64::MAX, 0u64);
        for e in &entries {
            lo = lo.min(e.at);
            hi = hi.max(e.at);
        }
        for Reverse(e) in self.near.iter() {
            lo = lo.min(e.at);
            hi = hi.max(e.at);
        }
        let span = hi.saturating_sub(lo.min(floor));
        // Mean spacing, clamped: a zero span (everything same-tick) gets
        // width 1; a huge span (one far-future tail event) is capped so
        // the common near-term events still spread across buckets.
        self.width = (span / self.len.max(1) as u64).clamp(1, u64::MAX / (4 * target as u64));
        self.mask = target - 1;
        self.buckets = (0..target).map(|_| Vec::new()).collect();
        // Anchor the new calendar at the first new-width day boundary at or
        // after the old `day_end`. `day_end` must never move backwards: the
        // near heap holds everything earlier than the old `day_end`, and
        // pop trusts that every bucketed event is later than every near
        // event. (A shrinking width would otherwise pull `day_end` back and
        // strand in-between events in buckets behind the near heap.)
        let w = self.width as u128;
        self.day_end = self.day_end.div_ceil(w) * w;
        self.cur = ((self.day_end / w - 1) % (target as u128)) as usize;
        for e in entries {
            if (e.at as u128) < self.day_end {
                self.near.push(Reverse(e));
            } else {
                let b = ((e.at / self.width) as usize) & self.mask;
                self.buckets[b].push(e);
            }
        }
    }
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drain fully; returns (at, seq) in pop order.
    fn drain(q: &mut CalendarQueue<u32>) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some((at, seq, _)) = q.pop() {
            out.push((at, seq));
        }
        out
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = CalendarQueue::new();
        q.push(50, 1, 0);
        q.push(10, 2, 0);
        q.push(10, 3, 0);
        q.push(0, 4, 0);
        q.push(50, 5, 0);
        assert_eq!(q.len(), 5);
        assert_eq!(
            drain(&mut q),
            vec![(0, 4), (10, 2), (10, 3), (50, 1), (50, 5)]
        );
        assert!(q.is_empty());
    }

    #[test]
    fn same_tick_burst_preserves_insertion_order() {
        let mut q = CalendarQueue::new();
        for seq in 0..10_000u64 {
            q.push(42, seq, 0);
        }
        let order = drain(&mut q);
        assert!(order
            .iter()
            .enumerate()
            .all(|(i, &(at, seq))| at == 42 && seq == i as u64));
    }

    #[test]
    fn interleaved_push_pop_stays_sorted() {
        let mut q = CalendarQueue::new();
        let mut seq = 0u64;
        let mut popped = Vec::new();
        // Monotone-ish workload with re-pushes relative to the popped time,
        // like timers re-arming off `now`.
        q.push(0, seq, 0);
        seq += 1;
        while let Some((at, s, _)) = q.pop() {
            popped.push((at, s));
            if seq < 2000 {
                q.push(at + (seq % 7) * 3, seq, 0);
                seq += 1;
                q.push(at + 1000 + seq % 13, seq, 0);
                seq += 1;
            }
        }
        let mut sorted = popped.clone();
        sorted.sort();
        assert_eq!(popped, sorted);
        assert_eq!(popped.len(), 2001); // 1 seed + 2 re-pushes per pop while seq < 2000
    }

    #[test]
    fn sparse_far_future_events_are_found() {
        let mut q = CalendarQueue::new();
        // Trigger resizes with a dense cluster, then leave only sparse
        // far-future events, exercising the direct-scan jump.
        for seq in 0..200u64 {
            q.push(seq, seq, 0);
        }
        q.push(1_000_000_000_000, 200, 0);
        q.push(30_000_000_000_000, 201, 0);
        q.push(u64::MAX, 202, 0);
        let order = drain(&mut q);
        assert_eq!(order.len(), 203);
        assert_eq!(order[200], (1_000_000_000_000, 200));
        assert_eq!(order[201], (30_000_000_000_000, 201));
        assert_eq!(order[202], (u64::MAX, 202));
    }

    #[test]
    fn push_behind_current_day_is_not_lost() {
        let mut q = CalendarQueue::new();
        q.push(1_000_000, 0, 0);
        assert_eq!(q.pop().map(|(at, ..)| at), Some(1_000_000));
        // The day has advanced to ~1ms; push an "earlier" event.
        q.push(3, 1, 7);
        q.push(2_000_000, 2, 8);
        assert_eq!(q.pop(), Some((3, 1, 7)));
        assert_eq!(q.pop().map(|(at, ..)| at), Some(2_000_000));
    }

    #[test]
    fn shrink_grow_cycles_keep_everything() {
        let mut q = CalendarQueue::new();
        let mut seq = 0u64;
        for round in 0..5u64 {
            for i in 0..1000u64 {
                q.push(round * 1_000_000 + i * 997, seq, 0);
                seq += 1;
            }
            for _ in 0..900 {
                assert!(q.pop().is_some());
            }
        }
        let rest = drain(&mut q);
        assert_eq!(rest.len(), 500);
        assert!(rest.windows(2).all(|w| w[0] <= w[1]));
    }
}
