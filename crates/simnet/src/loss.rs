//! Link loss models: congestion-independent packet erasure.
//!
//! These model transmission losses (radio fading, interference) as opposed
//! to queue drops. They matter for two of the paper's claims: rate-based
//! congestion control outperforming TCP on lossy wireless paths (§2
//! motivation, evaluated in experiment E8), and exercising the SACK
//! reliability machinery.

use crate::rng::DetRng;

/// A packet-erasure process applied to a link.
#[derive(Debug, Clone)]
pub enum LossModel {
    /// No transmission losses.
    None,
    /// Independent (Bernoulli) loss with fixed probability.
    Bernoulli { p: f64 },
    /// Two-state Gilbert–Elliott bursty loss model.
    ///
    /// The channel alternates between a Good and a Bad state with the given
    /// per-packet transition probabilities; in each state packets are lost
    /// with the state's own loss probability. With `loss_bad` near 1 this
    /// produces the clustered losses typical of wireless fading.
    GilbertElliott {
        /// P(Good -> Bad) evaluated per packet.
        p_g2b: f64,
        /// P(Bad -> Good) evaluated per packet.
        p_b2g: f64,
        /// Loss probability while Good (often 0).
        loss_good: f64,
        /// Loss probability while Bad (often close to 1).
        loss_bad: f64,
        /// Current state; start in Good.
        #[doc(hidden)]
        bad: bool,
    },
    /// Deterministically lose every `n`-th packet (1-indexed); for tests.
    Periodic { n: u64, count: u64 },
}

impl LossModel {
    /// Bernoulli model helper.
    pub fn bernoulli(p: f64) -> Self {
        LossModel::Bernoulli { p }
    }

    /// Gilbert–Elliott helper starting in the Good state.
    pub fn gilbert_elliott(p_g2b: f64, p_b2g: f64, loss_good: f64, loss_bad: f64) -> Self {
        LossModel::GilbertElliott {
            p_g2b,
            p_b2g,
            loss_good,
            loss_bad,
            bad: false,
        }
    }

    /// Lose every `n`-th packet.
    pub fn periodic(n: u64) -> Self {
        assert!(n >= 1);
        LossModel::Periodic { n, count: 0 }
    }

    /// Long-run average loss probability of this model (analytic), used by
    /// experiment harnesses to label sweeps.
    pub fn steady_state_loss(&self) -> f64 {
        match self {
            LossModel::None => 0.0,
            LossModel::Bernoulli { p } => *p,
            LossModel::GilbertElliott {
                p_g2b,
                p_b2g,
                loss_good,
                loss_bad,
                ..
            } => {
                // Stationary distribution of the two-state chain.
                let denom = p_g2b + p_b2g;
                if denom == 0.0 {
                    return *loss_good;
                }
                let pi_bad = p_g2b / denom;
                pi_bad * loss_bad + (1.0 - pi_bad) * loss_good
            }
            LossModel::Periodic { n, .. } => 1.0 / *n as f64,
        }
    }

    /// Decide the fate of one packet transmission.
    pub fn is_lost(&mut self, rng: &mut DetRng) -> bool {
        match self {
            LossModel::None => false,
            LossModel::Bernoulli { p } => rng.chance(*p),
            LossModel::GilbertElliott {
                p_g2b,
                p_b2g,
                loss_good,
                loss_bad,
                bad,
            } => {
                let loss_p = if *bad { *loss_bad } else { *loss_good };
                let lost = rng.chance(loss_p);
                // State transition after the loss decision.
                if *bad {
                    if rng.chance(*p_b2g) {
                        *bad = false;
                    }
                } else if rng.chance(*p_g2b) {
                    *bad = true;
                }
                lost
            }
            LossModel::Periodic { n, count } => {
                *count += 1;
                *count % *n == 0
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_loses() {
        let mut m = LossModel::None;
        let mut rng = DetRng::new(1);
        assert!((0..1000).all(|_| !m.is_lost(&mut rng)));
    }

    #[test]
    fn bernoulli_rate_matches_p() {
        let mut m = LossModel::bernoulli(0.05);
        let mut rng = DetRng::new(2);
        let n = 200_000;
        let lost = (0..n).filter(|_| m.is_lost(&mut rng)).count();
        let rate = lost as f64 / n as f64;
        assert!((rate - 0.05).abs() < 0.005, "rate={rate}");
        assert_eq!(m.steady_state_loss(), 0.05);
    }

    #[test]
    fn gilbert_elliott_matches_stationary_loss() {
        let mut m = LossModel::gilbert_elliott(0.01, 0.2, 0.0, 0.8);
        let expect = m.steady_state_loss();
        let mut rng = DetRng::new(3);
        let n = 400_000;
        let lost = (0..n).filter(|_| m.is_lost(&mut rng)).count();
        let rate = lost as f64 / n as f64;
        assert!(
            (rate - expect).abs() < 0.01,
            "rate={rate}, analytic={expect}"
        );
    }

    #[test]
    fn gilbert_elliott_losses_are_bursty() {
        // Compare the conditional probability of a loss following a loss
        // against the marginal loss rate: burstiness means it is much higher.
        let mut m = LossModel::gilbert_elliott(0.005, 0.1, 0.0, 0.9);
        let mut rng = DetRng::new(4);
        let seq: Vec<bool> = (0..200_000).map(|_| m.is_lost(&mut rng)).collect();
        let losses = seq.iter().filter(|&&l| l).count() as f64;
        let marginal = losses / seq.len() as f64;
        let pairs = seq.windows(2).filter(|w| w[0]).count() as f64;
        let after_loss = seq.windows(2).filter(|w| w[0] && w[1]).count() as f64;
        let conditional = after_loss / pairs;
        assert!(
            conditional > 3.0 * marginal,
            "conditional={conditional}, marginal={marginal}"
        );
    }

    #[test]
    fn periodic_loses_every_nth() {
        let mut m = LossModel::periodic(4);
        let mut rng = DetRng::new(5);
        let pattern: Vec<bool> = (0..8).map(|_| m.is_lost(&mut rng)).collect();
        assert_eq!(
            pattern,
            vec![false, false, false, true, false, false, false, true]
        );
    }

    #[test]
    fn stationary_loss_degenerate_chain() {
        let m = LossModel::gilbert_elliott(0.0, 0.0, 0.02, 0.9);
        assert_eq!(m.steady_state_loss(), 0.02, "never leaves Good");
    }

    /// Empirical loss rate over `n` trials of a fresh chain.
    fn empirical_rate(mut m: LossModel, seed: u64, n: u64) -> f64 {
        let mut rng = DetRng::new(seed);
        (0..n).filter(|_| m.is_lost(&mut rng)).count() as f64 / n as f64
    }

    #[test]
    fn gilbert_elliott_stationary_rate_one_million_trials() {
        // 10^6 trials against the analytic stationary rate, written out
        // from first principles rather than via steady_state_loss: the
        // chain spends pi_good = p_b2g/(p_g2b+p_b2g) of its time Good.
        // With rate ≈ 0.1–0.3 the standard error is below 5e-4, so a
        // 3e-3 tolerance is ~6 sigma — tight but not flaky under the
        // fixed seeds.
        let params: &[(f64, f64, f64, f64, u64)] = &[
            (0.01, 0.20, 0.00, 0.80, 11), // classic bursty wireless
            (0.05, 0.10, 0.01, 0.50, 12), // slow recovery, light Good loss
            (0.30, 0.30, 0.00, 0.30, 13), // fast-mixing chain
        ];
        for &(p_g2b, p_b2g, loss_good, loss_bad, seed) in params {
            let pi_good = p_b2g / (p_g2b + p_b2g);
            let analytic = (1.0 - pi_good) * loss_bad + pi_good * loss_good;
            let m = LossModel::gilbert_elliott(p_g2b, p_b2g, loss_good, loss_bad);
            assert!((m.steady_state_loss() - analytic).abs() < 1e-12);
            let rate = empirical_rate(m, seed, 1_000_000);
            assert!(
                (rate - analytic).abs() < 3e-3,
                "p_g2b={p_g2b}: rate={rate}, analytic={analytic}"
            );
        }
    }

    #[test]
    fn gilbert_elliott_never_leaves_good_when_p_g2b_is_zero() {
        // Degenerate chain: starting Good with p_g2b = 0, the Bad state is
        // unreachable — losses are plain Bernoulli(loss_good) no matter
        // how lossy Bad claims to be.
        let m = LossModel::gilbert_elliott(0.0, 0.3, 0.02, 1.0);
        assert_eq!(m.steady_state_loss(), 0.02);
        let rate = empirical_rate(m, 14, 1_000_000);
        assert!((rate - 0.02).abs() < 1e-3, "rate={rate}");
    }

    #[test]
    fn gilbert_elliott_equal_state_losses_are_memoryless() {
        // With loss_good == loss_bad the hidden state is unobservable:
        // the marginal rate equals that common loss probability and the
        // burstiness signature vanishes (P(loss | loss) ≈ P(loss)).
        let mut m = LossModel::gilbert_elliott(0.05, 0.1, 0.2, 0.2);
        assert!((m.steady_state_loss() - 0.2).abs() < 1e-12);
        let mut rng = DetRng::new(15);
        let seq: Vec<bool> = (0..1_000_000).map(|_| m.is_lost(&mut rng)).collect();
        let marginal = seq.iter().filter(|&&l| l).count() as f64 / seq.len() as f64;
        assert!((marginal - 0.2).abs() < 2e-3, "marginal={marginal}");
        let pairs = seq.windows(2).filter(|w| w[0]).count() as f64;
        let after_loss = seq.windows(2).filter(|w| w[0] && w[1]).count() as f64;
        let conditional = after_loss / pairs;
        assert!(
            (conditional - marginal).abs() < 5e-3,
            "conditional={conditional}, marginal={marginal}"
        );
    }
}
