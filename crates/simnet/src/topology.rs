//! Canned topologies used throughout the experiments.
//!
//! The workhorse is the **dumbbell**: `n` sender hosts and `n` receiver
//! hosts attached by fast access links to two routers joined by one
//! bottleneck link. All the paper's scenarios (AF class with RIO core,
//! drop-tail fairness runs, wireless last hop) are dumbbell variants.

use std::time::Duration;

use crate::link::LinkConfig;
use crate::packet::{LinkId, NodeId};
use crate::queue::QueueConfig;
use crate::sim::{NetworkBuilder, Simulator};
use crate::time::Rate;

/// Parameters of a dumbbell network.
#[derive(Debug, Clone)]
pub struct DumbbellConfig {
    /// Number of sender/receiver host pairs.
    pub pairs: usize,
    /// Access link rate (both sides). Usually much faster than the core.
    pub access_rate: Rate,
    /// One-way access propagation delay per side. Per-pair overrides via
    /// `access_delays`.
    pub access_delay: Duration,
    /// Optional per-pair access delay (sender side), to give flows
    /// heterogeneous RTTs. Length must equal `pairs` if provided.
    pub access_delays: Option<Vec<Duration>>,
    /// Bottleneck rate.
    pub bottleneck_rate: Rate,
    /// Bottleneck one-way propagation delay.
    pub bottleneck_delay: Duration,
    /// Queue on the forward bottleneck (router1 → router2). This is where
    /// RIO goes for the AF experiments.
    pub bottleneck_queue: QueueConfig,
    /// Queue on the reverse bottleneck (acks); generous drop-tail default.
    pub reverse_queue: QueueConfig,
}

impl Default for DumbbellConfig {
    fn default() -> Self {
        DumbbellConfig {
            pairs: 2,
            access_rate: Rate::from_mbps(100),
            access_delay: Duration::from_millis(1),
            access_delays: None,
            bottleneck_rate: Rate::from_mbps(10),
            bottleneck_delay: Duration::from_millis(10),
            bottleneck_queue: QueueConfig::DropTailPkts(50),
            reverse_queue: QueueConfig::DropTailPkts(1000),
        }
    }
}

/// The node/link ids of a built dumbbell.
#[derive(Debug, Clone)]
pub struct Dumbbell {
    /// Sender hosts, index `i` talks to `receivers[i]`.
    pub senders: Vec<NodeId>,
    /// Receiver hosts.
    pub receivers: Vec<NodeId>,
    /// Left router (senders' side).
    pub left_router: NodeId,
    /// Right router (receivers' side).
    pub right_router: NodeId,
    /// Forward bottleneck link id (left → right); marker target for
    /// edge conditioning in the AF experiments.
    pub bottleneck: LinkId,
    /// Reverse bottleneck link id (right → left).
    pub reverse_bottleneck: LinkId,
    /// Sender-side access link ids (sender → left router), per pair. These
    /// are the canonical place to attach per-flow markers (first hop).
    pub sender_access: Vec<LinkId>,
}

impl Dumbbell {
    /// Build the topology into a fresh simulator.
    pub fn build(cfg: &DumbbellConfig, seed: u64) -> (Simulator, Dumbbell) {
        if let Some(d) = &cfg.access_delays {
            assert_eq!(d.len(), cfg.pairs, "access_delays length mismatch");
        }
        let mut b = NetworkBuilder::new();
        let left_router = b.router();
        let right_router = b.router();
        let mut senders = Vec::with_capacity(cfg.pairs);
        let mut receivers = Vec::with_capacity(cfg.pairs);
        let mut sender_access = Vec::with_capacity(cfg.pairs);
        for i in 0..cfg.pairs {
            let s = b.host();
            let r = b.host();
            let s_delay = cfg
                .access_delays
                .as_ref()
                .map(|d| d[i])
                .unwrap_or(cfg.access_delay);
            let (s2l, _l2s) =
                b.duplex_link(s, left_router, LinkConfig::new(cfg.access_rate, s_delay));
            b.duplex_link(
                right_router,
                r,
                LinkConfig::new(cfg.access_rate, cfg.access_delay),
            );
            senders.push(s);
            receivers.push(r);
            sender_access.push(s2l);
        }
        let bottleneck = b.simplex_link(
            left_router,
            right_router,
            LinkConfig::new(cfg.bottleneck_rate, cfg.bottleneck_delay)
                .with_queue(cfg.bottleneck_queue.clone()),
        );
        let reverse_bottleneck = b.simplex_link(
            right_router,
            left_router,
            LinkConfig::new(cfg.bottleneck_rate, cfg.bottleneck_delay)
                .with_queue(cfg.reverse_queue.clone()),
        );
        let sim = b.build(seed);
        (
            sim,
            Dumbbell {
                senders,
                receivers,
                left_router,
                right_router,
                bottleneck,
                reverse_bottleneck,
                sender_access,
            },
        )
    }

    /// End-to-end base round-trip time for pair `i` (propagation + nothing
    /// else): `2 * (access_i + bottleneck + access)`.
    pub fn base_rtt(cfg: &DumbbellConfig, i: usize) -> Duration {
        let s_delay = cfg
            .access_delays
            .as_ref()
            .map(|d| d[i])
            .unwrap_or(cfg.access_delay);
        (s_delay + cfg.bottleneck_delay + cfg.access_delay) * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agents::{CbrSource, Sink};
    use crate::time::SimTime;

    #[test]
    fn dumbbell_connects_all_pairs() {
        let cfg = DumbbellConfig {
            pairs: 3,
            ..DumbbellConfig::default()
        };
        let (mut sim, net) = Dumbbell::build(&cfg, 9);
        let mut flows = Vec::new();
        for i in 0..3 {
            let f = sim.register_flow(&format!("f{i}"));
            sim.attach_agent(
                net.senders[i],
                Box::new(CbrSource::new(
                    f,
                    net.receivers[i],
                    1000,
                    Rate::from_kbps(500),
                )),
            );
            sim.attach_agent(net.receivers[i], Box::new(Sink));
            flows.push(f);
        }
        sim.run_until(SimTime::from_secs(5));
        for f in flows {
            assert!(sim.stats().flow(f).pkts_arrived > 100, "flow {f} starved");
            assert_eq!(sim.stats().flow(f).pkts_dropped, 0);
        }
    }

    #[test]
    fn bottleneck_caps_aggregate_throughput() {
        let cfg = DumbbellConfig {
            pairs: 2,
            bottleneck_rate: Rate::from_mbps(1),
            ..DumbbellConfig::default()
        };
        let (mut sim, net) = Dumbbell::build(&cfg, 11);
        for i in 0..2 {
            let f = sim.register_flow(&format!("f{i}"));
            // Each offers 1 Mbit/s into a 1 Mbit/s bottleneck.
            sim.attach_agent(
                net.senders[i],
                Box::new(CbrSource::new(
                    f,
                    net.receivers[i],
                    1000,
                    Rate::from_mbps(1),
                )),
            );
        }
        sim.run_until(SimTime::from_secs(20));
        let total: f64 = (0..2)
            .map(|i| {
                sim.stats()
                    .flow(i as u32)
                    .throughput_bps(Duration::from_secs(20))
            })
            .sum();
        assert!(total < 1_100_000.0, "aggregate {total} exceeds bottleneck");
        assert!(total > 900_000.0, "bottleneck underutilized: {total}");
    }

    #[test]
    fn base_rtt_accounts_for_heterogeneous_access() {
        let cfg = DumbbellConfig {
            pairs: 2,
            access_delay: Duration::from_millis(1),
            access_delays: Some(vec![Duration::from_millis(1), Duration::from_millis(40)]),
            bottleneck_delay: Duration::from_millis(10),
            ..DumbbellConfig::default()
        };
        assert_eq!(Dumbbell::base_rtt(&cfg, 0), Duration::from_millis(24));
        assert_eq!(Dumbbell::base_rtt(&cfg, 1), Duration::from_millis(102));
    }

    #[test]
    #[should_panic(expected = "access_delays length mismatch")]
    fn wrong_delay_vector_length_panics() {
        let cfg = DumbbellConfig {
            pairs: 2,
            access_delays: Some(vec![Duration::from_millis(1)]),
            ..DumbbellConfig::default()
        };
        let _ = Dumbbell::build(&cfg, 1);
    }
}
