//! Canned topologies used throughout the experiments.
//!
//! The workhorse is the **dumbbell**: `n` sender hosts and `n` receiver
//! hosts attached by fast access links to two routers joined by one
//! bottleneck link. All the paper's scenarios (AF class with RIO core,
//! drop-tail fairness runs, wireless last hop) are dumbbell variants.
//!
//! The hostile-path scenario matrix adds two more shapes: the
//! [`LongFatPipe`] (satellite-class large bandwidth-delay product path,
//! possibly with an asymmetric return channel) and the [`Handover`]
//! (server → router → mobile where the last hop switches character at a
//! deterministic instant mid-run).

use std::time::Duration;

use crate::link::LinkConfig;
use crate::packet::{LinkId, NodeId};
use crate::path::PathModel;
use crate::queue::QueueConfig;
use crate::sim::{NetworkBuilder, Simulator};
use crate::time::Rate;

/// Parameters of a dumbbell network.
#[derive(Debug, Clone)]
pub struct DumbbellConfig {
    /// Number of sender/receiver host pairs.
    pub pairs: usize,
    /// Access link rate (both sides). Usually much faster than the core.
    pub access_rate: Rate,
    /// One-way access propagation delay per side. Per-pair overrides via
    /// `access_delays`.
    pub access_delay: Duration,
    /// Optional per-pair access delay (sender side), to give flows
    /// heterogeneous RTTs. Length must equal `pairs` if provided.
    pub access_delays: Option<Vec<Duration>>,
    /// Bottleneck rate.
    pub bottleneck_rate: Rate,
    /// Bottleneck one-way propagation delay.
    pub bottleneck_delay: Duration,
    /// Queue on the forward bottleneck (router1 → router2). This is where
    /// RIO goes for the AF experiments.
    pub bottleneck_queue: QueueConfig,
    /// Queue on the reverse bottleneck (acks); generous drop-tail default.
    pub reverse_queue: QueueConfig,
    /// Path impairments on the forward bottleneck (reordering,
    /// duplication, corruption). The no-op default keeps every existing
    /// dumbbell scenario byte-identical.
    pub bottleneck_path: PathModel,
}

impl Default for DumbbellConfig {
    fn default() -> Self {
        DumbbellConfig {
            pairs: 2,
            access_rate: Rate::from_mbps(100),
            access_delay: Duration::from_millis(1),
            access_delays: None,
            bottleneck_rate: Rate::from_mbps(10),
            bottleneck_delay: Duration::from_millis(10),
            bottleneck_queue: QueueConfig::DropTailPkts(50),
            reverse_queue: QueueConfig::DropTailPkts(1000),
            bottleneck_path: PathModel::none(),
        }
    }
}

/// The node/link ids of a built dumbbell.
#[derive(Debug, Clone)]
pub struct Dumbbell {
    /// Sender hosts, index `i` talks to `receivers[i]`.
    pub senders: Vec<NodeId>,
    /// Receiver hosts.
    pub receivers: Vec<NodeId>,
    /// Left router (senders' side).
    pub left_router: NodeId,
    /// Right router (receivers' side).
    pub right_router: NodeId,
    /// Forward bottleneck link id (left → right); marker target for
    /// edge conditioning in the AF experiments.
    pub bottleneck: LinkId,
    /// Reverse bottleneck link id (right → left).
    pub reverse_bottleneck: LinkId,
    /// Sender-side access link ids (sender → left router), per pair. These
    /// are the canonical place to attach per-flow markers (first hop).
    pub sender_access: Vec<LinkId>,
}

impl Dumbbell {
    /// Build the topology into a fresh simulator.
    pub fn build(cfg: &DumbbellConfig, seed: u64) -> (Simulator, Dumbbell) {
        if let Some(d) = &cfg.access_delays {
            assert_eq!(d.len(), cfg.pairs, "access_delays length mismatch");
        }
        let mut b = NetworkBuilder::new();
        let left_router = b.router();
        let right_router = b.router();
        let mut senders = Vec::with_capacity(cfg.pairs);
        let mut receivers = Vec::with_capacity(cfg.pairs);
        let mut sender_access = Vec::with_capacity(cfg.pairs);
        for i in 0..cfg.pairs {
            let s = b.host();
            let r = b.host();
            let s_delay = cfg
                .access_delays
                .as_ref()
                .map(|d| d[i])
                .unwrap_or(cfg.access_delay);
            let (s2l, _l2s) =
                b.duplex_link(s, left_router, LinkConfig::new(cfg.access_rate, s_delay));
            b.duplex_link(
                right_router,
                r,
                LinkConfig::new(cfg.access_rate, cfg.access_delay),
            );
            senders.push(s);
            receivers.push(r);
            sender_access.push(s2l);
        }
        let bottleneck = b.simplex_link(
            left_router,
            right_router,
            LinkConfig::new(cfg.bottleneck_rate, cfg.bottleneck_delay)
                .with_queue(cfg.bottleneck_queue.clone())
                .with_path(cfg.bottleneck_path.clone()),
        );
        let reverse_bottleneck = b.simplex_link(
            right_router,
            left_router,
            LinkConfig::new(cfg.bottleneck_rate, cfg.bottleneck_delay)
                .with_queue(cfg.reverse_queue.clone()),
        );
        let sim = b.build(seed);
        (
            sim,
            Dumbbell {
                senders,
                receivers,
                left_router,
                right_router,
                bottleneck,
                reverse_bottleneck,
                sender_access,
            },
        )
    }

    /// End-to-end base round-trip time for pair `i` (propagation + nothing
    /// else): `2 * (access_i + bottleneck + access)`.
    pub fn base_rtt(cfg: &DumbbellConfig, i: usize) -> Duration {
        let s_delay = cfg
            .access_delays
            .as_ref()
            .map(|d| d[i])
            .unwrap_or(cfg.access_delay);
        (s_delay + cfg.bottleneck_delay + cfg.access_delay) * 2
    }
}

/// Parameters of a large bandwidth-delay-product ("long fat pipe") path:
/// two hosts joined by one high-rate, high-latency duplex link — the
/// satellite / intercontinental regime (300–600 ms RTT) where window-based
/// transports need a full BDP in flight to fill the pipe and equation-based
/// rate control changes character.
#[derive(Debug, Clone)]
pub struct LongFatPipeConfig {
    /// Forward (data) direction.
    pub forward: LinkConfig,
    /// Reverse (feedback) direction; configure a lower rate for asymmetric
    /// paths (e.g. a satellite downlink with a narrowband return channel).
    pub reverse: LinkConfig,
}

impl LongFatPipeConfig {
    /// A symmetric long fat pipe: `rate` in both directions, `one_way`
    /// propagation delay each way (RTT = `2 * one_way`), and a forward
    /// queue sized to one bandwidth-delay product of `pkt_size`-byte
    /// packets — the classic "buffer = BDP" provisioning rule.
    pub fn symmetric(rate: Rate, one_way: Duration, pkt_size: u32) -> Self {
        let bdp = Self::bdp_packets(rate, 2 * one_way, pkt_size).max(10);
        LongFatPipeConfig {
            forward: LinkConfig::new(rate, one_way).with_queue(QueueConfig::DropTailPkts(bdp)),
            reverse: LinkConfig::new(rate, one_way).with_queue(QueueConfig::DropTailPkts(1000)),
        }
    }

    /// Replace the reverse channel (rate + delay), keeping a generous
    /// feedback queue. The asymmetry knob for the H3 scenarios.
    pub fn with_reverse(mut self, rate: Rate, one_way: Duration) -> Self {
        self.reverse = LinkConfig::new(rate, one_way).with_queue(QueueConfig::DropTailPkts(1000));
        self
    }

    /// Packets of `pkt_size` bytes that fit in one bandwidth-delay product.
    pub fn bdp_packets(rate: Rate, rtt: Duration, pkt_size: u32) -> usize {
        let bits = rate.bps() as f64 * rtt.as_secs_f64();
        (bits / (8.0 * pkt_size as f64)).ceil() as usize
    }

    /// End-to-end base round-trip time (forward + reverse propagation).
    pub fn rtt(&self) -> Duration {
        self.forward.delay + self.reverse.delay
    }
}

/// The node/link ids of a built long fat pipe.
#[derive(Debug, Clone)]
pub struct LongFatPipe {
    /// Data sender.
    pub tx: NodeId,
    /// Data receiver.
    pub rx: NodeId,
    /// Forward (tx → rx) link id.
    pub forward: LinkId,
    /// Reverse (rx → tx) link id.
    pub reverse: LinkId,
}

impl LongFatPipe {
    /// Build the topology into a fresh simulator.
    pub fn build(cfg: &LongFatPipeConfig, seed: u64) -> (Simulator, LongFatPipe) {
        let mut b = NetworkBuilder::new();
        let tx = b.host();
        let rx = b.host();
        let (forward, reverse) =
            b.duplex_link_asym(tx, rx, cfg.forward.clone(), cfg.reverse.clone());
        (
            b.build(seed),
            LongFatPipe {
                tx,
                rx,
                forward,
                reverse,
            },
        )
    }
}

/// Parameters of a mobility-handover path: server → router over a clean
/// backbone, router → mobile over a last hop that switches from `initial`
/// to `target` at a deterministic instant (the driver runs the simulator
/// to [`HandoverConfig::switch_at`] and calls [`Handover::switch`]).
#[derive(Debug, Clone)]
pub struct HandoverConfig {
    /// Backbone rate (server ↔ router).
    pub backbone_rate: Rate,
    /// Backbone one-way delay.
    pub backbone_delay: Duration,
    /// Last hop before the handover (e.g. clean WLAN).
    pub initial: LinkConfig,
    /// Last hop after the handover (e.g. lossy, slower cellular).
    pub target: LinkConfig,
    /// When the path switches.
    pub switch_at: Duration,
}

impl Default for HandoverConfig {
    fn default() -> Self {
        HandoverConfig {
            backbone_rate: Rate::from_mbps(100),
            backbone_delay: Duration::from_millis(15),
            initial: LinkConfig::new(Rate::from_mbps(10), Duration::from_millis(5)),
            target: LinkConfig::new(Rate::from_mbps(2), Duration::from_millis(30)),
            switch_at: Duration::from_secs(10),
        }
    }
}

/// The node/link ids of a built handover path.
#[derive(Debug, Clone)]
pub struct Handover {
    /// Fixed server host.
    pub server: NodeId,
    /// Mobile host behind the switching last hop.
    pub mobile: NodeId,
    /// The intermediate router.
    pub router: NodeId,
    /// Last-hop downlink (router → mobile).
    pub down: LinkId,
    /// Last-hop uplink (mobile → router).
    pub up: LinkId,
    /// The post-switch last-hop configuration.
    target: LinkConfig,
}

impl Handover {
    /// Build the topology into a fresh simulator. The last hop starts with
    /// `cfg.initial` in both directions.
    pub fn build(cfg: &HandoverConfig, seed: u64) -> (Simulator, Handover) {
        let mut b = NetworkBuilder::new();
        let server = b.host();
        let router = b.router();
        let mobile = b.host();
        b.duplex_link(
            server,
            router,
            LinkConfig::new(cfg.backbone_rate, cfg.backbone_delay),
        );
        let (down, up) = b.duplex_link(router, mobile, cfg.initial.clone());
        (
            b.build(seed),
            Handover {
                server,
                mobile,
                router,
                down,
                up,
                target: cfg.target.clone(),
            },
        )
    }

    /// Apply the handover: switch the last hop (both directions) to the
    /// target rate, delay, loss and path models. Queue discipline is kept;
    /// packets already queued or in flight keep their original timing —
    /// the switch is felt from the next serialization on.
    pub fn switch(&self, sim: &mut Simulator) {
        for id in [self.down, self.up] {
            sim.set_link_rate(id, self.target.rate);
            sim.set_link_delay(id, self.target.delay);
            sim.set_link_loss(id, self.target.loss.clone());
            sim.set_link_path(id, self.target.path.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agents::{CbrSource, Sink};
    use crate::time::SimTime;

    #[test]
    fn dumbbell_connects_all_pairs() {
        let cfg = DumbbellConfig {
            pairs: 3,
            ..DumbbellConfig::default()
        };
        let (mut sim, net) = Dumbbell::build(&cfg, 9);
        let mut flows = Vec::new();
        for i in 0..3 {
            let f = sim.register_flow(&format!("f{i}"));
            sim.attach_agent(
                net.senders[i],
                Box::new(CbrSource::new(
                    f,
                    net.receivers[i],
                    1000,
                    Rate::from_kbps(500),
                )),
            );
            sim.attach_agent(net.receivers[i], Box::new(Sink));
            flows.push(f);
        }
        sim.run_until(SimTime::from_secs(5));
        for f in flows {
            assert!(sim.stats().flow(f).pkts_arrived > 100, "flow {f} starved");
            assert_eq!(sim.stats().flow(f).pkts_dropped, 0);
        }
    }

    #[test]
    fn bottleneck_caps_aggregate_throughput() {
        let cfg = DumbbellConfig {
            pairs: 2,
            bottleneck_rate: Rate::from_mbps(1),
            ..DumbbellConfig::default()
        };
        let (mut sim, net) = Dumbbell::build(&cfg, 11);
        for i in 0..2 {
            let f = sim.register_flow(&format!("f{i}"));
            // Each offers 1 Mbit/s into a 1 Mbit/s bottleneck.
            sim.attach_agent(
                net.senders[i],
                Box::new(CbrSource::new(
                    f,
                    net.receivers[i],
                    1000,
                    Rate::from_mbps(1),
                )),
            );
        }
        sim.run_until(SimTime::from_secs(20));
        let total: f64 = (0..2)
            .map(|i| {
                sim.stats()
                    .flow(i as u32)
                    .throughput_bps(Duration::from_secs(20))
            })
            .sum();
        assert!(total < 1_100_000.0, "aggregate {total} exceeds bottleneck");
        assert!(total > 900_000.0, "bottleneck underutilized: {total}");
    }

    #[test]
    fn base_rtt_accounts_for_heterogeneous_access() {
        let cfg = DumbbellConfig {
            pairs: 2,
            access_delay: Duration::from_millis(1),
            access_delays: Some(vec![Duration::from_millis(1), Duration::from_millis(40)]),
            bottleneck_delay: Duration::from_millis(10),
            ..DumbbellConfig::default()
        };
        assert_eq!(Dumbbell::base_rtt(&cfg, 0), Duration::from_millis(24));
        assert_eq!(Dumbbell::base_rtt(&cfg, 1), Duration::from_millis(102));
    }

    #[test]
    #[should_panic(expected = "access_delays length mismatch")]
    fn wrong_delay_vector_length_panics() {
        let cfg = DumbbellConfig {
            pairs: 2,
            access_delays: Some(vec![Duration::from_millis(1)]),
            ..DumbbellConfig::default()
        };
        let _ = Dumbbell::build(&cfg, 1);
    }

    #[test]
    fn long_fat_pipe_rtt_and_bdp() {
        let cfg =
            LongFatPipeConfig::symmetric(Rate::from_mbps(10), Duration::from_millis(250), 1250);
        assert_eq!(cfg.rtt(), Duration::from_millis(500));
        // 10 Mbit/s * 0.5 s = 5 Mbit = 500 packets of 1250 B.
        assert_eq!(
            LongFatPipeConfig::bdp_packets(Rate::from_mbps(10), cfg.rtt(), 1250),
            500
        );
    }

    #[test]
    fn long_fat_pipe_delivers_at_satellite_latency() {
        let cfg =
            LongFatPipeConfig::symmetric(Rate::from_mbps(10), Duration::from_millis(150), 1250);
        let (mut sim, net) = LongFatPipe::build(&cfg, 5);
        let f = sim.register_flow("f");
        sim.attach_agent(
            net.tx,
            Box::new(CbrSource::new(f, net.rx, 1250, Rate::from_mbps(1))),
        );
        sim.attach_agent(net.rx, Box::new(Sink));
        sim.run_until(SimTime::from_secs(10));
        let st = sim.stats().flow(f);
        assert!(st.pkts_arrived > 500, "pipe starved: {}", st.pkts_arrived);
        assert_eq!(st.pkts_dropped, 0);
    }

    #[test]
    fn asymmetric_reverse_channel_is_slower() {
        let cfg =
            LongFatPipeConfig::symmetric(Rate::from_mbps(10), Duration::from_millis(150), 1250)
                .with_reverse(Rate::from_kbps(64), Duration::from_millis(150));
        let (sim, net) = LongFatPipe::build(&cfg, 5);
        assert_eq!(sim.link(net.forward).rate, Rate::from_mbps(10));
        assert_eq!(sim.link(net.reverse).rate, Rate::from_kbps(64));
        assert_eq!(cfg.rtt(), Duration::from_millis(300));
    }

    #[test]
    fn handover_switches_last_hop_mid_run() {
        let cfg = HandoverConfig {
            initial: LinkConfig::new(Rate::from_mbps(10), Duration::from_millis(5)),
            target: LinkConfig::new(Rate::from_mbps(2), Duration::from_millis(30))
                .with_loss(crate::loss::LossModel::bernoulli(0.5)),
            switch_at: Duration::from_secs(5),
            ..HandoverConfig::default()
        };
        let (mut sim, ho) = Handover::build(&cfg, 21);
        let f = sim.register_flow("f");
        sim.attach_agent(
            ho.server,
            Box::new(CbrSource::new(f, ho.mobile, 1250, Rate::from_mbps(1))),
        );
        sim.attach_agent(ho.mobile, Box::new(Sink));
        sim.run_until(SimTime::ZERO + cfg.switch_at);
        let before = sim.stats().flow(f).pkts_dropped;
        assert_eq!(before, 0, "clean WLAN phase must not drop");
        ho.switch(&mut sim);
        assert_eq!(sim.link(ho.down).rate, Rate::from_mbps(2));
        assert_eq!(sim.link(ho.down).delay, Duration::from_millis(30));
        sim.run_until(SimTime::from_secs(10));
        let st = sim.stats().flow(f);
        assert!(
            st.pkts_dropped > 50,
            "post-switch loss model not applied ({} drops)",
            st.pkts_dropped
        );
        assert!(st.pkts_arrived > 100);
    }
}
