//! Measurement: per-flow and per-link counters, throughput time series and
//! the summary statistics the experiments report (mean throughput, delay,
//! Jain fairness index, coefficient of variation for smoothness).
//!
//! Counters are updated by the simulator as packets move; transports report
//! application-level (in-order) delivery explicitly via
//! [`Stats::app_deliver`], which is what goodput measurements use.

use std::time::Duration;

use crate::packet::{Color, FlowId, LinkId, Packet};
use crate::queue::DropReason;
use crate::time::SimTime;

/// Per-flow counters and series.
#[derive(Debug, Clone)]
pub struct FlowStats {
    /// Human-readable flow label, chosen at registration.
    pub name: String,
    /// Packets handed to the network by the source.
    pub pkts_sent: u64,
    /// Bytes handed to the network by the source (wire bytes).
    pub bytes_sent: u64,
    /// Packets that reached their destination node.
    pub pkts_arrived: u64,
    /// Wire bytes that reached their destination node.
    pub bytes_arrived: u64,
    /// Packets dropped inside the network (queues + link loss).
    pub pkts_dropped: u64,
    /// Application-level bytes delivered in order (reported by transports).
    pub bytes_app_delivered: u64,
    /// Sum of one-way delays of arrived packets, for the mean.
    delay_sum_s: f64,
    /// Arrived-packet count backing the delay mean.
    delay_samples: u64,
    /// Network-level throughput series: wire bytes arrived per sample tick.
    pub arrive_series: Vec<u64>,
    /// Application-level goodput series: app bytes delivered per sample tick.
    pub goodput_series: Vec<u64>,
    bytes_arrived_at_last_sample: u64,
    app_bytes_at_last_sample: u64,
}

impl FlowStats {
    fn new(name: String) -> Self {
        FlowStats {
            name,
            pkts_sent: 0,
            bytes_sent: 0,
            pkts_arrived: 0,
            bytes_arrived: 0,
            pkts_dropped: 0,
            bytes_app_delivered: 0,
            delay_sum_s: 0.0,
            delay_samples: 0,
            arrive_series: Vec::new(),
            goodput_series: Vec::new(),
            bytes_arrived_at_last_sample: 0,
            app_bytes_at_last_sample: 0,
        }
    }

    /// Mean one-way network delay of arrived packets.
    pub fn mean_delay(&self) -> Option<Duration> {
        if self.delay_samples == 0 {
            None
        } else {
            Some(Duration::from_secs_f64(
                self.delay_sum_s / self.delay_samples as f64,
            ))
        }
    }

    /// Network-level loss rate experienced by this flow.
    pub fn loss_rate(&self) -> f64 {
        if self.pkts_sent == 0 {
            0.0
        } else {
            self.pkts_dropped as f64 / self.pkts_sent as f64
        }
    }

    /// Network throughput in bit/s over a window of `elapsed`.
    pub fn throughput_bps(&self, elapsed: Duration) -> f64 {
        if elapsed.is_zero() {
            0.0
        } else {
            self.bytes_arrived as f64 * 8.0 / elapsed.as_secs_f64()
        }
    }

    /// Application goodput in bit/s over a window of `elapsed`.
    pub fn goodput_bps(&self, elapsed: Duration) -> f64 {
        if elapsed.is_zero() {
            0.0
        } else {
            self.bytes_app_delivered as f64 * 8.0 / elapsed.as_secs_f64()
        }
    }

    /// Throughput series in bit/s given the sampling interval used.
    pub fn arrive_series_bps(&self, interval: Duration) -> Vec<f64> {
        self.arrive_series
            .iter()
            .map(|&b| b as f64 * 8.0 / interval.as_secs_f64())
            .collect()
    }
}

/// Per-link counters, indexed by drop reason and color.
#[derive(Debug, Clone, Default)]
pub struct LinkStats {
    /// Packets accepted into the queue.
    pub pkts_enqueued: u64,
    /// Wire bytes accepted into the queue.
    pub bytes_enqueued: u64,
    /// Packets transmitted onto the wire (left the queue).
    pub pkts_transmitted: u64,
    /// Drops by cause: indexed with [`drop_reason_index`].
    pub drops_by_reason: [u64; 4],
    /// Drops by DiffServ color at the moment of drop.
    pub drops_by_color: [u64; 3],
    /// Enqueued packets by color (for in/out-profile accounting).
    pub enqueued_by_color: [u64; 3],
}

/// Stable index for a [`DropReason`] in counter arrays.
pub fn drop_reason_index(r: DropReason) -> usize {
    match r {
        DropReason::QueueFull => 0,
        DropReason::EarlyDrop => 1,
        DropReason::ForcedDrop => 2,
        DropReason::LinkLoss => 3,
    }
}

impl LinkStats {
    /// All drops regardless of cause.
    pub fn total_drops(&self) -> u64 {
        self.drops_by_reason.iter().sum()
    }
}

/// The simulation-wide measurement sink.
#[derive(Debug)]
pub struct Stats {
    flows: Vec<FlowStats>,
    links: Vec<LinkStats>,
    /// Interval between series samples, if sampling is enabled.
    pub sample_interval: Option<Duration>,
}

impl Stats {
    pub(crate) fn new() -> Self {
        Stats {
            flows: Vec::new(),
            links: Vec::new(),
            sample_interval: None,
        }
    }

    pub(crate) fn register_flow(&mut self, name: String) -> FlowId {
        let id = self.flows.len() as FlowId;
        self.flows.push(FlowStats::new(name));
        id
    }

    pub(crate) fn register_link(&mut self) -> LinkId {
        self.links.push(LinkStats::default());
        self.links.len() - 1
    }

    /// Counters for one flow.
    pub fn flow(&self, id: FlowId) -> &FlowStats {
        &self.flows[id as usize]
    }

    /// Counters for one link.
    pub fn link(&self, id: LinkId) -> &LinkStats {
        &self.links[id]
    }

    /// All flows, in registration order.
    pub fn flows(&self) -> &[FlowStats] {
        &self.flows
    }

    /// Record a source handing a packet to the network.
    pub(crate) fn on_send(&mut self, pkt: &Packet) {
        let f = &mut self.flows[pkt.flow as usize];
        f.pkts_sent += 1;
        f.bytes_sent += pkt.wire_size as u64;
    }

    /// Record a packet reaching its destination node.
    pub(crate) fn on_arrive(&mut self, now: SimTime, pkt: &Packet) {
        let f = &mut self.flows[pkt.flow as usize];
        f.pkts_arrived += 1;
        f.bytes_arrived += pkt.wire_size as u64;
        f.delay_sum_s += now.saturating_since(pkt.created_at).as_secs_f64();
        f.delay_samples += 1;
    }

    /// Record a network drop (queue or link loss).
    pub(crate) fn on_drop(&mut self, link: LinkId, pkt: &Packet, reason: DropReason) {
        self.flows[pkt.flow as usize].pkts_dropped += 1;
        let l = &mut self.links[link];
        l.drops_by_reason[drop_reason_index(reason)] += 1;
        l.drops_by_color[pkt.color.index()] += 1;
    }

    pub(crate) fn on_enqueue(&mut self, link: LinkId, color: Color, wire_size: u32) {
        let l = &mut self.links[link];
        l.pkts_enqueued += 1;
        l.bytes_enqueued += wire_size as u64;
        l.enqueued_by_color[color.index()] += 1;
    }

    /// Count a routing failure against the flow (no link involved).
    /// Routing failures indicate a topology bug; loud in debug builds.
    pub(crate) fn on_no_route(&mut self, flow: FlowId) {
        debug_assert!(false, "packet had no route — topology is disconnected");
        self.flows[flow as usize].pkts_dropped += 1;
    }

    pub(crate) fn on_transmit(&mut self, link: LinkId) {
        self.links[link].pkts_transmitted += 1;
    }

    /// Transports call this when bytes are delivered to the application in
    /// order; it is the basis of goodput measurements.
    pub fn app_deliver(&mut self, flow: FlowId, bytes: u64) {
        self.flows[flow as usize].bytes_app_delivered += bytes;
    }

    /// Close the current sampling window on every flow.
    pub(crate) fn sample_tick(&mut self) {
        for f in &mut self.flows {
            f.arrive_series
                .push(f.bytes_arrived - f.bytes_arrived_at_last_sample);
            f.bytes_arrived_at_last_sample = f.bytes_arrived;
            f.goodput_series
                .push(f.bytes_app_delivered - f.app_bytes_at_last_sample);
            f.app_bytes_at_last_sample = f.bytes_app_delivered;
        }
    }

    /// Color breakdown of drops on a link: (green, yellow, red).
    pub fn link_drops_by_color(&self, link: LinkId) -> (u64, u64, u64) {
        let d = &self.links[link].drops_by_color;
        (
            d[Color::Green.index()],
            d[Color::Yellow.index()],
            d[Color::Red.index()],
        )
    }
}

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation; 0 for fewer than two samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
    var.sqrt()
}

/// Coefficient of variation (std/mean); the smoothness metric used in E7.
/// Returns 0 when the mean is 0.
pub fn cov(xs: &[f64]) -> f64 {
    let m = mean(xs);
    if m == 0.0 {
        0.0
    } else {
        std_dev(xs) / m
    }
}

/// Jain's fairness index over per-flow allocations: 1 = perfectly fair,
/// 1/n = maximally unfair. Returns 1 for an empty slice.
pub fn jain_index(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sum_sq: f64 = xs.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    sum * sum / (xs.len() as f64 * sum_sq)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(flow: FlowId, size: u32, created: SimTime) -> Packet {
        Packet::new(0, flow, 0, 1, size, created, Vec::new())
    }

    fn stats_with_flow() -> Stats {
        let mut s = Stats::new();
        s.register_flow("f0".into());
        s.register_link();
        s
    }

    #[test]
    fn send_arrive_counters() {
        let mut s = stats_with_flow();
        let p = pkt(0, 1000, SimTime::ZERO);
        s.on_send(&p);
        s.on_arrive(SimTime::from_millis(50), &p);
        let f = s.flow(0);
        assert_eq!(f.pkts_sent, 1);
        assert_eq!(f.bytes_sent, 1000);
        assert_eq!(f.bytes_arrived, 1000);
        assert_eq!(f.mean_delay(), Some(Duration::from_millis(50)));
    }

    #[test]
    fn throughput_over_window() {
        let mut s = stats_with_flow();
        for _ in 0..10 {
            let p = pkt(0, 1250, SimTime::ZERO);
            s.on_send(&p);
            s.on_arrive(SimTime::from_millis(1), &p);
        }
        // 12_500 bytes in 0.1 s = 1 Mbit/s.
        let bps = s.flow(0).throughput_bps(Duration::from_millis(100));
        assert!((bps - 1_000_000.0).abs() < 1e-6);
    }

    #[test]
    fn loss_rate_counts_drops() {
        let mut s = stats_with_flow();
        for i in 0..10 {
            let p = pkt(0, 100, SimTime::ZERO);
            s.on_send(&p);
            if i < 3 {
                s.on_drop(0, &p, DropReason::QueueFull);
            }
        }
        assert!((s.flow(0).loss_rate() - 0.3).abs() < 1e-12);
        assert_eq!(s.link(0).total_drops(), 3);
        assert_eq!(
            s.link(0).drops_by_reason[drop_reason_index(DropReason::QueueFull)],
            3
        );
    }

    #[test]
    fn sampling_windows_are_differences() {
        let mut s = stats_with_flow();
        let p = pkt(0, 500, SimTime::ZERO);
        s.on_send(&p);
        s.on_arrive(SimTime::from_millis(1), &p);
        s.sample_tick();
        s.sample_tick(); // nothing new arrived
        let p2 = pkt(0, 700, SimTime::ZERO);
        s.on_send(&p2);
        s.on_arrive(SimTime::from_millis(2), &p2);
        s.app_deliver(0, 700);
        s.sample_tick();
        let f = s.flow(0);
        assert_eq!(f.arrive_series, vec![500, 0, 700]);
        assert_eq!(f.goodput_series, vec![0, 0, 700]);
    }

    #[test]
    fn series_bps_conversion() {
        let mut s = stats_with_flow();
        let p = pkt(0, 1250, SimTime::ZERO);
        s.on_send(&p);
        s.on_arrive(SimTime::from_millis(1), &p);
        s.sample_tick();
        let series = s.flow(0).arrive_series_bps(Duration::from_millis(10));
        assert_eq!(series, vec![1_000_000.0]); // 1250 B / 10 ms = 1 Mbit/s
    }

    #[test]
    fn jain_fairness_bounds() {
        assert_eq!(jain_index(&[]), 1.0);
        assert!((jain_index(&[5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        let unfair = jain_index(&[10.0, 0.0, 0.0]);
        assert!((unfair - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0, "degenerate all-zero case");
    }

    #[test]
    fn cov_of_constant_series_is_zero() {
        assert_eq!(cov(&[3.0, 3.0, 3.0]), 0.0);
        assert_eq!(cov(&[]), 0.0);
        assert!(cov(&[1.0, 5.0, 1.0, 5.0]) > 0.5);
    }

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!((std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - 2.0).abs() < 1e-12);
    }
}
