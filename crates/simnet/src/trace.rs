//! Optional packet-level tracing.
//!
//! When a trace sink is installed on the simulator, every significant packet
//! event is reported to it. Used by debugging sessions and by the
//! determinism property test (same seed ⇒ identical trace).

use crate::packet::{Color, FlowId, LinkId, NodeId};
use crate::queue::DropReason;
use crate::time::SimTime;

/// One traced packet event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A source handed a packet to the network.
    Send {
        at: SimTime,
        node: NodeId,
        flow: FlowId,
        uid: u64,
        size: u32,
    },
    /// A packet was accepted into a link's queue.
    Enqueue {
        at: SimTime,
        link: LinkId,
        flow: FlowId,
        uid: u64,
        color: Color,
        queue_len: usize,
    },
    /// A packet was dropped (queue or link loss).
    Drop {
        at: SimTime,
        link: LinkId,
        flow: FlowId,
        uid: u64,
        color: Color,
        reason: DropReason,
    },
    /// A packet arrived at its destination node.
    Deliver {
        at: SimTime,
        node: NodeId,
        flow: FlowId,
        uid: u64,
    },
}

impl TraceEvent {
    /// Time the event occurred.
    pub fn at(&self) -> SimTime {
        match self {
            TraceEvent::Send { at, .. }
            | TraceEvent::Enqueue { at, .. }
            | TraceEvent::Drop { at, .. }
            | TraceEvent::Deliver { at, .. } => *at,
        }
    }

    /// Packet uid the event refers to.
    pub fn uid(&self) -> u64 {
        match self {
            TraceEvent::Send { uid, .. }
            | TraceEvent::Enqueue { uid, .. }
            | TraceEvent::Drop { uid, .. }
            | TraceEvent::Deliver { uid, .. } => *uid,
        }
    }
}

/// Where trace events go.
pub type TraceSink = Box<dyn FnMut(&TraceEvent)>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let e = TraceEvent::Send {
            at: SimTime::from_millis(3),
            node: 1,
            flow: 2,
            uid: 99,
            size: 100,
        };
        assert_eq!(e.at(), SimTime::from_millis(3));
        assert_eq!(e.uid(), 99);
        let d = TraceEvent::Drop {
            at: SimTime::ZERO,
            link: 0,
            flow: 0,
            uid: 7,
            color: Color::Red,
            reason: DropReason::EarlyDrop,
        };
        assert_eq!(d.uid(), 7);
    }
}
