//! Composable path impairment models: reordering, duplication, corruption.
//!
//! A [`PathModel`] sits between a link's loss process and propagation: after
//! a packet survives the [`crate::loss::LossModel`] it can be corrupted
//! (modelled as an erasure — the receiver's checksum discards it), delayed
//! by a bounded random jitter (producing reordering), or duplicated (a
//! second copy propagates with its own jitter draw). These are the
//! transport-hostile behaviours the survey literature identifies as the
//! regimes where window-based transports misfire: spurious fast retransmit
//! under reordering, ack-ambiguity under duplication, and congestion
//! misattribution under corruption.
//!
//! Determinism contract: a disabled model ([`PathModel::is_noop`]) makes
//! **zero** RNG draws and schedules exactly the events an unimpaired link
//! would, so every pre-existing fixed-seed output stays byte-identical.
//! Active models draw from a dedicated per-link stream
//! (`DetRng::stream(seed, 0x9A77 ^ link_id)`), independent of the loss and
//! AQM stream, so enabling an impairment on one link never perturbs the
//! draws of any other component.
//!
//! Reordering bound: each packet's extra delay is drawn uniformly from
//! `[0, jitter]`. Since the unimpaired (nominal) arrivals of a FIFO link
//! are monotone, a packet can only be overtaken by packets whose nominal
//! arrival is at most `jitter` later — the max-displacement invariant the
//! proptest in `tests/path_reorder_proptest.rs` checks against a naive
//! oracle.

use std::time::Duration;

use crate::rng::DetRng;

/// Bounded random reordering: with probability `p` a packet's propagation
/// is stretched by an extra delay drawn uniformly from `[0, jitter]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReorderSpec {
    /// Probability that a packet receives extra delay.
    pub p: f64,
    /// Upper bound of the extra delay (the max-displacement bound).
    pub jitter: Duration,
}

impl ReorderSpec {
    /// Reorder every susceptible packet with probability `p`, delaying it
    /// by at most `jitter`.
    pub fn new(p: f64, jitter: Duration) -> Self {
        assert!((0.0..=1.0).contains(&p), "reorder probability out of range");
        ReorderSpec { p, jitter }
    }

    /// Whether this spec can ever change a delivery time.
    fn active(&self) -> bool {
        self.p > 0.0 && self.jitter > Duration::ZERO
    }
}

/// A composable bundle of in-flight path impairments for one link.
///
/// The default model is a no-op: no draws, no behaviour change. Impairments
/// compose; per surviving packet the draw order is fixed (corrupt, then
/// reorder jitter, then duplication, then the duplicate's jitter) so runs
/// are byte-reproducible.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PathModel {
    /// Bounded random reordering, if enabled.
    pub reorder: Option<ReorderSpec>,
    /// Probability that a packet is duplicated in flight.
    pub duplicate: f64,
    /// Probability that a packet is corrupted in flight. Corruption is
    /// modelled as an erasure (the receiver's checksum rejects the frame),
    /// counted under [`crate::queue::DropReason::LinkLoss`] like any other
    /// in-flight loss.
    pub corrupt: f64,
}

impl PathModel {
    /// The identity model: no impairments, zero RNG draws.
    pub fn none() -> Self {
        PathModel::default()
    }

    /// Enable bounded reordering.
    pub fn with_reorder(mut self, p: f64, jitter: Duration) -> Self {
        self.reorder = Some(ReorderSpec::new(p, jitter));
        self
    }

    /// Enable probabilistic duplication.
    pub fn with_duplicate(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "duplicate probability out of range"
        );
        self.duplicate = p;
        self
    }

    /// Enable corruption-as-erasure.
    pub fn with_corrupt(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "corrupt probability out of range");
        self.corrupt = p;
        self
    }

    /// Whether the model can never affect a packet. The simulator skips all
    /// draws for no-op models — the byte-identity guarantee for existing
    /// scenarios rests on this.
    pub fn is_noop(&self) -> bool {
        self.corrupt == 0.0 && self.duplicate == 0.0 && !self.reorder.is_some_and(|r| r.active())
    }

    /// Decide one surviving packet's fate. Returns `None` when the packet is
    /// corrupted (erased); otherwise `Some((extra_delay, duplicate_delay))`
    /// where `duplicate_delay` is the second copy's extra delay if one is
    /// spawned. Draw order is part of the determinism contract.
    pub(crate) fn apply(&self, rng: &mut DetRng) -> Option<(Duration, Option<Duration>)> {
        if rng.chance(self.corrupt) {
            return None;
        }
        let extra = self.draw_jitter(rng);
        let dup = if rng.chance(self.duplicate) {
            Some(self.draw_jitter(rng))
        } else {
            None
        };
        Some((extra, dup))
    }

    /// One reorder-jitter draw: extra delay in `[0, jitter]`, or zero when
    /// reordering is disabled or the per-packet coin misses.
    fn draw_jitter(&self, rng: &mut DetRng) -> Duration {
        match self.reorder {
            Some(r) if r.active() && rng.chance(r.p) => {
                let frac = rng.next_f64();
                Duration::from_nanos((frac * r.jitter.as_nanos() as f64) as u64)
            }
            _ => Duration::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_noop() {
        assert!(PathModel::none().is_noop());
        assert!(PathModel::default().is_noop());
    }

    #[test]
    fn degenerate_reorder_is_noop() {
        // Zero probability or zero jitter can never move a delivery.
        assert!(PathModel::none()
            .with_reorder(0.0, Duration::from_millis(5))
            .is_noop());
        assert!(PathModel::none()
            .with_reorder(0.5, Duration::ZERO)
            .is_noop());
        assert!(!PathModel::none()
            .with_reorder(0.5, Duration::from_millis(5))
            .is_noop());
    }

    #[test]
    fn builders_compose() {
        let m = PathModel::none()
            .with_reorder(0.3, Duration::from_millis(10))
            .with_duplicate(0.01)
            .with_corrupt(0.02);
        assert!(!m.is_noop());
        assert_eq!(
            m.reorder,
            Some(ReorderSpec::new(0.3, Duration::from_millis(10)))
        );
        assert_eq!(m.duplicate, 0.01);
        assert_eq!(m.corrupt, 0.02);
    }

    #[test]
    fn jitter_draws_stay_within_bound() {
        let jitter = Duration::from_millis(7);
        let m = PathModel::none().with_reorder(1.0, jitter);
        let mut rng = DetRng::new(42);
        for _ in 0..10_000 {
            let (extra, dup) = m.apply(&mut rng).expect("no corruption configured");
            assert!(extra <= jitter, "extra={extra:?}");
            assert!(dup.is_none());
        }
    }

    #[test]
    fn corrupt_rate_matches_p() {
        let m = PathModel::none().with_corrupt(0.1);
        let mut rng = DetRng::new(7);
        let n = 100_000;
        let erased = (0..n).filter(|_| m.apply(&mut rng).is_none()).count();
        let rate = erased as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.01, "rate={rate}");
    }

    #[test]
    fn duplicate_rate_matches_p() {
        let m = PathModel::none().with_duplicate(0.2);
        let mut rng = DetRng::new(9);
        let n = 100_000;
        let dups = (0..n)
            .filter(|_| m.apply(&mut rng).is_some_and(|(_, d)| d.is_some()))
            .count();
        let rate = dups as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.01, "rate={rate}");
    }

    #[test]
    #[should_panic(expected = "duplicate probability out of range")]
    fn duplicate_probability_validated() {
        let _ = PathModel::none().with_duplicate(1.5);
    }
}
