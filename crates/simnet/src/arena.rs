//! Pooled packet storage: a free-list slab that recycles header buffers.
//!
//! At 10^5 flows the simulator moves hundreds of millions of packets, and
//! the original representation — full [`Packet`] structs (with a heap
//! `Vec<u8>` header each) owned by whichever event/queue currently holds
//! them — made every hop a ~64-byte memmove and every send/drop a heap
//! round-trip. The arena fixes both: packets live in one dense slab for
//! their whole life, everything else (events, queues, links) passes around
//! a 4-byte [`PacketId`], and a released slot keeps its header `Vec`'s
//! allocation so the next packet through reuses it.
//!
//! # Lifetime rules
//!
//! A `PacketId` is live from [`PacketArena::alloc`] until exactly one
//! [`PacketArena::release`] — at delivery, drop (queue/loss), or routing
//! failure. The simulator is the only component that releases; queues and
//! links merely hold ids. Releasing recycles the slot: the id may be handed
//! out again by the very next `alloc`, so holding an id across a release is
//! a logic bug. Accessors check liveness (`debug_assert` on reads, hard
//! `assert` on double-release) so stale ids fail loudly instead of reading
//! another packet's fields.

use crate::packet::Packet;

/// Handle to a packet slot in a [`PacketArena`]. Cheap to copy and store;
/// only meaningful to the arena that issued it, and only until released.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketId(u32);

impl PacketId {
    /// The raw slot index (exposed for diagnostics).
    pub fn index(self) -> u32 {
        self.0
    }

    /// Construct from a raw index. Only for tests and benches that drive a
    /// queue standalone; an id made this way is not a valid arena handle.
    pub fn from_raw(index: u32) -> Self {
        PacketId(index)
    }
}

/// Free-list slab of [`Packet`]s. See the module docs for lifetime rules.
#[derive(Debug, Default)]
pub struct PacketArena {
    slots: Vec<Packet>,
    /// Whether each slot currently holds a live packet.
    live: Vec<bool>,
    /// Released slot indices, reused LIFO (the hottest slot first, so the
    /// recycled header buffer is likely still in cache).
    free: Vec<u32>,
}

impl PacketArena {
    pub fn new() -> Self {
        PacketArena::default()
    }

    /// Number of live packets.
    pub fn live_count(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Number of slots ever created (live + pooled). The high-water mark of
    /// concurrent packets; a memory-footprint proxy.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Store `pkt`, reusing a released slot (and its header allocation) when
    /// one is available.
    pub fn alloc(&mut self, pkt: Packet) -> PacketId {
        match self.free.pop() {
            Some(i) => {
                let slot = &mut self.slots[i as usize];
                slot.uid = pkt.uid;
                slot.flow = pkt.flow;
                slot.src = pkt.src;
                slot.dst = pkt.dst;
                slot.wire_size = pkt.wire_size;
                slot.color = pkt.color;
                slot.created_at = pkt.created_at;
                if slot.header.capacity() >= pkt.header.len() {
                    // Recycle the slot's buffer; the incoming header (often
                    // the empty Vec of a background source) is dropped.
                    slot.header.clear();
                    slot.header.extend_from_slice(&pkt.header);
                } else {
                    slot.header = pkt.header;
                }
                self.live[i as usize] = true;
                PacketId(i)
            }
            None => {
                let i = self.slots.len();
                assert!(i <= u32::MAX as usize, "packet arena overflow");
                self.slots.push(pkt);
                self.live.push(true);
                PacketId(i as u32)
            }
        }
    }

    /// Read a live packet.
    #[inline]
    pub fn get(&self, id: PacketId) -> &Packet {
        debug_assert!(self.live[id.0 as usize], "read of released PacketId");
        &self.slots[id.0 as usize]
    }

    /// Mutate a live packet (markers re-color in place).
    #[inline]
    pub fn get_mut(&mut self, id: PacketId) -> &mut Packet {
        debug_assert!(self.live[id.0 as usize], "write to released PacketId");
        &mut self.slots[id.0 as usize]
    }

    /// Return a packet's slot to the pool. The id must not be used again.
    pub fn release(&mut self, id: PacketId) {
        let i = id.0 as usize;
        assert!(self.live[i], "double release of PacketId");
        self.live[i] = false;
        self.free.push(id.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn pkt(uid: u64, header: Vec<u8>) -> Packet {
        Packet::new(uid, 0, 0, 1, 1000, SimTime::ZERO, header)
    }

    #[test]
    fn alloc_get_release_roundtrip() {
        let mut a = PacketArena::new();
        let id = a.alloc(pkt(7, vec![1, 2, 3]));
        assert_eq!(a.get(id).uid, 7);
        assert_eq!(a.get(id).header, vec![1, 2, 3]);
        assert_eq!(a.live_count(), 1);
        a.release(id);
        assert_eq!(a.live_count(), 0);
        assert_eq!(a.capacity(), 1);
    }

    #[test]
    fn released_slot_is_reused_with_fresh_fields() {
        let mut a = PacketArena::new();
        let id1 = a.alloc(pkt(1, vec![0xAA; 32]));
        a.release(id1);
        // Same slot comes back; no stale bytes from the previous occupant.
        let id2 = a.alloc(pkt(2, vec![0xBB]));
        assert_eq!(id2.index(), id1.index(), "LIFO free list reuses the slot");
        assert_eq!(a.get(id2).uid, 2);
        assert_eq!(a.get(id2).header, vec![0xBB]);
        assert_eq!(a.capacity(), 1, "no new slot was created");
    }

    #[test]
    fn header_allocation_is_recycled() {
        let mut a = PacketArena::new();
        let id = a.alloc(pkt(1, Vec::with_capacity(64)));
        a.release(id);
        let id = a.alloc(pkt(2, vec![9; 16]));
        // The recycled buffer's capacity survives (64 >= 16: reused in place).
        assert!(a.get(id).header.capacity() >= 64);
        assert_eq!(a.get(id).header, vec![9; 16]);
    }

    #[test]
    fn interleaved_alloc_release_keeps_ids_distinct() {
        let mut a = PacketArena::new();
        let ids: Vec<PacketId> = (0..100).map(|u| a.alloc(pkt(u, Vec::new()))).collect();
        for (u, &id) in ids.iter().enumerate() {
            assert_eq!(a.get(id).uid, u as u64);
        }
        // Release the evens; allocate 50 more; odds must be untouched.
        for &id in ids.iter().step_by(2) {
            a.release(id);
        }
        let new_ids: Vec<PacketId> = (100..150).map(|u| a.alloc(pkt(u, Vec::new()))).collect();
        assert_eq!(a.capacity(), 100, "new packets filled the freed slots");
        for (i, &id) in ids.iter().enumerate().filter(|(i, _)| i % 2 == 1) {
            assert_eq!(a.get(id).uid, i as u64, "live slot clobbered");
        }
        for (k, &id) in new_ids.iter().enumerate() {
            assert_eq!(a.get(id).uid, 100 + k as u64);
        }
    }

    #[test]
    #[should_panic(expected = "double release")]
    fn double_release_panics() {
        let mut a = PacketArena::new();
        let id = a.alloc(pkt(1, Vec::new()));
        a.release(id);
        a.release(id);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "read of released PacketId")]
    fn stale_read_panics_in_debug() {
        let mut a = PacketArena::new();
        let id = a.alloc(pkt(1, Vec::new()));
        a.release(id);
        let _ = a.get(id);
    }
}
