//! Property tests for [`qtp_simnet::path::PathModel`] reordering against a
//! naive oracle.
//!
//! The jitter draw stretches a packet's propagation by at most `jitter`,
//! and an unimpaired FIFO link delivers in send order — so a packet can
//! only be overtaken by packets whose nominal (unimpaired) arrival lies
//! within `jitter` of its own. The oracle recomputes every nominal arrival
//! from first principles (send offset + serialization + propagation; the
//! access link is fast enough that nothing queues) and checks the
//! max-displacement invariant pairwise, plus conservation and the
//! deterministic `(time, schedule-seq)` tie-break of the event loop.
//!
//! The second property is the byte-identity contract: a link carrying an
//! explicitly attached no-op model must replay *exactly* — same arrival
//! timestamps, same event count, same pool high-water — as a plain link,
//! for any seed and loss rate.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use proptest::prelude::*;
use qtp_simnet::prelude::*;

/// Sends `n` packets of `size` bytes at a fixed `gap`, starting at t=0.
struct Pacer {
    flow: FlowId,
    dst: NodeId,
    n: u64,
    size: u32,
    gap: Duration,
    sent: u64,
}

impl Agent for Pacer {
    fn on_start(&mut self, ctx: &mut Ctx) {
        ctx.set_timer_in(Duration::ZERO, 0);
    }
    fn on_timer(&mut self, ctx: &mut Ctx, _token: u64) {
        if self.sent < self.n {
            ctx.send_new(self.flow, self.dst, self.size, Vec::new());
            self.sent += 1;
            ctx.set_timer_in(self.gap, 0);
        }
    }
}

/// Records `(uid, arrival time)` for every delivered packet.
struct UidRecorder {
    arrivals: Rc<RefCell<Vec<(u64, SimTime)>>>,
}

impl Agent for UidRecorder {
    fn on_packet(&mut self, ctx: &mut Ctx, pkt: &Packet) {
        self.arrivals.borrow_mut().push((pkt.uid, ctx.now));
    }
}

const N: u64 = 80;
const SIZE: u32 = 1000;
const PROP: Duration = Duration::from_millis(5);

/// Run `N` paced packets over one 100 Mbit/s link carrying `path`,
/// returning the delivered `(uid, time)` sequence.
fn run_paced(seed: u64, gap: Duration, path: PathModel) -> Vec<(u64, SimTime)> {
    let mut b = NetworkBuilder::new();
    let tx = b.host();
    let rx = b.host();
    b.simplex_link(
        tx,
        rx,
        LinkConfig::new(Rate::from_mbps(100), PROP).with_path(path),
    );
    let mut sim = b.build(seed);
    let flow = sim.register_flow("paced");
    let arrivals = Rc::new(RefCell::new(Vec::new()));
    sim.attach_agent(
        tx,
        Box::new(Pacer {
            flow,
            dst: rx,
            n: N,
            size: SIZE,
            gap,
            sent: 0,
        }),
    );
    sim.attach_agent(
        rx,
        Box::new(UidRecorder {
            arrivals: arrivals.clone(),
        }),
    );
    sim.run_until(SimTime::from_secs(10));
    let out = arrivals.borrow().clone();
    out
}

proptest! {
    #[test]
    fn reordering_matches_naive_oracle(
        seed in 0u64..1_000_000,
        p_pct in 10u32..=100,
        jitter_ms in 1u64..=40,
        gap_us in 200u64..2_000,
    ) {
        let jitter = Duration::from_millis(jitter_ms);
        let gap = Duration::from_micros(gap_us);
        let path = PathModel::none().with_reorder(f64::from(p_pct) / 100.0, jitter);
        let arrivals = run_paced(seed, gap, path);

        // Conservation: reordering never loses or duplicates a packet.
        prop_assert_eq!(arrivals.len() as u64, N);
        let mut uids: Vec<u64> = arrivals.iter().map(|&(u, _)| u).collect();
        uids.sort_unstable();
        prop_assert!(uids.iter().copied().eq(1..=N), "each uid exactly once");

        // Nothing queues at this rate/gap, so the oracle's nominal arrival
        // of packet `uid` is exact: send offset + serialization + PROP.
        let tx_time = Rate::from_mbps(100).tx_time(SIZE);
        let nominal =
            |uid: u64| SimTime::ZERO + gap * (uid - 1) as u32 + tx_time + PROP;

        // Per-packet delay bound: within [nominal, nominal + jitter].
        for &(uid, at) in &arrivals {
            prop_assert!(at >= nominal(uid), "uid {} early", uid);
            prop_assert!(
                at.saturating_since(nominal(uid)) <= jitter,
                "uid {} beyond the jitter bound",
                uid
            );
        }

        // Max displacement, pairwise against the oracle: whenever an
        // earlier-sent packet arrives after a later-sent one, their
        // nominal arrivals differ by less than the jitter bound.
        for (i, &(u, _)) in arrivals.iter().enumerate() {
            for &(v, _) in &arrivals[i + 1..] {
                if v < u {
                    prop_assert!(
                        nominal(u).saturating_since(nominal(v)) < jitter,
                        "uid {} overtook uid {} across more than one jitter",
                        u,
                        v
                    );
                }
            }
        }

        // Delivery order is exactly the oracle's stable (time, uid) sort:
        // equal-time arrivals were scheduled in uid order, and the event
        // loop breaks time ties by schedule sequence.
        let mut oracle = arrivals.clone();
        oracle.sort_by_key(|&(u, at)| (at, u));
        prop_assert_eq!(&arrivals, &oracle, "deterministic tie-break");
    }

    #[test]
    fn disabled_model_is_byte_identical(
        seed in 0u64..1_000_000,
        loss_pct in 0u32..=40,
        gap_us in 200u64..2_000,
    ) {
        // An attached-but-disabled PathModel must make zero RNG draws and
        // schedule exactly the events of a plain link: identical arrival
        // sequence (uids *and* timestamps), event count, and pool usage.
        let gap = Duration::from_micros(gap_us);
        let run = |with_model: bool| {
            let mut b = NetworkBuilder::new();
            let tx = b.host();
            let rx = b.host();
            let mut cfg = LinkConfig::new(Rate::from_mbps(100), PROP)
                .with_loss(LossModel::bernoulli(f64::from(loss_pct) / 100.0));
            if with_model {
                // Degenerate knobs: zero-probability duplication and
                // corruption, reordering with zero jitter.
                cfg = cfg.with_path(
                    PathModel::none()
                        .with_reorder(0.5, Duration::ZERO)
                        .with_duplicate(0.0)
                        .with_corrupt(0.0),
                );
            }
            b.simplex_link(tx, rx, cfg);
            let mut sim = b.build(seed);
            let flow = sim.register_flow("paced");
            let arrivals = Rc::new(RefCell::new(Vec::new()));
            sim.attach_agent(
                tx,
                Box::new(Pacer {
                    flow,
                    dst: rx,
                    n: N,
                    size: SIZE,
                    gap,
                    sent: 0,
                }),
            );
            sim.attach_agent(
                rx,
                Box::new(UidRecorder {
                    arrivals: arrivals.clone(),
                }),
            );
            sim.run_until(SimTime::from_secs(10));
            let events = sim.events_processed();
            let pool = sim.packet_pool_high_water();
            let out = arrivals.borrow().clone();
            (out, events, pool)
        };
        prop_assert_eq!(run(false), run(true));
    }
}
