//! Controller-race scenario families C1–C3: the pluggable congestion
//! controllers (`qtp-cc`) raced under the scenarios that discriminate
//! between them.
//!
//! The paper's §3 argues congestion control is a *negotiated axis*, not a
//! fixed algorithm; PR 10 makes the axis real (TFRC, gTFRC, Fixed, CUBIC,
//! BBR-lite behind one trait). These families check that each controller
//! shows its textbook signature on the path type it was designed for —
//! and that none of them wrecks fairness at scale:
//!
//! * **C1 — droptail dumbbell, bloated queue**: loss-based CUBIC fills
//!   the 500-packet queue and pays for it in standing queue delay; the
//!   model-based BBR-lite paces at the bottleneck estimate and keeps the
//!   queue short; every controller still fills the link.
//! * **C2 — long fat pipe**: 300/600 ms RTT at 20 Mbit/s. The cubic
//!   window grows with wall time (not per-RTT), so CUBIC holds its
//!   goodput where the equation-based TFRC ramp is RTT-bound.
//! * **C3 — bursty loss and fairness at scale**: every controller
//!   survives a Gilbert–Elliott bursty hop, and a uniform N = 64 flock of
//!   each controller shares one bottleneck with Jain ≥ 0.9.
//!
//! Every family is a parameterised struct on the deterministic simulator
//! at fixed seeds, gated in the claims ledger next to E1–E12/A/H (ids
//! `c1`…`c3`; run just this group with `expt --check --only c`).

use qtp_core::session::{attach_pair, ConnectionPlan, PairHandles, Profile};
use qtp_simnet::prelude::*;
use qtp_simnet::sim::Simulator;
use std::time::Duration;

use crate::common::{droptail_dumbbell, goodput, lossy_path};
use crate::manyflow::{run_sim, ManyFlowConfig, ProfileKind};
use crate::table::{mbps, ratio, Table, Tolerance};

/// The racing controllers: ledger metric prefix, table label and profile.
/// gTFRC and Fixed sit out — their behaviour is pinned by E2/E3/E9
/// already; these families race the three *probing* controllers.
pub const RACERS: [(&str, &str, ProfileKind); 3] = [
    ("tfrc", "TFRC", ProfileKind::Tfrc),
    ("cubic", "CUBIC", ProfileKind::Cubic),
    ("bbr", "BBR-lite", ProfileKind::BbrLite),
];

fn profile_of(kind: ProfileKind) -> Profile {
    // The floor argument only matters for QTPAF; none of the racers use it.
    kind.profile(Rate::from_mbps(1))
}

/// Run one greedy planned connection on an already-built path and return
/// the pair handles for probing.
fn run_racer(
    sim: &mut Simulator,
    s: NodeId,
    r: NodeId,
    name: &str,
    kind: ProfileKind,
    secs: u64,
) -> PairHandles {
    let h = attach_pair(sim, s, r, name, &ConnectionPlan::new(profile_of(kind)));
    sim.run_until(SimTime::from_secs(secs));
    h
}

// ---------------------------------------------------------------------------
// C1 — bloated droptail dumbbell: utilization vs standing queue delay
// ---------------------------------------------------------------------------

/// Parameters of the bloated-dumbbell race.
#[derive(Debug, Clone)]
pub struct BloatParams {
    /// Bottleneck rate, Mbit/s.
    pub core_mbps: u64,
    /// One-way bottleneck propagation delay.
    pub bottleneck_delay: Duration,
    /// Drop-tail queue capacity, packets (well above the BDP: bufferbloat).
    pub queue_pkts: usize,
    /// Measurement horizon, seconds.
    pub secs: u64,
    /// Simulation seed.
    pub seed: u64,
}

impl Default for BloatParams {
    fn default() -> Self {
        BloatParams {
            core_mbps: 5,
            bottleneck_delay: Duration::from_millis(20),
            queue_pkts: 500,
            secs: 60,
            seed: 53,
        }
    }
}

/// C1 — **bufferbloat signature**: on a drop-tail bottleneck whose queue
/// holds many times the BDP, a loss-based controller only sees congestion
/// when the queue overflows, so it keeps a large standing queue; a
/// model-based controller paces at its bottleneck estimate and does not.
/// Utilization must stay high for all of them — keeping the queue short
/// is only a win if the link stays full.
pub fn c1() -> Table {
    let mut t = Table::new(
        "C1",
        "Controller race: bloated droptail dumbbell (5 Mbit/s, 500-pkt queue)",
        "§3 (negotiated congestion control): the controller axis has real consequences — loss-based CUBIC fills the bloated queue into standing delay, model-based BBR-lite holds the link without it",
        &[
            "controller",
            "goodput (Mbit/s)",
            "utilization",
            "mean RTT (ms)",
            "queue delay (ms)",
        ],
    );
    let params = BloatParams::default();
    // Propagation-only RTT of the dumbbell path: two access hops (1 ms
    // each way in `droptail_dumbbell`) plus the bottleneck, both ways.
    let base_rtt_s = 2.0 * (params.bottleneck_delay.as_secs_f64() + 2.0 * 0.001);
    let cap_bps = (params.core_mbps as f64) * 1e6;
    let mut utils = Vec::new();
    let mut qdelays = Vec::new();
    for (i, (_, label, kind)) in RACERS.iter().enumerate() {
        let (mut sim, net) = droptail_dumbbell(
            1,
            params.core_mbps,
            params.bottleneck_delay,
            params.queue_pkts,
            params.seed + i as u64,
        );
        let h = run_racer(
            &mut sim,
            net.senders[0],
            net.receivers[0],
            "race",
            *kind,
            params.secs,
        );
        let g = goodput(&sim, h.data_flow, params.secs);
        let rtt_s = h.tx.snapshot().rtt_estimate_s;
        let qdelay_ms = (rtt_s - base_rtt_s).max(0.0) * 1e3;
        t.row(vec![
            label.to_string(),
            mbps(g),
            ratio(g / cap_bps),
            format!("{:.1}", rtt_s * 1e3),
            format!("{qdelay_ms:.1}"),
        ]);
        utils.push(g / cap_bps);
        qdelays.push(qdelay_ms);
    }
    t.verdict = format!(
        "all three controllers hold ≥ {:.0}% of the link, but CUBIC sits on {:.0} ms of standing queue where BBR-lite keeps {:.0} ms — the negotiated controller decides the latency the path's applications live with.",
        utils.iter().cloned().fold(f64::INFINITY, f64::min) * 100.0,
        qdelays[1],
        qdelays[2],
    );
    for (i, (name, _, _)) in RACERS.iter().enumerate() {
        t.metric(
            &format!("{name}_util"),
            utils[i],
            "ratio",
            Tolerance::Abs(0.10),
        );
        t.metric(
            &format!("{name}_qdelay_ms"),
            qdelays[i],
            "ms",
            Tolerance::Rel(0.30),
        );
    }
    t
}

// ---------------------------------------------------------------------------
// C2 — long fat pipe: wall-time window growth vs RTT-bound ramps
// ---------------------------------------------------------------------------

/// Parameters of the long-fat-pipe controller race.
#[derive(Debug, Clone)]
pub struct LfpRaceParams {
    /// Pipe rate, Mbit/s.
    pub rate_mbps: u64,
    /// One-way delays raced (300/600 ms RTT).
    pub one_ways: [Duration; 2],
    /// Measurement horizon, seconds.
    pub secs: u64,
    /// Simulation seed.
    pub seed: u64,
}

impl Default for LfpRaceParams {
    fn default() -> Self {
        LfpRaceParams {
            rate_mbps: 20,
            one_ways: [Duration::from_millis(150), Duration::from_millis(300)],
            secs: 60,
            seed: 59,
        }
    }
}

/// C2 — **the large-BDP regime**: the cubic window `W(t)` grows with
/// wall-clock time since the last decrease, not per feedback round, so
/// CUBIC's ramp is RTT-independent where TFRC's equation tracks the
/// (slow) feedback loop. BBR-lite probes the bandwidth model directly
/// and is likewise RTT-insensitive.
pub fn c2() -> Table {
    let mut t = Table::new(
        "C2",
        "Controller race: long fat pipe (300/600 ms RTT, 20 Mbit/s)",
        "§3: at satellite-class BDP the controller choice dominates goodput — wall-time CUBIC growth and model-based BBR-lite beat the feedback-bound TFRC ramp",
        &["RTT (ms)", "TFRC", "CUBIC", "BBR-lite", "CUBIC / TFRC"],
    );
    let params = LfpRaceParams::default();
    // goodputs[controller][rtt point]
    let mut pts = vec![Vec::new(); RACERS.len()];
    for &one_way in &params.one_ways {
        let cfg = LongFatPipeConfig::symmetric(Rate::from_mbps(params.rate_mbps), one_way, 1250);
        let mut row = vec![format!("{}", cfg.rtt().as_millis())];
        for (i, (_, _, kind)) in RACERS.iter().enumerate() {
            let (mut sim, net) = LongFatPipe::build(&cfg, params.seed + i as u64);
            let h = run_racer(&mut sim, net.tx, net.rx, "race", *kind, params.secs);
            pts[i].push(goodput(&sim, h.data_flow, params.secs));
        }
        for p in &pts {
            row.push(mbps(*p.last().expect("one point per rtt")));
        }
        row.push(ratio(
            pts[1].last().unwrap() / pts[0].last().unwrap().max(1.0),
        ));
        t.row(row);
    }
    t.verdict = format!(
        "on the 600 ms pipe CUBIC delivers {} and BBR-lite {} against TFRC's {} — the negotiated controller, not the path, sets the achievable rate at high BDP.",
        mbps(pts[1][1]),
        mbps(pts[2][1]),
        mbps(pts[0][1]),
    );
    for (i, (name, _, _)) in RACERS.iter().enumerate() {
        t.metric(
            &format!("{name}_rtt300_mbps"),
            pts[i][0] / 1e6,
            "Mbit/s",
            Tolerance::Rel(0.20),
        );
        t.metric(
            &format!("{name}_rtt600_mbps"),
            pts[i][1] / 1e6,
            "Mbit/s",
            Tolerance::Rel(0.20),
        );
    }
    t
}

// ---------------------------------------------------------------------------
// C3 — bursty loss survival and uniform-flock fairness at N = 64
// ---------------------------------------------------------------------------

/// Parameters of the bursty-loss / fairness family.
#[derive(Debug, Clone)]
pub struct BurstFairParams {
    /// Bursty-path rate, Mbit/s.
    pub rate_mbps: u64,
    /// Bursty-path one-way delay.
    pub one_way: Duration,
    /// Gilbert–Elliott transition probability good→bad.
    pub p_gb: f64,
    /// Gilbert–Elliott transition probability bad→good.
    pub p_bg: f64,
    /// Loss probability in the bad state.
    pub loss_bad: f64,
    /// Measurement horizon for the solo runs, seconds.
    pub secs: u64,
    /// Flock size of the uniform fairness runs.
    pub flock: usize,
    /// Simulation seed.
    pub seed: u64,
}

impl Default for BurstFairParams {
    fn default() -> Self {
        BurstFairParams {
            rate_mbps: 10,
            one_way: Duration::from_millis(30),
            p_gb: 0.02,
            p_bg: 0.3,
            loss_bad: 0.3,
            secs: 60,
            flock: 64,
            seed: 61,
        }
    }
}

/// C3 — **no controller is a spoiler**: each controller keeps moving on a
/// Gilbert–Elliott bursty hop (the wireless regime of E8), and a uniform
/// flock of 64 same-controller flows shares one bottleneck fairly — the
/// new controllers hold Jain ≥ 0.9 while TFRC sits at its documented
/// RTT-proportional fairness floor (F1's ≥ 0.7 gate), so extending the
/// axis costs nothing in fairness.
pub fn c3() -> Table {
    let mut t = Table::new(
        "C3",
        "Controller race: bursty loss (solo) and uniform fairness at N = 64",
        "§3 + §4: every negotiated controller survives bursty wireless loss and stays self-fair at scale — the axis adds choice, not spoilers",
        &[
            "controller",
            "bursty goodput (Mbit/s)",
            "N=64 jain",
            "N=64 completed",
        ],
    );
    let params = BurstFairParams::default();
    let mut burst = Vec::new();
    let mut jains = Vec::new();
    for (i, (_, label, kind)) in RACERS.iter().enumerate() {
        let (mut sim, s, r) = lossy_path(
            params.rate_mbps,
            params.one_way,
            LossModel::gilbert_elliott(params.p_gb, params.p_bg, 0.0, params.loss_bad),
            params.seed + i as u64,
        );
        let h = run_racer(&mut sim, s, r, "burst", *kind, params.secs);
        let g = goodput(&sim, h.data_flow, params.secs);
        let report = run_sim(&ManyFlowConfig::uniform(params.flock, *kind));
        t.row(vec![
            label.to_string(),
            mbps(g),
            format!("{:.4}", report.jain),
            format!("{}/{}", report.completed, params.flock),
        ]);
        burst.push(g);
        jains.push(report.jain);
    }
    t.verdict = format!(
        "every controller sustains ≥ {} on the bursty hop; at N = 64 the new controllers hold Jain ≥ {:.2} and TFRC sits at {:.2} (its documented RTT-proportional bias over the 2–30 ms spread) — adding CUBIC and BBR-lite to the axis costs nothing in fairness.",
        mbps(burst.iter().cloned().fold(f64::INFINITY, f64::min)),
        jains[1].min(jains[2]),
        jains[0],
    );
    for (i, (name, _, _)) in RACERS.iter().enumerate() {
        t.metric(
            &format!("{name}_burst_mbps"),
            burst[i] / 1e6,
            "Mbit/s",
            Tolerance::Rel(0.25),
        );
        t.metric(
            &format!("jain_{name}_n64"),
            jains[i],
            "index",
            Tolerance::Abs(0.05),
        );
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The C1 race discriminates: both new controllers fill the link and
    /// BBR-lite holds less standing queue than CUBIC. (Short horizon; the
    /// ledger gates the full-length numbers.)
    #[test]
    fn bloat_race_separates_loss_based_from_model_based() {
        let params = BloatParams {
            secs: 30,
            ..BloatParams::default()
        };
        let base_rtt_s = 2.0 * (params.bottleneck_delay.as_secs_f64() + 2.0 * 0.001);
        let mut qdelay = Vec::new();
        for (i, (_, _, kind)) in RACERS.iter().enumerate() {
            let (mut sim, net) = droptail_dumbbell(
                1,
                params.core_mbps,
                params.bottleneck_delay,
                params.queue_pkts,
                params.seed + i as u64,
            );
            let h = run_racer(
                &mut sim,
                net.senders[0],
                net.receivers[0],
                "race",
                *kind,
                params.secs,
            );
            let g = goodput(&sim, h.data_flow, params.secs);
            assert!(
                g > 0.5 * params.core_mbps as f64 * 1e6,
                "{kind:?} failed to fill half the link: {g}"
            );
            qdelay.push((h.tx.snapshot().rtt_estimate_s - base_rtt_s).max(0.0));
        }
        // RACERS order: tfrc, cubic, bbr.
        assert!(
            qdelay[2] <= qdelay[1],
            "bbr queue delay {} > cubic {}",
            qdelay[2],
            qdelay[1]
        );
    }
}
