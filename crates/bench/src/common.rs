//! Shared scenario builders for the experiment harness: the DiffServ/AF
//! dumbbell (the EuQoS network-service substitute) and endpoint attachment
//! helpers for TCP and QTP flows.

use qtp_core::session::{attach_pair, ConnectionPlan, PairHandles};
use qtp_simnet::marker::{Marker, TokenBucketMarker};
use qtp_simnet::prelude::*;
use qtp_simnet::sim::Simulator;
use qtp_tcp::{TcpConfig, TcpFlavor, TcpReceiver, TcpSender};
use std::time::Duration;

/// Nominal committed burst size used by all experiment markers (bytes).
pub const CBS: u32 = 20_000;

/// Build the standard AF dumbbell: `pairs` host pairs, 100 Mbit/s access,
/// `core_mbps` RIO bottleneck, given one-way bottleneck delay.
pub fn af_dumbbell(
    pairs: usize,
    core_mbps: u64,
    bottleneck_delay: Duration,
    access_delays: Option<Vec<Duration>>,
    seed: u64,
) -> (Simulator, Dumbbell) {
    let cfg = DumbbellConfig {
        pairs,
        access_rate: Rate::from_mbps(100),
        access_delay: Duration::from_millis(1),
        access_delays,
        bottleneck_rate: Rate::from_mbps(core_mbps),
        bottleneck_delay,
        bottleneck_queue: QueueConfig::Rio(RioParams::default()),
        reverse_queue: QueueConfig::DropTailPkts(2000),
        bottleneck_path: PathModel::none(),
    };
    Dumbbell::build(&cfg, seed)
}

/// Plain (best-effort) dumbbell with a drop-tail bottleneck.
pub fn droptail_dumbbell(
    pairs: usize,
    core_mbps: u64,
    bottleneck_delay: Duration,
    queue_pkts: usize,
    seed: u64,
) -> (Simulator, Dumbbell) {
    let cfg = DumbbellConfig {
        pairs,
        access_rate: Rate::from_mbps(100),
        access_delay: Duration::from_millis(1),
        access_delays: None,
        bottleneck_rate: Rate::from_mbps(core_mbps),
        bottleneck_delay,
        bottleneck_queue: QueueConfig::DropTailPkts(queue_pkts),
        reverse_queue: QueueConfig::DropTailPkts(2000),
        bottleneck_path: PathModel::none(),
    };
    Dumbbell::build(&cfg, seed)
}

/// Give `flow` a committed-rate profile at pair `i`'s first hop: packets
/// within `cir` are marked Green (in-profile), the excess Red.
pub fn set_profile(sim: &mut Simulator, net: &Dumbbell, pair: usize, flow: FlowId, cir: Rate) {
    sim.set_marker(
        net.sender_access[pair],
        flow,
        Marker::TokenBucket(TokenBucketMarker::new(cir, CBS)),
    );
}

/// Mark every packet of `flow` out-of-profile (best-effort traffic inside
/// the AF class).
pub fn set_out_of_profile(sim: &mut Simulator, net: &Dumbbell, pair: usize, flow: FlowId) {
    sim.set_marker(
        net.sender_access[pair],
        flow,
        Marker::TokenBucket(TokenBucketMarker::new(Rate::ZERO, 0)),
    );
}

/// Attach a greedy TCP connection on pair `i`. Returns the data flow id.
pub fn attach_tcp(
    sim: &mut Simulator,
    net: &Dumbbell,
    pair: usize,
    name: &str,
    flavor: TcpFlavor,
) -> FlowId {
    let data = sim.register_flow(name);
    let ack = sim.register_flow(&format!("{name}-ack"));
    let cfg = TcpConfig::new(flavor);
    let sack = flavor == TcpFlavor::Sack;
    sim.attach_agent(
        net.senders[pair],
        Box::new(TcpSender::new(data, net.receivers[pair], cfg)),
    );
    sim.attach_agent(
        net.receivers[pair],
        Box::new(TcpReceiver::new(data, ack, net.senders[pair], sack, 1000)),
    );
    data
}

/// Attach a planned QTP connection on pair `i`.
pub fn attach_plan_pair(
    sim: &mut Simulator,
    net: &Dumbbell,
    pair: usize,
    name: &str,
    plan: &ConnectionPlan,
) -> PairHandles {
    attach_pair(sim, net.senders[pair], net.receivers[pair], name, plan)
}

/// Network-level throughput of a flow over `secs` seconds, bit/s.
pub fn throughput(sim: &Simulator, flow: FlowId, secs: u64) -> f64 {
    sim.stats()
        .flow(flow)
        .throughput_bps(Duration::from_secs(secs))
}

/// Application goodput of a flow over `secs` seconds, bit/s.
pub fn goodput(sim: &Simulator, flow: FlowId, secs: u64) -> f64 {
    sim.stats()
        .flow(flow)
        .goodput_bps(Duration::from_secs(secs))
}

/// A two-host lossy path (no routers): forward direction takes the loss
/// model; reverse is clean. Used by the wireless and equivalence sweeps.
pub fn lossy_path(
    rate_mbps: u64,
    one_way: Duration,
    loss: LossModel,
    seed: u64,
) -> (Simulator, NodeId, NodeId) {
    let mut b = NetworkBuilder::new();
    let s = b.host();
    let r = b.host();
    b.simplex_link(
        s,
        r,
        LinkConfig::new(Rate::from_mbps(rate_mbps), one_way)
            .with_loss(loss)
            .with_queue(QueueConfig::DropTailPkts(500)),
    );
    b.simplex_link(r, s, LinkConfig::new(Rate::from_mbps(rate_mbps), one_way));
    (b.build(seed), s, r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qtp_core::session::Profile;

    #[test]
    fn af_dumbbell_builds_and_runs() {
        let (mut sim, net) = af_dumbbell(2, 10, Duration::from_millis(10), None, 1);
        let h = attach_plan_pair(
            &mut sim,
            &net,
            0,
            "q",
            &ConnectionPlan::new(Profile::tfrc()),
        );
        set_profile(&mut sim, &net, 0, h.data_flow, Rate::from_mbps(2));
        sim.run_until(SimTime::from_secs(5));
        assert!(sim.stats().flow(h.data_flow).pkts_arrived > 100);
    }

    #[test]
    fn out_of_profile_marks_red() {
        let (mut sim, net) = af_dumbbell(1, 10, Duration::from_millis(5), None, 2);
        let f = sim.register_flow("bg");
        set_out_of_profile(&mut sim, &net, 0, f);
        sim.attach_agent(
            net.senders[0],
            Box::new(CbrSource::new(
                f,
                net.receivers[0],
                1000,
                Rate::from_mbps(1),
            )),
        );
        sim.run_until(SimTime::from_secs(2));
        // All enqueued packets at the bottleneck were red.
        let stats = sim.stats().link(net.bottleneck);
        assert_eq!(stats.enqueued_by_color[Color::Green.index()], 0);
        assert!(stats.enqueued_by_color[Color::Red.index()] > 100);
    }
}
