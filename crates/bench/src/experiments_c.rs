//! Experiments E11–E12: ablations of the two central design choices.
//!
//! Paper claims covered:
//!
//! * **E11** — RFC 3448 §5.2 (design choice D1): losses within one RTT
//!   form a single congestion signal; ablating the grouping in the
//!   QTPlight estimator must collapse the rate on bursty paths.
//! * **E12** — §4 (design choice D3): the QTPAF guarantee emerges from
//!   the *composition* gTFRC floor × edge marker × RIO core; removing
//!   any piece either breaks the rate or pays for it in losses.
//!
//! Headline numbers are recorded as gated [`Table::metric`]s; the claim
//! orderings live in `ledger::assertions`.

use qtp_core::session::{attach_pair, ConnectionPlan, Profile, Reliability};
use qtp_core::{CcKind, FeedbackMode};
use qtp_simnet::prelude::*;
use qtp_tcp::TcpFlavor;
use std::time::Duration;

use crate::common::*;
use crate::table::{mbps, ratio, Table, Tolerance};

/// E11 — **D1 ablation**: RFC 3448 groups losses within one RTT into a
/// single loss *event*. Disable the grouping in the QTPlight estimator and
/// measure the damage under bursty (Gilbert–Elliott) loss: every burst
/// packet now counts separately, `p` inflates, and the rate collapses.
pub fn e11() -> Table {
    let mut t = Table::new(
        "E11",
        "Ablation D1: loss-event grouping vs per-packet loss counting",
        "RFC 3448 §5.2 (design choice D1): losses within one RTT are one congestion signal; counting packets instead of events over-throttles bursty paths",
        &[
            "burstiness P(g→b)",
            "grouped p",
            "ungrouped p",
            "grouped rate (Mbit/s)",
            "ungrouped rate (Mbit/s)",
            "rate penalty",
        ],
    );
    const SECS: u64 = 60;
    let mut worst_penalty: f64 = 1.0;
    for &p_gb in &[0.002f64, 0.01, 0.02] {
        let run = |ungrouped: bool| -> (f64, f64) {
            let (mut sim, s, r) = lossy_path(
                20,
                Duration::from_millis(30),
                LossModel::gilbert_elliott(p_gb, 0.25, 0.0, 0.8),
                (p_gb * 1e4) as u64 + 111,
            );
            let plan = ConnectionPlan::new(Profile::qtp_light()).ablate_ungrouped_losses(ungrouped);
            let h = attach_pair(&mut sim, s, r, "x", &plan);
            sim.run_until(SimTime::from_secs(SECS));
            let rate = goodput(&sim, h.data_flow, SECS);
            // Mean of the p values the rate computation actually used.
            let p_trace = h.tx.read(|d| d.p_trace.clone());
            let p_mean = if p_trace.is_empty() {
                0.0
            } else {
                p_trace.iter().map(|(_, p)| *p).sum::<f64>() / p_trace.len() as f64
            };
            (rate, p_mean)
        };
        let (rate_g, p_g) = run(false);
        let (rate_u, p_u) = run(true);
        let penalty = rate_g / rate_u.max(1.0);
        worst_penalty = worst_penalty.max(penalty);
        t.row(vec![
            format!("{p_gb}"),
            format!("{p_g:.4}"),
            format!("{p_u:.4}"),
            mbps(rate_g),
            mbps(rate_u),
            format!("{penalty:.1}x"),
        ]);
    }
    t.verdict = format!(
        "without event grouping the estimated p inflates and the rate drops by up to {worst_penalty:.1}x on bursty paths — grouping is load-bearing, as RFC 3448 prescribes."
    );
    t.metric(
        "worst_penalty",
        worst_penalty,
        "factor",
        Tolerance::Rel(0.30),
    );
    t
}

/// E12 — **D3 ablation**: which parts of the stack does the QTPAF
/// guarantee actually need? Remove one piece at a time: the gTFRC floor
/// (plain TFRC), the edge marker (all traffic out-of-profile), or the RIO
/// core (plain drop-tail). Only the full composition holds the target.
pub fn e12() -> Table {
    let mut t = Table::new(
        "E12",
        "Ablation D3: gTFRC floor × edge marker × RIO core",
        "§4 (design): the guarantee emerges from the composition — QoS-aware congestion control over an AF-conditioned path; any missing piece either breaks the rate or sustains it only by absorbing losses",
        &[
            "configuration",
            "achieved / g",
            "dut loss rate",
            "retx",
            "green drops at core",
            "verdict",
        ],
    );
    // The hard regime from E2: a large reservation (8 of 10 Mbit/s) held
    // across a 300 ms RTT against two short-RTT aggressors. This is where
    // the guarantee is genuinely contested.
    const SECS: u64 = 60;
    let g = Rate::from_mbps(8);
    let access = Some(vec![
        Duration::from_millis(145),
        Duration::from_millis(1),
        Duration::from_millis(1),
    ]);

    // configurations: (label, gtfrc?, marker?, rio?)
    let configs = [
        ("full QTPAF (gTFRC + marker + RIO)", true, true, true),
        ("no gTFRC floor (plain TFRC)", false, true, true),
        ("no edge marker (all red)", true, false, true),
        ("no RIO core (drop-tail)", true, true, false),
    ];
    let mut best_ablated: f64 = 0.0;
    let mut full_retx: u64 = 0;
    let mut max_retx: u64 = 0;
    let mut full_achieved: f64 = 0.0;
    let mut no_floor_achieved: f64 = 0.0;
    let mut droptail_holds = false;
    for (label, use_gtfrc, use_marker, use_rio) in configs {
        let (mut sim, net) = if use_rio {
            af_dumbbell(3, 10, Duration::from_millis(4), access.clone(), 121)
        } else {
            let cfg = DumbbellConfig {
                pairs: 3,
                access_rate: Rate::from_mbps(100),
                access_delay: Duration::from_millis(1),
                access_delays: access.clone(),
                bottleneck_rate: Rate::from_mbps(10),
                bottleneck_delay: Duration::from_millis(4),
                bottleneck_queue: QueueConfig::DropTailPkts(60),
                reverse_queue: QueueConfig::DropTailPkts(2000),
                bottleneck_path: PathModel::none(),
            };
            Dumbbell::build(&cfg, 121)
        };
        let profile = if use_gtfrc {
            Profile::qtp_af(g)
        } else {
            // Keep reliability identical so only the CC axis changes.
            Profile::new()
                .reliability(Reliability::Full)
                .feedback(FeedbackMode::ReceiverLoss)
                .cc(CcKind::Tfrc)
                .build()
                .expect("valid composition")
        };
        let h = attach_plan_pair(&mut sim, &net, 0, "dut", &ConnectionPlan::new(profile));
        if use_marker {
            set_profile(&mut sim, &net, 0, h.data_flow, g);
        } else {
            set_out_of_profile(&mut sim, &net, 0, h.data_flow);
        }
        // Aggressors: out-of-profile TCP at short RTT.
        for bgp in 1..3 {
            let bg = attach_tcp(&mut sim, &net, bgp, &format!("bg{bgp}"), TcpFlavor::NewReno);
            set_out_of_profile(&mut sim, &net, bgp, bg);
        }
        sim.run_until(SimTime::from_secs(SECS));
        let achieved = throughput(&sim, h.data_flow, SECS) / g.bps() as f64;
        let loss_rate = sim.stats().flow(h.data_flow).loss_rate();
        let retx = h.tx.read(|d| d.tx_retransmissions);
        let (green_drops, _, _) = sim.stats().link_drops_by_color(net.bottleneck);
        let holds = achieved >= 0.95;
        if label.starts_with("full") {
            full_retx = retx;
            full_achieved = achieved;
        } else if !holds {
            best_ablated = best_ablated.max(achieved);
        }
        if !use_gtfrc {
            no_floor_achieved = achieved;
        }
        if !use_rio {
            droptail_holds = holds;
        }
        max_retx = max_retx.max(retx);
        t.row(vec![
            label.into(),
            ratio(achieved),
            format!("{loss_rate:.4}"),
            retx.to_string(),
            green_drops.to_string(),
            if holds {
                "holds g".into()
            } else {
                "breaks".into()
            },
        ]);
    }
    let _ = best_ablated;
    let retx_burden = max_retx as f64 / full_retx.max(1) as f64;
    t.verdict = format!(
        "the gTFRC floor is load-bearing: without it the reservation collapses to {no_floor_achieved:.2} of g. The AF substrate is what makes holding it cheap — on a drop-tail core the floor still forces the rate through, but at {retx_burden:.1}x the retransmission burden ({max_retx} vs {full_retx} retx), i.e. the guarantee degrades from 'protected' to 'paid for in losses'."
    );
    t.metric(
        "full_achieved",
        full_achieved,
        "ratio",
        Tolerance::Abs(0.05),
    );
    t.metric(
        "no_floor_achieved",
        no_floor_achieved,
        "ratio",
        Tolerance::Abs(0.10),
    );
    t.metric("droptail_holds_g", droptail_holds, "flag", Tolerance::Exact);
    t.metric("retx_burden", retx_burden, "factor", Tolerance::Rel(0.40));
    t
}
