//! Hostile-path scenario families H1–H5: the versatility claim under the
//! path pathologies the paper's versatility argument is really about.
//!
//! E1–E12 reproduce the paper's own evaluation (DiffServ dumbbells, a
//! bursty wireless hop); these families push the same negotiated
//! transports through the path models the survey literature names as the
//! regimes where a one-size-fits-all transport breaks:
//!
//! * **H1 — bounded reordering**: a jitter sweep on an otherwise clean
//!   path. TCP SACK misreads reordering as loss (dupack fast retransmit)
//!   and collapses; equation-based QTPAF with its gTFRC floor degrades
//!   gracefully.
//! * **H2 — duplication**: a duplicating link under the reliable stream.
//!   Wire-level copies must not double-count delivered bytes or corrupt
//!   reassembly — the transfer stays byte-exact with near-full goodput.
//! * **H3 — asymmetric return channel**: a narrowband reverse link (VSAT
//!   return, ADSL uplink). Per-packet TCP acks starve; QTP's once-per-RTT
//!   feedback barely notices.
//! * **H4 — long fat pipe**: satellite-class 300–600 ms RTT at high rate.
//!   The window-based transport is cwnd/rwnd-limited and pays slow-start
//!   in RTTs; rate-based QTPAF fills the reserved floor regardless of RTT.
//! * **H5 — wireless burst × handover**: deadline streaming across a
//!   mid-run WLAN→cellular handover onto a Gilbert–Elliott bursty hop.
//!   TTL-partial reliability holds the deadline-miss floor where full
//!   reliability queues stale retransmissions.
//!
//! Every family is a parameterised struct running on the deterministic
//! simulator at fixed seeds, gated in the claims ledger next to E1–E12
//! (ids `h1`…`h5`; run just this group with `expt --check --only h`).
//! [`hostile_sweep`] is the nightly reorder-jitter × RTT grid.

use qtp_core::session::{attach_pair, ConnectionPlan, Profile, Reliability};
use qtp_core::stream::StreamConfig;
use qtp_core::{CcKind, FeedbackMode};
use qtp_metrics::trace::{FlightRecorder, TraceRegistry};
use qtp_simnet::prelude::*;
use qtp_simnet::sim::Simulator;
use qtp_tcp::{TcpConfig, TcpFlavor, TcpReceiver, TcpSender};
use std::time::Duration;

use crate::common::goodput;
use crate::scenarios::{drain, feed, pattern_bytes, DeadlineRun};
use crate::table::{mbps, ratio, Table, Tolerance};

/// A two-host path whose forward (data) direction carries a loss model
/// and a [`PathModel`]; the reverse (feedback) direction is clean.
fn impaired_path(
    rate: Rate,
    one_way: Duration,
    loss: LossModel,
    path: PathModel,
    seed: u64,
) -> (Simulator, NodeId, NodeId) {
    let mut b = NetworkBuilder::new();
    let s = b.host();
    let r = b.host();
    b.simplex_link(
        s,
        r,
        LinkConfig::new(rate, one_way)
            .with_queue(QueueConfig::DropTailPkts(500))
            .with_loss(loss)
            .with_path(path),
    );
    b.simplex_link(r, s, LinkConfig::new(rate, one_way));
    (b.build(seed), s, r)
}

/// A two-host path with asymmetric directions: a wide forward channel and
/// a (possibly narrowband) reverse channel with a small feedback queue —
/// the VSAT-return / ADSL-uplink shape.
fn asym_path(fwd: Rate, rev: Rate, one_way: Duration, seed: u64) -> (Simulator, NodeId, NodeId) {
    let mut b = NetworkBuilder::new();
    let s = b.host();
    let r = b.host();
    b.duplex_link_asym(
        s,
        r,
        LinkConfig::new(fwd, one_way).with_queue(QueueConfig::DropTailPkts(500)),
        LinkConfig::new(rev, one_way).with_queue(QueueConfig::DropTailPkts(100)),
    );
    (b.build(seed), s, r)
}

/// Attach a greedy TCP connection between two explicit nodes (the
/// dumbbell-free twin of [`crate::common::attach_tcp`]).
fn attach_tcp_nodes(
    sim: &mut Simulator,
    s: NodeId,
    r: NodeId,
    name: &str,
    flavor: TcpFlavor,
) -> FlowId {
    let data = sim.register_flow(name);
    let ack = sim.register_flow(&format!("{name}-ack"));
    let sack = flavor == TcpFlavor::Sack;
    sim.attach_agent(s, Box::new(TcpSender::new(data, r, TcpConfig::new(flavor))));
    sim.attach_agent(r, Box::new(TcpReceiver::new(data, ack, s, sack, 1000)));
    data
}

/// Greedy QTPAF goodput over `secs` seconds on an already-built path.
fn run_qtpaf(mut sim: Simulator, s: NodeId, r: NodeId, floor: Rate, secs: u64) -> f64 {
    let h = attach_pair(
        &mut sim,
        s,
        r,
        "qtpaf",
        &ConnectionPlan::new(Profile::qtp_af(floor)),
    );
    sim.run_until(SimTime::from_secs(secs));
    goodput(&sim, h.data_flow, secs)
}

/// Greedy TCP goodput over `secs` seconds on an already-built path.
fn run_tcp(mut sim: Simulator, s: NodeId, r: NodeId, flavor: TcpFlavor, secs: u64) -> f64 {
    let data = attach_tcp_nodes(&mut sim, s, r, "tcp", flavor);
    sim.run_until(SimTime::from_secs(secs));
    goodput(&sim, data, secs)
}

// ---------------------------------------------------------------------------
// H1 — bounded reordering sweep
// ---------------------------------------------------------------------------

/// Parameters of the reordering sweep.
#[derive(Debug, Clone)]
pub struct ReorderSweepParams {
    /// Path rate, Mbit/s.
    pub rate_mbps: u64,
    /// One-way propagation delay.
    pub one_way: Duration,
    /// Per-packet probability of extra delay.
    pub reorder_p: f64,
    /// Jitter bounds to sweep, ms (0 = unimpaired baseline).
    pub jitters_ms: Vec<u64>,
    /// gTFRC floor for the QTPAF flow, Mbit/s.
    pub floor_mbps: u64,
    /// Run length, seconds.
    pub secs: u64,
    /// Simulation seed.
    pub seed: u64,
}

impl Default for ReorderSweepParams {
    fn default() -> Self {
        ReorderSweepParams {
            rate_mbps: 10,
            one_way: Duration::from_millis(20),
            reorder_p: 0.5,
            jitters_ms: vec![0, 25, 100],
            floor_mbps: 6,
            secs: 30,
            seed: 17,
        }
    }
}

/// One point of the reordering sweep: goodput of both transports at one
/// jitter bound.
pub fn reorder_point(params: &ReorderSweepParams, jitter_ms: u64) -> (f64, f64) {
    let path = if jitter_ms == 0 {
        PathModel::none()
    } else {
        PathModel::none().with_reorder(params.reorder_p, Duration::from_millis(jitter_ms))
    };
    let build = |salt: u64| {
        impaired_path(
            Rate::from_mbps(params.rate_mbps),
            params.one_way,
            LossModel::None,
            path.clone(),
            params.seed + salt,
        )
    };
    let (sim, s, r) = build(0);
    let tcp = run_tcp(sim, s, r, TcpFlavor::Sack, params.secs);
    let (sim, s, r) = build(1);
    let qtpaf = run_qtpaf(sim, s, r, Rate::from_mbps(params.floor_mbps), params.secs);
    (tcp, qtpaf)
}

/// H1 — graceful degradation under bounded reordering: TCP SACK collapses
/// on spurious fast retransmits, QTPAF keeps its floor.
pub fn h1() -> Table {
    let mut t = Table::new(
        "H1",
        "Hostile path: bounded reordering sweep (TCP SACK vs QTPAF)",
        "versatility under reordering: a window-based transport misreads bounded reordering as loss and collapses, while the negotiated equation-based profile with a gTFRC floor degrades gracefully",
        &["jitter (ms)", "TCP SACK", "QTPAF", "QTPAF / TCP"],
    );
    let params = ReorderSweepParams::default();
    let mut tcp_by_jitter = Vec::new();
    let mut qtpaf_by_jitter = Vec::new();
    for &j in &params.jitters_ms {
        let (tcp, qtpaf) = reorder_point(&params, j);
        t.row(vec![
            format!("{j}"),
            mbps(tcp),
            mbps(qtpaf),
            ratio(qtpaf / tcp.max(1.0)),
        ]);
        t.metric(
            &format!("tcp_j{j}_mbps"),
            tcp / 1e6,
            "Mbit/s",
            Tolerance::Rel(0.20),
        );
        t.metric(
            &format!("qtpaf_j{j}_mbps"),
            qtpaf / 1e6,
            "Mbit/s",
            Tolerance::Rel(0.20),
        );
        tcp_by_jitter.push(tcp);
        qtpaf_by_jitter.push(qtpaf);
    }
    let tcp_retention = tcp_by_jitter.last().unwrap() / tcp_by_jitter[0].max(1.0);
    let qtpaf_retention = qtpaf_by_jitter.last().unwrap() / qtpaf_by_jitter[0].max(1.0);
    t.verdict = format!(
        "at a {} ms jitter bound QTPAF keeps {:.0}% of its clean-path goodput while TCP SACK keeps {:.0}% — reordering tolerance is a negotiable property, not a given.",
        params.jitters_ms.last().unwrap(),
        qtpaf_retention * 100.0,
        tcp_retention * 100.0,
    );
    t.metric(
        "qtpaf_retention",
        qtpaf_retention,
        "ratio",
        Tolerance::Abs(0.10),
    );
    t.metric(
        "tcp_retention",
        tcp_retention,
        "ratio",
        Tolerance::Abs(0.10),
    );
    t
}

// ---------------------------------------------------------------------------
// H2 — duplication under the reliable stream
// ---------------------------------------------------------------------------

/// Parameters of the duplication family.
#[derive(Debug, Clone)]
pub struct DupBulkParams {
    /// File size, KiB.
    pub file_kib: usize,
    /// Path rate, Mbit/s.
    pub rate_mbps: u64,
    /// One-way propagation delay.
    pub one_way: Duration,
    /// Bernoulli loss probability on the data direction (so duplication
    /// interacts with real retransmissions, not just clean flow).
    pub loss: f64,
    /// Duplication probability on the data direction.
    pub dup: f64,
    /// gTFRC floor, Mbit/s.
    pub floor_mbps: u64,
    /// Simulation seed.
    pub seed: u64,
}

impl Default for DupBulkParams {
    fn default() -> Self {
        DupBulkParams {
            file_kib: 256,
            rate_mbps: 10,
            one_way: Duration::from_millis(20),
            loss: 0.01,
            dup: 0.2,
            floor_mbps: 6,
            seed: 23,
        }
    }
}

/// Outcome of one bulk transfer over a duplicating link.
#[derive(Debug, Clone)]
pub struct DupBulkRun {
    /// Application goodput, Mbit/s.
    pub goodput_mbps: f64,
    /// Seconds until the receive stream finished (horizon if never).
    pub completion_s: f64,
    /// Application bytes delivered (must equal the file size — duplicates
    /// must not double-count).
    pub delivered_bytes: u64,
    /// Delivered bytes reproduce the file exactly, in order.
    pub byte_exact: bool,
    /// Network-level arrival amplification (`pkts_arrived / pkts_sent`):
    /// proves the wire really carried duplicates.
    pub amplification: f64,
}

/// Run one reliable bulk transfer over a lossy, duplicating path.
pub fn dup_bulk(params: &DupBulkParams, dup_p: f64) -> DupBulkRun {
    let path = if dup_p > 0.0 {
        PathModel::none().with_duplicate(dup_p)
    } else {
        PathModel::none()
    };
    let (mut sim, s, r) = impaired_path(
        Rate::from_mbps(params.rate_mbps),
        params.one_way,
        LossModel::bernoulli(params.loss),
        path,
        params.seed,
    );
    let plan = ConnectionPlan::new(Profile::qtp_af(Rate::from_mbps(params.floor_mbps)))
        .label("h2")
        .stream(StreamConfig::with_send_buf(64 * 1024));
    let h = attach_pair(&mut sim, s, r, "h2", &plan);
    let tx = h.tx_stream.clone().expect("stream plan");
    let rx = h.rx_stream.clone().expect("stream plan");

    let file = pattern_bytes(params.file_kib * 1024, params.seed);
    let step = Duration::from_millis(50);
    let horizon = SimTime::ZERO + Duration::from_secs(60);
    let mut t = SimTime::ZERO;
    let mut offset = 0usize;
    let mut received = Vec::with_capacity(file.len());
    let mut completion = None;
    while t < horizon {
        t = (t + step).min(horizon);
        feed(&tx, &file, &mut offset, 1000);
        if offset == file.len() && !tx.is_finished() {
            tx.finish();
        }
        sim.run_until(t);
        drain(&rx, &mut received);
        if rx.is_finished() {
            completion = Some(t);
            break;
        }
    }
    let elapsed = completion.unwrap_or(horizon).as_secs_f64();
    let st = sim.stats().flow(h.data_flow);
    DupBulkRun {
        goodput_mbps: rx.bytes_received() as f64 * 8.0 / elapsed / 1e6,
        completion_s: elapsed,
        delivered_bytes: rx.bytes_received(),
        byte_exact: received == file,
        amplification: st.pkts_arrived as f64 / (st.pkts_sent.max(1)) as f64,
    }
}

/// H2 — wire duplication must not confuse the reliable stream: byte-exact
/// delivery, exact delivered-byte accounting, near-full goodput.
pub fn h2() -> Table {
    let mut t = Table::new(
        "H2",
        "Hostile path: packet duplication under the reliable stream",
        "versatility under duplication: SACK-based reassembly deduplicates wire copies — delivered bytes stay exact and goodput holds while one packet in five arrives twice",
        &[
            "dup prob",
            "goodput (Mbit/s)",
            "completion (s)",
            "delivered (KiB)",
            "byte-exact",
            "arrivals/sent",
        ],
    );
    let params = DupBulkParams::default();
    let clean = dup_bulk(&params, 0.0);
    let duped = dup_bulk(&params, params.dup);
    for (p, run) in [(0.0, &clean), (params.dup, &duped)] {
        t.row(vec![
            format!("{p}"),
            format!("{:.2}", run.goodput_mbps),
            format!("{:.2}", run.completion_s),
            format!("{}", run.delivered_bytes / 1024),
            format!("{}", run.byte_exact),
            format!("{:.3}", run.amplification),
        ]);
    }
    let retention = duped.goodput_mbps / clean.goodput_mbps.max(1e-9);
    t.verdict = format!(
        "with 1-in-{:.0} packets duplicated in flight (arrival amplification {:.2}x) the {} KiB transfer stays byte-exact with delivered bytes counted once, at {:.0}% of the clean-path goodput.",
        1.0 / params.dup,
        duped.amplification,
        params.file_kib,
        retention * 100.0,
    );
    t.metric(
        "goodput_d0_mbps",
        clean.goodput_mbps,
        "Mbit/s",
        Tolerance::Rel(0.25),
    );
    t.metric(
        "goodput_dup_mbps",
        duped.goodput_mbps,
        "Mbit/s",
        Tolerance::Rel(0.25),
    );
    t.metric("byte_exact_dup", duped.byte_exact, "flag", Tolerance::Exact);
    t.metric(
        "delivered_kib_dup",
        duped.delivered_bytes / 1024,
        "KiB",
        Tolerance::Exact,
    );
    t.metric(
        "amplification",
        duped.amplification,
        "factor",
        Tolerance::Rel(0.10),
    );
    t.metric(
        "goodput_retention",
        retention,
        "ratio",
        Tolerance::Abs(0.10),
    );
    t
}

// ---------------------------------------------------------------------------
// H3 — asymmetric return channel
// ---------------------------------------------------------------------------

/// Parameters of the asymmetry family.
#[derive(Debug, Clone)]
pub struct AsymParams {
    /// Forward (data) rate, Mbit/s.
    pub fwd_mbps: u64,
    /// Reverse (feedback) rates to compare, kbit/s: wide baseline first,
    /// then the narrowband return channel.
    pub rev_kbps: [u64; 2],
    /// One-way propagation delay, each direction.
    pub one_way: Duration,
    /// gTFRC floor, Mbit/s.
    pub floor_mbps: u64,
    /// Run length, seconds.
    pub secs: u64,
    /// Simulation seed.
    pub seed: u64,
}

impl Default for AsymParams {
    fn default() -> Self {
        AsymParams {
            fwd_mbps: 10,
            rev_kbps: [10_000, 100],
            one_way: Duration::from_millis(20),
            floor_mbps: 6,
            secs: 30,
            seed: 29,
        }
    }
}

/// H3 — a narrowband return channel starves per-packet TCP acks; QTP's
/// once-per-RTT feedback keeps the forward channel full.
pub fn h3() -> Table {
    let mut t = Table::new(
        "H3",
        "Hostile path: asymmetric return channel (ack starvation)",
        "versatility under asymmetry: per-packet cumulative acks need forward-rate-proportional reverse capacity, so TCP collapses behind a narrowband return channel; QTP's per-RTT feedback is insensitive to it",
        &["reverse (kbit/s)", "TCP SACK", "QTPAF", "QTPAF / TCP"],
    );
    let params = AsymParams::default();
    let mut tcp_pts = Vec::new();
    let mut qtpaf_pts = Vec::new();
    for &rev in &params.rev_kbps {
        let build = |salt: u64| {
            asym_path(
                Rate::from_mbps(params.fwd_mbps),
                Rate::from_kbps(rev),
                params.one_way,
                params.seed + salt,
            )
        };
        let (sim, s, r) = build(0);
        let tcp = run_tcp(sim, s, r, TcpFlavor::Sack, params.secs);
        let (sim, s, r) = build(1);
        let qtpaf = run_qtpaf(sim, s, r, Rate::from_mbps(params.floor_mbps), params.secs);
        t.row(vec![
            format!("{rev}"),
            mbps(tcp),
            mbps(qtpaf),
            ratio(qtpaf / tcp.max(1.0)),
        ]);
        tcp_pts.push(tcp);
        qtpaf_pts.push(qtpaf);
    }
    let (tcp_wide, tcp_narrow) = (tcp_pts[0], tcp_pts[1]);
    let (qtpaf_wide, qtpaf_narrow) = (qtpaf_pts[0], qtpaf_pts[1]);
    let tcp_retention = tcp_narrow / tcp_wide.max(1.0);
    let qtpaf_retention = qtpaf_narrow / qtpaf_wide.max(1.0);
    t.verdict = format!(
        "shrinking the return channel from {} Mbit/s to {} kbit/s costs QTPAF {:.0}% of its goodput but TCP SACK {:.0}% — feedback economy is part of the negotiated service.",
        params.rev_kbps[0] / 1000,
        params.rev_kbps[1],
        (1.0 - qtpaf_retention) * 100.0,
        (1.0 - tcp_retention) * 100.0,
    );
    t.metric(
        "tcp_wide_mbps",
        tcp_wide / 1e6,
        "Mbit/s",
        Tolerance::Rel(0.20),
    );
    t.metric(
        "tcp_narrow_mbps",
        tcp_narrow / 1e6,
        "Mbit/s",
        Tolerance::Rel(0.30),
    );
    t.metric(
        "qtpaf_wide_mbps",
        qtpaf_wide / 1e6,
        "Mbit/s",
        Tolerance::Rel(0.20),
    );
    t.metric(
        "qtpaf_narrow_mbps",
        qtpaf_narrow / 1e6,
        "Mbit/s",
        Tolerance::Rel(0.20),
    );
    t.metric(
        "qtpaf_retention",
        qtpaf_retention,
        "ratio",
        Tolerance::Abs(0.10),
    );
    t.metric(
        "tcp_retention",
        tcp_retention,
        "ratio",
        Tolerance::Abs(0.10),
    );
    t
}

// ---------------------------------------------------------------------------
// H4 — long fat pipe (satellite-class LBDP)
// ---------------------------------------------------------------------------

/// Parameters of the long-fat-pipe family.
#[derive(Debug, Clone)]
pub struct LfpParams {
    /// Pipe rate, Mbit/s (both directions).
    pub rate_mbps: u64,
    /// One-way delays to compare (RTT = 2×): the 300 ms and 600 ms RTT
    /// satellite regimes.
    pub one_ways: [Duration; 2],
    /// gTFRC floor, Mbit/s — the reservation the rate-based profile must
    /// fill regardless of RTT.
    pub floor_mbps: u64,
    /// Run length, seconds.
    pub secs: u64,
    /// Simulation seed.
    pub seed: u64,
}

impl Default for LfpParams {
    fn default() -> Self {
        LfpParams {
            rate_mbps: 20,
            one_ways: [Duration::from_millis(150), Duration::from_millis(300)],
            floor_mbps: 15,
            secs: 60,
            seed: 31,
        }
    }
}

/// H4 — the window regime: on a 600 ms RTT pipe the window transport is
/// receive-window- and slow-start-limited; the rate-based floor is not.
pub fn h4() -> Table {
    let mut t = Table::new(
        "H4",
        "Hostile path: long fat pipe (300/600 ms RTT, 20 Mbit/s)",
        "versatility at large bandwidth-delay product: a window-based transport needs a full BDP in flight and pays slow-start per RTT, so its goodput falls with RTT; the negotiated gTFRC floor fills the reservation at any latency",
        &["RTT (ms)", "BDP (pkts)", "TCP SACK", "QTPAF", "QTPAF / TCP"],
    );
    let params = LfpParams::default();
    let mut tcp_pts = Vec::new();
    let mut qtpaf_pts = Vec::new();
    for &one_way in &params.one_ways {
        let cfg = LongFatPipeConfig::symmetric(Rate::from_mbps(params.rate_mbps), one_way, 1250);
        let bdp =
            LongFatPipeConfig::bdp_packets(Rate::from_mbps(params.rate_mbps), cfg.rtt(), 1250);
        let build = |salt: u64| LongFatPipe::build(&cfg, params.seed + salt);
        let (sim, net) = build(0);
        let tcp = run_tcp(sim, net.tx, net.rx, TcpFlavor::Sack, params.secs);
        let (sim, net) = build(1);
        let qtpaf = run_qtpaf(
            sim,
            net.tx,
            net.rx,
            Rate::from_mbps(params.floor_mbps),
            params.secs,
        );
        t.row(vec![
            format!("{}", cfg.rtt().as_millis()),
            format!("{bdp}"),
            mbps(tcp),
            mbps(qtpaf),
            ratio(qtpaf / tcp.max(1.0)),
        ]);
        tcp_pts.push(tcp);
        qtpaf_pts.push(qtpaf);
    }
    let qtpaf_retention = qtpaf_pts[1] / qtpaf_pts[0].max(1.0);
    t.verdict = format!(
        "doubling the RTT from 300 to 600 ms leaves QTPAF at {:.0}% of its goodput (the floor is RTT-independent) while TCP SACK delivers {} against QTPAF's {} on the 600 ms pipe.",
        qtpaf_retention * 100.0,
        mbps(tcp_pts[1]),
        mbps(qtpaf_pts[1]),
    );
    t.metric(
        "tcp_rtt300_mbps",
        tcp_pts[0] / 1e6,
        "Mbit/s",
        Tolerance::Rel(0.20),
    );
    t.metric(
        "tcp_rtt600_mbps",
        tcp_pts[1] / 1e6,
        "Mbit/s",
        Tolerance::Rel(0.20),
    );
    t.metric(
        "qtpaf_rtt300_mbps",
        qtpaf_pts[0] / 1e6,
        "Mbit/s",
        Tolerance::Rel(0.20),
    );
    t.metric(
        "qtpaf_rtt600_mbps",
        qtpaf_pts[1] / 1e6,
        "Mbit/s",
        Tolerance::Rel(0.20),
    );
    t.metric(
        "qtpaf_retention",
        qtpaf_retention,
        "ratio",
        Tolerance::Abs(0.10),
    );
    t
}

// ---------------------------------------------------------------------------
// H5 — wireless burst × handover deadline streaming
// ---------------------------------------------------------------------------

/// Parameters of the handover deadline-streaming family.
#[derive(Debug, Clone)]
pub struct HandoverStreamParams {
    /// Frames to stream.
    pub frames: usize,
    /// Frame size, bytes.
    pub frame_bytes: usize,
    /// Frame cadence.
    pub interval: Duration,
    /// Playout deadline.
    pub deadline: Duration,
    /// Per-message TTL for the partial variant (below the post-handover
    /// retransmission round trip, so arriving retransmissions are stale).
    pub msg_ttl: Duration,
    /// Connection-level TTL of the partial profile (well above `msg_ttl`
    /// so the sender still retransmits and the receiver drops).
    pub policy_ttl: Duration,
    /// gTFRC floor, Mbit/s (same in both variants).
    pub floor_mbps: u64,
    /// When the WLAN→cellular handover happens.
    pub switch_at: Duration,
    /// Simulation seed.
    pub seed: u64,
}

impl Default for HandoverStreamParams {
    fn default() -> Self {
        HandoverStreamParams {
            frames: 600,
            frame_bytes: 500,
            interval: Duration::from_millis(20),
            deadline: Duration::from_millis(160),
            msg_ttl: Duration::from_millis(130),
            policy_ttl: Duration::from_millis(400),
            floor_mbps: 1,
            switch_at: Duration::from_secs(5),
            seed: 37,
        }
    }
}

/// The handover path of H5: clean 10 Mbit/s WLAN last hop switching to a
/// 2 Mbit/s cellular hop with Gilbert–Elliott burst loss and mild
/// reordering, behind a 15 ms backbone.
fn h5_handover(params: &HandoverStreamParams) -> HandoverConfig {
    HandoverConfig {
        backbone_rate: Rate::from_mbps(100),
        backbone_delay: Duration::from_millis(15),
        initial: LinkConfig::new(Rate::from_mbps(10), Duration::from_millis(5)),
        target: LinkConfig::new(Rate::from_mbps(2), Duration::from_millis(30))
            .with_loss(LossModel::gilbert_elliott(0.02, 0.3, 0.0, 0.3))
            .with_path(PathModel::none().with_reorder(0.2, Duration::from_millis(10))),
        switch_at: params.switch_at,
    }
}

/// The H5 profiles: full reliability vs TTL-partial at the same gTFRC
/// floor, so reliability is the only axis (the A3 construction on the
/// handover path).
fn h5_profiles(params: &HandoverStreamParams) -> (Profile, Profile) {
    let floor = Rate::from_mbps(params.floor_mbps);
    let full = Profile::qtp_af(floor);
    let partial = Profile::new()
        .reliability(Reliability::Ttl(params.policy_ttl))
        .feedback(FeedbackMode::ReceiverLoss)
        .cc(CcKind::Gtfrc { target: floor })
        .build()
        .expect("non-zero TTL");
    (full, partial)
}

/// Stream timestamped frames across the handover and score each against
/// the playout deadline. Mirrors [`crate::scenarios::deadline`] with the
/// topology switch applied mid-loop.
pub fn handover_deadline(
    params: &HandoverStreamParams,
    profile: Profile,
    tag_ttl: bool,
    label: &str,
) -> DeadlineRun {
    let hcfg = h5_handover(params);
    let (mut sim, ho) = Handover::build(&hcfg, params.seed);
    let plan = ConnectionPlan::new(profile)
        .label(label)
        .payload(params.frame_bytes as u32)
        .stream(StreamConfig::default());
    let h = attach_pair(&mut sim, ho.server, ho.mobile, label, &plan);
    let tx = h.tx_stream.clone().expect("stream plan");
    let rx = h.rx_stream.clone().expect("stream plan");

    let recorder = std::rc::Rc::new(std::cell::RefCell::new(FlightRecorder::new(48)));
    let registry = TraceRegistry::new();
    registry.set_sink(recorder.clone());
    registry.register(&format!("{label}:tx"), &h.tx_tracer);
    registry.register(&format!("{label}:rx"), &h.rx_tracer);

    let ttl_micros = if tag_ttl {
        params.msg_ttl.as_micros() as u32
    } else {
        0
    };
    let pad = pattern_bytes(params.frame_bytes, params.seed);
    let step = Duration::from_millis(5);
    let warmup = SimTime::ZERO + Duration::from_secs(1);
    let switch_time = SimTime::ZERO + params.switch_at;
    let horizon = SimTime::ZERO + Duration::from_secs(30) + params.interval * params.frames as u32;
    let mut t = SimTime::ZERO;
    sim.run_until(warmup);
    t = t.max(warmup);

    let mut switched = false;
    let mut sent = 0usize;
    let mut delivered = vec![false; params.frames];
    let mut on_time = 0usize;
    let mut late = 0usize;
    while t < horizon {
        while sent < params.frames && t >= warmup + params.interval * sent as u32 {
            let mut frame = pad.clone();
            frame[..4].copy_from_slice(&(sent as u32).to_be_bytes());
            frame[4..12].copy_from_slice(&t.as_nanos().to_be_bytes());
            tx.send_with_ttl(&frame, ttl_micros)
                .expect("frame fits the buffer");
            sent += 1;
        }
        if sent == params.frames && !tx.is_finished() {
            tx.finish();
        }
        t = (t + step).min(horizon);
        sim.run_until(t);
        if !switched && t >= switch_time {
            ho.switch(&mut sim);
            switched = true;
        }
        while let Some(frame) = rx.recv() {
            let mut idx = [0u8; 4];
            idx.copy_from_slice(&frame[..4]);
            let idx = u32::from_be_bytes(idx) as usize;
            let mut ts = [0u8; 8];
            ts.copy_from_slice(&frame[4..12]);
            let sent_at = SimTime::from_nanos(u64::from_be_bytes(ts));
            if delivered[idx] {
                continue;
            }
            delivered[idx] = true;
            if t.saturating_since(sent_at) <= params.deadline {
                on_time += 1;
            } else {
                late += 1;
            }
        }
        if rx.is_finished() && sent == params.frames {
            break;
        }
    }
    let never = delivered.iter().filter(|d| !**d).count();
    let flight_dump = recorder.borrow().dump();
    DeadlineRun {
        label: label.to_string(),
        on_time,
        late,
        never,
        miss_rate: (late + never) as f64 / params.frames as f64,
        ttl_dropped: rx.ttl_dropped(),
        flight_dump,
    }
}

/// H5 — deadline streaming across a WLAN→cellular handover onto a bursty
/// Gilbert–Elliott hop: TTL-partial reliability holds the miss floor.
pub fn h5() -> Table {
    let mut t = Table::new(
        "H5",
        "Hostile path: deadline streaming across a mobility handover",
        "versatility under mobility: when the last hop degrades mid-stream to a slower, bursty-lossy cellular link, full reliability queues stale recoveries behind the handover while TTL-partial delivery keeps missing only the genuinely lost frames",
        &[
            "variant",
            "frames",
            "on-time",
            "late",
            "never",
            "miss rate",
            "ttl dropped",
        ],
    );
    let params = HandoverStreamParams::default();
    let (full_profile, partial_profile) = h5_profiles(&params);
    let full = handover_deadline(&params, full_profile, false, "full");
    let partial = handover_deadline(&params, partial_profile, true, "ttl-partial");
    for run in [&full, &partial] {
        t.row(vec![
            run.label.clone(),
            format!("{}", params.frames),
            format!("{}", run.on_time),
            format!("{}", run.late),
            format!("{}", run.never),
            ratio(run.miss_rate),
            format!("{}", run.ttl_dropped),
        ]);
    }
    t.verdict = format!(
        "across the handover at {} s (RTT 40→90 ms, clean→bursty 30% bad-state loss) full reliability misses {:.1}% of the {} ms deadlines; TTL-partial misses {:.1}% and the receiver discarded {} stale retransmissions.",
        params.switch_at.as_secs(),
        full.miss_rate * 100.0,
        params.deadline.as_millis(),
        partial.miss_rate * 100.0,
        partial.ttl_dropped,
    );
    t.metric(
        "full_miss_rate",
        full.miss_rate,
        "ratio",
        Tolerance::AbsOrRel(0.02, 0.5),
    );
    t.metric(
        "partial_miss_rate",
        partial.miss_rate,
        "ratio",
        Tolerance::AbsOrRel(0.02, 0.5),
    );
    t.metric(
        "partial_ttl_dropped",
        partial.ttl_dropped,
        "frames",
        Tolerance::AbsOrRel(10.0, 1.0),
    );
    t.metric(
        "partial_on_time",
        partial.on_time,
        "frames",
        Tolerance::AbsOrRel(20.0, 0.10),
    );
    for run in [&full, &partial] {
        t.diagnostics.push(format!(
            "H5 variant {} — flight recorder tail:\n{}",
            run.label, run.flight_dump
        ));
    }
    t
}

// ---------------------------------------------------------------------------
// Nightly sweep: reorder-jitter × RTT grid
// ---------------------------------------------------------------------------

/// The nightly hostile-path grid: QTPAF goodput across reorder-jitter ×
/// RTT combinations (informational — each cell is one full run; the gated
/// H1/H4 points live on this surface).
pub fn hostile_sweep(jitters_ms: &[u64], one_way_ms: &[u64]) -> Table {
    let mut t = Table::new(
        "H-SWEEP",
        "QTPAF goodput across the reorder-jitter × RTT grid",
        "the H1/H4 orderings hold across the surface, not just at the gated points",
        &["RTT (ms)", "jitter (ms)", "QTPAF goodput (Mbit/s)"],
    );
    for &ow in one_way_ms {
        for &j in jitters_ms {
            let path = if j == 0 {
                PathModel::none()
            } else {
                PathModel::none().with_reorder(0.5, Duration::from_millis(j))
            };
            let (sim, s, r) = impaired_path(
                Rate::from_mbps(10),
                Duration::from_millis(ow),
                LossModel::None,
                path,
                101 + ow + j,
            );
            let goodput = run_qtpaf(sim, s, r, Rate::from_mbps(6), 15);
            t.row(vec![
                format!("{}", 2 * ow),
                format!("{j}"),
                format!("{:.2}", goodput / 1e6),
            ]);
            t.metric(
                &format!("qtpaf_rtt{}_j{j}", 2 * ow),
                goodput / 1e6,
                "Mbit/s",
                Tolerance::Info,
            );
        }
    }
    t.verdict = "rate-based control with a floor is flat across the grid".into();
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reordering_collapses_tcp_but_not_qtpaf() {
        let params = ReorderSweepParams {
            secs: 10,
            ..ReorderSweepParams::default()
        };
        let (tcp_clean, qtpaf_clean) = reorder_point(&params, 0);
        let (tcp_j, qtpaf_j) = reorder_point(&params, 100);
        assert!(
            qtpaf_j >= tcp_j,
            "QTPAF must beat TCP under heavy reordering ({qtpaf_j:.0} vs {tcp_j:.0})"
        );
        assert!(
            qtpaf_j >= 0.5 * qtpaf_clean,
            "QTPAF degrades gracefully ({qtpaf_j:.0} vs clean {qtpaf_clean:.0})"
        );
        assert!(
            tcp_j <= 0.8 * tcp_clean,
            "the adversary must actually hurt TCP ({tcp_j:.0} vs clean {tcp_clean:.0})"
        );
    }

    #[test]
    fn duplicating_link_keeps_stream_byte_exact_without_double_count() {
        let params = DupBulkParams {
            file_kib: 64,
            dup: 0.3,
            ..DupBulkParams::default()
        };
        let run = dup_bulk(&params, params.dup);
        assert!(run.byte_exact, "duplicates must not corrupt reassembly");
        assert_eq!(
            run.delivered_bytes,
            64 * 1024,
            "delivered bytes counted once despite wire duplicates"
        );
        assert!(
            run.amplification > 1.15,
            "the wire must really carry duplicates (amplification {:.3})",
            run.amplification
        );
    }

    #[test]
    fn narrow_return_channel_starves_tcp_not_qtpaf() {
        let params = AsymParams {
            secs: 10,
            ..AsymParams::default()
        };
        let (sim, s, r) = asym_path(
            Rate::from_mbps(params.fwd_mbps),
            Rate::from_kbps(100),
            params.one_way,
            params.seed,
        );
        let tcp = run_tcp(sim, s, r, TcpFlavor::Sack, params.secs);
        let (sim, s, r) = asym_path(
            Rate::from_mbps(params.fwd_mbps),
            Rate::from_kbps(100),
            params.one_way,
            params.seed + 1,
        );
        let qtpaf = run_qtpaf(sim, s, r, Rate::from_mbps(params.floor_mbps), params.secs);
        assert!(
            qtpaf > tcp,
            "per-RTT feedback must beat per-packet acks behind a 100 kbit/s return ({qtpaf:.0} vs {tcp:.0})"
        );
    }

    #[test]
    fn long_fat_pipe_floor_is_rtt_independent() {
        let params = LfpParams {
            secs: 30,
            ..LfpParams::default()
        };
        let cfg = LongFatPipeConfig::symmetric(
            Rate::from_mbps(params.rate_mbps),
            Duration::from_millis(300),
            1250,
        );
        let (sim, net) = LongFatPipe::build(&cfg, params.seed);
        let qtpaf = run_qtpaf(
            sim,
            net.tx,
            net.rx,
            Rate::from_mbps(params.floor_mbps),
            params.secs,
        );
        assert!(
            qtpaf >= 0.6 * params.floor_mbps as f64 * 1e6,
            "the floor must hold at 600 ms RTT (got {qtpaf:.0})"
        );
    }

    #[test]
    fn handover_partial_beats_full_and_drops_stale_retx() {
        let params = HandoverStreamParams {
            frames: 300,
            ..HandoverStreamParams::default()
        };
        let (full_profile, partial_profile) = h5_profiles(&params);
        let full = handover_deadline(&params, full_profile, false, "full");
        let partial = handover_deadline(&params, partial_profile, true, "partial");
        assert!(
            partial.miss_rate <= full.miss_rate,
            "TTL-partial holds the miss floor across the handover ({:.3} vs {:.3})",
            partial.miss_rate,
            full.miss_rate
        );
        assert!(
            partial.ttl_dropped >= 1,
            "the receiver-side TTL drop path must fire post-handover"
        );
        assert!(full.on_time > 0 && partial.on_time > 0);
    }
}
