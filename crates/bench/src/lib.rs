//! # qtp-bench — experiment harness, claims ledger and micro-benchmarks
//!
//! The paper is a short "towards" paper without numbered figures; its
//! evaluation is a set of twelve textual claims. Each claim is reproduced
//! by one experiment here (E1–E12 across [`experiments_a`],
//! [`experiments_b`], [`experiments_c`]; the module docs name the claim
//! each experiment covers) and extended at scale by the many-flow
//! fairness sweep ([`manyflow`], table F1). Run them with:
//!
//! ```text
//! cargo run -p qtp-bench --release --bin expt -- all
//! cargo run -p qtp-bench --release --bin expt -- e2 e5
//! ```
//!
//! The [`ledger`] module turns the full run into the committed claims
//! ledger — `EXPERIMENTS.md` + `experiments.json` — and the regression
//! gate behind `expt --check`: every headline number is a typed
//! [`table::Metric`] with a drift [`table::Tolerance`], and every claim
//! is an ordering assertion re-evaluated on each run.
//!
//! Criterion micro-benchmarks (`cargo bench`) price the individual
//! mechanisms (equation, loss history, SACK structures, RIO, wire codecs)
//! and cross-check the E5 operation-count ledger against real CPU time.

#![deny(missing_docs)]

pub mod common;
pub mod controllers;
pub mod experiments_a;
pub mod experiments_b;
pub mod experiments_c;
pub mod hostile;
pub mod json;
pub mod ledger;
pub mod manyflow;
pub mod scenarios;
pub mod table;

use table::Table;

/// All experiment ids in order: the twelve paper claims, the application
/// scenario families over the stream data plane, the hostile-path
/// scenario matrix, then the congestion-controller races.
pub const ALL_IDS: [&str; 23] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "a1", "a2", "a3",
    "h1", "h2", "h3", "h4", "h5", "c1", "c2", "c3",
];

/// Run one experiment by id.
pub fn run_experiment(id: &str) -> Option<Table> {
    match id {
        "e1" => Some(experiments_a::e1()),
        "e2" => Some(experiments_a::e2()),
        "e3" => Some(experiments_a::e3()),
        "e4" => Some(experiments_a::e4()),
        "e5" => Some(experiments_a::e5()),
        "e6" => Some(experiments_b::e6()),
        "e7" => Some(experiments_b::e7()),
        "e8" => Some(experiments_b::e8()),
        "e9" => Some(experiments_b::e9()),
        "e10" => Some(experiments_b::e10()),
        "e11" => Some(experiments_c::e11()),
        "e12" => Some(experiments_c::e12()),
        "a1" => Some(scenarios::a1()),
        "a2" => Some(scenarios::a2()),
        "a3" => Some(scenarios::a3()),
        "h1" => Some(hostile::h1()),
        "h2" => Some(hostile::h2()),
        "h3" => Some(hostile::h3()),
        "h4" => Some(hostile::h4()),
        "h5" => Some(hostile::h5()),
        "c1" => Some(controllers::c1()),
        "c2" => Some(controllers::c2()),
        "c3" => Some(controllers::c3()),
        _ => None,
    }
}
