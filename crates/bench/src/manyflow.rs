//! The many-flow workload family: N concurrent QTP connections with mixed
//! capability profiles over a shared bottleneck.
//!
//! The paper's experiments stop at 1–4 flows; this module is the scaling
//! counterpart the ROADMAP calls for — a parameterised dumbbell scenario
//! family (N up to 1000+) whose per-flow outcomes (throughput, completion
//! time) feed a Jain fairness index. The *same* workload description runs
//! on two backends:
//!
//! * [`run_sim`] — an N-pair dumbbell in the deterministic simulator
//!   (same seed ⇒ byte-identical report), with per-flow RTT spread and a
//!   shared bottleneck; and
//! * [`run_mux_loopback`] — the real-socket connection multiplexer
//!   (`qtp_io::mux`): one client socket with N senders, one server socket
//!   accepting N receivers on first frame, over 127.0.0.1.
//!
//! Profiles cycle over the flow index, so a "mixed" run interleaves QTPAF
//! (fully reliable, gTFRC), QTPlight (unreliable, sender-side loss
//! estimation), TTL-partial QTPlight, and standard TFRC connections — the
//! versatility claim at scale. Completion means "the flow finished its
//! job": full delivery for reliable profiles, backlog fully transmitted
//! for the others (which promise no delivery).

use qtp_core::session::{
    Backend, ConnectionOutcome, ConnectionPlan, Profile, SimBackend, SimRunMetrics, SimTopology,
};
use qtp_io::backend::{MuxBackend, MuxRunStats};
use qtp_simnet::prelude::*;
use std::time::Duration;

/// One of the negotiable capability profiles a flow can run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfileKind {
    /// gTFRC + full reliability (paper §4).
    QtpAf,
    /// Sender-side loss estimation, no reliability (paper §3).
    QtpLight,
    /// QTPlight with TTL-bounded partial reliability.
    QtpLightTtl,
    /// Standard TFRC baseline (receiver-side estimation, unreliable).
    Tfrc,
    /// CUBIC window growth (RFC 8312), full reliability.
    Cubic,
    /// Deterministic BBR-lite, full reliability.
    BbrLite,
}

impl ProfileKind {
    /// The default mixed-capability cycle.
    pub const MIXED: [ProfileKind; 4] = [
        ProfileKind::QtpAf,
        ProfileKind::QtpLight,
        ProfileKind::QtpLightTtl,
        ProfileKind::Tfrc,
    ];

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            ProfileKind::QtpAf => "qtpaf",
            ProfileKind::QtpLight => "qtplight",
            ProfileKind::QtpLightTtl => "qtplight-ttl",
            ProfileKind::Tfrc => "tfrc",
            ProfileKind::Cubic => "cubic",
            ProfileKind::BbrLite => "bbr-lite",
        }
    }

    /// The session-layer [`Profile`] for this kind. `af_floor` is the
    /// gTFRC guaranteed rate for QTPAF flows (their DiffServ reservation —
    /// typically the fair bottleneck share).
    pub fn profile(self, af_floor: Rate) -> Profile {
        match self {
            ProfileKind::QtpAf => Profile::qtp_af(af_floor),
            ProfileKind::QtpLight => Profile::qtp_light(),
            ProfileKind::QtpLightTtl => {
                Profile::qtp_light_partial(Duration::from_millis(500)).expect("nonzero TTL")
            }
            ProfileKind::Tfrc => Profile::tfrc(),
            ProfileKind::Cubic => Profile::cubic(),
            ProfileKind::BbrLite => Profile::bbr_lite(),
        }
    }

    /// A [`ConnectionPlan`] for one finite transfer under this profile.
    pub fn plan(self, af_floor: Rate, packets: u64) -> ConnectionPlan {
        ConnectionPlan::new(self.profile(af_floor)).finite(packets)
    }
}

/// Parameters of one many-flow scenario instance.
#[derive(Debug, Clone)]
pub struct ManyFlowConfig {
    /// Number of concurrent connections.
    pub flows: usize,
    /// Simulator seed ([`run_sim`] only).
    pub seed: u64,
    /// Capability profiles, cycled over the flow index.
    pub profiles: Vec<ProfileKind>,
    /// Finite backlog per flow.
    pub packets_per_flow: u64,
    /// Payload bytes per packet.
    pub payload: u32,
    /// Shared bottleneck rate (sim); also sizes the QTPAF floor (fair
    /// share = bottleneck / flows) on both backends.
    pub bottleneck: Rate,
    /// Access link rate per pair (sim).
    pub access: Rate,
    /// One-way bottleneck propagation delay (sim).
    pub bottleneck_delay: Duration,
    /// Per-flow one-way access delay spread `min..=max` (sim): flow `i`
    /// gets a deterministic point on the spread, giving heterogeneous
    /// RTTs.
    pub rtt_spread: (Duration, Duration),
    /// Scenario horizon: virtual time bound for [`run_sim`], wall-clock
    /// deadline for [`run_mux_loopback`].
    pub horizon: Duration,
    /// Completion sampling granularity for [`run_sim`] (completion times
    /// are rounded up to this, keeping the stepped run deterministic).
    pub check_interval: Duration,
    /// Path impairments on the forward bottleneck (sim); no-op by
    /// default, so existing scenarios and goldens are untouched.
    pub bottleneck_path: PathModel,
}

impl ManyFlowConfig {
    /// The scenario family's default instance at `flows` connections:
    /// mixed profiles, bottleneck scaled to 100 kbit/s per flow (min
    /// 10 Mbit/s) so N is the interesting axis, 4–32 ms RTT spread.
    pub fn new(flows: usize) -> Self {
        ManyFlowConfig {
            flows,
            seed: 42,
            profiles: ProfileKind::MIXED.to_vec(),
            packets_per_flow: 30,
            payload: 1000,
            bottleneck: Rate::from_kbps((flows as u64 * 100).max(10_000)),
            access: Rate::from_mbps(100),
            bottleneck_delay: Duration::from_millis(10),
            rtt_spread: (Duration::from_millis(2), Duration::from_millis(30)),
            horizon: Duration::from_secs(120),
            check_interval: Duration::from_millis(250),
            bottleneck_path: PathModel::none(),
        }
    }

    /// Same family, single profile everywhere.
    pub fn uniform(flows: usize, profile: ProfileKind) -> Self {
        ManyFlowConfig {
            profiles: vec![profile],
            ..Self::new(flows)
        }
    }

    fn profile(&self, i: usize) -> ProfileKind {
        self.profiles[i % self.profiles.len()]
    }

    fn af_floor(&self) -> Rate {
        Rate::from_bps((self.bottleneck.bps() / self.flows.max(1) as u64).max(8_000))
    }

    fn access_delay(&self, i: usize) -> Duration {
        let (lo, hi) = self.rtt_spread;
        let steps = 16u32;
        let step = (i as u32) % steps;
        lo + (hi.saturating_sub(lo)) * step / (steps - 1)
    }

    /// Total application bytes a fully-reliable flow must deliver.
    pub fn target_bytes(&self) -> u64 {
        self.packets_per_flow * self.payload as u64
    }

    /// The backend-neutral plan for flow `i`.
    fn plan(&self, i: usize) -> ConnectionPlan {
        self.profile(i)
            .plan(self.af_floor(), self.packets_per_flow)
            .label(format!("mf{i:04}"))
            .payload(self.payload)
    }
}

/// Outcome of one flow in a scenario run.
#[derive(Debug, Clone)]
pub struct FlowOutcome {
    /// Flow name (`mf0000`, …).
    pub name: String,
    /// Profile label.
    pub profile: &'static str,
    /// Application bytes delivered at the receiver.
    pub delivered_bytes: u64,
    /// Time at which the flow completed its job, seconds from scenario
    /// start (virtual for the sim backend, wall for the mux backend);
    /// `None` if the horizon passed first.
    pub completion_s: Option<f64>,
    /// Goodput over the flow's active period (delivered bytes over
    /// completion time, or over the horizon when incomplete), bits/s.
    pub goodput_bps: f64,
}

/// Aggregates of one capability profile's flows within a scenario run.
#[derive(Debug, Clone)]
pub struct ProfileAgg {
    /// Profile label (see [`ProfileKind::label`]).
    pub profile: &'static str,
    /// Flows running this profile.
    pub flows: usize,
    /// How many of them completed within the horizon.
    pub completed: usize,
    /// Mean per-flow goodput, bits/s.
    pub mean_goodput_bps: f64,
    /// Jain fairness index over this profile's goodputs.
    pub jain: f64,
    /// Mean completion time over completed flows, seconds (`NaN` if none
    /// completed).
    pub mean_completion_s: f64,
}

/// Scenario-level report: per-flow outcomes plus the fairness headline.
#[derive(Debug, Clone)]
pub struct ManyFlowReport {
    /// Which backend produced this ("sim" or "mux").
    pub backend: &'static str,
    /// Per-flow outcomes, in flow order.
    pub outcomes: Vec<FlowOutcome>,
    /// Jain fairness index over per-flow goodput.
    pub jain: f64,
    /// Flows that completed within the horizon.
    pub completed: usize,
    /// Socket-level mux counters (mux backend only; `None` on the sim
    /// backend, whose render must stay byte-deterministic).
    pub mux_stats: Option<MuxRunStats>,
}

impl ManyFlowReport {
    fn from_outcomes(backend: &'static str, outcomes: Vec<FlowOutcome>) -> Self {
        let goodputs: Vec<f64> = outcomes.iter().map(|o| o.goodput_bps).collect();
        let completed = outcomes.iter().filter(|o| o.completion_s.is_some()).count();
        ManyFlowReport {
            backend,
            outcomes,
            jain: jain_index(&goodputs),
            completed,
            mux_stats: None,
        }
    }

    /// Mean goodput across flows, bits/s.
    pub fn mean_goodput_bps(&self) -> f64 {
        mean(
            &self
                .outcomes
                .iter()
                .map(|o| o.goodput_bps)
                .collect::<Vec<_>>(),
        )
    }

    /// 95th-percentile completion time across completed flows, seconds
    /// (`NaN` when nothing completed).
    pub fn p95_completion_s(&self) -> f64 {
        let completions: Vec<f64> = self
            .outcomes
            .iter()
            .filter_map(|o| o.completion_s)
            .collect();
        qtp_metrics::agg::percentile(&completions, 0.95)
    }

    /// Per-profile aggregates in first-appearance order — one entry per
    /// capability profile present in the run.
    pub fn profile_summary(&self) -> Vec<ProfileAgg> {
        let mut profiles: Vec<&'static str> = Vec::new();
        for o in &self.outcomes {
            if !profiles.contains(&o.profile) {
                profiles.push(o.profile);
            }
        }
        profiles
            .into_iter()
            .map(|p| {
                let of: Vec<&FlowOutcome> =
                    self.outcomes.iter().filter(|o| o.profile == p).collect();
                let goodputs: Vec<f64> = of.iter().map(|o| o.goodput_bps).collect();
                let completions: Vec<f64> = of.iter().filter_map(|o| o.completion_s).collect();
                ProfileAgg {
                    profile: p,
                    flows: of.len(),
                    completed: completions.len(),
                    mean_goodput_bps: mean(&goodputs),
                    jain: jain_index(&goodputs),
                    mean_completion_s: if completions.is_empty() {
                        f64::NAN
                    } else {
                        mean(&completions)
                    },
                }
            })
            .collect()
    }

    /// Render the report: headline, per-profile aggregates, and the first
    /// `detail` per-flow rows. Deterministic for the sim backend (pure
    /// function of the outcomes).
    pub fn render(&self, detail: usize) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "many-flow report [{}]: {} flows, {} completed, jain {:.4}, mean goodput {:.1} kbit/s",
            self.backend,
            self.outcomes.len(),
            self.completed,
            self.jain,
            self.mean_goodput_bps() / 1e3,
        );
        for a in self.profile_summary() {
            let _ = writeln!(
                s,
                "  {:<12} {:>4} flows  goodput mean {:>9.1} kbit/s (jain {:.4})  completion mean {:>7.3} s ({}/{} done)",
                a.profile,
                a.flows,
                a.mean_goodput_bps / 1e3,
                a.jain,
                a.mean_completion_s,
                a.completed,
                a.flows,
            );
        }
        for o in self.outcomes.iter().take(detail) {
            let _ = writeln!(
                s,
                "  {} {:<12} delivered {:>8} B  goodput {:>9.1} kbit/s  completion {}",
                o.name,
                o.profile,
                o.delivered_bytes,
                o.goodput_bps / 1e3,
                match o.completion_s {
                    Some(t) => format!("{t:.3} s"),
                    None => "-".into(),
                },
            );
        }
        if self.outcomes.len() > detail && detail > 0 {
            let _ = writeln!(s, "  … {} more flows", self.outcomes.len() - detail);
        }
        if let Some(mux) = &self.mux_stats {
            for (side, st) in [("client", &mux.client), ("server", &mux.server)] {
                let c = st.counter_set();
                let _ = writeln!(
                    s,
                    "  mux {side}: {} dgrams out / {} in, {} timer fires, {} soft errors, backlog high-water {}, wheel high-water {}",
                    c.pkts_tx,
                    c.pkts_rx,
                    c.timer_fires,
                    c.soft_errors,
                    st.tx_backlog_high_water,
                    st.timer_wheel_high_water,
                );
                // Controller counters only exist when a window/model
                // controller (CUBIC, BBR-lite) ran; TFRC-family runs keep
                // the legacy report shape.
                if c.cc_state_updates > 0 || c.cc_phase_changes > 0 {
                    let _ = writeln!(
                        s,
                        "  mux {side} cc: {} state updates, {} phase changes, startup exit {} us",
                        c.cc_state_updates, c.cc_phase_changes, c.bbr_startup_exit_us,
                    );
                }
            }
        }
        s
    }
}

/// Lower a scenario config into per-flow [`ConnectionPlan`]s and lift the
/// backend's [`ConnectionOutcome`]s back into the report shape.
fn report_from(
    cfg: &ManyFlowConfig,
    backend: &'static str,
    outcomes: Vec<ConnectionOutcome>,
) -> ManyFlowReport {
    let outcomes = outcomes
        .into_iter()
        .enumerate()
        .map(|(i, o)| FlowOutcome {
            name: o.label,
            profile: cfg.profile(i).label(),
            delivered_bytes: o.delivered_bytes,
            completion_s: o.completion_s,
            goodput_bps: o.goodput_bps,
        })
        .collect();
    ManyFlowReport::from_outcomes(backend, outcomes)
}

/// Run the scenario on the deterministic simulator: an N-pair dumbbell
/// with heterogeneous access delays and a shared bottleneck, through the
/// session layer's [`SimBackend`]. Same config + seed ⇒ byte-identical
/// report.
pub fn run_sim(cfg: &ManyFlowConfig) -> ManyFlowReport {
    run_sim_instrumented(cfg).0
}

/// [`run_sim`] with a [`TraceRegistry`] attached: every endpoint's tracer
/// is registered (labels `mfNNNN:tx` / `mfNNNN:rx`) so its events reach
/// the registry's sink and its counters are snapshotable afterwards.
/// Tracing is observation-only — the report is byte-identical to the
/// untraced [`run_sim`] for the same config.
pub fn run_sim_traced(
    cfg: &ManyFlowConfig,
    registry: qtp_metrics::trace::TraceRegistry,
) -> ManyFlowReport {
    let (report, _) = run_sim_with_trace(cfg, Some(registry));
    report
}

fn run_sim_with_trace(
    cfg: &ManyFlowConfig,
    trace: Option<qtp_metrics::trace::TraceRegistry>,
) -> (ManyFlowReport, SimRunMetrics) {
    let delays: Vec<Duration> = (0..cfg.flows).map(|i| cfg.access_delay(i)).collect();
    let dcfg = DumbbellConfig {
        pairs: cfg.flows,
        access_rate: cfg.access,
        access_delay: cfg.rtt_spread.0,
        access_delays: Some(delays),
        bottleneck_rate: cfg.bottleneck,
        bottleneck_delay: cfg.bottleneck_delay,
        // Queue sized with the flow count so synchronized slow-starts
        // don't collapse the run; still small enough to exercise loss.
        bottleneck_queue: QueueConfig::DropTailPkts(cfg.flows.max(50)),
        reverse_queue: QueueConfig::DropTailPkts((2 * cfg.flows).max(1000)),
        bottleneck_path: cfg.bottleneck_path.clone(),
    };
    let mut backend = SimBackend {
        topology: SimTopology::Dumbbell(Box::new(dcfg)),
        seed: cfg.seed,
        horizon: cfg.horizon,
        check_interval: cfg.check_interval,
        trace,
    };
    let plans: Vec<ConnectionPlan> = (0..cfg.flows).map(|i| cfg.plan(i)).collect();
    let (outcomes, metrics) = backend
        .run_instrumented(&plans)
        .expect("sim backend cannot fail");
    (report_from(cfg, "sim", outcomes), metrics)
}

/// [`run_sim`], additionally reporting the simulator's engine counters
/// (event count, packet-pool high-water mark) for the scaling benchmarks.
pub fn run_sim_instrumented(cfg: &ManyFlowConfig) -> (ManyFlowReport, SimRunMetrics) {
    run_sim_with_trace(cfg, None)
}

/// Run the same workload over the real-socket connection multiplexer on
/// loopback, through the session layer's [`MuxBackend`]: one client
/// socket with N senders, one server socket with N accept-on-first-frame
/// receivers. There is no shaped bottleneck here — the point is that one
/// socket pair carries the whole scenario — so times are wall-clock and
/// the report is *not* byte-deterministic.
pub fn run_mux_loopback(cfg: &ManyFlowConfig) -> std::io::Result<ManyFlowReport> {
    let plans: Vec<ConnectionPlan> = (0..cfg.flows).map(|i| cfg.plan(i)).collect();
    let mut backend = MuxBackend::new(cfg.horizon);
    let outcomes = backend.run(&plans)?;
    let mut report = report_from(cfg, "mux", outcomes);
    report.mux_stats = backend.last_stats;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_mixed_sim_scenario_completes_and_is_fair() {
        let mut cfg = ManyFlowConfig::new(12);
        cfg.packets_per_flow = 15;
        let report = run_sim(&cfg);
        assert_eq!(report.outcomes.len(), 12);
        assert_eq!(report.completed, 12, "all flows complete within horizon");
        assert!(report.jain > 0.5, "gross unfairness: jain {}", report.jain);
        // Reliable flows delivered everything.
        for o in report.outcomes.iter().filter(|o| o.profile == "qtpaf") {
            assert_eq!(o.delivered_bytes, cfg.target_bytes());
        }
        // Every profile in the mix appears.
        for p in ProfileKind::MIXED {
            assert!(report.outcomes.iter().any(|o| o.profile == p.label()));
        }
    }

    #[test]
    fn sim_scenario_is_deterministic() {
        let mut cfg = ManyFlowConfig::new(24);
        cfg.packets_per_flow = 10;
        let a = run_sim(&cfg).render(usize::MAX);
        let b = run_sim(&cfg).render(usize::MAX);
        assert_eq!(a, b, "same seed must render byte-identically");
        // A different seed still completes but is allowed to differ.
        let mut cfg2 = cfg.clone();
        cfg2.seed = 43;
        let c = run_sim(&cfg2);
        assert_eq!(c.completed, 24);
    }

    #[test]
    fn mux_backend_runs_the_same_workload() {
        // Small mixed run over real loopback sockets: every flow finishes
        // its job, reliable flows deliver everything.
        let mut cfg = ManyFlowConfig::new(8);
        cfg.packets_per_flow = 8;
        cfg.horizon = Duration::from_secs(60);
        let report = run_mux_loopback(&cfg).expect("mux run");
        assert_eq!(report.completed, 8, "all mux flows complete");
        for o in report.outcomes.iter().filter(|o| o.profile == "qtpaf") {
            assert_eq!(o.delivered_bytes, cfg.target_bytes());
        }
    }
}
