//! Minimal result-table type the experiment harness prints (markdown) and
//! serializes (JSON) so `EXPERIMENTS.md` can be regenerated mechanically.
//! JSON emission is hand-rolled so the harness stays dependency-free.

/// One experiment output table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment id, e.g. "E2".
    pub id: String,
    /// Human title.
    pub title: String,
    /// The paper claim this table checks.
    pub claim: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row cells (already formatted).
    pub rows: Vec<Vec<String>>,
    /// Verdict line filled by the experiment ("SHAPE HOLDS: ..." etc.).
    pub verdict: String,
}

impl Table {
    pub fn new(id: &str, title: &str, claim: &str, headers: &[&str]) -> Self {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            claim: claim.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            verdict: String::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Render as markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {} — {}\n\n", self.id, self.title));
        out.push_str(&format!("*Claim:* {}\n\n", self.claim));
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.headers.iter().map(|_| "---|").collect::<String>()
        ));
        for r in &self.rows {
            out.push_str(&format!("| {} |\n", r.join(" | ")));
        }
        if !self.verdict.is_empty() {
            out.push_str(&format!("\n**Measured:** {}\n", self.verdict));
        }
        out.push('\n');
        out
    }

    /// Render as a JSON object.
    pub fn to_json(&self) -> String {
        let headers: Vec<String> = self.headers.iter().map(|h| json_str(h)).collect();
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|r| {
                let cells: Vec<String> = r.iter().map(|c| json_str(c)).collect();
                format!("[{}]", cells.join(", "))
            })
            .collect();
        format!(
            "{{\"id\": {}, \"title\": {}, \"claim\": {}, \"headers\": [{}], \"rows\": [{}], \"verdict\": {}}}",
            json_str(&self.id),
            json_str(&self.title),
            json_str(&self.claim),
            headers.join(", "),
            rows.join(", "),
            json_str(&self.verdict),
        )
    }
}

/// Render a list of tables as a JSON array.
pub fn tables_to_json(tables: &[Table]) -> String {
    let items: Vec<String> = tables.iter().map(Table::to_json).collect();
    format!("[{}]", items.join(",\n "))
}

/// JSON string literal with the escapes markdown table text can contain.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format bits/second in Mbit/s with two decimals.
pub fn mbps(bps: f64) -> String {
    format!("{:.2}", bps / 1e6)
}

/// Format a ratio with two decimals.
pub fn ratio(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown() {
        let mut t = Table::new("E0", "demo", "x beats y", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        t.verdict = "holds".into();
        let md = t.to_markdown();
        assert!(md.contains("### E0 — demo"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
        assert!(md.contains("**Measured:** holds"));
    }

    #[test]
    fn formatters() {
        assert_eq!(mbps(2_500_000.0), "2.50");
        assert_eq!(ratio(0.987), "0.99");
    }
}
