//! Result tables for the experiment harness: markdown + JSON rendering
//! plus the **typed metric / tolerance layer** the claims ledger gates on.
//!
//! Every experiment returns a [`Table`]: human-readable rows (already
//! formatted) plus a list of typed [`Metric`]s — the headline numbers the
//! experiment's claim rests on. Each metric carries a [`Tolerance`]
//! describing how far a future run may drift from the committed
//! `experiments.json` baseline before `expt --check` declares a
//! regression. JSON emission goes through [`crate::json::escape`] so the
//! committed artifacts stay dependency-free and byte-reproducible.

use crate::json;

/// A typed metric value. Experiments record the type that matches the
/// measurement (counts stay integers, verdicts stay booleans) so the
/// regression gate can compare like with like.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricValue {
    /// A real-valued measurement (rates, ratios, indices).
    Float(f64),
    /// An exact count (packets, retransmissions, completed flows).
    Int(i64),
    /// A pass/fail style observation.
    Bool(bool),
}

impl MetricValue {
    /// Numeric view used by tolerance comparison (`true` → 1, `false` → 0).
    pub fn as_f64(&self) -> f64 {
        match self {
            MetricValue::Float(x) => *x,
            MetricValue::Int(i) => *i as f64,
            MetricValue::Bool(b) => {
                if *b {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// The type tag serialized into `experiments.json`.
    pub fn type_name(&self) -> &'static str {
        match self {
            MetricValue::Float(_) => "float",
            MetricValue::Int(_) => "int",
            MetricValue::Bool(_) => "bool",
        }
    }

    fn to_json(self) -> String {
        match self {
            // Non-finite floats have no JSON literal; `null` round-trips
            // back to NaN through `crate::json::Value::as_f64`.
            MetricValue::Float(x) if !x.is_finite() => "null".into(),
            MetricValue::Float(x) => format!("{x}"),
            MetricValue::Int(i) => format!("{i}"),
            MetricValue::Bool(b) => format!("{b}"),
        }
    }

    /// Rounded human rendering for `EXPERIMENTS.md` (the JSON baseline
    /// keeps the exact value).
    pub fn display(&self) -> String {
        match self {
            MetricValue::Float(x) => format!("{x:.4}"),
            MetricValue::Int(i) => format!("{i}"),
            MetricValue::Bool(b) => format!("{b}"),
        }
    }
}

impl From<f64> for MetricValue {
    fn from(x: f64) -> Self {
        MetricValue::Float(x)
    }
}

impl From<i64> for MetricValue {
    fn from(i: i64) -> Self {
        MetricValue::Int(i)
    }
}

impl From<u64> for MetricValue {
    fn from(i: u64) -> Self {
        MetricValue::Int(i as i64)
    }
}

impl From<usize> for MetricValue {
    fn from(i: usize) -> Self {
        MetricValue::Int(i as i64)
    }
}

impl From<bool> for MetricValue {
    fn from(b: bool) -> Self {
        MetricValue::Bool(b)
    }
}

/// How far a metric may drift from the committed baseline before the
/// `expt --check` gate fails.
///
/// All comparisons are inclusive at the boundary, and — except for
/// [`Tolerance::Info`] — a `NaN` on either side is always a failure: a
/// metric that stopped being a number is a regression, not noise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Tolerance {
    /// The value must reproduce exactly (integer counts, booleans,
    /// deterministic byte counts).
    Exact,
    /// `|fresh − baseline| ≤ eps`.
    Abs(f64),
    /// `|fresh − baseline| ≤ frac · |baseline|`.
    Rel(f64),
    /// Accepted when *either* the absolute or the relative bound holds —
    /// the usual spec for values that can legitimately sit near zero.
    AbsOrRel(f64, f64),
    /// Recorded for trend-watching, never gated (wall-clock backends).
    Info,
}

impl Tolerance {
    /// Does `fresh` stay within this tolerance of `baseline`?
    pub fn accepts(&self, baseline: MetricValue, fresh: MetricValue) -> bool {
        if matches!(self, Tolerance::Info) {
            return true;
        }
        if baseline.type_name() != fresh.type_name() {
            return false;
        }
        if let (MetricValue::Bool(a), MetricValue::Bool(b)) = (baseline, fresh) {
            return a == b;
        }
        let (b, f) = (baseline.as_f64(), fresh.as_f64());
        if b.is_nan() || f.is_nan() {
            return false;
        }
        let d = (f - b).abs();
        match *self {
            Tolerance::Exact => d == 0.0,
            Tolerance::Abs(eps) => d <= eps,
            Tolerance::Rel(frac) => d <= frac * b.abs(),
            Tolerance::AbsOrRel(eps, frac) => d <= eps || d <= frac * b.abs(),
            Tolerance::Info => unreachable!("handled above"),
        }
    }

    /// Short human description for reports, e.g. `rel ±10%`.
    pub fn describe(&self) -> String {
        match self {
            Tolerance::Exact => "exact".into(),
            Tolerance::Abs(eps) => format!("abs ±{eps}"),
            Tolerance::Rel(frac) => format!("rel ±{}%", frac * 100.0),
            Tolerance::AbsOrRel(eps, frac) => {
                format!("abs ±{eps} or rel ±{}%", frac * 100.0)
            }
            Tolerance::Info => "informational (not gated)".into(),
        }
    }

    fn to_json(self) -> String {
        match self {
            Tolerance::Exact => r#"{"kind": "exact"}"#.into(),
            Tolerance::Abs(eps) => format!(r#"{{"kind": "abs", "eps": {eps}}}"#),
            Tolerance::Rel(frac) => format!(r#"{{"kind": "rel", "frac": {frac}}}"#),
            Tolerance::AbsOrRel(eps, frac) => {
                format!(r#"{{"kind": "abs_or_rel", "eps": {eps}, "frac": {frac}}}"#)
            }
            Tolerance::Info => r#"{"kind": "info"}"#.into(),
        }
    }
}

/// One gated (or informational) headline number of an experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Name, unique within the table (qualified as `<table id>.<name>` in
    /// the ledger).
    pub name: String,
    /// The measured value.
    pub value: MetricValue,
    /// Unit label for reports ("ratio", "kbit/s", "pkts", …).
    pub unit: String,
    /// Drift budget against the committed baseline.
    pub tolerance: Tolerance,
}

impl Metric {
    fn to_json(&self) -> String {
        format!(
            r#"{{"name": {}, "value": {}, "type": {}, "unit": {}, "tolerance": {}}}"#,
            json::escape(&self.name),
            self.value.to_json(),
            json::escape(self.value.type_name()),
            json::escape(&self.unit),
            self.tolerance.to_json(),
        )
    }
}

/// One experiment output table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment id, e.g. "E2".
    pub id: String,
    /// Human title.
    pub title: String,
    /// The paper claim this table checks.
    pub claim: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row cells (already formatted).
    pub rows: Vec<Vec<String>>,
    /// Verdict line filled by the experiment ("SHAPE HOLDS: ..." etc.).
    pub verdict: String,
    /// Typed headline metrics the claims ledger gates on.
    pub metrics: Vec<Metric>,
    /// Failure diagnostics (e.g. flight-recorder dumps) carried alongside
    /// the table but **never rendered** by [`Table::to_markdown`] /
    /// [`Table::to_json`] — the committed report artifacts stay
    /// byte-identical whether or not diagnostics were captured. `expt
    /// --check` writes them to `flight-dumps/` when the gate fails.
    pub diagnostics: Vec<String>,
}

impl Table {
    /// Start an empty table with its identity and column headers.
    pub fn new(id: &str, title: &str, claim: &str, headers: &[&str]) -> Self {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            claim: claim.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            verdict: String::new(),
            metrics: Vec::new(),
            diagnostics: Vec::new(),
        }
    }

    /// Append one row of pre-formatted cells.
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Record one typed headline metric with its drift tolerance.
    pub fn metric(
        &mut self,
        name: &str,
        value: impl Into<MetricValue>,
        unit: &str,
        tolerance: Tolerance,
    ) {
        debug_assert!(
            self.metrics.iter().all(|m| m.name != name),
            "duplicate metric {name} in table {}",
            self.id
        );
        self.metrics.push(Metric {
            name: name.to_string(),
            value: value.into(),
            unit: unit.to_string(),
            tolerance,
        });
    }

    /// Look up a recorded metric by name.
    pub fn get_metric(&self, name: &str) -> Option<&Metric> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// Render as markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {} — {}\n\n", self.id, self.title));
        out.push_str(&format!("*Claim:* {}\n\n", self.claim));
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.headers.iter().map(|_| "---|").collect::<String>()
        ));
        for r in &self.rows {
            out.push_str(&format!("| {} |\n", r.join(" | ")));
        }
        if !self.verdict.is_empty() {
            out.push_str(&format!("\n**Measured:** {}\n", self.verdict));
        }
        if !self.metrics.is_empty() {
            out.push_str("\n**Gated metrics:**\n\n");
            for m in &self.metrics {
                out.push_str(&format!(
                    "- `{}.{}` = {} {} — tolerance: {}\n",
                    self.id.to_lowercase(),
                    m.name,
                    m.value.display(),
                    m.unit,
                    m.tolerance.describe(),
                ));
            }
        }
        out.push('\n');
        out
    }

    /// Render as a JSON object.
    pub fn to_json(&self) -> String {
        let headers: Vec<String> = self.headers.iter().map(|h| json::escape(h)).collect();
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|r| {
                let cells: Vec<String> = r.iter().map(|c| json::escape(c)).collect();
                format!("[{}]", cells.join(", "))
            })
            .collect();
        let metrics: Vec<String> = self.metrics.iter().map(Metric::to_json).collect();
        format!(
            "{{\"id\": {}, \"title\": {}, \"claim\": {}, \"headers\": [{}], \"rows\": [{}], \"verdict\": {}, \"metrics\": [{}]}}",
            json::escape(&self.id),
            json::escape(&self.title),
            json::escape(&self.claim),
            headers.join(", "),
            rows.join(", "),
            json::escape(&self.verdict),
            metrics.join(",\n  "),
        )
    }
}

/// Render a list of tables as a JSON array.
pub fn tables_to_json(tables: &[Table]) -> String {
    let items: Vec<String> = tables.iter().map(Table::to_json).collect();
    format!("[{}]", items.join(",\n "))
}

/// Format bits/second in Mbit/s with two decimals.
pub fn mbps(bps: f64) -> String {
    format!("{:.2}", bps / 1e6)
}

/// Format a ratio with two decimals.
pub fn ratio(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown() {
        let mut t = Table::new("E0", "demo", "x beats y", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        t.verdict = "holds".into();
        t.metric("speed", 2.0, "ratio", Tolerance::Rel(0.1));
        let md = t.to_markdown();
        assert!(md.contains("### E0 — demo"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
        assert!(md.contains("**Measured:** holds"));
        assert!(md.contains("`e0.speed` = 2.0000 ratio — tolerance: rel ±10%"));
    }

    #[test]
    fn formatters() {
        assert_eq!(mbps(2_500_000.0), "2.50");
        assert_eq!(ratio(0.987), "0.99");
    }

    #[test]
    fn json_carries_typed_metrics() {
        let mut t = Table::new("E0", "demo", "c", &["a"]);
        t.metric("count", 42u64, "pkts", Tolerance::Exact);
        t.metric("rate", 1.5, "Mbit/s", Tolerance::AbsOrRel(0.01, 0.1));
        t.metric("ok", true, "flag", Tolerance::Exact);
        let parsed = crate::json::parse(&t.to_json()).expect("valid JSON");
        let metrics = parsed.get("metrics").unwrap().as_arr().unwrap();
        assert_eq!(metrics.len(), 3);
        assert_eq!(metrics[0].get("type").unwrap().as_str(), Some("int"));
        assert_eq!(metrics[0].get("value").unwrap().as_f64(), Some(42.0));
        assert_eq!(
            metrics[1]
                .get("tolerance")
                .unwrap()
                .get("kind")
                .unwrap()
                .as_str(),
            Some("abs_or_rel")
        );
        assert_eq!(
            metrics[2].get("value"),
            Some(&crate::json::Value::Bool(true))
        );
    }

    #[test]
    fn nan_metric_serializes_as_null() {
        let mut t = Table::new("E0", "demo", "c", &["a"]);
        t.metric("bad", f64::NAN, "ratio", Tolerance::Rel(0.1));
        let parsed = crate::json::parse(&t.to_json()).unwrap();
        let v = parsed.get("metrics").unwrap().as_arr().unwrap()[0]
            .get("value")
            .unwrap()
            .as_f64()
            .unwrap();
        assert!(v.is_nan());
    }

    // --- Tolerance evaluation: the satellite test matrix -----------------

    const F: fn(f64) -> MetricValue = MetricValue::Float;

    #[test]
    fn absolute_bound_inclusive_at_boundary() {
        let t = Tolerance::Abs(0.5);
        assert!(t.accepts(F(10.0), F(10.5)), "boundary-equal must pass");
        assert!(t.accepts(F(10.0), F(9.5)), "boundary-equal must pass");
        assert!(t.accepts(F(10.0), F(10.49)));
        assert!(!t.accepts(F(10.0), F(10.500001)));
        assert!(!t.accepts(F(10.0), F(8.0)));
    }

    #[test]
    fn relative_bound_inclusive_and_sign_safe() {
        let t = Tolerance::Rel(0.10);
        assert!(t.accepts(F(100.0), F(110.0)), "boundary-equal must pass");
        assert!(t.accepts(F(100.0), F(90.0)));
        assert!(!t.accepts(F(100.0), F(110.1)));
        // Relative bounds are measured against |baseline|.
        assert!(t.accepts(F(-100.0), F(-92.0)));
        assert!(!t.accepts(F(-100.0), F(-111.0)));
        // A zero baseline accepts only an exact zero under Rel.
        assert!(t.accepts(F(0.0), F(0.0)));
        assert!(!t.accepts(F(0.0), F(0.001)));
    }

    #[test]
    fn abs_or_rel_accepts_either_bound() {
        let t = Tolerance::AbsOrRel(0.05, 0.10);
        assert!(t.accepts(F(0.0), F(0.05)), "abs leg covers near-zero");
        assert!(t.accepts(F(100.0), F(108.0)), "rel leg covers large values");
        assert!(!t.accepts(F(100.0), F(115.0)));
    }

    #[test]
    fn exact_requires_identity() {
        assert!(Tolerance::Exact.accepts(F(1.25), F(1.25)));
        assert!(!Tolerance::Exact.accepts(F(1.25), F(1.2500001)));
        assert!(Tolerance::Exact.accepts(42u64.into(), 42u64.into()));
        assert!(!Tolerance::Exact.accepts(42u64.into(), 43u64.into()));
        assert!(Tolerance::Exact.accepts(true.into(), true.into()));
        assert!(!Tolerance::Exact.accepts(true.into(), false.into()));
    }

    #[test]
    fn nan_always_fails_gated_tolerances() {
        for t in [
            Tolerance::Exact,
            Tolerance::Abs(1e9),
            Tolerance::Rel(1e9),
            Tolerance::AbsOrRel(1e9, 1e9),
        ] {
            assert!(!t.accepts(F(f64::NAN), F(1.0)), "{t:?}: NaN baseline");
            assert!(!t.accepts(F(1.0), F(f64::NAN)), "{t:?}: NaN fresh");
            assert!(!t.accepts(F(f64::NAN), F(f64::NAN)), "{t:?}: both NaN");
        }
        // Info is never gated, even on NaN.
        assert!(Tolerance::Info.accepts(F(f64::NAN), F(1.0)));
    }

    #[test]
    fn type_mismatch_fails() {
        assert!(!Tolerance::Abs(10.0).accepts(F(1.0), 1u64.into()));
        assert!(!Tolerance::Exact.accepts(true.into(), 1u64.into()));
    }
}
