//! Minimal JSON support for the claims ledger: the string escaper used by
//! [`crate::table`]'s serializer and a small recursive-descent parser.
//!
//! `expt --check` must load the committed `experiments.json` baseline, and
//! the harness is deliberately dependency-free, so both directions live
//! in-tree. The parser accepts exactly RFC 8259 JSON (objects, arrays,
//! strings with `\uXXXX` escapes incl. surrogate pairs, numbers, literals)
//! and is property-tested against the serializer: any table the harness
//! can emit parses back to the same strings and numbers.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
///
/// Objects use a [`BTreeMap`] — key order is irrelevant to the ledger
/// comparison and the deterministic ordering keeps `Debug` output stable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`. The serializer also maps non-finite floats here.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`, which covers every value the
    /// serializer can emit).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload; `Null` reads as `NaN` (the serializer writes
    /// non-finite metric values as `null`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            Value::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse failure: byte offset plus a short description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input at which parsing failed.
    pub pos: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parse one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

/// Escape `s` as a JSON string literal, including the surrounding quotes.
///
/// Mandatory escapes only (`"` `\` and control characters); everything
/// else is passed through as UTF-8. This is the single escaper behind
/// [`crate::table::Table::to_json`].
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            pos: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte 0x{c:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bare backslash"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // High surrogate: a \uXXXX low surrogate
                                // must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("unexpected low surrogate"));
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(self.err(format!("invalid escape '\\{}'", other as char)))
                        }
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // encoding is already valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty checked above");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("non-ASCII in \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("malformed number")),
        }
        // Fraction.
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("malformed number fraction"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        // Exponent.
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("malformed number exponent"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("number out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("-12.5e2").unwrap(), Value::Num(-1250.0));
        assert_eq!(parse("0").unwrap(), Value::Num(0.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": "c"}, null], "d": false}"#).unwrap();
        let a = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(a[0], Value::Num(1.0));
        assert_eq!(a[1].get("b").unwrap().as_str(), Some("c"));
        assert_eq!(a[2], Value::Null);
        assert_eq!(v.get("d"), Some(&Value::Bool(false)));
    }

    #[test]
    fn unescapes_strings() {
        assert_eq!(
            parse(r#""a\"b\\c\nd\u0041\u00e9""#).unwrap(),
            Value::Str("a\"b\\c\ndAé".into())
        );
        // Surrogate pair: U+1F600.
        assert_eq!(
            parse(r#""\ud83d\ude00""#).unwrap(),
            Value::Str("\u{1F600}".into())
        );
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "tru",
            "\"",
            "\"\\u12\"",
            "\"\\ud800x\"",
            "01",
            "1.",
            "1e",
            "{\"a\":1} x",
            "\"\u{1}\"",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
        // A raw control char inside a string is rejected.
        assert!(parse("\"a\u{0002}b\"").is_err());
    }

    #[test]
    fn escape_roundtrips_awkward_strings() {
        for s in [
            "plain",
            "quote\" backslash\\ newline\n tab\t cr\r",
            "control\u{1}\u{1f}",
            "unicode é … \u{1F600} \u{2028}",
            "",
        ] {
            let lit = escape(s);
            assert_eq!(parse(&lit).unwrap(), Value::Str(s.into()), "{s:?}");
        }
    }
}
