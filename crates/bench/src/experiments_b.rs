//! Experiments E6–E10: selfish receivers, smoothness, wireless paths and
//! the reliability-composition matrix.
//!
//! Paper claims covered, one experiment each:
//!
//! * **E6** — §3: sender-side estimation "offers a robust protection
//!   against selfish receivers".
//! * **E7** — §2: TFRC enhances rate smoothness while remaining
//!   TCP-fair.
//! * **E8** — §2 motivation: rate-based congestion control behaves well
//!   over lossy wireless paths where TCP collapses.
//! * **E9** — §1: partial/full reliability, light receiver processing
//!   and QoS-awareness are all negotiable from one endpoint (the
//!   composition matrix).
//! * **E10** — §4: "QTPAF appears to be the first reliable transport
//!   protocol really adapted to carry efficiently QoS traffic".
//!
//! Headline numbers are recorded as gated [`Table::metric`]s; the claim
//! orderings live in `ledger::assertions`.

use qtp_core::session::{attach_pair, ConnectionPlan, Profile};
use qtp_core::CapabilitySet;
use qtp_sack::ReliabilityMode;
use qtp_simnet::marker::{Marker, TokenBucketMarker};
use qtp_simnet::prelude::*;
use qtp_tcp::TcpFlavor;
use std::time::Duration;

use crate::common::*;
use crate::table::{mbps, ratio, Table, Tolerance};

/// E6 — robustness against selfish receivers (Georg & Gorinsky): the
/// receiver divides its reported loss event rate by `k` and inflates its
/// receive-rate report. Standard TFRC is fooled; QTPlight has nothing to
/// be fooled by.
pub fn e6() -> Table {
    let mut t = Table::new(
        "E6",
        "Selfish receiver: misreporting factor k vs obtained throughput",
        "§3: sender-side estimation \"offers a robust protection against selfish receivers ... the sender is no longer dependent of the accuracy and the veracity of the information given by the receiver\"",
        &["k", "TFRC std (Mbit/s)", "std vs honest", "QTPlight (Mbit/s)", "light vs honest"],
    );
    const SECS: u64 = 60;
    let run = |light: bool, k: f64| -> f64 {
        let (mut sim, s, r) = lossy_path(
            50,
            Duration::from_millis(30),
            LossModel::bernoulli(0.02),
            61,
        );
        let profile = if light {
            Profile::qtp_light()
        } else {
            Profile::tfrc()
        };
        let plan = ConnectionPlan::new(profile).selfish_factor(k);
        let h = attach_pair(&mut sim, s, r, "x", &plan);
        sim.run_until(SimTime::from_secs(SECS));
        throughput(&sim, h.data_flow, SECS)
    };
    let honest_std = run(false, 1.0);
    let honest_light = run(true, 1.0);
    let mut max_std_gain: f64 = 1.0;
    let mut max_light_gain: f64 = 1.0;
    for &k in &[1.0f64, 2.0, 10.0, 100.0] {
        let std = run(false, k);
        let light = run(true, k);
        let gs = std / honest_std;
        let gl = light / honest_light;
        max_std_gain = max_std_gain.max(gs);
        max_light_gain = max_light_gain.max(gl);
        t.row(vec![
            format!("{k}"),
            mbps(std),
            ratio(gs),
            mbps(light),
            ratio(gl),
        ]);
    }
    t.verdict = format!(
        "a selfish receiver gains up to {max_std_gain:.1}x under standard TFRC but only {max_light_gain:.2}x under QTPlight — sender-side estimation removes the attack surface."
    );
    t.metric("max_std_gain", max_std_gain, "factor", Tolerance::Rel(0.30));
    t.metric(
        "max_light_gain",
        max_light_gain,
        "factor",
        Tolerance::Abs(0.30),
    );
    t
}

/// E7 — the motivation claim: TFRC's rate is much smoother than TCP's at
/// a comparable average share (coefficient of variation over 200 ms
/// windows), and the two are still roughly fair to each other.
pub fn e7() -> Table {
    let mut t = Table::new(
        "E7",
        "Smoothness: one TCP and one TFRC flow sharing a drop-tail bottleneck",
        "§2: TFRC offers \"a mechanism for enhancing flows' rate smoothness\" while remaining TCP-fair",
        &["flow", "mean rate (Mbit/s)", "CoV (200 ms windows)"],
    );
    const SECS: u64 = 60;
    let (mut sim, net) = droptail_dumbbell(2, 10, Duration::from_millis(10), 50, 71);
    sim.set_sample_interval(Duration::from_millis(200));
    let tcp = attach_tcp(&mut sim, &net, 0, "tcp", TcpFlavor::NewReno);
    let tfrc = attach_plan_pair(
        &mut sim,
        &net,
        1,
        "tfrc",
        &ConnectionPlan::new(Profile::tfrc()),
    )
    .data_flow;
    sim.run_until(SimTime::from_secs(SECS));
    // Skip the first 10 s (startup transients): 50 windows.
    let series = |f: FlowId| -> Vec<f64> {
        sim.stats()
            .flow(f)
            .arrive_series_bps(Duration::from_millis(200))[50..]
            .to_vec()
    };
    let (ts, fs) = (series(tcp), series(tfrc));
    let (m_tcp, m_tfrc) = (mean(&ts), mean(&fs));
    let (c_tcp, c_tfrc) = (cov(&ts), cov(&fs));
    t.row(vec![
        "TCP NewReno".into(),
        mbps(m_tcp),
        format!("{c_tcp:.3}"),
    ]);
    t.row(vec![
        "TFRC (QTP)".into(),
        mbps(m_tfrc),
        format!("{c_tfrc:.3}"),
    ]);
    let jain = jain_index(&[m_tcp, m_tfrc]);
    t.verdict = format!(
        "CoV: TFRC {c_tfrc:.3} vs TCP {c_tcp:.3} ({}x smoother); Jain fairness between the two flows {jain:.3} — smooth and still TCP-friendly.",
        (c_tcp / c_tfrc.max(1e-9)).round()
    );
    t.metric("cov_tcp", c_tcp, "CoV", Tolerance::AbsOrRel(0.05, 0.30));
    t.metric("cov_tfrc", c_tfrc, "CoV", Tolerance::AbsOrRel(0.03, 0.30));
    t.metric("jain_tcp_tfrc", jain, "index", Tolerance::Abs(0.10));
    t
}

/// E8 — rate-based congestion control over lossy wireless paths (paper §2
/// motivation (1), citing the VANET and ad-hoc studies): goodput of TCP
/// vs TFRC vs QTPlight over a Gilbert–Elliott channel of increasing
/// badness.
pub fn e8() -> Table {
    let mut t = Table::new(
        "E8",
        "Goodput over a bursty wireless (Gilbert–Elliott) path",
        "§2: \"proofs of the poor TCP performances over wireless ... and evidence of the good behaviour of rate controlled congestion control over these networks\"",
        &[
            "P(good→bad)",
            "avg loss",
            "TCP NewReno",
            "TCP SACK",
            "TFRC",
            "QTPlight",
            "best rate-based / best TCP",
        ],
    );
    const SECS: u64 = 60;
    let mut min_advantage: f64 = f64::INFINITY;
    for &p_gb in &[0.001f64, 0.005, 0.01, 0.02] {
        let loss = || LossModel::gilbert_elliott(p_gb, 0.3, 0.0, 0.5);
        let seed = (p_gb * 1e4) as u64 + 81;
        let run_tcp = |flavor: TcpFlavor| -> f64 {
            let (mut sim, s, r) = lossy_path(5, Duration::from_millis(20), loss(), seed);
            let data = sim.register_flow("tcp");
            let ack = sim.register_flow("tcp-ack");
            let sack = flavor == TcpFlavor::Sack;
            sim.attach_agent(
                s,
                Box::new(qtp_tcp::TcpSender::new(
                    data,
                    r,
                    qtp_tcp::TcpConfig::new(flavor),
                )),
            );
            sim.attach_agent(
                r,
                Box::new(qtp_tcp::TcpReceiver::new(data, ack, s, sack, 1000)),
            );
            sim.run_until(SimTime::from_secs(SECS));
            goodput(&sim, data, SECS)
        };
        let run_qtp = |light: bool| -> f64 {
            let (mut sim, s, r) = lossy_path(5, Duration::from_millis(20), loss(), seed);
            let profile = if light {
                Profile::qtp_light()
            } else {
                Profile::tfrc()
            };
            let h = attach_pair(&mut sim, s, r, "q", &ConnectionPlan::new(profile));
            sim.run_until(SimTime::from_secs(SECS));
            goodput(&sim, h.data_flow, SECS)
        };
        let (reno, sack) = (run_tcp(TcpFlavor::NewReno), run_tcp(TcpFlavor::Sack));
        let (tfrc, light) = (run_qtp(false), run_qtp(true));
        let advantage = tfrc.max(light) / reno.max(sack).max(1.0);
        min_advantage = min_advantage.min(advantage);
        t.row(vec![
            format!("{p_gb}"),
            format!("{:.3}", loss().steady_state_loss()),
            mbps(reno),
            mbps(sack),
            mbps(tfrc),
            mbps(light),
            ratio(advantage),
        ]);
    }
    t.verdict = format!(
        "rate-based control sustains at least {min_advantage:.2}x the best TCP goodput across the sweep (TCP's window implosion vs TFRC's loss-event smoothing)."
    );
    t.metric(
        "min_advantage",
        min_advantage,
        "factor",
        Tolerance::Rel(0.20),
    );
    t
}

/// E9 — the versatility matrix: every reliability mode × both feedback
/// modes over the same lossy path. This is the composition experiment:
/// eight distinct transports from one protocol.
pub fn e9() -> Table {
    let mut t = Table::new(
        "E9",
        "Composition matrix: reliability × feedback over a 3% lossy path",
        "§1: the protocol \"provides and allows the following features to be negotiated: (1) partial/full reliability; (2) light processing for receiver; (3) QoS-awareness\"",
        &[
            "reliability",
            "feedback",
            "delivered frac",
            "mean latency (ms)",
            "retx",
            "abandoned",
            "rx ops/pkt",
        ],
    );
    const SECS: u64 = 30;
    let reliabilities: [(&str, ReliabilityMode); 4] = [
        ("None", ReliabilityMode::None),
        ("Full", ReliabilityMode::Full),
        (
            "PartialTtl(150ms)",
            ReliabilityMode::PartialTtl(Duration::from_millis(150)),
        ),
        ("PartialRetx(1)", ReliabilityMode::PartialRetx(1)),
    ];
    let feedbacks = [
        ("ReceiverLoss", qtp_core::FeedbackMode::ReceiverLoss),
        ("SenderLoss", qtp_core::FeedbackMode::SenderLoss),
    ];
    let mut full_fracs = Vec::new();
    let mut none_fracs = Vec::new();
    for (rname, rel) in reliabilities {
        for (fname, fb) in feedbacks {
            let caps = CapabilitySet {
                reliability: rel,
                feedback: fb,
                cc: qtp_core::CcKind::Tfrc,
            };
            let plan =
                ConnectionPlan::new(Profile::try_from(caps).expect("matrix entries are valid"));
            let (mut sim, s, r) = lossy_path(
                5,
                Duration::from_millis(30),
                LossModel::bernoulli(0.03),
                91 + rel.wire_code() as u64 * 2 + fb.wire_code() as u64,
            );
            let h = attach_pair(&mut sim, s, r, "m", &plan);
            sim.run_until(SimTime::from_secs(SECS));
            let st = sim.stats().flow(h.data_flow);
            let d = h.tx.snapshot();
            let new_sent = (d.tx_data_pkts - d.tx_retransmissions) as f64 * 1000.0;
            let frac = st.bytes_app_delivered as f64 / new_sent.max(1.0);
            if rel == ReliabilityMode::Full {
                full_fracs.push(frac);
            }
            if rel == ReliabilityMode::None {
                none_fracs.push(frac);
            }
            t.row(vec![
                rname.into(),
                fname.into(),
                format!("{frac:.3}"),
                format!("{:.1}", h.rx.read(|p| p.mean_latency_s()) * 1e3),
                d.tx_retransmissions.to_string(),
                d.tx_abandoned.to_string(),
                format!("{:.1}", h.rx.read(|p| p.rx_ops_per_packet())),
            ]);
        }
    }
    let full_min = full_fracs.iter().fold(f64::INFINITY, |a, &b| a.min(b));
    let none_max = none_fracs.iter().fold(0.0f64, |a, &b| a.max(b));
    t.verdict = format!(
        "full reliability delivers ≥ {full_min:.3} of sent data under 3% loss; unreliable mode tops out at {none_max:.3} (≈ 1−p) with the lowest latency; partial modes interpolate — all eight compositions from one endpoint."
    );
    t.metric(
        "full_min_delivered",
        full_min,
        "fraction",
        Tolerance::Abs(0.01),
    );
    t.metric(
        "none_max_delivered",
        none_max,
        "fraction",
        Tolerance::Abs(0.03),
    );
    t
}

/// E10 — QTPAF end-to-end on a congested *and* lossy AF path: full
/// reliability composes with the QoS guarantee (every submitted byte
/// arrives; the wire rate stays at or above g).
pub fn e10() -> Table {
    let mut t = Table::new(
        "E10",
        "QTPAF on a lossy assured path: reliability + guarantee together",
        "§4: \"QTPAF appears to be the first reliable transport protocol really adapted to carry efficiently QoS traffic\"",
        &[
            "profile",
            "wire rate / g",
            "app loss (pkts)",
            "retx",
            "abandoned",
        ],
    );
    const SECS: u64 = 60;
    let g = Rate::from_mbps(2);

    // Custom topology: dumbbell whose RIO bottleneck also suffers 1%
    // transmission loss (wireless backhaul inside the assured class).
    let build = || {
        let mut b = NetworkBuilder::new();
        let s0 = b.host();
        let r0 = b.host();
        let s1 = b.host();
        let r1 = b.host();
        let left = b.router();
        let right = b.router();
        let acc = LinkConfig::new(Rate::from_mbps(100), Duration::from_millis(1));
        let (s0l, _) = b.duplex_link(s0, left, acc.clone());
        b.duplex_link(right, r0, acc.clone());
        let (s1l, _) = b.duplex_link(s1, left, acc.clone());
        b.duplex_link(right, r1, acc.clone());
        b.simplex_link(
            left,
            right,
            LinkConfig::new(Rate::from_mbps(10), Duration::from_millis(10))
                .with_queue(QueueConfig::Rio(RioParams::default()))
                .with_loss(LossModel::bernoulli(0.01)),
        );
        b.simplex_link(
            right,
            left,
            LinkConfig::new(Rate::from_mbps(10), Duration::from_millis(10)),
        );
        (b.build(101), s0, r0, s1, r1, s0l, s1l)
    };

    for (label, caps) in [
        ("QTPAF (Full)", CapabilitySet::qtp_af(g)),
        (
            "gTFRC unreliable",
            CapabilitySet {
                reliability: ReliabilityMode::None,
                ..CapabilitySet::qtp_af(g)
            },
        ),
    ] {
        let (mut sim, s0, r0, s1, r1, s0l, _s1l) = build();
        let plan = ConnectionPlan::new(Profile::try_from(caps).expect("AF profiles are valid"));
        let h = attach_pair(&mut sim, s0, r0, "af", &plan);
        sim.set_marker(
            s0l,
            h.data_flow,
            Marker::TokenBucket(TokenBucketMarker::new(g, CBS)),
        );
        // Background out-of-profile TCP between the second pair.
        let bg = sim.register_flow("bg");
        let bga = sim.register_flow("bg-ack");
        sim.attach_agent(
            s1,
            Box::new(qtp_tcp::TcpSender::new(
                bg,
                r1,
                qtp_tcp::TcpConfig::new(TcpFlavor::NewReno),
            )),
        );
        sim.attach_agent(
            r1,
            Box::new(qtp_tcp::TcpReceiver::new(bg, bga, s1, false, 1000)),
        );
        sim.run_until(SimTime::from_secs(SECS));

        let st = sim.stats().flow(h.data_flow);
        let d = h.tx.snapshot();
        let wire_ratio = throughput(&sim, h.data_flow, SECS) / g.bps() as f64;
        let new_sent = d.tx_data_pkts - d.tx_retransmissions;
        // Tail allowance: packets still in flight / unrecovered at cut-off.
        let delivered_pkts = st.bytes_app_delivered / 1000;
        let app_loss = new_sent.saturating_sub(delivered_pkts + 50);
        if label.starts_with("QTPAF") {
            t.metric(
                "qtpaf_wire_ratio",
                wire_ratio,
                "ratio",
                Tolerance::Rel(0.10),
            );
            t.metric("qtpaf_app_loss", app_loss, "pkts", Tolerance::Exact);
        } else {
            t.metric(
                "unrel_wire_ratio",
                wire_ratio,
                "ratio",
                Tolerance::Rel(0.10),
            );
        }
        t.row(vec![
            label.into(),
            ratio(wire_ratio),
            if label.starts_with("QTPAF") {
                format!("{app_loss} (tail-adjusted)")
            } else {
                (new_sent - delivered_pkts).to_string()
            },
            d.tx_retransmissions.to_string(),
            d.tx_abandoned.to_string(),
        ]);
    }
    t.verdict = "QTPAF holds the reservation on a 1%-lossy assured path AND recovers every loss (app loss 0 after tail adjustment); the unreliable variant holds the rate but leaks ~1% of data — reliability and QoS compose.".into();
    t
}
