//! Application scenario families A1–A3: the stream data plane under
//! realistic application workloads.
//!
//! Where E1–E12 reproduce the paper's rate/fairness claims with synthetic
//! greedy or CBR sources, these scenarios exercise the **application data
//! plane** end to end — `SendStream::send` → negotiated transport →
//! `RecvStream::recv` — and measure what an application would measure:
//!
//! * **A1 — bulk file transfer**: a fixed file pushed through the stream
//!   with backpressure over a lossy path; goodput and byte-exactness,
//!   QTPAF (full reliability + gTFRC floor) vs the plain-TFRC datagram
//!   baseline.
//! * **A2 — interactive request/response**: a closed-loop chat over two
//!   stream connections; response-time percentiles (p50/p95/p99 from
//!   [`qtp_metrics::agg`]) including the retransmission tail.
//! * **A3 — deadline-driven streaming**: timestamped frames with a playout
//!   deadline under loss; full reliability pays for recovery in
//!   head-of-line lateness, TTL-bounded partial reliability drops stale
//!   retransmissions at the receiver and misses fewer deadlines.
//!
//! Every scenario is a parameterised family (`*Params` structs) running on
//! the deterministic simulator; fixed seeds make each table a pure
//! function of the code, so A1–A3 are gated in the claims ledger alongside
//! E1–E12. [`scenarios_mux`] replays A1/A2 over real loopback sockets
//! through the connection mux (wall-clock, informational).

use qtp_core::session::{attach_pair, attach_pairs, ConnectionPlan, Profile, Reliability};
use qtp_core::stream::{RecvStream, SendStream, StreamConfig, StreamError};
use qtp_core::{CcKind, FeedbackMode};
use qtp_metrics::agg;
use qtp_metrics::trace::{FlightRecorder, TraceRegistry};
use qtp_simnet::prelude::*;
use std::time::Duration;

use crate::common::lossy_path;
use crate::table::{ratio, Table, Tolerance};

/// Deterministic position-dependent payload: any reordering, loss, or
/// duplication of delivered bytes breaks the byte-exact comparison.
pub(crate) fn pattern_bytes(len: usize, salt: u64) -> Vec<u8> {
    (0..len as u64)
        .map(|i| ((i ^ salt).wrapping_mul(2654435761) >> 7) as u8)
        .collect()
}

/// Push as much of `data` into the stream as the send buffer accepts.
pub(crate) fn feed(send: &SendStream, data: &[u8], offset: &mut usize, msg: usize) {
    while *offset < data.len() {
        let end = (*offset + msg).min(data.len());
        match send.send(&data[*offset..end]) {
            Ok(()) => *offset = end,
            Err(StreamError::Full) => break,
            Err(e) => panic!("scenario send failed: {e}"),
        }
    }
}

pub(crate) fn drain(recv: &RecvStream, into: &mut Vec<u8>) {
    while let Some(m) = recv.recv() {
        into.extend(m);
    }
}

// ---------------------------------------------------------------------------
// A1 — bulk file transfer
// ---------------------------------------------------------------------------

/// Parameters of the bulk-transfer family.
#[derive(Debug, Clone)]
pub struct BulkParams {
    /// File size in KiB.
    pub file_kib: usize,
    /// Path rate in Mbit/s.
    pub rate_mbps: u64,
    /// One-way propagation delay.
    pub one_way: Duration,
    /// Bernoulli loss probability on the data direction.
    pub loss: f64,
    /// gTFRC floor for the QTPAF variant, Mbit/s.
    pub floor_mbps: u64,
    /// Simulation seed.
    pub seed: u64,
}

impl Default for BulkParams {
    fn default() -> Self {
        BulkParams {
            file_kib: 512,
            rate_mbps: 10,
            one_way: Duration::from_millis(20),
            loss: 0.02,
            floor_mbps: 6,
            seed: 42,
        }
    }
}

/// Outcome of one bulk transfer run.
#[derive(Debug, Clone)]
pub struct BulkRun {
    /// Profile label.
    pub label: String,
    /// Application goodput over the active period, Mbit/s.
    pub goodput_mbps: f64,
    /// Seconds until the receive stream finished (horizon if it never did).
    pub completion_s: f64,
    /// Application bytes delivered.
    pub delivered_bytes: u64,
    /// Delivered bytes reproduce the file exactly, in order.
    pub byte_exact: bool,
}

/// Run one bulk file transfer through the stream data plane on the
/// deterministic simulator.
pub fn bulk(params: &BulkParams, profile: Profile, label: &str) -> BulkRun {
    let (mut sim, s, r) = lossy_path(
        params.rate_mbps,
        params.one_way,
        LossModel::bernoulli(params.loss),
        params.seed,
    );
    let plan = ConnectionPlan::new(profile)
        .label(label)
        .stream(StreamConfig::with_send_buf(64 * 1024));
    let h = attach_pair(&mut sim, s, r, label, &plan);
    let tx = h.tx_stream.clone().expect("stream plan has a send stream");
    let rx = h.rx_stream.clone().expect("stream plan has a recv stream");

    let file = pattern_bytes(params.file_kib * 1024, params.seed);
    let step = Duration::from_millis(50);
    let horizon = SimTime::ZERO + Duration::from_secs(60);
    let mut t = SimTime::ZERO;
    let mut offset = 0usize;
    let mut received = Vec::with_capacity(file.len());
    let mut completion = None;
    while t < horizon {
        t = (t + step).min(horizon);
        feed(&tx, &file, &mut offset, 1000);
        if offset == file.len() && !tx.is_finished() {
            tx.finish();
        }
        sim.run_until(t);
        drain(&rx, &mut received);
        if rx.is_finished() {
            completion = Some(t);
            break;
        }
    }
    let elapsed = completion.unwrap_or(horizon).as_secs_f64();
    BulkRun {
        label: label.to_string(),
        goodput_mbps: rx.bytes_received() as f64 * 8.0 / elapsed / 1e6,
        completion_s: elapsed,
        delivered_bytes: rx.bytes_received(),
        byte_exact: received == file,
    }
}

/// A1 — bulk file transfer: QTPAF vs the plain-TFRC datagram baseline on
/// the same 2%-loss path.
pub fn a1() -> Table {
    let mut t = Table::new(
        "A1",
        "App scenario: bulk file transfer over the stream data plane",
        "application extension of §4: full reliability over the gTFRC floor moves a file byte-exact at the reserved rate under loss, while the datagram baseline collapses to the TFRC equation and delivers holes",
        &[
            "profile",
            "goodput (Mbit/s)",
            "completion (s)",
            "delivered (KiB)",
            "byte-exact",
        ],
    );
    let params = BulkParams::default();
    let af = bulk(
        &params,
        Profile::qtp_af(Rate::from_mbps(params.floor_mbps)),
        "qtp_af",
    );
    let tfrc = bulk(&params, Profile::tfrc(), "tfrc");
    for run in [&af, &tfrc] {
        t.row(vec![
            run.label.clone(),
            format!("{:.2}", run.goodput_mbps),
            format!("{:.2}", run.completion_s),
            format!("{}", run.delivered_bytes / 1024),
            format!("{}", run.byte_exact),
        ]);
    }
    t.verdict = format!(
        "QTPAF finishes the {} KiB file byte-exact in {:.2} s ({:.2} Mbit/s); plain TFRC needs {:.2} s for a lossy copy ({:.2} Mbit/s) — the floor and the reliability compose for applications, not just for rate traces.",
        params.file_kib, af.completion_s, af.goodput_mbps, tfrc.completion_s, tfrc.goodput_mbps,
    );
    t.metric(
        "qtpaf_goodput_mbps",
        af.goodput_mbps,
        "Mbit/s",
        Tolerance::Rel(0.25),
    );
    t.metric(
        "tfrc_goodput_mbps",
        tfrc.goodput_mbps,
        "Mbit/s",
        Tolerance::Rel(0.30),
    );
    t.metric("qtpaf_byte_exact", af.byte_exact, "flag", Tolerance::Exact);
    t.metric(
        "qtpaf_completion_s",
        af.completion_s,
        "s",
        Tolerance::Rel(0.30),
    );
    t
}

// ---------------------------------------------------------------------------
// A2 — interactive request/response
// ---------------------------------------------------------------------------

/// Parameters of the request/response family.
#[derive(Debug, Clone)]
pub struct ChatParams {
    /// Closed-loop requests to complete.
    pub requests: usize,
    /// Request size, bytes.
    pub req_bytes: usize,
    /// Response size, bytes.
    pub rsp_bytes: usize,
    /// Path rate in Mbit/s.
    pub rate_mbps: u64,
    /// One-way propagation delay.
    pub one_way: Duration,
    /// Bernoulli loss probability on the request direction.
    pub loss: f64,
    /// Simulation seed.
    pub seed: u64,
}

impl Default for ChatParams {
    fn default() -> Self {
        ChatParams {
            requests: 100,
            req_bytes: 200,
            rsp_bytes: 1000,
            rate_mbps: 10,
            one_way: Duration::from_millis(10),
            loss: 0.10,
            seed: 7,
        }
    }
}

/// Outcome of one chat run.
#[derive(Debug, Clone)]
pub struct ChatRun {
    /// Request/response exchanges completed.
    pub completed: usize,
    /// Median response time, ms.
    pub p50_ms: f64,
    /// 95th-percentile response time, ms.
    pub p95_ms: f64,
    /// 99th-percentile response time, ms.
    pub p99_ms: f64,
}

/// Run the closed-loop request/response scenario: requests ride one stream
/// connection client→server (lossy direction), responses a second one
/// server→client. A lost tail request has nothing behind it to reveal the
/// gap, so the tail-loss timer sets the p99 — exactly the latency anatomy
/// a real RPC client sees.
pub fn chat(params: &ChatParams) -> ChatRun {
    let (mut sim, c, s) = lossy_path(
        params.rate_mbps,
        params.one_way,
        LossModel::bernoulli(params.loss),
        params.seed,
    );
    let plan = |label: &str| {
        ConnectionPlan::new(Profile::qtp_af(Rate::from_mbps(2)))
            .label(label)
            .stream(StreamConfig::with_send_buf(64 * 1024))
    };
    // Both connections terminate on both nodes (requests one way,
    // responses the other), so they must share per-node agents.
    let mut pairs = attach_pairs(
        &mut sim,
        &[
            (c, s, "a2-req", plan("a2-req")),
            (s, c, "a2-rsp", plan("a2-rsp")),
        ],
    );
    let rsp = pairs.pop().expect("two pairs attached");
    let req = pairs.pop().expect("two pairs attached");
    let req_tx = req.tx_stream.clone().expect("stream plan");
    let req_rx = req.rx_stream.clone().expect("stream plan");
    let rsp_tx = rsp.tx_stream.clone().expect("stream plan");
    let rsp_rx = rsp.rx_stream.clone().expect("stream plan");

    let request = pattern_bytes(params.req_bytes, params.seed);
    let response = pattern_bytes(params.rsp_bytes, params.seed + 1);
    let step = Duration::from_millis(1);
    let warmup = SimTime::ZERO + Duration::from_millis(500);
    let horizon = SimTime::ZERO + Duration::from_secs(120);
    let mut t = SimTime::ZERO;
    sim.run_until(warmup);
    t = t.max(warmup);

    let mut sent = 0usize;
    let mut inflight: Option<SimTime> = None;
    let mut rts_ms: Vec<f64> = Vec::with_capacity(params.requests);
    while rts_ms.len() < params.requests && t < horizon {
        // Server: every complete request gets one response.
        while req_rx.recv().is_some() {
            rsp_tx.send(&response).expect("response fits the buffer");
        }
        // Client: a response completes the exchange in flight.
        while rsp_rx.recv().is_some() {
            if let Some(at) = inflight.take() {
                rts_ms.push(t.saturating_since(at).as_secs_f64() * 1e3);
            }
        }
        if inflight.is_none() && sent < params.requests {
            req_tx.send(&request).expect("request fits the buffer");
            inflight = Some(t);
            sent += 1;
        }
        t = (t + step).min(horizon);
        sim.run_until(t);
    }
    ChatRun {
        completed: rts_ms.len(),
        p50_ms: agg::p50(&rts_ms),
        p95_ms: agg::p95(&rts_ms),
        p99_ms: agg::p99(&rts_ms),
    }
}

/// A2 — interactive request/response latency percentiles.
pub fn a2() -> Table {
    let mut t = Table::new(
        "A2",
        "App scenario: closed-loop request/response over two stream connections",
        "application extension of §3: the stream data plane serves interactive traffic — median response time tracks the RTT plus pacing, and the only heavy tail is the tail-loss recovery of a lost request",
        &["exchanges", "p50 (ms)", "p95 (ms)", "p99 (ms)"],
    );
    let params = ChatParams::default();
    let run = chat(&params);
    t.row(vec![
        format!("{}", run.completed),
        format!("{:.1}", run.p50_ms),
        format!("{:.1}", run.p95_ms),
        format!("{:.1}", run.p99_ms),
    ]);
    t.verdict = format!(
        "{} of {} exchanges completed; p50 {:.1} ms over a {} ms RTT, p99 {:.1} ms — the tail is the tail-loss timer recovering a lost request, not queueing.",
        run.completed,
        params.requests,
        run.p50_ms,
        2 * params.one_way.as_millis(),
        run.p99_ms,
    );
    t.metric("completed", run.completed, "exchanges", Tolerance::Exact);
    t.metric("p50_ms", run.p50_ms, "ms", Tolerance::AbsOrRel(3.0, 0.35));
    t.metric("p95_ms", run.p95_ms, "ms", Tolerance::AbsOrRel(5.0, 0.40));
    t.metric("p99_ms", run.p99_ms, "ms", Tolerance::AbsOrRel(10.0, 0.50));
    t
}

// ---------------------------------------------------------------------------
// A3 — deadline-driven streaming
// ---------------------------------------------------------------------------

/// Parameters of the deadline-streaming family.
#[derive(Debug, Clone)]
pub struct DeadlineParams {
    /// Frames to stream.
    pub frames: usize,
    /// Frame size, bytes (one message per frame).
    pub frame_bytes: usize,
    /// Frame interval (CBR cadence).
    pub interval: Duration,
    /// Playout deadline: a frame older than this on delivery is missed.
    pub deadline: Duration,
    /// Per-message TTL for the partial-reliability variant. Set below the
    /// minimum retransmission round trip so every arriving retransmission
    /// is provably stale — the receiver, not the sender, drops it.
    pub msg_ttl: Duration,
    /// Connection-level TTL offered by the partial profile (kept well
    /// above `msg_ttl` so the sender still retransmits and the receiver
    /// exercises its drop path).
    pub policy_ttl: Duration,
    /// Path rate in Mbit/s.
    pub rate_mbps: u64,
    /// gTFRC floor in Mbit/s, identical in both variants so the
    /// comparison isolates the reliability axis.
    pub floor_mbps: u64,
    /// One-way propagation delay.
    pub one_way: Duration,
    /// Bernoulli loss probability on the data direction.
    pub loss: f64,
    /// Simulation seed.
    pub seed: u64,
}

impl Default for DeadlineParams {
    fn default() -> Self {
        DeadlineParams {
            frames: 600,
            frame_bytes: 500,
            interval: Duration::from_millis(20),
            deadline: Duration::from_millis(120),
            msg_ttl: Duration::from_millis(110),
            policy_ttl: Duration::from_millis(400),
            rate_mbps: 4,
            floor_mbps: 1,
            one_way: Duration::from_millis(40),
            loss: 0.03,
            seed: 9,
        }
    }
}

/// The two A3 profiles: full reliability vs TTL-partial, with the *same*
/// congestion control (gTFRC at the same floor) so reliability is the
/// only axis that differs. `qtp_light_partial` would swap the whole
/// capability set at once and confound the deadline comparison with a
/// rate change.
fn deadline_profiles(params: &DeadlineParams) -> (Profile, Profile) {
    let floor = Rate::from_mbps(params.floor_mbps);
    let full = Profile::qtp_af(floor);
    let partial = Profile::new()
        .reliability(Reliability::Ttl(params.policy_ttl))
        .feedback(FeedbackMode::ReceiverLoss)
        .cc(CcKind::Gtfrc { target: floor })
        .build()
        .expect("non-zero TTL");
    (full, partial)
}

/// Outcome of one deadline-streaming run.
#[derive(Debug, Clone)]
pub struct DeadlineRun {
    /// Variant label.
    pub label: String,
    /// Frames delivered within the deadline.
    pub on_time: usize,
    /// Frames delivered after the deadline.
    pub late: usize,
    /// Frames never delivered.
    pub never: usize,
    /// (late + never) / frames.
    pub miss_rate: f64,
    /// Stale retransmissions dropped by the receiver's TTL check.
    pub ttl_dropped: u64,
    /// Flight-recorder tail of both endpoints (last events per side),
    /// kept for failure diagnostics — see [`Table::diagnostics`].
    pub flight_dump: String,
}

/// Stream timestamped CBR frames through one profile and score each frame
/// against the playout deadline.
pub fn deadline(
    params: &DeadlineParams,
    profile: Profile,
    tag_ttl: bool,
    label: &str,
) -> DeadlineRun {
    let (mut sim, s, r) = lossy_path(
        params.rate_mbps,
        params.one_way,
        LossModel::bernoulli(params.loss),
        params.seed,
    );
    let plan = ConnectionPlan::new(profile)
        .label(label)
        .payload(params.frame_bytes as u32)
        .stream(StreamConfig::default());
    let h = attach_pair(&mut sim, s, r, label, &plan);
    let tx = h.tx_stream.clone().expect("stream plan");
    let rx = h.rx_stream.clone().expect("stream plan");

    // Flight recorder riding along: the last events of each side, dumped
    // into the ledger's diagnostics if an A3 assertion fails. Tracing is
    // observation-only, so the scenario numbers cannot move.
    let recorder = std::rc::Rc::new(std::cell::RefCell::new(FlightRecorder::new(48)));
    let registry = TraceRegistry::new();
    registry.set_sink(recorder.clone());
    registry.register(&format!("{label}:tx"), &h.tx_tracer);
    registry.register(&format!("{label}:rx"), &h.rx_tracer);

    let ttl_micros = if tag_ttl {
        params.msg_ttl.as_micros() as u32
    } else {
        0
    };
    let pad = pattern_bytes(params.frame_bytes, params.seed);
    let step = Duration::from_millis(5);
    let warmup = SimTime::ZERO + Duration::from_secs(1);
    let horizon = SimTime::ZERO + Duration::from_secs(30) + params.interval * params.frames as u32;
    let mut t = SimTime::ZERO;
    sim.run_until(warmup);
    t = t.max(warmup);

    let mut sent = 0usize;
    let mut delivered = vec![false; params.frames];
    let mut on_time = 0usize;
    let mut late = 0usize;
    while t < horizon {
        while sent < params.frames && t >= warmup + params.interval * sent as u32 {
            let mut frame = pad.clone();
            frame[..4].copy_from_slice(&(sent as u32).to_be_bytes());
            frame[4..12].copy_from_slice(&t.as_nanos().to_be_bytes());
            tx.send_with_ttl(&frame, ttl_micros)
                .expect("frame fits the buffer");
            sent += 1;
        }
        if sent == params.frames && !tx.is_finished() {
            tx.finish();
        }
        t = (t + step).min(horizon);
        sim.run_until(t);
        while let Some(frame) = rx.recv() {
            let mut idx = [0u8; 4];
            idx.copy_from_slice(&frame[..4]);
            let idx = u32::from_be_bytes(idx) as usize;
            let mut ts = [0u8; 8];
            ts.copy_from_slice(&frame[4..12]);
            let sent_at = SimTime::from_nanos(u64::from_be_bytes(ts));
            if delivered[idx] {
                continue;
            }
            delivered[idx] = true;
            if t.saturating_since(sent_at) <= params.deadline {
                on_time += 1;
            } else {
                late += 1;
            }
        }
        if rx.is_finished() && sent == params.frames {
            break;
        }
    }
    let never = delivered.iter().filter(|d| !**d).count();
    let flight_dump = recorder.borrow().dump();
    DeadlineRun {
        label: label.to_string(),
        on_time,
        late,
        never,
        miss_rate: (late + never) as f64 / params.frames as f64,
        ttl_dropped: rx.ttl_dropped(),
        flight_dump,
    }
}

/// A3 — deadline-driven streaming: full reliability vs TTL-bounded partial
/// reliability under 3% loss.
pub fn a3() -> Table {
    let mut t = Table::new(
        "A3",
        "App scenario: deadline streaming — full vs TTL-partial reliability",
        "§3's partial-reliability by-product, measured at the application: under loss, full reliability recovers every frame but behind the playout deadline (head-of-line lateness), while TTL-partial delivery drops stale retransmissions at the receiver and misses fewer deadlines",
        &[
            "variant",
            "frames",
            "on-time",
            "late",
            "never",
            "miss rate",
            "ttl dropped",
        ],
    );
    let params = DeadlineParams::default();
    let (full_profile, partial_profile) = deadline_profiles(&params);
    let full = deadline(&params, full_profile, false, "full");
    let partial = deadline(&params, partial_profile, true, "ttl-partial");
    for run in [&full, &partial] {
        t.row(vec![
            run.label.clone(),
            format!("{}", params.frames),
            format!("{}", run.on_time),
            format!("{}", run.late),
            format!("{}", run.never),
            ratio(run.miss_rate),
            format!("{}", run.ttl_dropped),
        ]);
    }
    t.verdict = format!(
        "with a {} ms deadline over an {} ms RTT, full reliability misses {:.1}% of frames (every recovered frame arrives stale and delays the frames queued behind it); TTL-partial delivery misses {:.1}% — the lost frames themselves — and the receiver discarded {} stale retransmissions.",
        params.deadline.as_millis(),
        2 * params.one_way.as_millis(),
        full.miss_rate * 100.0,
        partial.miss_rate * 100.0,
        partial.ttl_dropped,
    );
    t.metric(
        "full_miss_rate",
        full.miss_rate,
        "ratio",
        Tolerance::AbsOrRel(0.02, 0.5),
    );
    t.metric(
        "partial_miss_rate",
        partial.miss_rate,
        "ratio",
        Tolerance::AbsOrRel(0.02, 0.5),
    );
    t.metric(
        "partial_ttl_dropped",
        partial.ttl_dropped,
        "frames",
        Tolerance::AbsOrRel(10.0, 1.0),
    );
    t.metric(
        "partial_on_time",
        partial.on_time,
        "frames",
        Tolerance::AbsOrRel(20.0, 0.10),
    );
    for run in [&full, &partial] {
        t.diagnostics.push(format!(
            "A3 variant {} — flight recorder tail:\n{}",
            run.label, run.flight_dump
        ));
    }
    t
}

/// Sweep the deadline-miss rate across loss rates for both reliability
/// variants (the nightly artifact; each cell is a full scenario run).
pub fn deadline_sweep(losses: &[f64]) -> Table {
    let mut t = Table::new(
        "A3-SWEEP",
        "Deadline-miss rate vs loss: full vs TTL-partial reliability",
        "the A3 ordering holds across the loss range, not just at the gated point",
        &["loss", "full miss rate", "partial miss rate", "ttl dropped"],
    );
    for &loss in losses {
        let params = DeadlineParams {
            loss,
            seed: 9 + (loss * 1000.0) as u64,
            ..DeadlineParams::default()
        };
        let (full_profile, partial_profile) = deadline_profiles(&params);
        let full = deadline(&params, full_profile, false, "full");
        let partial = deadline(&params, partial_profile, true, "ttl-partial");
        t.row(vec![
            format!("{loss}"),
            ratio(full.miss_rate),
            ratio(partial.miss_rate),
            format!("{}", partial.ttl_dropped),
        ]);
        t.metric(
            &format!("full_miss_l{}", (loss * 1000.0) as u64),
            full.miss_rate,
            "ratio",
            Tolerance::Info,
        );
        t.metric(
            &format!("partial_miss_l{}", (loss * 1000.0) as u64),
            partial.miss_rate,
            "ratio",
            Tolerance::Info,
        );
    }
    t.verdict = "partial ≤ full at every loss rate".into();
    t
}

// ---------------------------------------------------------------------------
// Mux replay (real sockets, informational)
// ---------------------------------------------------------------------------

/// Replay A1 (bulk) and A2 (chat) over real loopback sockets through the
/// connection mux: the client registers its connections, the server side
/// materialises sessions from a plan template via
/// [`accept_sessions`](qtp_io::accept_sessions). Loopback has no loss and
/// wall-clock timing, so every metric is informational — the value is the
/// end-to-end path: stream → mux framing → UDP → accept → stream.
pub fn scenarios_mux() -> std::io::Result<Table> {
    use qtp_core::session::Session;
    use qtp_io::{accept_sessions, drive_mux_pair, MuxDriver};
    use std::time::Instant;

    let mut t = Table::new(
        "A-MUX",
        "App scenarios over the connection mux (real sockets, informational)",
        "the same stream applications run unchanged over the multiplexed UDP driver with plan-template accept",
        &["scenario", "result", "wall time"],
    );

    // --- bulk: 512 KiB byte-exact with wire close --------------------------
    let file = pattern_bytes(512 * 1024, 3);
    let plan = ConnectionPlan::new(Profile::qtp_af(Rate::from_mbps(200)))
        .stream(StreamConfig::with_send_buf(256 * 1024));
    let mut server: MuxDriver<Session> = MuxDriver::bind("127.0.0.1:0")?;
    let accepts = accept_sessions(&mut server, plan.clone());
    let server_addr = server.local_addr()?;
    let mut client: MuxDriver<Session> = MuxDriver::bind("127.0.0.1:0")?;
    let tx_sess = Session::sender(0, 0, &plan);
    let send = tx_sess.send_stream().expect("stream plan");
    let tx_id = client.add_connection(server_addr, vec![0, 1], tx_sess)?;

    let t0 = Instant::now();
    let mut offset = 0usize;
    let mut received = Vec::with_capacity(file.len());
    let mut recv: Option<RecvStream> = None;
    let ok = drive_mux_pair(&mut client, &mut server, Duration::from_secs(60), |c, s| {
        feed(&send, &file, &mut offset, 8 * 1024);
        if offset == file.len() && !send.is_finished() {
            send.finish();
        }
        if recv.is_none() {
            if let Some(ev) = accepts.pop() {
                let id = s.route(ev.peer, ev.data_flow).expect("accepted conn");
                recv = s.endpoint(id).and_then(|sess| sess.recv_stream());
            }
        }
        let Some(r) = &recv else { return false };
        drain(r, &mut received);
        r.is_finished() && c.endpoint(tx_id).is_some_and(|sess| sess.is_closed())
    })?;
    let bulk_wall = t0.elapsed().as_secs_f64();
    let byte_exact = ok && received == file;
    let bulk_mbps = received.len() as f64 * 8.0 / bulk_wall.max(1e-9) / 1e6;
    t.row(vec![
        "bulk 512 KiB".into(),
        format!("byte-exact: {byte_exact}, {bulk_mbps:.0} Mbit/s"),
        format!("{bulk_wall:.2} s"),
    ]);
    t.metric("bulk_byte_exact", byte_exact, "flag", Tolerance::Info);
    t.metric("bulk_goodput_mbps", bulk_mbps, "Mbit/s", Tolerance::Info);

    // --- chat: closed-loop request/response with template accept -----------
    let plan = ConnectionPlan::new(Profile::qtp_af(Rate::from_mbps(2)))
        .stream(StreamConfig::with_send_buf(64 * 1024));
    let mut server: MuxDriver<Session> = MuxDriver::bind("127.0.0.1:0")?;
    let srv_accepts = accept_sessions(&mut server, plan.clone());
    let server_addr = server.local_addr()?;
    let mut client: MuxDriver<Session> = MuxDriver::bind("127.0.0.1:0")?;
    let cli_accepts = accept_sessions(&mut client, plan.clone());
    let req_sess = Session::sender(0, 0, &plan);
    let req_tx = req_sess.send_stream().expect("stream plan");
    client.add_connection(server_addr, vec![0, 1], req_sess)?;

    const EXCHANGES: usize = 50;
    let request = pattern_bytes(200, 11);
    let response = pattern_bytes(1000, 12);
    let t0 = Instant::now();
    let mut req_rx: Option<RecvStream> = None;
    let mut rsp_tx: Option<SendStream> = None;
    let mut rsp_rx: Option<RecvStream> = None;
    let mut sent = 0usize;
    let mut inflight: Option<Instant> = None;
    let mut rts_ms: Vec<f64> = Vec::with_capacity(EXCHANGES);
    // Manual drive loop: the server must `add_connection` (a `&mut`
    // operation) mid-flight when it opens the response connection, which
    // `drive_mux_pair`'s read-only closure cannot express.
    let slice = Duration::from_micros(300);
    while rts_ms.len() < EXCHANGES && t0.elapsed() < Duration::from_secs(60) {
        client.drive_once(slice)?;
        server.drive_once(slice)?;
        // Server: accept the request connection, then open the response
        // connection back to the client (who accepts it from the template).
        if req_rx.is_none() {
            if let Some(ev) = srv_accepts.pop() {
                let id = server.route(ev.peer, ev.data_flow).expect("accepted conn");
                req_rx = server.endpoint(id).and_then(|sess| sess.recv_stream());
                let rsp_sess = Session::sender(2, 0, &plan);
                rsp_tx = rsp_sess.send_stream();
                server
                    .add_connection(ev.peer, vec![2, 3], rsp_sess)
                    .expect("response connection");
            }
        }
        if rsp_rx.is_none() {
            if let Some(ev) = cli_accepts.pop() {
                let id = client.route(ev.peer, ev.data_flow).expect("accepted conn");
                rsp_rx = client.endpoint(id).and_then(|sess| sess.recv_stream());
            }
        }
        if let (Some(rx), Some(tx)) = (&req_rx, &rsp_tx) {
            while rx.recv().is_some() {
                tx.send(&response).expect("response fits");
            }
        }
        if let Some(rx) = &rsp_rx {
            while rx.recv().is_some() {
                if let Some(at) = inflight.take() {
                    rts_ms.push(at.elapsed().as_secs_f64() * 1e3);
                }
            }
        }
        if inflight.is_none() && sent < EXCHANGES {
            req_tx.send(&request).expect("request fits");
            inflight = Some(Instant::now());
            sent += 1;
        }
    }
    let chat_wall = t0.elapsed().as_secs_f64();
    t.row(vec![
        format!("chat {EXCHANGES} exchanges"),
        format!(
            "completed: {}, p50 {:.1} ms, p99 {:.1} ms",
            rts_ms.len(),
            agg::p50(&rts_ms),
            agg::p99(&rts_ms),
        ),
        format!("{chat_wall:.2} s"),
    ]);
    t.metric("chat_completed", rts_ms.len(), "exchanges", Tolerance::Info);
    t.metric("chat_p50_ms", agg::p50(&rts_ms), "ms", Tolerance::Info);
    t.metric("chat_p99_ms", agg::p99(&rts_ms), "ms", Tolerance::Info);
    let _ = ok;
    t.verdict = format!(
        "bulk byte-exact: {byte_exact}; chat {}/{EXCHANGES} exchanges — stream applications are backend-neutral down to the socket.",
        rts_ms.len(),
    );
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bulk_qtpaf_is_byte_exact_and_beats_tfrc() {
        let params = BulkParams {
            file_kib: 96,
            ..BulkParams::default()
        };
        let af = bulk(&params, Profile::qtp_af(Rate::from_mbps(6)), "af");
        let tfrc = bulk(&params, Profile::tfrc(), "tfrc");
        assert!(af.byte_exact, "full reliability reproduces the file");
        assert_eq!(af.delivered_bytes, 96 * 1024);
        assert!(
            af.goodput_mbps >= tfrc.goodput_mbps,
            "floor+reliability ≥ TFRC baseline ({:.2} vs {:.2})",
            af.goodput_mbps,
            tfrc.goodput_mbps
        );
        assert!(!tfrc.byte_exact, "2% loss must hole the datagram copy");
    }

    #[test]
    fn chat_completes_with_sane_percentiles() {
        let params = ChatParams {
            requests: 30,
            ..ChatParams::default()
        };
        let run = chat(&params);
        assert_eq!(run.completed, 30);
        assert!(run.p50_ms >= 2.0 * params.one_way.as_millis() as f64 * 0.9);
        assert!(run.p50_ms <= run.p95_ms && run.p95_ms <= run.p99_ms);
        assert!(run.p99_ms < 2_000.0, "tail bounded by tail-loss recovery");
    }

    #[test]
    fn deadline_partial_beats_full_and_drops_stale_retx() {
        let params = DeadlineParams {
            frames: 300,
            ..DeadlineParams::default()
        };
        let (full_profile, partial_profile) = deadline_profiles(&params);
        let full = deadline(&params, full_profile, false, "full");
        let partial = deadline(&params, partial_profile, true, "partial");
        assert!(
            partial.miss_rate <= full.miss_rate,
            "TTL-partial misses fewer deadlines ({:.3} vs {:.3})",
            partial.miss_rate,
            full.miss_rate
        );
        assert!(
            partial.ttl_dropped >= 1,
            "the receiver-side TTL drop path must fire"
        );
        assert!(full.on_time > 0 && partial.on_time > 0);
    }
}
