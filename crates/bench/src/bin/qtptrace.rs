//! `qtptrace` — run a scenario with the observability plane on.
//!
//! Runs the many-flow dumbbell scenario on the deterministic simulator
//! with every endpoint's tracer registered, then emits the qlog-style
//! JSON-lines trace followed by a human per-connection summary (counter
//! totals, rate timeline, loss events, retransmit map):
//!
//! ```text
//! qtptrace --flows 2 --packets 20 --seed 42            # trace + summary
//! qtptrace --flows 8 --qlog /tmp/run.qlog --per-conn   # trace to a file
//! qtptrace --flows 2 --no-qlog                         # summary only
//! ```
//!
//! Everything printed derives from simulated time and integer counters,
//! so a fixed seed reproduces the full output byte-for-byte (CI diffs a
//! committed golden).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::time::Duration;

use qtp_bench::manyflow::{run_sim_traced, ManyFlowConfig, ProfileKind};
use qtp_metrics::trace::{QlogWriter, Tee, TraceEvent, TraceEventKind, TraceRegistry, TraceSink};

/// Sink keeping the full event stream for the post-run summary (the
/// qlog writer flattens to text; the summary wants typed events).
#[derive(Default)]
struct CollectSink {
    events: Vec<TraceEvent>,
}

impl TraceSink for CollectSink {
    fn emit(&mut self, ev: &TraceEvent) {
        self.events.push(*ev);
    }
}

struct Args {
    flows: usize,
    seed: u64,
    packets: u64,
    secs: u64,
    profiles: Vec<ProfileKind>,
    qlog: Option<String>,
    no_qlog: bool,
    timeline: usize,
    bottleneck_kbps: Option<u64>,
    reorder_ms: Option<u64>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            flows: 2,
            seed: 42,
            packets: 20,
            secs: 120,
            profiles: ProfileKind::MIXED.to_vec(),
            qlog: None,
            no_qlog: false,
            timeline: 6,
            bottleneck_kbps: None,
            reorder_ms: None,
        }
    }
}

fn parse_profile(s: &str) -> Result<ProfileKind, String> {
    match s {
        "qtpaf" | "af" => Ok(ProfileKind::QtpAf),
        "qtplight" | "light" => Ok(ProfileKind::QtpLight),
        "qtplight-ttl" | "ttl" => Ok(ProfileKind::QtpLightTtl),
        "tfrc" => Ok(ProfileKind::Tfrc),
        "cubic" => Ok(ProfileKind::Cubic),
        "bbr-lite" | "bbr" => Ok(ProfileKind::BbrLite),
        other => Err(format!(
            "unknown profile {other} (qtpaf|qtplight|qtplight-ttl|tfrc|cubic|bbr-lite)"
        )),
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().ok_or_else(|| format!("missing value for {flag}"));
        match flag.as_str() {
            "--flows" => args.flows = val()?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => args.seed = val()?.parse().map_err(|e| format!("{e}"))?,
            "--packets" => args.packets = val()?.parse().map_err(|e| format!("{e}"))?,
            "--secs" => args.secs = val()?.parse().map_err(|e| format!("{e}"))?,
            "--timeline" => args.timeline = val()?.parse().map_err(|e| format!("{e}"))?,
            "--bottleneck" => {
                args.bottleneck_kbps = Some(val()?.parse().map_err(|e| format!("{e}"))?)
            }
            "--reorder-ms" => args.reorder_ms = Some(val()?.parse().map_err(|e| format!("{e}"))?),
            "--profiles" => {
                args.profiles = val()?
                    .split(',')
                    .map(parse_profile)
                    .collect::<Result<_, _>>()?;
            }
            "--qlog" => args.qlog = Some(val()?),
            "--no-qlog" => args.no_qlog = true,
            "--help" | "-h" => {
                return Err(
                    "usage: qtptrace [--flows N] [--seed N] [--packets N] [--secs N] \
                     [--profiles qtpaf,qtplight,qtplight-ttl,tfrc] [--bottleneck KBPS] \
                     [--reorder-ms N] [--qlog FILE] [--no-qlog] [--timeline N]"
                        .into(),
                )
            }
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }
    if args.flows == 0 {
        return Err("--flows must be at least 1".into());
    }
    if args.profiles.is_empty() {
        return Err("--profiles must name at least one profile".into());
    }
    Ok(args)
}

/// Per-connection summary: counter totals, a sampled rate timeline, the
/// loss events and the retransmit map — the "what did this flow do"
/// digest of the raw trace.
fn summarize(registry: &TraceRegistry, events: &[TraceEvent], timeline: usize) -> String {
    use std::fmt::Write as _;
    let mut by_conn: BTreeMap<u32, Vec<&TraceEvent>> = BTreeMap::new();
    for ev in events {
        by_conn.entry(ev.conn).or_default().push(ev);
    }
    let mut s = String::new();
    for (conn, label, c) in registry.connections() {
        let evs = by_conn.remove(&conn).unwrap_or_default();
        let _ = writeln!(s, "conn {conn} [{label}]: {} events", evs.len());
        let _ = writeln!(
            s,
            "  counters: tx {} pkts / {} B, rx {} pkts / {} B, retx {}, ttl drops {}, \
             abandoned {}, loss events {}, rate updates {}, timers {}/{}/{} set/fired/stale, \
             soft errors {}",
            c.pkts_tx,
            c.bytes_tx,
            c.pkts_rx,
            c.bytes_rx,
            c.retransmits,
            c.ttl_drops,
            c.abandoned,
            c.loss_events,
            c.rate_updates,
            c.timers_set,
            c.timer_fires,
            c.timers_cancelled,
            c.soft_errors,
        );
        // Controller counters appear only for window/model controllers
        // (CUBIC, BBR-lite), so TFRC-family goldens keep their exact shape.
        if c.cc_state_updates > 0 || c.cc_phase_changes > 0 {
            let _ = writeln!(
                s,
                "  cc counters: {} state updates, {} phase changes, startup exit {} us",
                c.cc_state_updates, c.cc_phase_changes, c.bbr_startup_exit_us,
            );
        }

        let rates: Vec<&&TraceEvent> = evs
            .iter()
            .filter(|e| matches!(e.kind, TraceEventKind::RateUpdate { .. }))
            .collect();
        if !rates.is_empty() {
            let _ = writeln!(s, "  rate timeline ({} updates):", rates.len());
            // Evenly sampled, endpoints included, ≤ `timeline` rows.
            let n = rates.len();
            let rows = timeline.max(2).min(n);
            let mut printed = std::collections::BTreeSet::new();
            for r in 0..rows {
                let i = if rows == 1 {
                    0
                } else {
                    r * (n - 1) / (rows - 1)
                };
                if !printed.insert(i) {
                    continue;
                }
                if let TraceEventKind::RateUpdate {
                    rate_bps,
                    p_ppm,
                    rtt_us,
                } = rates[i].kind
                {
                    let _ = writeln!(
                        s,
                        "    t={} rate {} kbit/s  p {}.{:04}%  rtt {} us",
                        rates[i].time_str(),
                        rate_bps / 1000,
                        p_ppm / 10_000,
                        p_ppm % 10_000,
                        rtt_us,
                    );
                }
            }
        }

        // Window/model controller timeline (cwnd for CUBIC, btlbw/min_rtt
        // and phase for BBR-lite), sampled like the rate timeline.
        let ccs: Vec<&&TraceEvent> = evs
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    TraceEventKind::CubicState { .. } | TraceEventKind::BbrState { .. }
                )
            })
            .collect();
        if !ccs.is_empty() {
            let _ = writeln!(s, "  cc timeline ({} snapshots):", ccs.len());
            let n = ccs.len();
            let rows = timeline.max(2).min(n);
            let mut printed = std::collections::BTreeSet::new();
            for r in 0..rows {
                let i = if rows == 1 {
                    0
                } else {
                    r * (n - 1) / (rows - 1)
                };
                if !printed.insert(i) {
                    continue;
                }
                match ccs[i].kind {
                    TraceEventKind::CubicState {
                        cwnd_bytes,
                        w_max_bytes,
                        tcp_friendly,
                    } => {
                        let _ = writeln!(
                            s,
                            "    t={} cwnd {} B  w_max {} B  region {}",
                            ccs[i].time_str(),
                            cwnd_bytes,
                            w_max_bytes,
                            if tcp_friendly {
                                "tcp-friendly"
                            } else {
                                "cubic"
                            },
                        );
                    }
                    TraceEventKind::BbrState {
                        phase,
                        btlbw_bps,
                        min_rtt_us,
                    } => {
                        let phase_name = match phase {
                            0 => "startup",
                            1 => "drain",
                            _ => "probe-bw",
                        };
                        let _ = writeln!(
                            s,
                            "    t={} phase {phase_name}  btlbw {} kbit/s  min_rtt {} us",
                            ccs[i].time_str(),
                            btlbw_bps / 1000,
                            min_rtt_us,
                        );
                    }
                    _ => {}
                }
            }
        }

        let losses: Vec<&&TraceEvent> = evs
            .iter()
            .filter(|e| matches!(e.kind, TraceEventKind::LossEvent { .. }))
            .collect();
        if !losses.is_empty() {
            let _ = write!(s, "  loss events ({}):", losses.len());
            for (shown, ev) in losses.iter().enumerate() {
                if shown >= 8 {
                    let _ = write!(s, " … {} more", losses.len() - shown);
                    break;
                }
                if let TraceEventKind::LossEvent { pkts } = ev.kind {
                    let _ = write!(s, " t={} ({} pkt)", ev.time_str(), pkts);
                }
            }
            let _ = writeln!(s);
        }

        let mut retx: BTreeMap<u64, u32> = BTreeMap::new();
        for ev in &evs {
            if let TraceEventKind::PktSent {
                seq, retx: true, ..
            } = ev.kind
            {
                *retx.entry(seq).or_default() += 1;
            }
        }
        if !retx.is_empty() {
            let _ = write!(s, "  retransmit map ({} seqs):", retx.len());
            for (shown, (seq, n)) in retx.iter().enumerate() {
                if shown >= 12 {
                    let _ = write!(s, " … {} more", retx.len() - shown);
                    break;
                }
                let _ = write!(s, " {seq}×{n}");
            }
            let _ = writeln!(s);
        }
    }
    s
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let mut cfg = ManyFlowConfig::new(args.flows);
    cfg.seed = args.seed;
    cfg.packets_per_flow = args.packets;
    cfg.horizon = Duration::from_secs(args.secs);
    cfg.profiles = args.profiles;
    if let Some(kbps) = args.bottleneck_kbps {
        cfg.bottleneck = qtp_simnet::time::Rate::from_kbps(kbps);
    }
    if let Some(ms) = args.reorder_ms {
        // A hostile bottleneck: half the packets stretched by up to `ms`
        // of extra delay, enough to invert delivery order regularly.
        cfg.bottleneck_path =
            qtp_simnet::path::PathModel::none().with_reorder(0.5, Duration::from_millis(ms));
    }

    let qlog = Rc::new(RefCell::new(QlogWriter::new()));
    let collect = Rc::new(RefCell::new(CollectSink::default()));
    let registry = TraceRegistry::new();
    registry.set_sink(Rc::new(RefCell::new(Tee::new(
        qlog.clone(),
        collect.clone(),
    ))));

    println!(
        "qtptrace: {} flows, {} pkts/flow, seed {} (sim)",
        cfg.flows, cfg.packets_per_flow, cfg.seed,
    );
    let report = run_sim_traced(&cfg, registry.clone());

    let trace = qlog.borrow().output().to_string();
    match &args.qlog {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &trace) {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
            println!("qlog: {} events written to {path}", trace.lines().count());
        }
        None if !args.no_qlog => {
            println!("--- qlog ({} events) ---", trace.lines().count());
            print!("{trace}");
            println!("--- end qlog ---");
        }
        None => {}
    }

    println!("--- per-connection summary ---");
    print!(
        "{}",
        summarize(&registry, &collect.borrow().events, args.timeline)
    );
    println!("--- scenario report ---");
    print!("{}", report.render(usize::MAX));
}
