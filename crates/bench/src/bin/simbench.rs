//! `simbench` — simulator-core scaling benchmark: the events/s trajectory.
//!
//! Runs the many-flow dumbbell scenario at a ladder of flow counts and
//! reports, per point, the deterministic engine counters (events
//! dispatched, flows completed, bytes delivered, packet-pool high-water
//! mark) plus informational timing (wall-clock, events/s, process peak
//! RSS). The deterministic fields are pure functions of (flow count,
//! seed), so CI can re-run a subset of points and fail on any drift
//! without ever gating on machine speed:
//!
//! ```text
//! simbench --out BENCH_simnet.json                   # full sweep, rewrite the file
//! simbench --points 1000,10000 --out /tmp/b.json     # subset sweep
//! simbench --check BENCH_simnet.json --points 1000,10000   # CI gate
//! simbench --check BENCH_simnet.json --out fresh.json      # one sweep: gate + artifact
//! ```
//!
//! `--check` and `--out` compose: the sweep runs once, the deterministic
//! fields are gated against the baseline, and the fresh results (with this
//! machine's timings) are written out — the nightly job uses this to
//! publish a trajectory artifact without running the sweep twice.
//!
//! Peak RSS (`vm_hwm_kb`) is the process-wide high-water mark from
//! `/proc/self/status`, sampled after each point; it is only meaningful
//! when points run in ascending flow order (which the sweep enforces) and
//! is never gated on.

use qtp_bench::json;
use qtp_bench::manyflow::{run_sim_instrumented, ManyFlowConfig};
use std::fmt::Write as _;
use std::time::Instant;

/// The default ladder: four decades-ish of flow counts, 10^3..10^5.
const DEFAULT_POINTS: [usize; 5] = [1000, 3162, 10_000, 31_623, 100_000];

const SCHEMA: &str = "simnet-bench/v1";

struct PointResult {
    flows: usize,
    // Deterministic (gated by --check):
    events: u64,
    completed: usize,
    delivered_bytes: u64,
    packet_pool_high_water: usize,
    // Informational (never gated):
    wall_s: f64,
    events_per_s: f64,
    vm_hwm_kb: u64,
}

fn run_point(flows: usize, seed: u64) -> PointResult {
    let mut cfg = ManyFlowConfig::new(flows);
    cfg.seed = seed;
    let start = Instant::now();
    let (report, metrics) = run_sim_instrumented(&cfg);
    let wall_s = start.elapsed().as_secs_f64();
    let delivered_bytes: u64 = report.outcomes.iter().map(|o| o.delivered_bytes).sum();
    PointResult {
        flows,
        events: metrics.events_processed,
        completed: report.completed,
        delivered_bytes,
        packet_pool_high_water: metrics.packet_pool_high_water,
        wall_s,
        events_per_s: metrics.events_processed as f64 / wall_s.max(1e-9),
        vm_hwm_kb: vm_hwm_kb().unwrap_or(0),
    }
}

/// Process peak RSS in KiB from /proc/self/status (Linux; 0 elsewhere).
fn vm_hwm_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

fn render_json(seed: u64, points: &[PointResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
    let _ = writeln!(out, "  \"seed\": {seed},");
    let _ = writeln!(
        out,
        "  \"deterministic_fields\": [\"events\", \"completed\", \"delivered_bytes\", \"packet_pool_high_water\"],"
    );
    let _ = writeln!(out, "  \"points\": [");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"flows\": {},", p.flows);
        let _ = writeln!(out, "      \"events\": {},", p.events);
        let _ = writeln!(out, "      \"completed\": {},", p.completed);
        let _ = writeln!(out, "      \"delivered_bytes\": {},", p.delivered_bytes);
        let _ = writeln!(
            out,
            "      \"packet_pool_high_water\": {},",
            p.packet_pool_high_water
        );
        let _ = writeln!(out, "      \"wall_s\": {:.3},", p.wall_s);
        let _ = writeln!(out, "      \"events_per_s\": {:.0},", p.events_per_s);
        let _ = writeln!(out, "      \"vm_hwm_kb\": {}", p.vm_hwm_kb);
        let _ = writeln!(out, "    }}{comma}");
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

fn u64_field(v: &json::Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(|x| x.as_f64())
        .filter(|x| x.is_finite())
        .map(|x| x as u64)
        .ok_or_else(|| format!("missing numeric field {key:?}"))
}

/// Compare already-computed sweep results against the committed baseline
/// file. Only deterministic fields are compared; timing fields are
/// reported but never gated. Returns the number of mismatches.
fn check(baseline_path: &str, results: &[PointResult], seed: u64) -> Result<usize, String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read {baseline_path}: {e}"))?;
    let doc = json::parse(&text).map_err(|e| format!("{baseline_path}: {e}"))?;
    if doc.get("schema").and_then(|s| s.as_str()) != Some(SCHEMA) {
        return Err(format!("{baseline_path}: unexpected schema"));
    }
    let base_seed = u64_field(&doc, "seed")?;
    if base_seed != seed {
        return Err(format!(
            "{baseline_path} was generated with seed {base_seed}, check requested seed {seed}"
        ));
    }
    let base_points = doc
        .get("points")
        .and_then(|p| p.as_arr())
        .ok_or("missing points array")?;
    let mut failures = 0;
    for got in results {
        let flows = got.flows;
        let Some(base) = base_points
            .iter()
            .find(|p| u64_field(p, "flows") == Ok(flows as u64))
        else {
            println!("FAIL {flows:>7} flows: no such point in {baseline_path}");
            failures += 1;
            continue;
        };
        let want = [
            ("events", u64_field(base, "events")?, got.events),
            (
                "completed",
                u64_field(base, "completed")?,
                got.completed as u64,
            ),
            (
                "delivered_bytes",
                u64_field(base, "delivered_bytes")?,
                got.delivered_bytes,
            ),
            (
                "packet_pool_high_water",
                u64_field(base, "packet_pool_high_water")?,
                got.packet_pool_high_water as u64,
            ),
        ];
        let bad: Vec<String> = want
            .iter()
            .filter(|(_, base, got)| base != got)
            .map(|(name, base, got)| format!("{name}: baseline {base}, got {got}"))
            .collect();
        if bad.is_empty() {
            println!(
                "ok   {:>7} flows: {} events in {:.2} s ({:.2} M events/s, peak RSS {} MiB)",
                flows,
                got.events,
                got.wall_s,
                got.events_per_s / 1e6,
                got.vm_hwm_kb / 1024,
            );
        } else {
            println!("FAIL {:>7} flows: {}", flows, bad.join("; "));
            failures += 1;
        }
    }
    Ok(failures)
}

struct Args {
    points: Vec<usize>,
    seed: u64,
    out: Option<String>,
    check: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        points: DEFAULT_POINTS.to_vec(),
        seed: 42,
        out: None,
        check: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().ok_or_else(|| format!("missing value for {flag}"));
        match flag.as_str() {
            "--points" => {
                args.points = val()?
                    .split(',')
                    .map(|s| s.trim().parse().map_err(|e| format!("{e}")))
                    .collect::<Result<_, _>>()?;
            }
            "--seed" => args.seed = val()?.parse().map_err(|e| format!("{e}"))?,
            "--out" => args.out = Some(val()?),
            "--check" => args.check = Some(val()?),
            "--help" | "-h" => {
                return Err(
                    "usage: simbench [--points N,N,...] [--seed N] [--out FILE] [--check FILE]"
                        .into(),
                )
            }
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }
    if args.points.is_empty() {
        return Err("--points must name at least one flow count".into());
    }
    // Ascending order keeps the VmHWM samples attributable.
    args.points.sort_unstable();
    args.points.dedup();
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };

    let mut results = Vec::with_capacity(args.points.len());
    for &flows in &args.points {
        let r = run_point(flows, args.seed);
        println!(
            "{:>7} flows: {:>11} events in {:>7.2} s  ({:>6.2} M events/s, {:>4} completed, peak RSS {} MiB)",
            r.flows,
            r.events,
            r.wall_s,
            r.events_per_s / 1e6,
            r.completed,
            r.vm_hwm_kb / 1024,
        );
        results.push(r);
    }

    let mut exit = 0;
    if let Some(baseline) = &args.check {
        match check(baseline, &results, args.seed) {
            Ok(0) => println!("simbench check: all points match the committed baseline"),
            Ok(n) => {
                eprintln!("simbench check: {n} point(s) drifted from {baseline}");
                exit = 1;
            }
            Err(msg) => {
                eprintln!("simbench check: {msg}");
                exit = 2;
            }
        }
    }

    match &args.out {
        Some(path) => {
            let doc = render_json(args.seed, &results);
            if let Err(e) = std::fs::write(path, &doc) {
                eprintln!("cannot write {path}: {e}");
                exit = 2;
            } else {
                println!("wrote {path}");
            }
        }
        None if args.check.is_none() => print!("{}", render_json(args.seed, &results)),
        None => {}
    }
    std::process::exit(exit);
}
