//! `benchgate` — gate criterion micro-bench medians against a committed
//! baseline.
//!
//! The vendored criterion harness prints one line per bench:
//!
//! ```text
//! simnet/dumbbell_cbr_1s                             time:    1234567.0 ns/iter (162 iters)
//! ```
//!
//! `benchgate` parses those lines from captured bench output and either
//! records them as a baseline or checks them against one:
//!
//! ```text
//! cargo bench -p qtp-bench --bench simnet_micro | tee out.txt
//! benchgate --record BENCH_criterion.json out.txt        # write baseline
//! benchgate --check BENCH_criterion.json out.txt         # gate (default band 1.0)
//! benchgate --check BENCH_criterion.json --band 0.6 out.txt
//! ```
//!
//! The gate is a *noise-aware relative band*: a bench fails only when its
//! fresh time exceeds `baseline * (1 + band)`. Absolute nanosecond numbers
//! are machine-dependent (the committed baseline records one reference
//! machine), so the default band is deliberately wide (1.0 — i.e. fail on
//! a >2× regression): wide enough to absorb runner-to-runner variance,
//! tight enough to catch an accidental algorithmic regression (the
//! BTreeMap→slab and heap→calendar swaps this repo gates were each >2×
//! on their hot paths). The nightly job tightens the band on a quieter,
//! longer measurement.
//!
//! Benches present on only one side are reported but never fail the gate
//! (CI runs a subset of the suites); zero overlap is an error, because it
//! means the gate silently checked nothing.

use qtp_bench::json;

const SCHEMA: &str = "criterion-bench/v1";

/// Parse `id ... time: <ns> ns/iter` lines from criterion output.
fn parse_criterion(text: &str) -> Vec<(String, f64)> {
    let mut out: Vec<(String, f64)> = Vec::new();
    for line in text.lines() {
        let Some(tpos) = line.find(" time: ") else {
            continue;
        };
        let rest = &line[tpos + " time: ".len()..];
        let Some(npos) = rest.find(" ns/iter") else {
            continue;
        };
        let Ok(ns) = rest[..npos].trim().parse::<f64>() else {
            continue;
        };
        let id = line[..tpos].trim_end().to_string();
        if id.is_empty() || !ns.is_finite() || ns <= 0.0 {
            continue;
        }
        // Last occurrence wins, so re-runs in one capture self-override.
        match out.iter_mut().find(|(i, _)| *i == id) {
            Some(slot) => slot.1 = ns,
            None => out.push((id, ns)),
        }
    }
    out
}

fn render_baseline(benches: &[(String, f64)]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
    let _ = writeln!(out, "  \"benches\": [");
    for (i, (id, ns)) in benches.iter().enumerate() {
        let comma = if i + 1 < benches.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{ \"id\": \"{id}\", \"ns_per_iter\": {ns:.1} }}{comma}"
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

fn load_baseline(path: &str) -> Result<Vec<(String, f64)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    if doc.get("schema").and_then(|s| s.as_str()) != Some(SCHEMA) {
        return Err(format!("{path}: unexpected schema"));
    }
    let arr = doc
        .get("benches")
        .and_then(|b| b.as_arr())
        .ok_or_else(|| format!("{path}: missing benches array"))?;
    arr.iter()
        .map(|b| {
            let id = b
                .get("id")
                .and_then(|v| v.as_str())
                .ok_or_else(|| format!("{path}: bench entry without id"))?;
            let ns = b
                .get("ns_per_iter")
                .and_then(|v| v.as_f64())
                .filter(|x| x.is_finite() && *x > 0.0)
                .ok_or_else(|| format!("{path}: bench {id:?} without ns_per_iter"))?;
            Ok((id.to_string(), ns))
        })
        .collect()
}

/// Compare fresh medians against the baseline. Returns the number of
/// benches that regressed beyond the band.
fn check(baseline: &[(String, f64)], fresh: &[(String, f64)], band: f64) -> usize {
    let mut failures = 0;
    let mut compared = 0;
    for (id, base_ns) in baseline {
        let Some((_, got_ns)) = fresh.iter().find(|(i, _)| i == id) else {
            println!("skip {id}: not in this run");
            continue;
        };
        compared += 1;
        let ratio = got_ns / base_ns;
        if ratio > 1.0 + band {
            println!(
                "FAIL {id}: {got_ns:.1} ns/iter vs baseline {base_ns:.1} ({ratio:.2}x, band {:.2}x)",
                1.0 + band
            );
            failures += 1;
        } else {
            println!("ok   {id}: {got_ns:.1} ns/iter vs baseline {base_ns:.1} ({ratio:.2}x)");
        }
    }
    for (id, _) in fresh {
        if !baseline.iter().any(|(i, _)| i == id) {
            println!("note {id}: not in the baseline (re-record to start gating it)");
        }
    }
    if compared == 0 {
        eprintln!("benchgate: no bench in this run overlaps the baseline — gate checked nothing");
        std::process::exit(2);
    }
    failures
}

fn main() {
    let mut record: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut band = 1.0f64;
    let mut inputs: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    let usage = "usage: benchgate (--record BASE | --check BASE [--band X]) FILE...";
    while let Some(flag) = it.next() {
        let mut val = || it.next().ok_or(format!("missing value for {flag}"));
        let r = match flag.as_str() {
            "--record" => val().map(|v| record = Some(v)),
            "--check" => val().map(|v| check_path = Some(v)),
            "--band" => val().and_then(|v| {
                v.parse()
                    .map(|b| band = b)
                    .map_err(|e| format!("--band: {e}"))
            }),
            "--help" | "-h" => Err(usage.to_string()),
            other if other.starts_with('-') => Err(format!("unknown flag {other} (try --help)")),
            other => {
                inputs.push(other.to_string());
                Ok(())
            }
        };
        if let Err(msg) = r {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    }
    if record.is_some() == check_path.is_some() {
        eprintln!("{usage}");
        std::process::exit(2);
    }
    if !(0.0..100.0).contains(&band) {
        eprintln!("--band must be a non-negative fraction (e.g. 0.6 = fail beyond 1.6x)");
        std::process::exit(2);
    }

    let mut fresh: Vec<(String, f64)> = Vec::new();
    if inputs.is_empty() {
        eprintln!("benchgate: no input files named ({usage})");
        std::process::exit(2);
    }
    for path in &inputs {
        match std::fs::read_to_string(path) {
            Ok(text) => {
                for (id, ns) in parse_criterion(&text) {
                    match fresh.iter_mut().find(|(i, _)| *i == id) {
                        Some(slot) => slot.1 = ns,
                        None => fresh.push((id, ns)),
                    }
                }
            }
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(2);
            }
        }
    }
    if fresh.is_empty() {
        eprintln!("benchgate: no `time: ... ns/iter` lines found in the input");
        std::process::exit(2);
    }

    if let Some(out) = record {
        let doc = render_baseline(&fresh);
        if let Err(e) = std::fs::write(&out, doc) {
            eprintln!("cannot write {out}: {e}");
            std::process::exit(2);
        }
        println!("recorded {} bench(es) to {out}", fresh.len());
        return;
    }

    let base = match load_baseline(check_path.as_deref().unwrap()) {
        Ok(b) => b,
        Err(msg) => {
            eprintln!("benchgate: {msg}");
            std::process::exit(2);
        }
    };
    let failures = check(&base, &fresh, band);
    if failures > 0 {
        eprintln!("benchgate: {failures} bench(es) regressed beyond the band");
        std::process::exit(1);
    }
    println!("benchgate: all compared benches within the band");
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
Benchmarking simnet/dumbbell_cbr_1s
simnet/dumbbell_cbr_1s                             time:    1234567.0 ns/iter (162 iters)
simnet/rio_enqueue_dequeue                         time:         42.5 ns/iter (4700000 iters)
not a bench line
simnet/rio_enqueue_dequeue                         time:         40.0 ns/iter (4700000 iters)
";

    #[test]
    fn parses_criterion_lines_last_wins() {
        let parsed = parse_criterion(SAMPLE);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, "simnet/dumbbell_cbr_1s");
        assert_eq!(parsed[0].1, 1234567.0);
        // Duplicate id: the later measurement overrides the earlier one.
        assert_eq!(parsed[1], ("simnet/rio_enqueue_dequeue".to_string(), 40.0));
    }

    #[test]
    fn baseline_round_trips_through_json() {
        let benches = parse_criterion(SAMPLE);
        let doc = render_baseline(&benches);
        let parsed = json::parse(&doc).unwrap();
        assert_eq!(parsed.get("schema").and_then(|s| s.as_str()), Some(SCHEMA));
        let arr = parsed.get("benches").and_then(|b| b.as_arr()).unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(
            arr[1].get("ns_per_iter").and_then(|v| v.as_f64()),
            Some(40.0)
        );
    }

    #[test]
    fn band_gates_only_regressions_beyond_threshold() {
        let base = vec![("a".to_string(), 100.0), ("b".to_string(), 100.0)];
        // 1.5x with band 1.0 passes; 2.5x fails; speedups always pass.
        assert_eq!(
            check(&base, &[("a".into(), 150.0), ("b".into(), 10.0)], 1.0),
            0
        );
        assert_eq!(
            check(&base, &[("a".into(), 250.0), ("b".into(), 99.0)], 1.0),
            1
        );
        // Tightened band: 1.5x now fails.
        assert_eq!(
            check(&base, &[("a".into(), 150.0), ("b".into(), 100.0)], 0.4),
            1
        );
    }
}
