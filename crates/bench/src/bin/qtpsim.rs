//! `qtpsim` — one-off scenario runner.
//!
//! Runs a single transport over a configurable two-host path and prints a
//! summary, so a user can poke at the protocols without writing a driver:
//!
//! ```text
//! qtpsim --protocol qtpaf --target-mbps 4 --loss 0.01 --rtt-ms 80 --secs 30
//! qtpsim --protocol tcp --rate-mbps 5 --loss 0.02
//! qtpsim --protocol qtplight --gilbert 0.01,0.3,0.0,0.5
//! ```

use qtp_core::session::{attach_pair, ConnectionPlan, Profile};
use qtp_simnet::prelude::*;
use qtp_tcp::{TcpConfig, TcpFlavor, TcpReceiver, TcpSender};
use std::time::Duration;

#[derive(Debug)]
struct Args {
    protocol: String,
    rate_mbps: f64,
    rtt_ms: u64,
    loss: f64,
    gilbert: Option<(f64, f64, f64, f64)>,
    target_mbps: f64,
    secs: u64,
    seed: u64,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            protocol: "qtplight".into(),
            rate_mbps: 10.0,
            rtt_ms: 60,
            loss: 0.0,
            gilbert: None,
            target_mbps: 2.0,
            secs: 30,
            seed: 42,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().ok_or_else(|| format!("missing value for {flag}"));
        match flag.as_str() {
            "--protocol" => args.protocol = val()?,
            "--rate-mbps" => args.rate_mbps = val()?.parse().map_err(|e| format!("{e}"))?,
            "--rtt-ms" => args.rtt_ms = val()?.parse().map_err(|e| format!("{e}"))?,
            "--loss" => args.loss = val()?.parse().map_err(|e| format!("{e}"))?,
            "--gilbert" => {
                let v = val()?;
                let parts: Vec<f64> = v
                    .split(',')
                    .map(|x| x.parse().map_err(|e| format!("{e}")))
                    .collect::<Result<_, _>>()?;
                if parts.len() != 4 {
                    return Err("--gilbert wants p_gb,p_bg,loss_good,loss_bad".into());
                }
                args.gilbert = Some((parts[0], parts[1], parts[2], parts[3]));
            }
            "--target-mbps" => args.target_mbps = val()?.parse().map_err(|e| format!("{e}"))?,
            "--secs" => args.secs = val()?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => args.seed = val()?.parse().map_err(|e| format!("{e}"))?,
            "--help" | "-h" => {
                return Err(
                    "usage: qtpsim [--protocol tcp|tcp-sack|tfrc|qtplight|qtpaf] \
                     [--rate-mbps N] [--rtt-ms N] [--loss P] \
                     [--gilbert p_gb,p_bg,lg,lb] [--target-mbps N] [--secs N] [--seed N]"
                        .into(),
                )
            }
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let loss = match args.gilbert {
        Some((a, b, c, d)) => LossModel::gilbert_elliott(a, b, c, d),
        None if args.loss > 0.0 => LossModel::bernoulli(args.loss),
        None => LossModel::None,
    };
    let mut b = NetworkBuilder::new();
    let s = b.host();
    let r = b.host();
    let one_way = Duration::from_millis(args.rtt_ms / 2);
    b.simplex_link(
        s,
        r,
        LinkConfig::new(Rate::from_mbps_f64(args.rate_mbps), one_way)
            .with_loss(loss.clone())
            .with_queue(QueueConfig::DropTailPkts(300)),
    );
    b.simplex_link(
        r,
        s,
        LinkConfig::new(Rate::from_mbps_f64(args.rate_mbps), one_way),
    );
    let mut sim = b.build(args.seed);
    sim.set_sample_interval(Duration::from_secs(1));

    println!(
        "qtpsim: {} over {:.1} Mbit/s, RTT {} ms, loss model {:?} ({} s, seed {})\n",
        args.protocol,
        args.rate_mbps,
        args.rtt_ms,
        loss.steady_state_loss(),
        args.secs,
        args.seed
    );

    let secs = Duration::from_secs(args.secs);
    match args.protocol.as_str() {
        "tcp" | "tcp-sack" => {
            let flavor = if args.protocol == "tcp" {
                TcpFlavor::NewReno
            } else {
                TcpFlavor::Sack
            };
            let data = sim.register_flow("data");
            let ack = sim.register_flow("ack");
            sim.attach_agent(s, Box::new(TcpSender::new(data, r, TcpConfig::new(flavor))));
            sim.attach_agent(
                r,
                Box::new(TcpReceiver::new(
                    data,
                    ack,
                    s,
                    flavor == TcpFlavor::Sack,
                    1000,
                )),
            );
            sim.run_until(SimTime::from_secs(args.secs));
            let f = sim.stats().flow(data);
            println!("throughput: {:.3} Mbit/s", f.throughput_bps(secs) / 1e6);
            println!("goodput:    {:.3} Mbit/s", f.goodput_bps(secs) / 1e6);
            println!("network loss rate: {:.4}", f.loss_rate());
        }
        proto @ ("tfrc" | "qtplight" | "qtpaf") => {
            let profile = match proto {
                "tfrc" => Profile::tfrc(),
                "qtplight" => Profile::qtp_light(),
                _ => Profile::qtp_af(Rate::from_mbps_f64(args.target_mbps)),
            };
            let h = attach_pair(&mut sim, s, r, "data", &ConnectionPlan::new(profile));
            sim.run_until(SimTime::from_secs(args.secs));
            let f = sim.stats().flow(h.data_flow);
            println!("throughput: {:.3} Mbit/s", f.throughput_bps(secs) / 1e6);
            println!("goodput:    {:.3} Mbit/s", f.goodput_bps(secs) / 1e6);
            println!("network loss rate: {:.4}", f.loss_rate());
            let d = h.tx.snapshot();
            println!(
                "sender: {} data pkts ({} retx, {} abandoned), rtt est {:.1} ms",
                d.tx_data_pkts,
                d.tx_retransmissions,
                d.tx_abandoned,
                d.rtt_estimate_s * 1e3
            );
            println!(
                "receiver: {:.1} ops/pkt, peak state {} B, {} feedback pkts",
                h.rx.read(|p| p.rx_ops_per_packet()),
                h.rx.read(|p| p.rx_state_bytes_peak),
                h.rx.read(|p| p.rx_feedback_sent)
            );
            if proto == "qtpaf" {
                println!(
                    "target: {:.1} Mbit/s -> achieved {:.2} of g",
                    args.target_mbps,
                    f.throughput_bps(secs) / (args.target_mbps * 1e6)
                );
            }
        }
        other => {
            eprintln!("unknown protocol {other}");
            std::process::exit(2);
        }
    }
    println!("\nper-second arrival rate (Mbit/s):");
    let series = sim
        .stats()
        .flow(0)
        .arrive_series_bps(Duration::from_secs(1));
    for (i, bps) in series.iter().enumerate() {
        println!(
            "  t={:>3}s {:>8.2}  {}",
            i + 1,
            bps / 1e6,
            "#".repeat((bps / 4e5) as usize)
        );
    }
}
