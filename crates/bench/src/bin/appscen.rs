//! `appscen` — the application scenario families as a standalone tool.
//!
//! ```text
//! appscen                  # A1–A3 at the fixed seeds, markdown on stdout
//! appscen --sweep          # deadline-miss rate vs loss (nightly artifact)
//! appscen --hostile-sweep  # QTPAF goodput, reorder-jitter × RTT grid
//! appscen --mux            # replay A1/A2 over real loopback sockets
//! ```
//!
//! The default mode is a pure function of the code — CI diffs its output
//! against `crates/bench/golden/appscen.md`, so any change to the stream
//! data plane that shifts an application-visible number shows up as a
//! golden diff in review rather than as silent drift.

use std::process::ExitCode;

use qtp_bench::{hostile, scenarios};

/// Loss rates of the nightly deadline sweep.
const SWEEP_LOSSES: [f64; 4] = [0.01, 0.02, 0.03, 0.05];

/// Reorder-jitter axis of the nightly hostile-path grid (ms).
const SWEEP_JITTERS_MS: [u64; 3] = [0, 25, 100];

/// One-way delay axis of the nightly hostile-path grid (ms).
const SWEEP_ONE_WAYS_MS: [u64; 3] = [20, 150, 300];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: appscen [--sweep | --hostile-sweep | --mux]");
        return ExitCode::SUCCESS;
    }
    if args.iter().any(|a| a == "--sweep") {
        print!("{}", scenarios::deadline_sweep(&SWEEP_LOSSES).to_markdown());
        return ExitCode::SUCCESS;
    }
    if args.iter().any(|a| a == "--hostile-sweep") {
        print!(
            "{}",
            hostile::hostile_sweep(&SWEEP_JITTERS_MS, &SWEEP_ONE_WAYS_MS).to_markdown()
        );
        return ExitCode::SUCCESS;
    }
    if args.iter().any(|a| a == "--mux") {
        return match scenarios::scenarios_mux() {
            Ok(t) => {
                print!("{}", t.to_markdown());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("mux replay failed: {e}");
                ExitCode::FAILURE
            }
        };
    }
    for table in [scenarios::a1(), scenarios::a2(), scenarios::a3()] {
        print!("{}", table.to_markdown());
    }
    ExitCode::SUCCESS
}
