//! Experiment runner and claims-ledger gate: regenerates every evaluation
//! claim of the paper and holds future runs to the committed baseline.
//!
//! ```text
//! expt all                  # run everything, print markdown tables
//! expt e2 e5                # run selected experiments
//! expt --json all           # also dump machine-readable JSON to stdout
//! expt --report             # full ledger → EXPERIMENTS.md + experiments.json
//! expt --report --out DIR   # write the artifacts elsewhere
//! expt --report --mux       # append the real-socket sweep (informational)
//! expt --check              # re-run, diff vs committed baseline, exit ≠ 0
//! expt --check --baseline D # read the baseline from another directory
//! expt --check --only h     # re-run + gate only one table group (H1–H5)
//! ```
//!
//! `--report` and `--check` run the **full deterministic ledger** (E1–E12
//! plus the fairness sweep F1); the artifacts contain no timestamps, so
//! the same commit regenerates them byte-identically. `--check --only
//! PREFIX` restricts the re-run and the gate to tables whose id starts
//! with the prefix — a fast focused gate for one group (e.g. the
//! hostile-path matrix) that still diffs against the full committed
//! baseline.

use qtp_bench::ledger;
use std::env;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: expt [ids|all] [--json] | expt --report [--out DIR] [--mux] | expt --check [--baseline DIR] [--only PREFIX]"
        );
        return ExitCode::SUCCESS;
    }
    if args.iter().any(|a| a == "--report") {
        return match dir_flag(&args, "--out") {
            Ok(out) => report(out, args.iter().any(|a| a == "--mux")),
            Err(e) => usage_error(&e),
        };
    }
    if args.iter().any(|a| a == "--check") {
        return match (dir_flag(&args, "--baseline"), value_flag(&args, "--only")) {
            (Ok(dir), Ok(only)) => check(dir, only),
            (Err(e), _) | (_, Err(e)) => usage_error(&e),
        };
    }
    run_selected(&args)
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("{msg} (try --help)");
    ExitCode::from(2)
}

/// Value of `--flag DIR`, defaulting to the current directory (the
/// workspace root under `cargo run`). A present flag without a directory
/// value is an error, not a silent fallback — otherwise a forgotten value
/// would write over the committed root artifacts.
fn dir_flag(args: &[String], flag: &str) -> Result<PathBuf, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(PathBuf::from(".")),
        Some(i) => match args.get(i + 1) {
            Some(v) if !v.starts_with("--") => Ok(PathBuf::from(v)),
            _ => Err(format!("missing directory value for {flag}")),
        },
    }
}

/// Value of `--flag VALUE`, or `None` when the flag is absent. Like
/// [`dir_flag`], a present flag with no value is an error.
fn value_flag(args: &[String], flag: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => match args.get(i + 1) {
            Some(v) if !v.starts_with("--") => Ok(Some(v.clone())),
            _ => Err(format!("missing value for {flag}")),
        },
    }
}

/// The original mode: run chosen experiments, print markdown (+ JSON).
fn run_selected(args: &[String]) -> ExitCode {
    let json = args.iter().any(|a| a == "--json");
    let ids: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.to_lowercase())
        .collect();
    let ids: Vec<&str> = if ids.is_empty() || ids.iter().any(|a| a == "all") {
        qtp_bench::ALL_IDS.to_vec()
    } else {
        ids.iter().map(|s| s.as_str()).collect()
    };

    println!("# QTP experiment harness — reproduction of Jourjon et al., CoNEXT 2006\n");
    let mut tables = Vec::new();
    let mut unknown = false;
    for id in ids {
        let t0 = Instant::now();
        match qtp_bench::run_experiment(id) {
            Some(table) => {
                print!("{}", table.to_markdown());
                println!("_(generated in {:.1} s)_\n", t0.elapsed().as_secs_f64());
                tables.push(table);
            }
            None => {
                eprintln!("unknown experiment id: {id}");
                unknown = true;
            }
        }
    }
    if json {
        println!("```json");
        println!("{}", qtp_bench::table::tables_to_json(&tables));
        println!("```");
    }
    if unknown {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}

/// `--report`: run the full ledger and write the committed artifact pair.
fn report(out: PathBuf, with_mux: bool) -> ExitCode {
    let t0 = Instant::now();
    eprintln!("running the full claims ledger (12 experiments + app scenarios + fairness sweep)…");
    let ledger_run = ledger::run_full();
    let mut extras = Vec::new();
    if with_mux {
        eprintln!("running the real-socket mux sweep (informational)…");
        match ledger::fairness_sweep_mux(&ledger::MUX_SWEEP_NS) {
            Ok(t) => extras.push(t),
            Err(e) => {
                eprintln!("mux sweep failed: {e}");
                return ExitCode::FAILURE;
            }
        }
        eprintln!("replaying app scenarios over the mux (informational)…");
        match qtp_bench::scenarios::scenarios_mux() {
            Ok(t) => extras.push(t),
            Err(e) => {
                eprintln!("mux scenario replay failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let md = ledger::render_markdown(&ledger_run, &extras);
    let json = ledger::render_json(&ledger_run);
    if let Err(e) = std::fs::create_dir_all(&out)
        .and_then(|()| std::fs::write(out.join("EXPERIMENTS.md"), md))
        .and_then(|()| std::fs::write(out.join("experiments.json"), json))
    {
        eprintln!("cannot write report to {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    let violated = ledger::evaluate_assertions(&ledger_run, &ledger::assertions())
        .into_iter()
        .filter(|r| !r.holds)
        .count();
    eprintln!(
        "wrote {}/EXPERIMENTS.md and experiments.json in {:.1} s",
        out.display(),
        t0.elapsed().as_secs_f64(),
    );
    if violated > 0 {
        eprintln!("{violated} claim assertion(s) VIOLATED — see the report's final section");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// `--check`: run the full ledger (or one `--only` group of it) and gate
/// it against the committed baseline.
fn check(baseline_dir: PathBuf, only: Option<String>) -> ExitCode {
    let path = baseline_dir.join("experiments.json");
    let baseline = match load_baseline(&path) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let t0 = Instant::now();
    let fresh = match &only {
        Some(prefix) => {
            eprintln!(
                "re-running ledger group '{prefix}' against {}…",
                path.display()
            );
            ledger::run_group(prefix)
        }
        None => {
            eprintln!(
                "re-running the full claims ledger against {}…",
                path.display()
            );
            ledger::run_full()
        }
    };
    if fresh.tables.is_empty() {
        eprintln!("no table id matches --only prefix");
        return ExitCode::from(2);
    }
    match ledger::check_against(&baseline, &fresh) {
        Ok(report) => {
            let report = match &only {
                Some(prefix) => ledger::filter_check(report, prefix),
                None => report,
            };
            print!("{}", report.render());
            eprintln!("(ledger re-run took {:.1} s)", t0.elapsed().as_secs_f64());
            if report.passed() {
                ExitCode::SUCCESS
            } else {
                write_flight_dumps(&fresh);
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

/// On gate failure, write every table's captured diagnostics (flight
/// recorder tails of the traced scenarios) to `flight-dumps/` so CI can
/// upload them as a failure artifact.
fn write_flight_dumps(ledger: &ledger::Ledger) {
    let dir = Path::new("flight-dumps");
    let mut written = 0usize;
    for table in &ledger.tables {
        if table.diagnostics.is_empty() {
            continue;
        }
        if written == 0 {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("cannot create {}: {e}", dir.display());
                return;
            }
        }
        let path = dir.join(format!("{}.txt", table.id.to_lowercase()));
        match std::fs::write(&path, table.diagnostics.join("\n")) {
            Ok(()) => written += 1,
            Err(e) => eprintln!("cannot write {}: {e}", path.display()),
        }
    }
    if written > 0 {
        eprintln!(
            "wrote {written} flight-recorder dump(s) to {}/",
            dir.display()
        );
    }
}

fn load_baseline(path: &Path) -> Result<qtp_bench::json::Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        format!(
            "cannot read {} ({e}) — generate it with `expt --report`",
            path.display()
        )
    })?;
    qtp_bench::json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}
