//! Experiment runner: regenerates every evaluation claim of the paper.
//!
//! ```text
//! expt all            # run everything, print markdown tables
//! expt e2 e5          # run selected experiments
//! expt --json all     # also dump machine-readable JSON to stdout
//! ```

use std::env;
use std::time::Instant;

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let ids: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.to_lowercase())
        .collect();
    let ids: Vec<&str> = if ids.is_empty() || ids.iter().any(|a| a == "all") {
        qtp_bench::ALL_IDS.to_vec()
    } else {
        ids.iter().map(|s| s.as_str()).collect()
    };

    println!("# QTP experiment harness — reproduction of Jourjon et al., CoNEXT 2006\n");
    let mut tables = Vec::new();
    for id in ids {
        let t0 = Instant::now();
        match qtp_bench::run_experiment(id) {
            Some(table) => {
                print!("{}", table.to_markdown());
                println!("_(generated in {:.1} s)_\n", t0.elapsed().as_secs_f64());
                tables.push(table);
            }
            None => eprintln!("unknown experiment id: {id}"),
        }
    }
    if json {
        println!("```json");
        println!("{}", qtp_bench::table::tables_to_json(&tables));
        println!("```");
    }
}
