//! `manyflow` — the many-flow dumbbell scenario family runner.
//!
//! Runs N concurrent QTP connections with mixed capability profiles and
//! prints per-flow goodput, completion time and the Jain fairness index:
//!
//! ```text
//! manyflow --flows 1000 --seed 42                 # deterministic sim run
//! manyflow --flows 64 --mode mux                  # real sockets, one pair
//! manyflow --flows 200 --profiles qtpaf,tfrc --per-flow
//! ```
//!
//! Sim-mode output is byte-identical for a fixed seed (CI diffs two runs).

use qtp_bench::manyflow::{run_mux_loopback, run_sim, ManyFlowConfig, ProfileKind};
use std::time::Duration;

struct Args {
    flows: usize,
    seed: u64,
    packets: u64,
    secs: u64,
    mode: String,
    profiles: Vec<ProfileKind>,
    per_flow: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            flows: 100,
            seed: 42,
            packets: 30,
            secs: 120,
            mode: "sim".into(),
            profiles: ProfileKind::MIXED.to_vec(),
            per_flow: false,
        }
    }
}

fn parse_profile(s: &str) -> Result<ProfileKind, String> {
    match s {
        "qtpaf" | "af" => Ok(ProfileKind::QtpAf),
        "qtplight" | "light" => Ok(ProfileKind::QtpLight),
        "qtplight-ttl" | "ttl" => Ok(ProfileKind::QtpLightTtl),
        "tfrc" => Ok(ProfileKind::Tfrc),
        other => Err(format!(
            "unknown profile {other} (qtpaf|qtplight|qtplight-ttl|tfrc)"
        )),
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().ok_or_else(|| format!("missing value for {flag}"));
        match flag.as_str() {
            "--flows" => args.flows = val()?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => args.seed = val()?.parse().map_err(|e| format!("{e}"))?,
            "--packets" => args.packets = val()?.parse().map_err(|e| format!("{e}"))?,
            "--secs" => args.secs = val()?.parse().map_err(|e| format!("{e}"))?,
            "--mode" => args.mode = val()?,
            "--profiles" => {
                args.profiles = val()?
                    .split(',')
                    .map(parse_profile)
                    .collect::<Result<_, _>>()?;
            }
            "--per-flow" => args.per_flow = true,
            "--help" | "-h" => {
                return Err(
                    "usage: manyflow [--flows N] [--seed N] [--packets N] [--secs N] \
                     [--mode sim|mux] [--profiles qtpaf,qtplight,qtplight-ttl,tfrc] [--per-flow]"
                        .into(),
                )
            }
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }
    if args.flows == 0 {
        return Err("--flows must be at least 1".into());
    }
    if args.profiles.is_empty() {
        return Err("--profiles must name at least one profile".into());
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let mut cfg = ManyFlowConfig::new(args.flows);
    cfg.seed = args.seed;
    cfg.packets_per_flow = args.packets;
    cfg.horizon = Duration::from_secs(args.secs);
    cfg.profiles = args.profiles;

    println!(
        "manyflow: {} flows over one {} bottleneck ({} pkts/flow, seed {}, mode {})\n",
        cfg.flows, cfg.bottleneck, cfg.packets_per_flow, cfg.seed, args.mode,
    );
    let detail = if args.per_flow { usize::MAX } else { 10 };
    let report = match args.mode.as_str() {
        "sim" => run_sim(&cfg),
        "mux" => match run_mux_loopback(&cfg) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("mux run failed: {e}");
                std::process::exit(1);
            }
        },
        other => {
            eprintln!("unknown mode {other} (sim|mux)");
            std::process::exit(2);
        }
    };
    print!("{}", report.render(detail));
    if report.completed < report.outcomes.len() {
        eprintln!(
            "warning: {}/{} flows did not complete within the horizon",
            report.outcomes.len() - report.completed,
            report.outcomes.len(),
        );
        std::process::exit(1);
    }
}
