//! The claims ledger: every paper claim re-measured, serialized, and
//! regression-gated.
//!
//! The paper's evaluation is twelve textual claims; each is reproduced by
//! one experiment (E1–E12, see [`crate::experiments_a`] /
//! [`crate::experiments_b`] / [`crate::experiments_c`]), extended to the
//! application data plane by the scenario families (A1–A3, see
//! [`crate::scenarios`]), extended to the hostile-path scenario matrix
//! (H1–H5, see [`crate::hostile`]), extended along the negotiated
//! congestion-control axis by the controller races (C1–C3, see
//! [`crate::controllers`]) and extended at
//! scale by the many-flow fairness sweep (F1, Jain index vs N). This
//! module turns those runs into a **committed artifact pair** —
//! `EXPERIMENTS.md` (human) and `experiments.json` (machine baseline) —
//! and a gate: `expt --check` re-runs everything, compares every gated
//! metric against the committed baseline under its [`Tolerance`], and
//! re-evaluates the [ordering assertions](assertions) that encode the
//! claims themselves ("QTPAF goodput ≥ TFRC goodput", …). Any violation
//! is a non-zero exit, which is what makes behavioural drift visible in
//! CI instead of silent.
//!
//! Everything gated is produced by the deterministic simulator at fixed
//! seeds, so the committed artifacts are byte-identical across runs of
//! the same code. The real-socket mux backend is wall-clock timed and
//! therefore reported as informational only (nightly artifacts, never
//! gated, never committed).

use crate::json::{self, Value};
use crate::manyflow::{run_mux_loopback, run_sim, ManyFlowConfig};
use crate::table::{mbps, MetricValue, Table, Tolerance};
use std::fmt::Write as _;

/// Flow counts of the committed fairness sweep.
pub const SWEEP_NS: [usize; 4] = [4, 64, 256, 1000];

/// Flow counts of the informational real-socket (mux) sweep. Kept small:
/// loopback wall-clock runs, feasible in a CI job but pointless to gate.
pub const MUX_SWEEP_NS: [usize; 2] = [4, 64];

/// The full deterministic ledger: all twelve experiments plus the
/// fairness sweep at [`SWEEP_NS`].
#[derive(Debug, Clone)]
pub struct Ledger {
    /// Result tables in report order (E1…E12, then F1).
    pub tables: Vec<Table>,
}

impl Ledger {
    /// Qualified-name lookup (`e2.qtpaf_min`) across all tables.
    pub fn find_metric(&self, qualified: &str) -> Option<(MetricValue, Tolerance, String)> {
        let (tid, name) = qualified.split_once('.')?;
        let table = self
            .tables
            .iter()
            .find(|t| t.id.eq_ignore_ascii_case(tid))?;
        let m = table.get_metric(name)?;
        Some((m.value, m.tolerance, m.unit.clone()))
    }

    /// Every gated metric as `(qualified name, value, tolerance)`, in
    /// report order.
    pub fn all_metrics(&self) -> Vec<(String, MetricValue, Tolerance)> {
        let mut out = Vec::new();
        for t in &self.tables {
            for m in &t.metrics {
                out.push((
                    format!("{}.{}", t.id.to_lowercase(), m.name),
                    m.value,
                    m.tolerance,
                ));
            }
        }
        out
    }
}

/// Run the complete deterministic ledger (all experiments, sim sweep).
/// Takes ~15 s in release mode; every number is a pure function of the
/// fixed seeds.
pub fn run_full() -> Ledger {
    let mut tables: Vec<Table> = crate::ALL_IDS
        .iter()
        .map(|id| crate::run_experiment(id).expect("known id"))
        .collect();
    tables.push(fairness_sweep_sim(&SWEEP_NS));
    Ledger { tables }
}

/// Run only the tables whose id starts with `prefix` (case-insensitive),
/// e.g. `"h"` for the hostile-path group or `"e1"` for E1/E10–E12. The
/// fairness sweep is included when its id (`f1`) matches. Backs
/// `expt --check --only PREFIX` for a focused re-run of one group.
pub fn run_group(prefix: &str) -> Ledger {
    let prefix = prefix.to_lowercase();
    let mut tables: Vec<Table> = crate::ALL_IDS
        .iter()
        .filter(|id| id.starts_with(&prefix))
        .map(|id| crate::run_experiment(id).expect("known id"))
        .collect();
    if "f1".starts_with(&prefix) {
        tables.push(fairness_sweep_sim(&SWEEP_NS));
    }
    Ledger { tables }
}

/// Restrict a [`CheckReport`] to the metrics and assertions of one table
/// group (qualified names starting with `prefix`). Used with
/// [`run_group`]: the fresh run only produced that group, so baseline
/// metrics from other groups must not be reported as missing.
pub fn filter_check(mut report: CheckReport, prefix: &str) -> CheckReport {
    let prefix = prefix.to_lowercase();
    report.metrics.retain(|m| m.name.starts_with(&prefix));
    report
        .assertions
        .retain(|a| a.check.left.starts_with(&prefix));
    report
}

/// F1 — the many-flow fairness sweep on the deterministic simulator:
/// mixed capability profiles, Jain index and per-profile goodput vs N.
pub fn fairness_sweep_sim(ns: &[usize]) -> Table {
    let mut t = Table::new(
        "F1",
        "Many-flow fairness sweep (sim): Jain index vs N, mixed profiles",
        "scaling extension of §4: capability negotiation stays fair when one bottleneck carries N ∈ {4…1000} mixed QTPAF/QTPlight/TTL/TFRC flows",
        &[
            "N",
            "jain",
            "completed",
            "mean goodput (kbit/s)",
            "p95 completion (s)",
            "qtpaf mean (kbit/s)",
            "tfrc mean (kbit/s)",
        ],
    );
    let mut worst_jain = f64::INFINITY;
    let mut incomplete_ns: Vec<usize> = Vec::new();
    let mut floor_behind_ns: Vec<usize> = Vec::new();
    for &n in ns {
        let cfg = ManyFlowConfig::new(n);
        let report = run_sim(&cfg);
        let summary = report.profile_summary();
        let goodput_of = |label: &str| {
            summary
                .iter()
                .find(|a| a.profile == label)
                .map(|a| a.mean_goodput_bps)
                .unwrap_or(f64::NAN)
        };
        let (qtpaf, tfrc) = (goodput_of("qtpaf"), goodput_of("tfrc"));
        let p95 = report.p95_completion_s();
        worst_jain = worst_jain.min(report.jain);
        if report.completed < n {
            incomplete_ns.push(n);
        }
        // NaN (a profile missing from the mix) also counts as "behind".
        if qtpaf.partial_cmp(&tfrc) != Some(std::cmp::Ordering::Greater)
            && qtpaf.partial_cmp(&tfrc) != Some(std::cmp::Ordering::Equal)
        {
            floor_behind_ns.push(n);
        }
        t.row(vec![
            n.to_string(),
            format!("{:.4}", report.jain),
            format!("{}/{}", report.completed, n),
            format!("{:.1}", report.mean_goodput_bps() / 1e3),
            format!("{p95:.3}"),
            format!("{:.1}", qtpaf / 1e3),
            format!("{:.1}", tfrc / 1e3),
        ]);
        t.metric(
            &format!("jain_n{n}"),
            report.jain,
            "index",
            Tolerance::Abs(0.05),
        );
        t.metric(
            &format!("completed_n{n}"),
            report.completed,
            "flows",
            Tolerance::Exact,
        );
        t.metric(
            &format!("mean_goodput_n{n}"),
            report.mean_goodput_bps() / 1e3,
            "kbit/s",
            Tolerance::Rel(0.10),
        );
        t.metric(
            &format!("qtpaf_goodput_n{n}"),
            qtpaf / 1e3,
            "kbit/s",
            Tolerance::Rel(0.15),
        );
        t.metric(
            &format!("tfrc_goodput_n{n}"),
            tfrc / 1e3,
            "kbit/s",
            Tolerance::Rel(0.15),
        );
        t.metric(
            &format!("p95_completion_n{n}"),
            p95,
            "s",
            Tolerance::Rel(0.20),
        );
    }
    // Derived from the measured rows, so the committed text can never
    // contradict its own table.
    let completion_text = if incomplete_ns.is_empty() {
        "every flow count completes within the horizon".to_string()
    } else {
        format!("flows missed the horizon at N ∈ {incomplete_ns:?}")
    };
    let floor_text = if floor_behind_ns.is_empty() {
        "keeps its class at or above the unreserved TFRC class at every N".to_string()
    } else {
        format!("falls behind the TFRC class at N ∈ {floor_behind_ns:?}")
    };
    t.verdict = format!(
        "{completion_text} and the mixed-profile Jain index never drops below {worst_jain:.4}; the QTPAF floor (fair share) {floor_text}."
    );
    t
}

/// F2 — the same sweep over the real-socket connection mux on loopback.
/// Wall-clock timed, hence informational: metrics carry
/// [`Tolerance::Info`] and the table is only included in nightly
/// artifacts, never in the committed baseline.
pub fn fairness_sweep_mux(ns: &[usize]) -> std::io::Result<Table> {
    let mut t = Table::new(
        "F2",
        "Many-flow fairness sweep (mux): one UDP socket pair, loopback",
        "the same N-flow mixed-profile workload carried by the real-socket connection multiplexer (informational: wall-clock, not gated)",
        &["N", "jain", "completed", "mean goodput (Mbit/s)", "wall (s)"],
    );
    for &n in ns {
        let cfg = ManyFlowConfig::new(n);
        let t0 = std::time::Instant::now();
        let report = run_mux_loopback(&cfg)?;
        let wall_s = t0.elapsed().as_secs_f64();
        t.row(vec![
            n.to_string(),
            format!("{:.4}", report.jain),
            format!("{}/{}", report.completed, n),
            mbps(report.mean_goodput_bps()),
            format!("{wall_s:.2}"),
        ]);
        t.metric(&format!("jain_n{n}"), report.jain, "index", Tolerance::Info);
        t.metric(
            &format!("completed_n{n}"),
            report.completed,
            "flows",
            Tolerance::Info,
        );
        // Nightly extracts these rows into a wall-clock trend artifact;
        // wall-clock is machine-dependent and never gated.
        t.metric(&format!("wall_s_n{n}"), wall_s, "s", Tolerance::Info);
    }
    t.verdict =
        "the mux backend carries every sweep point to completion over one socket pair.".into();
    Ok(t)
}

/// Comparison operator of an ordering assertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Left ≥ right.
    Ge,
    /// Left ≤ right.
    Le,
}

impl Op {
    fn symbol(&self) -> &'static str {
        match self {
            Op::Ge => "≥",
            Op::Le => "≤",
        }
    }

    fn json_name(&self) -> &'static str {
        match self {
            Op::Ge => "ge",
            Op::Le => "le",
        }
    }

    fn holds(&self, left: f64, right: f64) -> bool {
        // NaN on either side fails both directions by IEEE comparison
        // semantics, which is exactly the gate behaviour we want.
        match self {
            Op::Ge => left >= right,
            Op::Le => left <= right,
        }
    }
}

/// Right-hand side of an ordering assertion: another metric or a fixed
/// threshold.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// A qualified metric name (`e2.tcp_min`).
    Metric(String),
    /// A constant threshold.
    Const(f64),
}

/// One ordering assertion over the *fresh* run — the machine-checkable
/// form of a paper claim, independent of any baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderingCheck {
    /// Qualified left-hand metric name.
    pub left: String,
    /// Comparison direction.
    pub op: Op,
    /// Right-hand side.
    pub right: Operand,
    /// The claim this assertion encodes, for reports.
    pub why: &'static str,
}

impl OrderingCheck {
    fn ge(left: &str, right: Operand, why: &'static str) -> Self {
        OrderingCheck {
            left: left.into(),
            op: Op::Ge,
            right,
            why,
        }
    }

    fn le(left: &str, right: Operand, why: &'static str) -> Self {
        OrderingCheck {
            left: left.into(),
            op: Op::Le,
            right,
            why,
        }
    }

    /// Human rendering, e.g. `e2.qtpaf_min ≥ e2.tcp_min`.
    pub fn describe(&self) -> String {
        match &self.right {
            Operand::Metric(m) => format!("{} {} {}", self.left, self.op.symbol(), m),
            Operand::Const(c) => format!("{} {} {}", self.left, self.op.symbol(), c),
        }
    }
}

/// The ordering assertions the ledger enforces on every run: each paper
/// claim reduced to an inequality over the gated metrics. Thresholds sit
/// well inside the measured seed values so legitimate numeric jitter
/// passes while a claim inversion cannot.
pub fn assertions() -> Vec<OrderingCheck> {
    use Operand::{Const, Metric};
    vec![
        // E1 — TCP cannot hold an AF reservation (Seddigh baseline).
        OrderingCheck::le(
            "e1.worst_high_target",
            Const(0.8),
            "large TCP reservations under-achieve",
        ),
        OrderingCheck::ge(
            "e1.best_low_target",
            Const(1.05),
            "small TCP reservations grab excess",
        ),
        // E2 — QTPAF holds the negotiated rate, TCP does not.
        OrderingCheck::ge(
            "e2.qtpaf_min",
            Const(0.9),
            "QTPAF achieves the negotiated rate in the worst case",
        ),
        OrderingCheck::ge(
            "e2.qtpaf_min",
            Metric("e2.tcp_min".into()),
            "QTPAF's worst case beats TCP's",
        ),
        // E3 — convergence to the guarantee.
        OrderingCheck::ge(
            "e3.qtpaf_steady_mbps",
            Const(4.0),
            "QTPAF steady state at or above g = 4 Mbit/s",
        ),
        OrderingCheck::ge(
            "e3.qtpaf_steady_mbps",
            Metric("e3.tcp_steady_mbps".into()),
            "QTPAF converges above the TCP flow with the same reservation",
        ),
        // E4 — QTPlight ≡ TFRC rate behaviour.
        OrderingCheck::ge(
            "e4.worst_deviation",
            Const(0.7),
            "QTPlight stays within a small factor of standard TFRC",
        ),
        OrderingCheck::le(
            "e4.worst_deviation",
            Const(1.4),
            "QTPlight stays within a small factor of standard TFRC",
        ),
        // E5 — receiver load drops.
        OrderingCheck::ge(
            "e5.min_reduction",
            Const(1.1),
            "QTPlight reduces receiver ops/packet at every loss rate",
        ),
        // E6 — selfish receivers neutralised.
        OrderingCheck::le(
            "e6.max_light_gain",
            Metric("e6.max_std_gain".into()),
            "sender-side estimation shrinks the selfish-receiver attack",
        ),
        OrderingCheck::le(
            "e6.max_light_gain",
            Const(2.0),
            "a selfish receiver gains almost nothing under QTPlight",
        ),
        OrderingCheck::ge(
            "e6.max_std_gain",
            Const(2.0),
            "standard TFRC is genuinely vulnerable (the attack exists)",
        ),
        // E7 — smooth and still fair.
        OrderingCheck::le(
            "e7.cov_tfrc",
            Metric("e7.cov_tcp".into()),
            "TFRC's rate is smoother than TCP's",
        ),
        OrderingCheck::ge(
            "e7.jain_tcp_tfrc",
            Const(0.7),
            "TFRC and TCP still share the bottleneck roughly fairly",
        ),
        // E8 — rate-based control on wireless paths.
        OrderingCheck::ge(
            "e8.min_advantage",
            Const(0.9),
            "rate-based control sustains at least TCP-level goodput on bursty paths",
        ),
        // E9 — the composition matrix.
        OrderingCheck::ge(
            "e9.full_min_delivered",
            Const(0.99),
            "full reliability delivers everything under 3% loss",
        ),
        OrderingCheck::ge(
            "e9.full_min_delivered",
            Metric("e9.none_max_delivered".into()),
            "full reliability beats best-effort delivery",
        ),
        // E10 — reliability and QoS compose.
        OrderingCheck::ge(
            "e10.qtpaf_wire_ratio",
            Const(1.0),
            "QTPAF holds the reservation on the lossy assured path",
        ),
        OrderingCheck::le(
            "e10.qtpaf_app_loss",
            Const(0.0),
            "QTPAF recovers every loss (tail-adjusted app loss zero)",
        ),
        // E11 — loss-event grouping is load-bearing.
        OrderingCheck::ge(
            "e11.worst_penalty",
            Const(1.5),
            "removing event grouping collapses the rate on bursty paths",
        ),
        // E12 — the guarantee needs the full composition.
        OrderingCheck::ge(
            "e12.full_achieved",
            Const(0.95),
            "the full QTPAF composition holds g",
        ),
        OrderingCheck::le(
            "e12.no_floor_achieved",
            Const(0.9),
            "dropping the gTFRC floor breaks the reservation",
        ),
        // F1 — fairness at scale, and the floor keeps QTPAF ≥ TFRC.
        OrderingCheck::ge(
            "f1.jain_n4",
            Const(0.7),
            "mixed-profile fairness holds at N = 4",
        ),
        OrderingCheck::ge(
            "f1.jain_n64",
            Const(0.7),
            "mixed-profile fairness holds at N = 64",
        ),
        OrderingCheck::ge(
            "f1.jain_n256",
            Const(0.7),
            "mixed-profile fairness holds at N = 256",
        ),
        OrderingCheck::ge(
            "f1.jain_n1000",
            Const(0.7),
            "mixed-profile fairness holds at N = 1000",
        ),
        OrderingCheck::ge(
            "f1.qtpaf_goodput_n256",
            Metric("f1.tfrc_goodput_n256".into()),
            "the QTPAF reservation keeps its class ahead of TFRC at N = 256",
        ),
        OrderingCheck::ge(
            "f1.qtpaf_goodput_n1000",
            Metric("f1.tfrc_goodput_n1000".into()),
            "the QTPAF reservation keeps its class ahead of TFRC at N = 1000",
        ),
        // A1 — the stream data plane composes the floor with reliability.
        OrderingCheck::ge(
            "a1.qtpaf_goodput_mbps",
            Metric("a1.tfrc_goodput_mbps".into()),
            "floor + full reliability beats the plain-TFRC datagram copy on bulk goodput",
        ),
        OrderingCheck::ge(
            "a1.qtpaf_byte_exact",
            Const(1.0),
            "the reliable stream reproduces the file byte-exact under loss",
        ),
        // A2 — interactive traffic completes and the tail stays bounded.
        OrderingCheck::ge(
            "a2.completed",
            Const(100.0),
            "every closed-loop exchange completes under loss",
        ),
        OrderingCheck::le(
            "a2.p99_ms",
            Const(1_000.0),
            "the response-time tail is one tail-loss recovery, not a stall",
        ),
        // A3 — TTL-partial reliability beats full on deadline misses.
        OrderingCheck::le(
            "a3.partial_miss_rate",
            Metric("a3.full_miss_rate".into()),
            "TTL-bounded delivery misses fewer playout deadlines than full reliability",
        ),
        OrderingCheck::ge(
            "a3.partial_ttl_dropped",
            Const(1.0),
            "the receiver-side TTL drop path fires on stale retransmissions",
        ),
        // H1 — bounded reordering: graceful degradation vs collapse.
        OrderingCheck::ge(
            "h1.qtpaf_retention",
            Const(0.30),
            "QTPAF keeps a substantial fraction of its goodput under heavy reordering",
        ),
        OrderingCheck::le(
            "h1.tcp_retention",
            Const(0.15),
            "TCP SACK genuinely collapses under the same reordering (the hazard exists)",
        ),
        OrderingCheck::ge(
            "h1.qtpaf_j100_mbps",
            Metric("h1.tcp_j100_mbps".into()),
            "the equation-based profile beats the window-based one at the 100 ms jitter bound",
        ),
        // H2 — duplication: exact dedup under a really-duplicating wire.
        OrderingCheck::ge(
            "h2.byte_exact_dup",
            Const(1.0),
            "the reliable stream stays byte-exact over a duplicating link",
        ),
        OrderingCheck::ge(
            "h2.amplification",
            Const(1.10),
            "the wire really carries duplicates (the adversary is live)",
        ),
        OrderingCheck::ge(
            "h2.goodput_retention",
            Const(0.85),
            "deduplication costs almost no goodput",
        ),
        // H3 — asymmetry: per-RTT feedback vs per-packet acks.
        OrderingCheck::ge(
            "h3.qtpaf_narrow_mbps",
            Metric("h3.tcp_narrow_mbps".into()),
            "QTP outperforms TCP behind a narrowband return channel",
        ),
        OrderingCheck::ge(
            "h3.qtpaf_retention",
            Const(0.85),
            "shrinking the return channel barely moves QTP's goodput",
        ),
        OrderingCheck::le(
            "h3.tcp_retention",
            Const(0.50),
            "ack starvation genuinely throttles TCP (the hazard exists)",
        ),
        // H4 — long fat pipe: the floor is RTT-independent.
        OrderingCheck::ge(
            "h4.qtpaf_rtt600_mbps",
            Const(12.0),
            "the gTFRC floor holds on the 600 ms RTT pipe",
        ),
        OrderingCheck::ge(
            "h4.qtpaf_rtt600_mbps",
            Metric("h4.tcp_rtt600_mbps".into()),
            "rate-based control beats the window transport at satellite latency",
        ),
        OrderingCheck::ge(
            "h4.qtpaf_retention",
            Const(0.85),
            "doubling the RTT barely moves the rate-based goodput",
        ),
        // H5 — handover: TTL-partial holds the deadline-miss floor.
        OrderingCheck::le(
            "h5.partial_miss_rate",
            Metric("h5.full_miss_rate".into()),
            "TTL-partial misses fewer playout deadlines across the handover",
        ),
        OrderingCheck::le(
            "h5.partial_miss_rate",
            Const(0.10),
            "the deadline-miss floor survives the WLAN→cellular handover",
        ),
        OrderingCheck::ge(
            "h5.partial_ttl_dropped",
            Const(1.0),
            "the receiver-side TTL drop path fires on post-handover stale retransmissions",
        ),
        // C1 — bufferbloat dumbbell: everyone fills the link, the
        // model-based controller does it without the standing queue.
        OrderingCheck::ge(
            "c1.tfrc_util",
            Const(0.7),
            "TFRC fills the bloated dumbbell",
        ),
        OrderingCheck::ge(
            "c1.cubic_util",
            Const(0.7),
            "CUBIC fills the bloated dumbbell",
        ),
        OrderingCheck::ge(
            "c1.bbr_util",
            Const(0.7),
            "BBR-lite fills the bloated dumbbell",
        ),
        OrderingCheck::le(
            "c1.bbr_qdelay_ms",
            Metric("c1.cubic_qdelay_ms".into()),
            "BBR-lite holds less standing queue than loss-based CUBIC",
        ),
        OrderingCheck::ge(
            "c1.cubic_qdelay_ms",
            Const(300.0),
            "loss-based control genuinely bloats the deep buffer (the hazard exists)",
        ),
        OrderingCheck::le(
            "c1.bbr_qdelay_ms",
            Const(50.0),
            "the model-based controller keeps queue delay near the propagation floor",
        ),
        // C2 — long fat pipe: the new controllers beat the equation at
        // satellite RTT (TFRC's throughput scales as 1/RTT).
        OrderingCheck::ge(
            "c2.cubic_rtt600_mbps",
            Metric("c2.tfrc_rtt600_mbps".into()),
            "CUBIC's RTT-decoupled window growth beats TFRC on the 600 ms LBDP",
        ),
        OrderingCheck::ge(
            "c2.bbr_rtt600_mbps",
            Metric("c2.tfrc_rtt600_mbps".into()),
            "BBR-lite's model-based rate beats TFRC on the 600 ms LBDP",
        ),
        // C3 — bursty loss and self-fairness at N = 64.
        OrderingCheck::ge(
            "c3.tfrc_burst_mbps",
            Const(1.0),
            "TFRC keeps moving on the bursty wireless hop",
        ),
        OrderingCheck::ge(
            "c3.cubic_burst_mbps",
            Const(1.0),
            "CUBIC keeps moving on the bursty wireless hop",
        ),
        OrderingCheck::ge(
            "c3.bbr_burst_mbps",
            Const(1.0),
            "BBR-lite keeps moving on the bursty wireless hop",
        ),
        OrderingCheck::ge(
            "c3.jain_cubic_n64",
            Const(0.9),
            "a uniform CUBIC flock stays self-fair at N = 64",
        ),
        OrderingCheck::ge(
            "c3.jain_bbr_n64",
            Const(0.9),
            "a uniform BBR-lite flock stays self-fair at N = 64",
        ),
        OrderingCheck::ge(
            "c3.jain_tfrc_n64",
            Const(0.7),
            "a uniform TFRC flock holds the F1 fairness floor despite its RTT-proportional bias",
        ),
    ]
}

/// Outcome of one evaluated assertion.
#[derive(Debug, Clone)]
pub struct AssertionResult {
    /// The assertion.
    pub check: OrderingCheck,
    /// Resolved left value (`NaN` if the metric is missing).
    pub left: f64,
    /// Resolved right value (`NaN` if a referenced metric is missing).
    pub right: f64,
    /// Whether it holds.
    pub holds: bool,
}

/// Evaluate [`assertions`] (or any custom list) against a fresh ledger.
pub fn evaluate_assertions(ledger: &Ledger, checks: &[OrderingCheck]) -> Vec<AssertionResult> {
    checks
        .iter()
        .map(|c| {
            let left = ledger
                .find_metric(&c.left)
                .map(|(v, _, _)| v.as_f64())
                .unwrap_or(f64::NAN);
            let right = match &c.right {
                Operand::Const(x) => *x,
                Operand::Metric(name) => ledger
                    .find_metric(name)
                    .map(|(v, _, _)| v.as_f64())
                    .unwrap_or(f64::NAN),
            };
            AssertionResult {
                check: c.clone(),
                left,
                right,
                holds: c.op.holds(left, right),
            }
        })
        .collect()
}

/// Render the committed `EXPERIMENTS.md` for a ledger (plus any
/// informational extra tables, e.g. the mux sweep in nightly artifacts).
/// Pure function of the tables — no timestamps, no environment — so the
/// output is byte-identical whenever the measurements are.
pub fn render_markdown(ledger: &Ledger, extras: &[Table]) -> String {
    let mut out = String::new();
    out.push_str("# QTP claims ledger\n\n");
    out.push_str(
        "Machine-regenerated reproduction of every evaluation claim in\n\
         *Towards a Versatile Transport Protocol* (Jourjon, Lochin, Sénac —\n\
         CoNEXT 2006), plus the application scenario families (A1–A3, over\n\
         the stream data plane) and the many-flow fairness sweep. Every\n\
         number comes from the deterministic simulator at fixed seeds: the\n\
         same commit regenerates this file byte-identically.\n\n\
         - Regenerate: `cargo run --release -p qtp-bench --bin expt -- --report`\n\
         - Regression gate: `cargo run --release -p qtp-bench --bin expt -- --check`\n\n\
         `--check` re-runs everything and fails if any **gated metric**\n\
         drifts outside its tolerance versus the committed\n\
         `experiments.json`, or if any **claim assertion** below stops\n\
         holding. Intentional behaviour changes regenerate both files in\n\
         the same commit, so the diff *is* the review artifact.\n\n",
    );
    out.push_str("## Experiments\n\n");
    for t in &ledger.tables {
        out.push_str(&t.to_markdown());
    }
    for t in extras {
        out.push_str(&t.to_markdown());
    }
    out.push_str("## Claim assertions\n\n");
    out.push_str("| assertion | claim | measured | status |\n|---|---|---|---|\n");
    for r in evaluate_assertions(ledger, &assertions()) {
        let _ = writeln!(
            out,
            "| `{}` | {} | {:.4} vs {:.4} | {} |",
            r.check.describe(),
            r.check.why,
            r.left,
            r.right,
            if r.holds { "holds" } else { "**VIOLATED**" },
        );
    }
    out
}

/// Render the machine baseline (`experiments.json`) for a ledger.
pub fn render_json(ledger: &Ledger) -> String {
    let assertions_json: Vec<String> = evaluate_assertions(ledger, &assertions())
        .iter()
        .map(|r| {
            let right = match &r.check.right {
                Operand::Metric(m) => format!("\"right_metric\": {}", json::escape(m)),
                Operand::Const(c) => format!("\"right_const\": {c}"),
            };
            format!(
                "{{\"left\": {}, \"op\": {}, {}, \"holds\": {}}}",
                json::escape(&r.check.left),
                json::escape(r.check.op.json_name()),
                right,
                r.holds,
            )
        })
        .collect();
    format!(
        "{{\"version\": 1,\n \"paper\": \"Towards a versatile transport protocol (CoNEXT 2006)\",\n \"tables\": {},\n \"assertions\": [{}]\n}}\n",
        crate::table::tables_to_json(&ledger.tables),
        assertions_json.join(",\n  "),
    )
}

/// One finding of the baseline comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum Finding {
    /// Within tolerance (or informational).
    Ok,
    /// Outside its tolerance versus the baseline.
    Drifted,
    /// In the baseline but not produced by the fresh run.
    MissingInFresh,
    /// Produced by the fresh run but absent from the baseline — the
    /// baseline needs regenerating.
    MissingInBaseline,
}

/// One compared metric.
#[derive(Debug, Clone)]
pub struct MetricCheck {
    /// Qualified metric name.
    pub name: String,
    /// What happened.
    pub finding: Finding,
    /// Human detail line.
    pub detail: String,
}

/// Full result of `expt --check`.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Per-metric comparisons, report order, failures included.
    pub metrics: Vec<MetricCheck>,
    /// Fresh-run assertion results.
    pub assertions: Vec<AssertionResult>,
}

impl CheckReport {
    /// Number of regressions (drifted/missing metrics + violated
    /// assertions).
    pub fn failures(&self) -> usize {
        self.metrics
            .iter()
            .filter(|m| m.finding != Finding::Ok)
            .count()
            + self.assertions.iter().filter(|a| !a.holds).count()
    }

    /// Did everything pass?
    pub fn passed(&self) -> bool {
        self.failures() == 0
    }

    /// Human summary: every failure, then one count line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for m in &self.metrics {
            if m.finding != Finding::Ok {
                let _ = writeln!(out, "REGRESSION {}: {}", m.name, m.detail);
            }
        }
        for a in &self.assertions {
            if !a.holds {
                let _ = writeln!(
                    out,
                    "ASSERTION VIOLATED {} ({}): measured {:.6} vs {:.6}",
                    a.check.describe(),
                    a.check.why,
                    a.left,
                    a.right,
                );
            }
        }
        let gated = self
            .metrics
            .iter()
            .filter(|m| m.finding == Finding::Ok)
            .count();
        let held = self.assertions.iter().filter(|a| a.holds).count();
        let _ = writeln!(
            out,
            "claims ledger check: {} metrics within tolerance, {} assertions hold, {} failure(s)",
            gated,
            held,
            self.failures(),
        );
        out
    }
}

/// Errors loading or interpreting the committed baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineError(
    /// What is wrong with the baseline document.
    pub String,
);

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad experiments.json baseline: {}", self.0)
    }
}

impl std::error::Error for BaselineError {}

/// Extract `(qualified name, value)` pairs from a parsed baseline
/// document (the committed `experiments.json`).
pub fn baseline_metrics(doc: &Value) -> Result<Vec<(String, MetricValue)>, BaselineError> {
    let tables = doc
        .get("tables")
        .and_then(Value::as_arr)
        .ok_or_else(|| BaselineError("missing \"tables\" array".into()))?;
    let mut out = Vec::new();
    for t in tables {
        let id = t
            .get("id")
            .and_then(Value::as_str)
            .ok_or_else(|| BaselineError("table without \"id\"".into()))?
            .to_lowercase();
        let metrics = t
            .get("metrics")
            .and_then(Value::as_arr)
            .ok_or_else(|| BaselineError(format!("table {id} without \"metrics\"")))?;
        for m in metrics {
            let name = m
                .get("name")
                .and_then(Value::as_str)
                .ok_or_else(|| BaselineError(format!("metric without \"name\" in {id}")))?;
            let ty = m
                .get("type")
                .and_then(Value::as_str)
                .ok_or_else(|| BaselineError(format!("metric {id}.{name} without \"type\"")))?;
            let value = m
                .get("value")
                .ok_or_else(|| BaselineError(format!("metric {id}.{name} without \"value\"")))?;
            let value = match (ty, value) {
                ("float", v) => MetricValue::Float(
                    v.as_f64()
                        .ok_or_else(|| BaselineError(format!("{id}.{name}: non-numeric float")))?,
                ),
                ("int", Value::Num(x)) => MetricValue::Int(*x as i64),
                ("bool", Value::Bool(b)) => MetricValue::Bool(*b),
                _ => {
                    return Err(BaselineError(format!(
                        "{id}.{name}: value does not match type {ty}"
                    )))
                }
            };
            out.push((format!("{id}.{name}"), value));
        }
    }
    Ok(out)
}

/// Compare a fresh ledger against the committed baseline document under
/// the *fresh code's* tolerances, and evaluate the fresh assertions.
pub fn check_against(baseline: &Value, fresh: &Ledger) -> Result<CheckReport, BaselineError> {
    let base = baseline_metrics(baseline)?;
    let fresh_metrics = fresh.all_metrics();
    let mut checks = Vec::new();
    for (name, value, tol) in &fresh_metrics {
        if matches!(tol, Tolerance::Info) {
            continue;
        }
        match base.iter().find(|(n, _)| n == name) {
            None => checks.push(MetricCheck {
                name: name.clone(),
                finding: Finding::MissingInBaseline,
                detail: format!(
                    "new metric (= {}) absent from the committed baseline — regenerate with `expt --report`",
                    value.display(),
                ),
                }),
            Some((_, base_value)) => {
                if tol.accepts(*base_value, *value) {
                    checks.push(MetricCheck {
                        name: name.clone(),
                        finding: Finding::Ok,
                        detail: String::new(),
                    });
                } else {
                    checks.push(MetricCheck {
                        name: name.clone(),
                        finding: Finding::Drifted,
                        detail: format!(
                            "baseline {} → fresh {} exceeds tolerance {}",
                            base_value.display(),
                            value.display(),
                            tol.describe(),
                        ),
                    });
                }
            }
        }
    }
    for (name, value) in &base {
        if !fresh_metrics.iter().any(|(n, _, _)| n == name) {
            checks.push(MetricCheck {
                name: name.clone(),
                finding: Finding::MissingInFresh,
                detail: format!(
                    "baseline metric (= {}) no longer produced — regenerate with `expt --report`",
                    value.display(),
                ),
            });
        }
    }
    Ok(CheckReport {
        metrics: checks,
        assertions: evaluate_assertions(fresh, &assertions()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny synthetic ledger so the comparison machinery is testable
    /// without running any simulation.
    fn toy_ledger(speed: f64, count: u64) -> Ledger {
        let mut t = Table::new("E0", "toy", "x beats y", &["a"]);
        t.metric("speed", speed, "Mbit/s", Tolerance::Rel(0.10));
        t.metric("count", count, "pkts", Tolerance::Exact);
        t.metric("wall", 1.23, "s", Tolerance::Info);
        Ledger { tables: vec![t] }
    }

    #[test]
    fn identical_run_passes_check() {
        let base = json::parse(&render_json(&toy_ledger(10.0, 5))).unwrap();
        let report = check_against(&base, &toy_ledger(10.0, 5)).unwrap();
        // The toy ledger has none of the real assertion metrics, so only
        // look at the metric comparisons here.
        assert!(report.metrics.iter().all(|m| m.finding == Finding::Ok));
    }

    #[test]
    fn drift_within_tolerance_passes_but_beyond_fails() {
        let base = json::parse(&render_json(&toy_ledger(10.0, 5))).unwrap();
        let ok = check_against(&base, &toy_ledger(10.9, 5)).unwrap();
        assert!(ok.metrics.iter().all(|m| m.finding == Finding::Ok));
        // A deliberate 20% violation of the 10% budget is caught.
        let bad = check_against(&base, &toy_ledger(12.0, 5)).unwrap();
        let drifted: Vec<_> = bad
            .metrics
            .iter()
            .filter(|m| m.finding == Finding::Drifted)
            .collect();
        assert_eq!(drifted.len(), 1);
        assert_eq!(drifted[0].name, "e0.speed");
        assert!(bad.failures() >= 1);
        assert!(bad.render().contains("REGRESSION e0.speed"));
    }

    #[test]
    fn exact_int_metric_tolerates_nothing() {
        let base = json::parse(&render_json(&toy_ledger(10.0, 5))).unwrap();
        let bad = check_against(&base, &toy_ledger(10.0, 6)).unwrap();
        assert!(bad
            .metrics
            .iter()
            .any(|m| m.name == "e0.count" && m.finding == Finding::Drifted));
    }

    #[test]
    fn missing_and_extra_metrics_are_regressions() {
        let base = json::parse(&render_json(&toy_ledger(10.0, 5))).unwrap();
        let mut fresh = toy_ledger(10.0, 5);
        fresh.tables[0].metrics.remove(1); // drop "count"
        fresh.tables[0].metric("brand_new", 1.0, "x", Tolerance::Abs(0.1));
        let report = check_against(&base, &fresh).unwrap();
        assert!(report
            .metrics
            .iter()
            .any(|m| m.name == "e0.count" && m.finding == Finding::MissingInFresh));
        assert!(report
            .metrics
            .iter()
            .any(|m| m.name == "e0.brand_new" && m.finding == Finding::MissingInBaseline));
    }

    #[test]
    fn nan_fresh_value_is_a_regression() {
        let base = json::parse(&render_json(&toy_ledger(10.0, 5))).unwrap();
        let bad = check_against(&base, &toy_ledger(f64::NAN, 5)).unwrap();
        assert!(bad
            .metrics
            .iter()
            .any(|m| m.name == "e0.speed" && m.finding == Finding::Drifted));
    }

    #[test]
    fn info_metrics_are_never_gated() {
        // Even a wildly different Info value compares clean.
        let base = json::parse(&render_json(&toy_ledger(10.0, 5))).unwrap();
        let mut fresh = toy_ledger(10.0, 5);
        fresh.tables[0].metrics[2].value = MetricValue::Float(9000.0);
        let report = check_against(&base, &fresh).unwrap();
        assert!(report.metrics.iter().all(|m| m.finding == Finding::Ok));
        assert!(!report.metrics.iter().any(|m| m.name == "e0.wall"));
    }

    #[test]
    fn ordering_assertions_metric_and_const() {
        let mut t = Table::new("E0", "toy", "c", &["a"]);
        t.metric("fast", 2.0, "x", Tolerance::Info);
        t.metric("slow", 1.0, "x", Tolerance::Info);
        let ledger = Ledger { tables: vec![t] };
        let checks = vec![
            OrderingCheck::ge("e0.fast", Operand::Metric("e0.slow".into()), "fast ≥ slow"),
            OrderingCheck::ge("e0.fast", Operand::Const(1.5), "fast ≥ 1.5"),
            OrderingCheck::le("e0.fast", Operand::Const(1.5), "fast ≤ 1.5 (should fail)"),
            OrderingCheck::ge("e0.missing", Operand::Const(0.0), "missing metric fails"),
        ];
        let results = evaluate_assertions(&ledger, &checks);
        assert!(results[0].holds);
        assert!(results[1].holds);
        assert!(!results[2].holds);
        assert!(!results[3].holds, "missing metric must fail, not pass");
        assert!(results[3].left.is_nan());
    }

    #[test]
    fn boundary_equal_ordering_holds() {
        let mut t = Table::new("E0", "toy", "c", &["a"]);
        t.metric("x", 1.5, "x", Tolerance::Info);
        let ledger = Ledger { tables: vec![t] };
        let results = evaluate_assertions(
            &ledger,
            &[
                OrderingCheck::ge("e0.x", Operand::Const(1.5), "boundary ge"),
                OrderingCheck::le("e0.x", Operand::Const(1.5), "boundary le"),
            ],
        );
        assert!(
            results.iter().all(|r| r.holds),
            "boundary-equal passes both"
        );
    }

    #[test]
    fn baseline_parsing_rejects_malformed_documents() {
        for bad in [
            "{}",
            r#"{"tables": [{"title": "no id", "metrics": []}]}"#,
            r#"{"tables": [{"id": "E0", "metrics": [{"name": "x"}]}]}"#,
            r#"{"tables": [{"id": "E0", "metrics": [{"name": "x", "type": "bool", "value": 3}]}]}"#,
        ] {
            let doc = json::parse(bad).unwrap();
            assert!(baseline_metrics(&doc).is_err(), "{bad} must be rejected");
        }
    }

    #[test]
    fn render_json_roundtrips_through_parser() {
        let ledger = toy_ledger(10.0, 5);
        let doc = json::parse(&render_json(&ledger)).expect("render_json emits valid JSON");
        let metrics = baseline_metrics(&doc).unwrap();
        assert_eq!(metrics.len(), 3);
        assert_eq!(metrics[0], ("e0.speed".into(), MetricValue::Float(10.0)));
        assert_eq!(metrics[1], ("e0.count".into(), MetricValue::Int(5)));
    }

    #[test]
    fn small_sim_sweep_produces_gated_metrics() {
        let t = fairness_sweep_sim(&[4]);
        assert_eq!(t.rows.len(), 1);
        let jain = t.get_metric("jain_n4").expect("jain metric");
        assert!(jain.value.as_f64() > 0.5);
        let completed = t.get_metric("completed_n4").expect("completed metric");
        assert_eq!(completed.value, MetricValue::Int(4));
        assert_eq!(completed.tolerance, Tolerance::Exact);
    }
}
