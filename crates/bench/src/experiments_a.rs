//! Experiments E1–E5: the DiffServ/AF bandwidth-assurance studies (paper
//! §4) and the QTPlight equivalence/cost studies (paper §3).
//!
//! Paper claims covered, one experiment each:
//!
//! * **E1** — §4 baseline (Seddigh et al.): TCP cannot sustain a
//!   bandwidth guarantee inside an AF class.
//! * **E2** — §4 headline: "QTPAF obtains the QoS negotiated by the
//!   application … whereas TCP fails to deliver this QoS".
//! * **E3** — §4 (gTFRC design): the guaranteed flow converges to ≥ g
//!   and stays there.
//! * **E4** — §3: moving loss estimation to the sender preserves TFRC's
//!   rate behaviour.
//! * **E5** — §3: "it allows the receiver load to be dramatically
//!   decreased".
//!
//! Each experiment records its headline numbers as gated
//! [`Table::metric`]s; `ledger::assertions` encodes the claim itself as
//! an ordering check over them.

use qtp_core::session::{attach_pair, ConnectionPlan, Profile};
use qtp_simnet::prelude::*;
use qtp_tcp::TcpFlavor;
use std::time::Duration;

use crate::common::*;
use crate::table::{mbps, ratio, Table, Tolerance};

/// E1 — TCP cannot sustain a bandwidth guarantee inside an AF class
/// (the Seddigh et al. baseline the paper's §4 builds on).
///
/// Two TCP flows share a 10 Mbit/s RIO bottleneck with committed rates
/// `g` and `9 − g`. An assured service should give each flow its target
/// plus a fair share of the ~1 Mbit/s excess; measured achievement ratios
/// show TCP over-achieving small targets and failing large ones.
pub fn e1() -> Table {
    let mut t = Table::new(
        "E1",
        "TCP bandwidth assurance in an AF class (baseline)",
        "§4: \"the TCP throughput guarantee inside this class is not feasible under various network conditions\" (Seddigh et al.)",
        &["g1 (Mbit/s)", "g2 (Mbit/s)", "tcp1 achieved", "tcp2 achieved", "tcp1/g1", "tcp2/g2"],
    );
    const SECS: u64 = 60;
    let mut worst_high_target: f64 = f64::INFINITY;
    let mut best_low_target: f64 = 0.0;
    for g1 in 1..=8u64 {
        let g2 = 9 - g1;
        let (mut sim, net) = af_dumbbell(2, 10, Duration::from_millis(10), None, 100 + g1);
        let f1 = attach_tcp(&mut sim, &net, 0, "tcp1", TcpFlavor::NewReno);
        let f2 = attach_tcp(&mut sim, &net, 1, "tcp2", TcpFlavor::NewReno);
        set_profile(&mut sim, &net, 0, f1, Rate::from_mbps(g1));
        set_profile(&mut sim, &net, 1, f2, Rate::from_mbps(g2));
        sim.run_until(SimTime::from_secs(SECS));
        let a1 = throughput(&sim, f1, SECS);
        let a2 = throughput(&sim, f2, SECS);
        let r1 = a1 / (g1 as f64 * 1e6);
        let r2 = a2 / (g2 as f64 * 1e6);
        let (low, high) = if g1 <= g2 { (r1, r2) } else { (r2, r1) };
        worst_high_target = worst_high_target.min(high);
        best_low_target = best_low_target.max(low);
        t.row(vec![
            g1.to_string(),
            g2.to_string(),
            mbps(a1),
            mbps(a2),
            ratio(r1),
            ratio(r2),
        ]);
    }
    t.verdict = format!(
        "large targets under-achieve (worst ratio {worst_high_target:.2}) while small targets grab excess (best ratio {best_low_target:.2}) — TCP cannot enforce the reservation, matching Seddigh et al."
    );
    t.metric(
        "worst_high_target",
        worst_high_target,
        "ratio",
        Tolerance::AbsOrRel(0.05, 0.20),
    );
    t.metric(
        "best_low_target",
        best_low_target,
        "ratio",
        Tolerance::Rel(0.15),
    );
    t
}

/// E2 — the headline §4 claim: goodput/target ratio for TCP, standard
/// TFRC and QTPAF across targets and RTTs, against out-of-profile TCP
/// background load.
pub fn e2() -> Table {
    let mut t = Table::new(
        "E2",
        "Achieving the negotiated rate: TCP vs TFRC vs QTPAF",
        "§4: \"QTPAF obtains the QoS negotiated by the application with the network service whereas TCP fails to deliver this QoS\"",
        &["protocol", "g (Mbit/s)", "RTT 10ms", "RTT 100ms", "RTT 300ms"],
    );
    const SECS: u64 = 40;
    const BOTTLENECK_DELAY_MS: u64 = 4;
    let rtts_ms = [10u64, 100, 300];
    let targets_mbps = [0.5f64, 1.0, 2.0, 4.0, 8.0];
    let mut qtp_af_min: f64 = f64::INFINITY;
    let mut tcp_min: f64 = f64::INFINITY;

    for proto in ["TCP", "TFRC", "QTPAF"] {
        for &g in &targets_mbps {
            let mut cells = vec![proto.to_string(), format!("{g}")];
            for &rtt_ms in &rtts_ms {
                let access_ms = (rtt_ms / 2).saturating_sub(BOTTLENECK_DELAY_MS + 1);
                let seed = 7 + rtt_ms + (g * 10.0) as u64;
                // pair 0: flow under test; pairs 1-2: background TCP, out
                // of profile, low RTT (aggressive).
                let (mut sim, net) = af_dumbbell(
                    3,
                    10,
                    Duration::from_millis(BOTTLENECK_DELAY_MS),
                    Some(vec![
                        Duration::from_millis(access_ms),
                        Duration::from_millis(1),
                        Duration::from_millis(1),
                    ]),
                    seed,
                );
                let target = Rate::from_mbps_f64(g);
                let flow = match proto {
                    "TCP" => attach_tcp(&mut sim, &net, 0, "dut", TcpFlavor::NewReno),
                    "TFRC" => {
                        attach_plan_pair(
                            &mut sim,
                            &net,
                            0,
                            "dut",
                            &ConnectionPlan::new(Profile::tfrc()),
                        )
                        .data_flow
                    }
                    _ => {
                        attach_plan_pair(
                            &mut sim,
                            &net,
                            0,
                            "dut",
                            &ConnectionPlan::new(Profile::qtp_af(target)),
                        )
                        .data_flow
                    }
                };
                set_profile(&mut sim, &net, 0, flow, target);
                for bg in 1..3 {
                    let f = attach_tcp(&mut sim, &net, bg, &format!("bg{bg}"), TcpFlavor::NewReno);
                    set_out_of_profile(&mut sim, &net, bg, f);
                }
                sim.run_until(SimTime::from_secs(SECS));
                let achieved = throughput(&sim, flow, SECS) / (g * 1e6);
                match proto {
                    "QTPAF" => qtp_af_min = qtp_af_min.min(achieved),
                    "TCP" => tcp_min = tcp_min.min(achieved),
                    _ => {}
                }
                cells.push(ratio(achieved));
            }
            t.row(cells);
        }
    }
    t.verdict = format!(
        "QTPAF worst-case achievement {qtp_af_min:.2} of target vs TCP worst case {tcp_min:.2} — the negotiated rate is held by QTPAF and not by TCP, matching the claim."
    );
    t.metric("qtpaf_min", qtp_af_min, "ratio", Tolerance::Rel(0.10));
    t.metric("tcp_min", tcp_min, "ratio", Tolerance::AbsOrRel(0.05, 0.25));
    t
}

/// E3 — convergence-to-guarantee time series: QTPAF(g=4 Mbit/s) vs a TCP
/// flow with the same reservation, each sharing the RIO bottleneck with an
/// out-of-profile TCP aggressor.
pub fn e3() -> Table {
    let mut t = Table::new(
        "E3",
        "Throughput over time with g = 4 Mbit/s (RIO core, TCP aggressor)",
        "§4 (gTFRC design): the guaranteed flow should converge to ≥ g and stay there; TCP with the same reservation oscillates below it",
        &["t (s)", "QTPAF (Mbit/s)", "TCP w/ profile (Mbit/s)"],
    );
    const SECS: u64 = 30;
    let g = Rate::from_mbps(4);

    let run = |use_qtpaf: bool| -> Vec<f64> {
        let (mut sim, net) = af_dumbbell(2, 10, Duration::from_millis(10), None, 31);
        sim.set_sample_interval(Duration::from_secs(1));
        let flow = if use_qtpaf {
            attach_plan_pair(
                &mut sim,
                &net,
                0,
                "dut",
                &ConnectionPlan::new(Profile::qtp_af(g)),
            )
            .data_flow
        } else {
            attach_tcp(&mut sim, &net, 0, "dut", TcpFlavor::NewReno)
        };
        set_profile(&mut sim, &net, 0, flow, g);
        let bg = attach_tcp(&mut sim, &net, 1, "bg", TcpFlavor::NewReno);
        set_out_of_profile(&mut sim, &net, 1, bg);
        sim.run_until(SimTime::from_secs(SECS));
        sim.stats()
            .flow(flow)
            .arrive_series_bps(Duration::from_secs(1))
    };

    let qtpaf = run(true);
    let tcp = run(false);
    for (i, (a, b)) in qtpaf.iter().zip(&tcp).enumerate() {
        t.row(vec![(i + 1).to_string(), mbps(*a), mbps(*b)]);
    }
    // Steady-state check over the last 20 seconds.
    let steady = |xs: &[f64]| xs[10..].iter().sum::<f64>() / (xs.len() - 10) as f64;
    let (sa, sb) = (steady(&qtpaf), steady(&tcp));
    t.verdict = format!(
        "steady-state mean: QTPAF {:.2} Mbit/s (target 4) vs TCP {:.2} Mbit/s — QTPAF converges to the guarantee, TCP does not.",
        sa / 1e6,
        sb / 1e6
    );
    t.metric(
        "qtpaf_steady_mbps",
        sa / 1e6,
        "Mbit/s",
        Tolerance::Rel(0.15),
    );
    t.metric(
        "tcp_steady_mbps",
        sb / 1e6,
        "Mbit/s",
        Tolerance::AbsOrRel(0.5, 0.25),
    );
    t
}

/// E4 — QTPlight rate equivalence: moving the loss estimation to the
/// sender must not change TFRC's rate behaviour (§3), across loss rates.
pub fn e4() -> Table {
    let mut t = Table::new(
        "E4",
        "QTPlight vs standard TFRC vs analytic equation (Bernoulli loss)",
        "§3: shifting loss-rate computation to the sender preserves TFRC behaviour (\"few changes ... in the TFRC header and algorithm\")",
        &["p", "TFRC (Mbit/s)", "QTPlight (Mbit/s)", "light/std", "equation (Mbit/s)"],
    );
    const SECS: u64 = 60;
    let mut worst: f64 = 1.0;
    for &p in &[0.001f64, 0.005, 0.01, 0.02, 0.05, 0.1] {
        let run = |light: bool| -> f64 {
            let (mut sim, s, r) = lossy_path(
                50,
                Duration::from_millis(30),
                LossModel::bernoulli(p),
                (p * 1e4) as u64 + 17,
            );
            let profile = if light {
                Profile::qtp_light()
            } else {
                Profile::tfrc()
            };
            let h = attach_pair(&mut sim, s, r, "x", &ConnectionPlan::new(profile));
            sim.run_until(SimTime::from_secs(SECS));
            goodput(&sim, h.data_flow, SECS)
        };
        let std = run(false);
        let light = run(true);
        let rel = light / std;
        worst = if (rel - 1.0).abs() > (worst - 1.0).abs() {
            rel
        } else {
            worst
        };
        // Equation at the base RTT (60 ms) — the loop sits near this point.
        let eq = qtp_tfrc::throughput(1000, Duration::from_millis(60), p) * 8.0;
        t.row(vec![
            format!("{p}"),
            mbps(std),
            mbps(light),
            ratio(rel),
            mbps(eq),
        ]);
    }
    t.verdict = format!(
        "largest deviation of QTPlight from standard TFRC: factor {worst:.2} — the two track each other across two orders of magnitude of loss."
    );
    t.metric("worst_deviation", worst, "factor", Tolerance::Abs(0.15));
    t
}

/// E5 — the receiver-load ledger: per-packet processing operations and
/// peak state bytes for the RFC 3448 receiver vs the QTPlight receiver
/// (plus where the work went: the sender).
pub fn e5() -> Table {
    let mut t = Table::new(
        "E5",
        "Receiver processing load: standard TFRC vs QTPlight",
        "§3: \"it allows the receiver load to be dramatically decreased\"",
        &[
            "loss p",
            "std rx ops/pkt",
            "light rx ops/pkt",
            "reduction",
            "std rx state (B)",
            "light rx state (B)",
            "std tx ops",
            "light tx ops",
        ],
    );
    const SECS: u64 = 30;
    let mut min_reduction = f64::INFINITY;
    for &p in &[0.0f64, 0.01, 0.05] {
        let run = |light: bool| {
            let (mut sim, s, r) = lossy_path(
                10,
                Duration::from_millis(20),
                if p > 0.0 {
                    LossModel::bernoulli(p)
                } else {
                    LossModel::None
                },
                (p * 1e4) as u64 + 23,
            );
            let profile = if light {
                Profile::qtp_light()
            } else {
                Profile::tfrc()
            };
            let h = attach_pair(&mut sim, s, r, "x", &ConnectionPlan::new(profile));
            sim.run_until(SimTime::from_secs(SECS));
            h
        };
        let std = run(false);
        let light = run(true);
        let (so, lo) = (
            std.rx.read(|d| d.rx_ops_per_packet()),
            light.rx.read(|d| d.rx_ops_per_packet()),
        );
        let reduction = so / lo.max(1e-9);
        min_reduction = min_reduction.min(reduction);
        t.row(vec![
            format!("{p}"),
            format!("{so:.1}"),
            format!("{lo:.1}"),
            format!("{reduction:.1}x"),
            std.rx.read(|d| d.rx_state_bytes_peak).to_string(),
            light.rx.read(|d| d.rx_state_bytes_peak).to_string(),
            std.tx.read(|d| d.tx_ops).to_string(),
            light.tx.read(|d| d.tx_ops).to_string(),
        ]);
    }
    t.verdict = format!(
        "QTPlight cuts receiver work by at least {min_reduction:.1}x per packet (state shrinks too); the loss-history cost reappears at the sender, which is exactly the intended asymmetry."
    );
    t.metric(
        "min_reduction",
        min_reduction,
        "factor",
        Tolerance::Rel(0.20),
    );
    t
}
