//! Fixed-seed determinism for the new congestion controllers. CUBIC and
//! BBR-lite are pure functions of the feedback stream — no clock reads,
//! no randomness — so running the same uniform flock twice must
//! reproduce both the rendered report and the full qlog event stream
//! byte for byte, exactly as the TFRC family does. A controller that
//! smuggled in wall-clock time or iteration-order dependence would break
//! this immediately.

use std::cell::RefCell;
use std::rc::Rc;

use qtp_bench::manyflow::{run_sim_traced, ManyFlowConfig, ProfileKind};
use qtp_metrics::trace::{QlogWriter, TraceRegistry};

fn two_runs(kind: ProfileKind) -> [(String, String); 2] {
    let run = || {
        let cfg = ManyFlowConfig::uniform(16, kind);
        let qlog = Rc::new(RefCell::new(QlogWriter::new()));
        let registry = TraceRegistry::new();
        registry.set_sink(qlog.clone());
        let report = run_sim_traced(&cfg, registry).render(usize::MAX);
        let trace = qlog.borrow().output().to_string();
        (report, trace)
    };
    [run(), run()]
}

fn assert_deterministic(kind: ProfileKind, cc_event: &str) {
    let [(report_a, trace_a), (report_b, trace_b)] = two_runs(kind);
    assert_eq!(
        report_a, report_b,
        "{kind:?}: fixed seed ⇒ identical report"
    );
    assert_eq!(trace_a, trace_b, "{kind:?}: fixed seed ⇒ identical qlog");
    // The run actually exercised the controller under test: its typed
    // state events are present in the stream (an empty-but-equal trace
    // would make this test vacuous).
    assert!(
        trace_a.contains(cc_event),
        "{kind:?}: qlog carries no {cc_event} events"
    );
}

#[test]
fn cubic_flock_is_byte_identical_across_runs() {
    assert_deterministic(ProfileKind::Cubic, "cubic_state");
}

#[test]
fn bbr_lite_flock_is_byte_identical_across_runs() {
    assert_deterministic(ProfileKind::BbrLite, "bbr_state");
}
