//! Differential test for the observability plane: tracing is
//! **observation-only**. Running the same fixed-seed scenario with a
//! trace registry attached (events flowing to a qlog writer and a flight
//! recorder) must leave the rendered report byte-identical to the
//! untraced run — the tracer never touches the outbox, so the command
//! stream, and with it every golden, cannot move.

use std::cell::RefCell;
use std::rc::Rc;

use qtp_bench::manyflow::{run_sim, run_sim_traced, ManyFlowConfig};
use qtp_metrics::trace::{FlightRecorder, QlogWriter, Tee, TraceRegistry};

fn cfg() -> ManyFlowConfig {
    ManyFlowConfig::new(24)
}

#[test]
fn tracing_on_vs_off_is_byte_identical() {
    let baseline = run_sim(&cfg()).render(usize::MAX);

    let qlog = Rc::new(RefCell::new(QlogWriter::new()));
    let recorder = Rc::new(RefCell::new(FlightRecorder::new(32)));
    let registry = TraceRegistry::new();
    registry.set_sink(Rc::new(RefCell::new(Tee::new(
        qlog.clone(),
        recorder.clone(),
    ))));
    let traced = run_sim_traced(&cfg(), registry).render(usize::MAX);

    assert_eq!(
        baseline, traced,
        "attaching sinks must not perturb the simulation"
    );

    // The sinks actually saw the run: a non-trivial event stream reached
    // the qlog writer and every connection left a tail in the recorder.
    let out = qlog.borrow().output().to_string();
    assert!(!out.is_empty(), "qlog writer captured events");
    assert!(
        out.lines().count() > 100,
        "expected a dense event stream, got {} lines",
        out.lines().count()
    );
    assert_eq!(
        recorder.borrow().conns().len(),
        2 * cfg().flows,
        "one tracer per endpoint side reached the recorder"
    );
}

#[test]
fn traced_rerun_reproduces_the_qlog_byte_for_byte() {
    let run = |_: u32| {
        let qlog = Rc::new(RefCell::new(QlogWriter::new()));
        let registry = TraceRegistry::new();
        registry.set_sink(qlog.clone());
        let report = run_sim_traced(&cfg(), registry).render(usize::MAX);
        let trace = qlog.borrow().output().to_string();
        (report, trace)
    };
    let (report_a, trace_a) = run(0);
    let (report_b, trace_b) = run(1);
    assert_eq!(report_a, report_b, "fixed seed ⇒ identical report");
    assert_eq!(trace_a, trace_b, "fixed seed ⇒ identical qlog stream");
}
