//! Property tests for the ledger's JSON layer: any table the harness can
//! build — arbitrary claim/title/cell strings full of quotes, backslashes,
//! control characters and astral-plane unicode — serializes through
//! `Table::to_json` / `tables_to_json` into a document the in-tree parser
//! (`qtp_bench::json`) reads back with every field intact. This is the
//! proof that the hand-rolled escaping in the committed `experiments.json`
//! is sound.

use proptest::prelude::*;
use qtp_bench::json::{self, Value};
use qtp_bench::table::{tables_to_json, MetricValue, Table, Tolerance};

/// Characters chosen to stress the escaper: every JSON-mandatory escape,
/// raw control characters, multi-byte UTF-8, and an astral-plane scalar.
const AWKWARD: &[char] = &[
    '"',
    '\\',
    '\n',
    '\r',
    '\t',
    '\u{0}',
    '\u{1}',
    '\u{1f}',
    '/',
    '|',
    ' ',
    'a',
    'Z',
    '0',
    'é',
    'β',
    '\u{2028}',
    '\u{2029}',
    '\u{FFFD}',
    '\u{1F600}',
    '中',
];

fn arb_string() -> impl Strategy<Value = String> {
    prop::collection::vec(any::<u32>(), 0..48).prop_map(|codes| {
        codes
            .iter()
            .map(|c| AWKWARD[*c as usize % AWKWARD.len()])
            .collect()
    })
}

fn arb_finite_f64() -> impl Strategy<Value = f64> {
    any::<i64>().prop_map(|i| i as f64 / 1000.0)
}

fn arb_metric_value() -> impl Strategy<Value = MetricValue> {
    prop_oneof![
        arb_finite_f64().prop_map(MetricValue::Float),
        any::<i64>().prop_map(MetricValue::Int),
        any::<bool>().prop_map(MetricValue::Bool),
    ]
}

fn arb_tolerance() -> impl Strategy<Value = Tolerance> {
    prop_oneof![
        Just(Tolerance::Exact),
        Just(Tolerance::Info),
        arb_finite_f64().prop_map(Tolerance::Abs),
        arb_finite_f64().prop_map(Tolerance::Rel),
        (arb_finite_f64(), arb_finite_f64()).prop_map(|(a, r)| Tolerance::AbsOrRel(a, r)),
    ]
}

fn arb_table() -> impl Strategy<Value = Table> {
    (
        arb_string(),
        arb_string(),
        arb_string(),
        prop::collection::vec(arb_string(), 1..4),
        prop::collection::vec((arb_string(), arb_metric_value(), arb_tolerance()), 0..4),
        arb_string(),
    )
        .prop_flat_map(|(id, title, claim, headers, metrics, verdict)| {
            let width = headers.len();
            (
                Just((id, title, claim, headers, metrics, verdict)),
                prop::collection::vec(prop::collection::vec(arb_string(), width..=width), 0..4),
            )
        })
        .prop_map(|((id, title, claim, headers, metrics, verdict), rows)| {
            let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
            let mut t = Table::new(&id, &title, &claim, &header_refs);
            for r in rows {
                t.row(r);
            }
            for (i, (name, value, tol)) in metrics.into_iter().enumerate() {
                // Metric names must be unique within a table; the payload
                // string still exercises the escaper.
                t.metric(&format!("m{i}_{name}"), value, &name, tol);
            }
            t.verdict = verdict;
            t
        })
}

fn metric_value_survives(before: MetricValue, after: &Value) -> bool {
    match before {
        MetricValue::Float(x) => after.as_f64() == Some(x),
        MetricValue::Int(i) => after.as_f64() == Some(i as f64),
        MetricValue::Bool(b) => *after == Value::Bool(b),
    }
}

proptest! {
    #[test]
    fn arbitrary_strings_roundtrip_through_escape(s in arb_string()) {
        let parsed = json::parse(&json::escape(&s)).expect("escape emits valid JSON");
        prop_assert_eq!(parsed, Value::Str(s));
    }

    #[test]
    fn tables_roundtrip_through_to_json(table in arb_table()) {
        let doc = json::parse(&table.to_json()).expect("to_json emits valid JSON");
        prop_assert_eq!(doc.get("id").and_then(Value::as_str), Some(table.id.as_str()));
        prop_assert_eq!(doc.get("title").and_then(Value::as_str), Some(table.title.as_str()));
        prop_assert_eq!(doc.get("claim").and_then(Value::as_str), Some(table.claim.as_str()));
        prop_assert_eq!(doc.get("verdict").and_then(Value::as_str), Some(table.verdict.as_str()));

        let headers = doc.get("headers").and_then(Value::as_arr).expect("headers");
        prop_assert_eq!(headers.len(), table.headers.len());
        for (h, parsed) in table.headers.iter().zip(headers) {
            prop_assert_eq!(parsed.as_str(), Some(h.as_str()));
        }

        let rows = doc.get("rows").and_then(Value::as_arr).expect("rows");
        prop_assert_eq!(rows.len(), table.rows.len());
        for (row, parsed_row) in table.rows.iter().zip(rows) {
            let cells = parsed_row.as_arr().expect("row array");
            prop_assert_eq!(cells.len(), row.len());
            for (cell, parsed_cell) in row.iter().zip(cells) {
                prop_assert_eq!(parsed_cell.as_str(), Some(cell.as_str()));
            }
        }

        let metrics = doc.get("metrics").and_then(Value::as_arr).expect("metrics");
        prop_assert_eq!(metrics.len(), table.metrics.len());
        for (m, parsed_m) in table.metrics.iter().zip(metrics) {
            prop_assert_eq!(parsed_m.get("name").and_then(Value::as_str), Some(m.name.as_str()));
            prop_assert_eq!(parsed_m.get("unit").and_then(Value::as_str), Some(m.unit.as_str()));
            prop_assert_eq!(
                parsed_m.get("type").and_then(Value::as_str),
                Some(m.value.type_name())
            );
            prop_assert!(
                metric_value_survives(m.value, parsed_m.get("value").expect("value")),
                "metric value {:?} did not survive", m.value
            );
        }
    }

    #[test]
    fn table_lists_roundtrip(tables in prop::collection::vec(arb_table(), 0..3)) {
        let doc = json::parse(&tables_to_json(&tables)).expect("valid JSON array");
        let arr = doc.as_arr().expect("array");
        prop_assert_eq!(arr.len(), tables.len());
        for (t, parsed) in tables.iter().zip(arr) {
            prop_assert_eq!(parsed.get("id").and_then(Value::as_str), Some(t.id.as_str()));
        }
    }
}
