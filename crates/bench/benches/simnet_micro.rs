//! Micro-benchmarks of the simulator substrate: event-loop throughput,
//! AQM decisions, markers and loss models.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use qtp_simnet::marker::{Marker, TokenBucketMarker};
use qtp_simnet::prelude::*;

fn bench_sim_loop(c: &mut Criterion) {
    // One simulated second of a CBR flow through a dumbbell: measures raw
    // event-loop + link + queue machinery throughput.
    c.bench_function("simnet/dumbbell_cbr_1s", |b| {
        b.iter(|| {
            let (mut sim, net) = Dumbbell::build(&DumbbellConfig::default(), 1);
            let f = sim.register_flow("cbr");
            sim.attach_agent(
                net.senders[0],
                Box::new(CbrSource::new(
                    f,
                    net.receivers[0],
                    1000,
                    Rate::from_mbps(8),
                )),
            );
            sim.attach_agent(net.receivers[0], Box::new(Sink));
            sim.run_until(SimTime::from_secs(1));
            sim.stats().flow(f).pkts_arrived
        })
    });
}

fn bench_queues(c: &mut Criterion) {
    c.bench_function("simnet/rio_enqueue_dequeue", |b| {
        let mut q = QueueConfig::Rio(RioParams::default()).build();
        let mut rng = DetRng::new(7);
        let mut uid = 0u64;
        b.iter(|| {
            uid += 1;
            let p = QueuedPacket {
                id: PacketId::from_raw(uid as u32),
                wire_size: 1000,
                color: if uid % 2 == 0 {
                    Color::Green
                } else {
                    Color::Red
                },
            };
            let _ = q.enqueue(SimTime::from_micros(uid), p, &mut rng);
            q.dequeue(SimTime::from_micros(uid))
        })
    });
    c.bench_function("simnet/droptail_enqueue_dequeue", |b| {
        let mut q = QueueConfig::DropTailPkts(100).build();
        let mut rng = DetRng::new(7);
        let mut uid = 0u64;
        b.iter(|| {
            uid += 1;
            let p = QueuedPacket {
                id: PacketId::from_raw(uid as u32),
                wire_size: 1000,
                color: Color::Green,
            };
            let _ = q.enqueue(SimTime::from_micros(uid), p, &mut rng);
            q.dequeue(SimTime::from_micros(uid))
        })
    });
}

fn bench_marker_and_loss(c: &mut Criterion) {
    c.bench_function("simnet/token_bucket_mark", |b| {
        let mut m = Marker::TokenBucket(TokenBucketMarker::new(Rate::from_mbps(5), 20_000));
        let mut t = 0u64;
        b.iter(|| {
            t += 800;
            let mut p = Packet::new(t, 0, 0, 1, 1000, SimTime::ZERO, Vec::new());
            m.mark(SimTime::from_micros(t), &mut p);
            p.color
        })
    });
    c.bench_function("simnet/gilbert_elliott_draw", |b| {
        let mut model = LossModel::gilbert_elliott(0.01, 0.3, 0.0, 0.5);
        let mut rng = DetRng::new(3);
        b.iter(|| model.is_lost(black_box(&mut rng)))
    });
}

criterion_group!(benches, bench_sim_loop, bench_queues, bench_marker_and_loss);
criterion_main!(benches);
