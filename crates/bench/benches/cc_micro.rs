//! Micro-benchmarks of the pluggable congestion controllers: the cost of
//! one feedback report through each implementation of the
//! `CongestionControl` trait. The sender runs this path once per received
//! feedback packet (roughly once per RTT per connection), so at the 100k
//! flow scale of the manyflow sweep the per-report cost is what the
//! controller axis adds to the event loop.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use qtp_cc::{BbrLite, CongestionControl, Cubic, FeedbackReport, FixedCc, GtfrcCc, TfrcCc};
use qtp_simnet::time::{Rate, SimTime};
use std::time::Duration;

const S: u32 = 1000;
const RTT: Duration = Duration::from_millis(100);

/// Drive one controller through a steady stream of feedback reports —
/// one per RTT, occasional loss — and return it so nothing is optimised
/// away. The stream is identical for every controller.
fn feedback_storm<C: CongestionControl>(mut cc: C, reports: u64) -> C {
    cc.seed_rtt(SimTime::ZERO, RTT);
    for k in 1..=reports {
        let now = SimTime::ZERO + RTT * k as u32;
        let lossy = k % 16 == 0;
        cc.on_feedback(&FeedbackReport {
            now,
            ts_echo: now - RTT,
            t_delay: Duration::from_millis(2),
            x_recv: 1e6,
            p: if lossy { 0.01 } else { 0.0 },
            newly_acked_bytes: 32 * u64::from(S),
            newly_lost_pkts: u32::from(lossy),
        });
        black_box(cc.allowed_rate());
    }
    cc
}

fn bench_controllers(c: &mut Criterion) {
    c.bench_function("cc/tfrc_feedback_64", |b| {
        b.iter(|| feedback_storm(TfrcCc::new(S), black_box(64)))
    });
    c.bench_function("cc/gtfrc_feedback_64", |b| {
        b.iter(|| feedback_storm(GtfrcCc::new(S, Rate::from_mbps(1)), black_box(64)))
    });
    c.bench_function("cc/fixed_feedback_64", |b| {
        b.iter(|| feedback_storm(FixedCc::new(Rate::from_mbps(1), S), black_box(64)))
    });
    c.bench_function("cc/cubic_feedback_64", |b| {
        b.iter(|| feedback_storm(Cubic::new(S), black_box(64)))
    });
    c.bench_function("cc/bbr_feedback_64", |b| {
        b.iter(|| feedback_storm(BbrLite::new(S), black_box(64)))
    });
}

criterion_group!(benches, bench_controllers);
criterion_main!(benches);
