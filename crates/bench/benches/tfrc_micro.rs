//! Micro-benchmarks of the TFRC mechanisms, including the E5 cross-check:
//! the per-packet cost of a standard RFC 3448 receiver vs the QTPlight
//! receiver path, in real CPU time on this host.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use qtp_sack::ReceiverBuffer;
use qtp_simnet::time::SimTime;
use qtp_tfrc::{inverse, throughput, LossDetector, LossIntervalHistory, TfrcReceiver};
use std::time::Duration;

fn bench_equation(c: &mut Criterion) {
    c.bench_function("tfrc/equation_throughput", |b| {
        b.iter(|| {
            throughput(
                black_box(1000),
                black_box(Duration::from_millis(100)),
                black_box(0.02),
            )
        })
    });
    c.bench_function("tfrc/equation_inverse", |b| {
        b.iter(|| {
            inverse(
                black_box(1000),
                black_box(Duration::from_millis(100)),
                black_box(50_000.0),
            )
        })
    });
}

fn bench_loss_history(c: &mut Criterion) {
    c.bench_function("tfrc/loss_history_record_event", |b| {
        b.iter_batched(
            || {
                let mut h = LossIntervalHistory::new();
                h.record_first_loss(0, 100.0);
                (h, 100u64)
            },
            |(mut h, mut seq)| {
                for _ in 0..64 {
                    h.record_loss_event(seq);
                    seq += 100;
                }
                h
            },
            criterion::BatchSize::SmallInput,
        )
    });
    c.bench_function("tfrc/loss_history_wali", |b| {
        let mut h = LossIntervalHistory::new();
        h.record_first_loss(0, 100.0);
        for k in 1..=8 {
            h.record_loss_event(k * 100);
        }
        b.iter(|| h.average_interval(black_box(900)))
    });
}

fn bench_detector(c: &mut Criterion) {
    c.bench_function("tfrc/detector_inorder_1k", |b| {
        b.iter(|| {
            let mut d = LossDetector::new();
            for seq in 0..1000u64 {
                let _ = d.on_packet(seq, SimTime::from_micros(seq * 100));
            }
            d
        })
    });
    c.bench_function("tfrc/detector_2pct_loss_1k", |b| {
        b.iter(|| {
            let mut d = LossDetector::new();
            for seq in 0..1000u64 {
                if seq % 50 != 49 {
                    let _ = d.on_packet(seq, SimTime::from_micros(seq * 100));
                }
            }
            d
        })
    });
}

/// The E5 ledger in wall-clock terms: full RFC 3448 receiver per packet vs
/// the QTPlight receiver (reassembly buffer only), same 2% loss stream.
fn bench_receiver_paths(c: &mut Criterion) {
    let rtt = Duration::from_millis(100);
    c.bench_function("e5/receiver_std_rfc3448_1k_pkts", |b| {
        b.iter(|| {
            let mut rx = TfrcReceiver::new(1000, rtt);
            for seq in 0..1000u64 {
                if seq % 50 == 49 {
                    continue;
                }
                let ts = SimTime::from_micros(seq * 100);
                rx.on_data(ts + Duration::from_millis(30), seq, ts, rtt, 1000);
            }
            rx.build_feedback(SimTime::from_millis(200))
        })
    });
    c.bench_function("e5/receiver_qtplight_1k_pkts", |b| {
        b.iter(|| {
            let mut buf = ReceiverBuffer::new();
            let mut bytes = 0u64;
            for seq in 0..1000u64 {
                if seq % 50 == 49 {
                    continue;
                }
                let _ = buf.on_packet(seq);
                bytes += 1000;
                // In the real protocol the unreliable sender emits a FWD
                // once per RTT moving the receiver past abandoned holes;
                // emulate it so the buffer stays tidy as it would live.
                if seq % 100 == 99 {
                    buf.on_forward(seq);
                }
            }
            (buf.sack_blocks(4), bytes)
        })
    });
}

criterion_group!(
    benches,
    bench_equation,
    bench_loss_history,
    bench_detector,
    bench_receiver_paths
);
criterion_main!(benches);
