//! Micro-benchmarks of the SACK substrate: range sets, reassembly, block
//! generation and scoreboard feedback processing.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use qtp_sack::{RangeSet, ReceiverBuffer, Scoreboard, SeqRange};
use qtp_simnet::time::SimTime;

fn bench_rangeset(c: &mut Criterion) {
    c.bench_function("sack/rangeset_insert_sequential_1k", |b| {
        b.iter(|| {
            let mut s = RangeSet::new();
            for seq in 0..1000u64 {
                s.insert(black_box(seq));
            }
            s
        })
    });
    c.bench_function("sack/rangeset_insert_fragmented_1k", |b| {
        b.iter(|| {
            let mut s = RangeSet::new();
            for seq in 0..1000u64 {
                s.insert(black_box(seq * 2));
            }
            s
        })
    });
    c.bench_function("sack/rangeset_contains", |b| {
        let mut s = RangeSet::new();
        for seq in 0..1000u64 {
            s.insert(seq * 2);
        }
        b.iter(|| s.contains(black_box(999)))
    });
}

fn bench_reassembly(c: &mut Criterion) {
    c.bench_function("sack/reassembly_inorder_1k", |b| {
        b.iter(|| {
            let mut buf = ReceiverBuffer::new();
            for seq in 0..1000u64 {
                let _ = buf.on_packet(seq);
            }
            buf
        })
    });
    c.bench_function("sack/reassembly_with_gaps_1k", |b| {
        b.iter(|| {
            let mut buf = ReceiverBuffer::new();
            for seq in 0..1000u64 {
                if seq % 20 != 19 {
                    let _ = buf.on_packet(seq);
                }
            }
            buf.sack_blocks(4)
        })
    });
    c.bench_function("sack/block_generation", |b| {
        let mut buf = ReceiverBuffer::new();
        for seq in 0..1000u64 {
            if seq % 7 != 6 {
                let _ = buf.on_packet(seq);
            }
        }
        b.iter(|| buf.sack_blocks(black_box(4)))
    });
}

fn bench_scoreboard(c: &mut Criterion) {
    c.bench_function("sack/scoreboard_feedback_cycle", |b| {
        b.iter(|| {
            let mut sb = Scoreboard::new();
            for k in 0..256u64 {
                sb.register_send(SimTime::from_micros(k * 100));
            }
            // Feedback with a hole: declares losses, sacks the rest.
            let d1 = sb.on_feedback(100, &[SeqRange::new(104, 200)]);
            let d2 = sb.on_feedback(100, &[SeqRange::new(104, 256)]);
            (d1, d2)
        })
    });
}

criterion_group!(benches, bench_rangeset, bench_reassembly, bench_scoreboard);
criterion_main!(benches);
