//! Micro-benchmarks of the connection mux hot paths: frame decode +
//! `(peer, flow)` route lookup + endpoint dispatch, and the timer wheel's
//! schedule/advance cycle. These price the per-datagram overhead every
//! future batching PR (recvmmsg/GSO) amortizes.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use qtp_core::driver::{Endpoint, Outbox};
use qtp_io::frame::Frame;
use qtp_io::mux::{ConnId, MuxDriver, TimerWheel};
use qtp_simnet::time::SimTime;
use std::net::SocketAddr;
use std::time::Duration;

/// An endpoint that swallows datagrams without emitting commands, so the
/// benchmark isolates decode + routing + dispatch.
struct Blackhole;
impl Endpoint for Blackhole {
    fn handle_datagram(&mut self, _out: &mut Outbox, _wire_size: u32, _header: &[u8]) {}
}

fn peer(i: u32) -> SocketAddr {
    format!("127.0.{}.{}:4433", (i >> 8) & 0xFF, i & 0xFF)
        .parse()
        .unwrap()
}

/// A mux with `conns` blackhole connections spread over 16 peers, plus one
/// pre-encoded datagram per connection.
fn routing_rig(conns: u32) -> (MuxDriver<Blackhole>, Vec<(SocketAddr, Vec<u8>)>) {
    let mut mux: MuxDriver<Blackhole> = MuxDriver::bind("127.0.0.1:0").unwrap();
    let mut datagrams = Vec::with_capacity(conns as usize);
    for i in 0..conns {
        let from = peer(i % 16);
        let (data, fb) = (2 * i, 2 * i + 1);
        mux.add_connection(from, vec![data, fb], Blackhole).unwrap();
        let frame = Frame {
            flow: data,
            seq: u64::from(i),
            wire_size: 1049,
            header: vec![0xA5; 24],
        };
        datagrams.push((from, frame.encode().unwrap()));
    }
    (mux, datagrams)
}

fn bench_routing(c: &mut Criterion) {
    for conns in [64u32, 1024] {
        let (mut mux, datagrams) = routing_rig(conns);
        c.bench_function(&format!("mux/route_dispatch_{conns}_conns"), |b| {
            let mut i = 0usize;
            b.iter(|| {
                let (from, bytes) = &datagrams[i % datagrams.len()];
                i += 1;
                mux.handle_datagram_from(*from, black_box(bytes)).unwrap()
            })
        });
    }

    // The miss path: a decodable frame with no route and no acceptor.
    let (mut mux, _) = routing_rig(1024);
    let stray = Frame {
        flow: 1_000_000,
        seq: 1,
        wire_size: 1049,
        header: vec![0xA5; 24],
    }
    .encode()
    .unwrap();
    let from = peer(3);
    c.bench_function("mux/route_miss_1024_conns", |b| {
        b.iter(|| mux.handle_datagram_from(from, black_box(&stray)).unwrap())
    });
}

fn bench_timer_wheel(c: &mut Criterion) {
    // Steady-state wheel churn at many-flow scale: each iteration re-arms
    // and fires one timer per 8 connections within a 200 ms window.
    c.bench_function("mux/wheel_schedule_advance_1024", |b| {
        let mut wheel = TimerWheel::new(Duration::from_millis(1));
        let mut now_ms = 0u64;
        b.iter(|| {
            now_ms += 1;
            for i in 0..128u64 {
                wheel.schedule(
                    SimTime::from_millis(now_ms + 1 + (i % 200)),
                    ConnId::from_raw(i),
                    i,
                );
            }
            black_box(wheel.advance(SimTime::from_millis(now_ms)))
        })
    });
}

criterion_group!(benches, bench_routing, bench_timer_wheel);
criterion_main!(benches);
