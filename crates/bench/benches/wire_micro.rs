//! Micro-benchmarks of the wire codecs (QTP and TCP headers).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use qtp_core::{CapabilitySet, QtpPacket};
use qtp_sack::SeqRange;
use qtp_simnet::time::Rate;
use qtp_tcp::TcpHeader;

fn bench_qtp_wire(c: &mut Criterion) {
    let data = QtpPacket::Data {
        seq: 123_456,
        ts_nanos: 987_654_321,
        adu_ts_nanos: 987_000_000,
        rtt_hint_micros: 42_000,
        is_retx: false,
    };
    let fb = QtpPacket::Feedback {
        ts_echo_nanos: 1,
        t_delay_micros: 2,
        x_recv: 125_000,
        p_ppb: Some(12_345_678),
        cum_ack: 10_000,
        blocks: vec![SeqRange::new(10_002, 10_010), SeqRange::new(10_020, 10_021)],
    };
    let syn = QtpPacket::Syn {
        ts_nanos: 5,
        offered: CapabilitySet::qtp_af(Rate::from_mbps(2)),
    };
    for (name, pkt) in [("data", &data), ("feedback", &fb), ("syn", &syn)] {
        let bytes = pkt.encode();
        c.bench_function(&format!("wire/qtp_encode_{name}"), |b| {
            b.iter(|| black_box(pkt).encode())
        });
        c.bench_function(&format!("wire/qtp_decode_{name}"), |b| {
            b.iter(|| QtpPacket::decode(black_box(&bytes)).unwrap())
        });
    }
}

fn bench_tcp_wire(c: &mut Criterion) {
    let ack = TcpHeader::ack(
        42_000,
        77,
        vec![SeqRange::new(42_002, 42_010), SeqRange::new(42_020, 42_022)],
    );
    let bytes = ack.encode();
    c.bench_function("wire/tcp_encode_ack_sack", |b| {
        b.iter(|| black_box(&ack).encode())
    });
    c.bench_function("wire/tcp_decode_ack_sack", |b| {
        b.iter(|| TcpHeader::decode(black_box(&bytes)).unwrap())
    });
}

criterion_group!(benches, bench_qtp_wire, bench_tcp_wire);
criterion_main!(benches);
