//! Micro-benchmarks of the observability plane's hot path: one
//! [`Tracer::emit`] with no sink (counters only — the always-on cost
//! every endpoint pays), with the [`NullSink`] attached (the dispatch
//! overhead of an attached-but-discarding sink), and with the
//! [`FlightRecorder`] (the steady-state ring overwrite). The first two
//! prices are the "near-zero cost" claim the tracing design rests on;
//! benchgate holds them to a band in `BENCH_criterion.json`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use qtp_metrics::trace::{FlightRecorder, NullSink, TraceEventKind, Tracer};
use std::cell::RefCell;
use std::rc::Rc;

fn event(i: u64) -> TraceEventKind {
    TraceEventKind::PktSent {
        kind: qtp_metrics::trace::PktKind::Data,
        seq: i,
        bytes: 1050,
        retx: false,
    }
}

fn bench_emit(c: &mut Criterion) {
    c.bench_function("trace/emit_no_sink", |b| {
        let tracer = Tracer::new(0);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            tracer.emit(black_box(i), black_box(event(i)));
        })
    });

    c.bench_function("trace/emit_null_sink", |b| {
        let tracer = Tracer::new(0);
        tracer.attach_sink(Rc::new(RefCell::new(NullSink)));
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            tracer.emit(black_box(i), black_box(event(i)));
        })
    });

    c.bench_function("trace/emit_flight_recorder", |b| {
        let tracer = Tracer::new(0);
        // Steady state: the ring is at capacity, every emit overwrites
        // in place — no allocation inside the measured loop.
        let rec = Rc::new(RefCell::new(FlightRecorder::new(64)));
        tracer.attach_sink(rec);
        for i in 0..64 {
            tracer.emit(i, event(i));
        }
        let mut i = 64u64;
        b.iter(|| {
            i += 1;
            tracer.emit(black_box(i), black_box(event(i)));
        })
    });

    c.bench_function("trace/counters_snapshot", |b| {
        let tracer = Tracer::new(0);
        for i in 0..100 {
            tracer.emit(i, event(i));
        }
        b.iter(|| black_box(tracer.counters()))
    });
}

criterion_group!(benches, bench_emit);
criterion_main!(benches);
