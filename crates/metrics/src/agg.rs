//! Deterministic aggregate statistics for experiment reports.
//!
//! The claims ledger (`qtp-bench`) reduces per-flow outcome vectors to a
//! handful of headline numbers that are then regression-gated against a
//! committed baseline. Those reductions live here so they are shared,
//! tested once, and — like everything in this crate — deterministic:
//! no wall clock, no hashing, pure functions of their inputs.

/// Nearest-rank percentile (inclusive), `q` in `[0, 1]`.
///
/// Returns `NaN` for an empty slice or when any input is `NaN` — a NaN
/// aggregate is a signal the ledger treats as a regression, never silently
/// ordered. The input does not need to be sorted.
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() || xs.iter().any(|x| x.is_nan()) {
        return f64::NAN;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN filtered above"));
    let q = q.clamp(0.0, 1.0);
    // Nearest-rank: smallest value with at least ceil(q * n) values ≤ it.
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1)]
}

/// `percentile(xs, 0.50)` — median by nearest rank.
pub fn p50(xs: &[f64]) -> f64 {
    percentile(xs, 0.50)
}

/// `percentile(xs, 0.95)` — the tail summary used for response-time
/// reporting in the application scenarios.
pub fn p95(xs: &[f64]) -> f64 {
    percentile(xs, 0.95)
}

/// `percentile(xs, 0.99)` — the far-tail summary used for response-time
/// and playout-lateness reporting in the application scenarios.
pub fn p99(xs: &[f64]) -> f64 {
    percentile(xs, 0.99)
}

/// Streaming mean/min/max/variance accumulator (Welford), so aggregate
/// rows can be computed in one pass without materialising copies.
#[derive(Debug, Clone, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// A fresh accumulator with no observations.
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold one observation in.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations folded in.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Smallest observation (`NaN` when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation (`NaN` when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Population variance (`NaN` when empty).
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation (`NaN` when empty).
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation, `stddev / mean` (`NaN` when empty,
    /// infinite when the mean is zero but the spread is not).
    pub fn cov(&self) -> f64 {
        self.stddev() / self.mean()
    }
}

impl std::iter::FromIterator<f64> for RunningStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = RunningStats::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let xs = [15.0, 20.0, 35.0, 40.0, 50.0];
        assert_eq!(percentile(&xs, 0.05), 15.0);
        assert_eq!(percentile(&xs, 0.30), 20.0);
        assert_eq!(percentile(&xs, 0.40), 20.0);
        assert_eq!(percentile(&xs, 0.50), 35.0);
        assert_eq!(percentile(&xs, 1.00), 50.0);
        assert_eq!(percentile(&xs, 0.0), 15.0);
    }

    #[test]
    fn percentile_unsorted_and_single() {
        assert_eq!(percentile(&[9.0, 1.0, 5.0], 0.95), 9.0);
        assert_eq!(percentile(&[7.0], 0.5), 7.0);
    }

    #[test]
    fn percentile_nan_and_empty_are_nan() {
        assert!(percentile(&[], 0.5).is_nan());
        assert!(percentile(&[1.0, f64::NAN], 0.5).is_nan());
    }

    #[test]
    fn p95_p99_nearest_rank_boundaries() {
        // n = 100: ranks are exact — p95 is the 95th value, p99 the 99th.
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(p95(&xs), 95.0);
        assert_eq!(p99(&xs), 99.0);
        assert_eq!(p50(&xs), 50.0);
        // n = 20: ceil(0.95 * 20) = 19, ceil(0.99 * 20) = 20.
        let xs: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        assert_eq!(p95(&xs), 19.0);
        assert_eq!(p99(&xs), 20.0);
        // n = 19: ceil(0.95 * 19) = 19 — p95 is the maximum.
        let xs: Vec<f64> = (1..=19).map(|i| i as f64).collect();
        assert_eq!(p95(&xs), 19.0);
    }

    #[test]
    fn p95_p99_single_sample_and_ties() {
        // n = 1: every percentile is the one sample.
        assert_eq!(p50(&[42.0]), 42.0);
        assert_eq!(p95(&[42.0]), 42.0);
        assert_eq!(p99(&[42.0]), 42.0);
        // All-ties: every percentile is the tied value.
        let ties = [7.0; 10];
        assert_eq!(p50(&ties), 7.0);
        assert_eq!(p95(&ties), 7.0);
        assert_eq!(p99(&ties), 7.0);
        // Ties straddling the rank: nearest-rank picks the tied value,
        // not an interpolation.
        let xs = [1.0, 2.0, 2.0, 2.0, 3.0];
        assert_eq!(p50(&xs), 2.0);
        assert_eq!(p95(&xs), 3.0);
    }

    #[test]
    fn running_stats_matches_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s: RunningStats = xs.iter().copied().collect();
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.cov() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn running_stats_empty_is_nan() {
        let s = RunningStats::new();
        assert!(s.mean().is_nan());
        assert!(s.min().is_nan());
        assert!(s.max().is_nan());
        assert!(s.variance().is_nan());
    }
}
