//! # Structured event tracing and per-connection counters
//!
//! The observability plane for the whole stack: endpoints (sender,
//! receiver, session, mux driver) emit typed, `Copy` [`TraceEvent`]
//! records through a cheap cloneable [`Tracer`] handle. Two consumers
//! hang off every event:
//!
//! * a per-connection [`CounterSet`] — always on, updated on every
//!   `emit`, and the **single source of truth** for report numbers
//!   (packets/bytes tx+rx, retransmits, TTL drops, loss events, timer
//!   fires). Snapshotting is a struct copy.
//! * an optional [`TraceSink`] — the event stream itself. Sinks are
//!   attached per run (never in steady-state hot paths) and forwarding
//!   compiles out entirely when the `trace` cargo feature is disabled;
//!   the counters remain.
//!
//! Everything here is deterministic: event times are integer
//! nanoseconds of *simulated* (or driver) time, sinks never consult the
//! wall clock, and the qlog-style writer formats times as fixed-point
//! decimals computed from integers — so a fixed-seed run reproduces its
//! trace byte-for-byte.
//!
//! This module deliberately has **zero dependencies**: times are raw
//! `u64` nanoseconds and connections are plain `u32` ids, so every
//! crate in the workspace can emit without a dependency cycle.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

/// Wire-level packet kind, shared by send/receive/drop events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PktKind {
    /// Connection request carrying the capability offer.
    Syn,
    /// Capability answer.
    SynAck,
    /// Application data (datagram or stream chunk).
    Data,
    /// TFRC/QTP feedback report.
    Feedback,
    /// Sender→receiver state forward (QTPlight).
    Forward,
    /// Wire-level close request.
    Fin,
    /// Close acknowledgement.
    FinAck,
}

impl PktKind {
    /// Stable lowercase label used by the qlog writer and dumps.
    pub fn label(self) -> &'static str {
        match self {
            PktKind::Syn => "syn",
            PktKind::SynAck => "synack",
            PktKind::Data => "data",
            PktKind::Feedback => "feedback",
            PktKind::Forward => "forward",
            PktKind::Fin => "fin",
            PktKind::FinAck => "finack",
        }
    }
}

/// Connection lifecycle states reported by `ConnState` events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnState {
    /// Endpoint started; SYN in flight.
    Started,
    /// Capability negotiation completed.
    Connected,
    /// Wire-level close completed.
    Closed,
}

impl ConnState {
    /// Stable lowercase label used by the qlog writer and dumps.
    pub fn label(self) -> &'static str {
        match self {
            ConnState::Started => "started",
            ConnState::Connected => "connected",
            ConnState::Closed => "closed",
        }
    }
}

/// One typed trace event. `Copy`, fixed-size, allocation-free.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEventKind {
    /// Connection state change.
    State(ConnState),
    /// A packet handed to the wire.
    PktSent {
        /// Wire-level packet kind.
        kind: PktKind,
        /// Transport sequence number (0 for control packets).
        seq: u64,
        /// Bytes on the wire.
        bytes: u32,
        /// True when this is a retransmission.
        retx: bool,
    },
    /// A packet accepted from the wire.
    PktRecvd {
        /// Wire-level packet kind.
        kind: PktKind,
        /// Transport sequence number (0 for control packets).
        seq: u64,
        /// Bytes on the wire.
        bytes: u32,
    },
    /// Receiver-side TTL drop: a stale retransmission arrived past its
    /// message lifetime and was discarded instead of delivered.
    PktDropped {
        /// Sequence of the dropped packet.
        seq: u64,
        /// Age past the send timestamp, in microseconds.
        age_us: u64,
    },
    /// Sender-side abandonment: a backlogged or lost packet aged out of
    /// its TTL before (re)transmission.
    PktExpired {
        /// Sequence of the abandoned packet (or backlog drop count
        /// when individual sequences are not tracked).
        seq: u64,
    },
    /// Congestion-controller allowed-rate update (TFRC/gTFRC).
    RateUpdate {
        /// New allowed sending rate, bits per second.
        rate_bps: u64,
        /// Loss-event rate, parts per million.
        p_ppm: u32,
        /// Smoothed RTT estimate, microseconds.
        rtt_us: u64,
    },
    /// A new loss event (possibly grouping several lost packets).
    LossEvent {
        /// Packets newly declared lost in this feedback round.
        pkts: u32,
    },
    /// CUBIC window snapshot after a feedback round.
    CubicState {
        /// Congestion window, bytes.
        cwnd_bytes: u64,
        /// Window at the last multiplicative decrease, bytes.
        w_max_bytes: u64,
        /// Whether the TCP-friendly region is governing.
        tcp_friendly: bool,
    },
    /// BBR-lite model snapshot after a feedback round.
    BbrState {
        /// Phase code (0 = startup, 1 = drain, 2 = probe-bw).
        phase: u8,
        /// Windowed-max bottleneck bandwidth estimate, bits/second.
        btlbw_bps: u64,
        /// Windowed-min RTT estimate, microseconds.
        min_rtt_us: u64,
    },
    /// Controller phase transition (BBR-lite startup/drain/probe).
    CcPhaseChange {
        /// Phase code entered (0 = startup, 1 = drain, 2 = probe-bw).
        phase: u8,
        /// Transition time, microseconds — carried in the event so the
        /// counter bank (which only sees the kind) can record when
        /// startup was first exited.
        at_us: u64,
    },
    /// A timer was armed.
    TimerSet {
        /// Endpoint-local timer kind (see the endpoint's `TK_*`).
        kind: u8,
        /// Absolute deadline, nanoseconds.
        at_nanos: u64,
    },
    /// A live timer fired.
    TimerFired {
        /// Endpoint-local timer kind.
        kind: u8,
    },
    /// A stale timer generation fired and was discarded — the
    /// fire-and-forget equivalent of a cancellation.
    TimerCancelled {
        /// Endpoint-local timer kind.
        kind: u8,
    },
    /// Stream has bytes/messages ready for the application.
    StreamReadable,
    /// Stream send window reopened.
    StreamWritable,
    /// Stream finished (FIN delivered and acknowledged).
    StreamFin,
    /// Non-fatal driver-level error (e.g. a transient socket error
    /// attributed to one side of a pair).
    SoftError,
}

impl TraceEventKind {
    /// Stable snake_case event name used by the qlog writer and dumps.
    pub fn name(self) -> &'static str {
        match self {
            TraceEventKind::State(_) => "conn_state",
            TraceEventKind::PktSent { .. } => "pkt_sent",
            TraceEventKind::PktRecvd { .. } => "pkt_recvd",
            TraceEventKind::PktDropped { .. } => "pkt_dropped",
            TraceEventKind::PktExpired { .. } => "pkt_expired",
            TraceEventKind::RateUpdate { .. } => "rate_update",
            TraceEventKind::LossEvent { .. } => "loss_event",
            TraceEventKind::CubicState { .. } => "cubic_state",
            TraceEventKind::BbrState { .. } => "bbr_state",
            TraceEventKind::CcPhaseChange { .. } => "cc_phase_change",
            TraceEventKind::TimerSet { .. } => "timer_set",
            TraceEventKind::TimerFired { .. } => "timer_fired",
            TraceEventKind::TimerCancelled { .. } => "timer_cancelled",
            TraceEventKind::StreamReadable => "stream_readable",
            TraceEventKind::StreamWritable => "stream_writable",
            TraceEventKind::StreamFin => "stream_fin",
            TraceEventKind::SoftError => "soft_error",
        }
    }
}

/// One emitted event: connection id, timestamp, payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Registry-assigned connection id.
    pub conn: u32,
    /// Event time in nanoseconds (simulated or driver time).
    pub t_nanos: u64,
    /// The typed payload.
    pub kind: TraceEventKind,
}

impl TraceEvent {
    /// Render the timestamp as fixed-point seconds (`s.nnnnnnnnn`),
    /// computed purely from integers so the string is deterministic.
    pub fn time_str(&self) -> String {
        format!(
            "{}.{:09}",
            self.t_nanos / 1_000_000_000,
            self.t_nanos % 1_000_000_000
        )
    }
}

/// Where the event stream goes. Implementations must not block and must
/// not allocate in steady state (one-time setup allocation is fine).
pub trait TraceSink {
    /// Consume one event.
    fn emit(&mut self, ev: &TraceEvent);
}

/// Per-connection counters, updated on every [`Tracer::emit`] whether
/// or not a sink is attached. Snapshot by copy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterSet {
    /// Packets handed to the wire.
    pub pkts_tx: u64,
    /// Bytes handed to the wire.
    pub bytes_tx: u64,
    /// Packets accepted from the wire.
    pub pkts_rx: u64,
    /// Bytes accepted from the wire.
    pub bytes_rx: u64,
    /// Retransmitted data packets (subset of `pkts_tx`).
    pub retransmits: u64,
    /// Receiver-side TTL drops of stale retransmissions.
    pub ttl_drops: u64,
    /// Sender-side TTL abandonments (never (re)sent).
    pub abandoned: u64,
    /// Loss events (grouped, TFRC semantics).
    pub loss_events: u64,
    /// Congestion-controller rate updates.
    pub rate_updates: u64,
    /// Timers armed.
    pub timers_set: u64,
    /// Live timer fires.
    pub timer_fires: u64,
    /// Stale-generation timer fires (≈ cancellations).
    pub timers_cancelled: u64,
    /// Non-fatal driver errors attributed to this connection.
    pub soft_errors: u64,
    /// Controller state snapshots (CUBIC/BBR feedback rounds).
    pub cc_state_updates: u64,
    /// Controller phase transitions (BBR-lite).
    pub cc_phase_changes: u64,
    /// Time BBR-lite first left startup, microseconds (0 = never did).
    pub bbr_startup_exit_us: u64,
}

impl CounterSet {
    /// Apply the counter deltas implied by one event kind.
    #[inline]
    pub fn apply(&mut self, kind: &TraceEventKind) {
        match kind {
            TraceEventKind::PktSent { bytes, retx, .. } => {
                self.pkts_tx += 1;
                self.bytes_tx += u64::from(*bytes);
                if *retx {
                    self.retransmits += 1;
                }
            }
            TraceEventKind::PktRecvd { bytes, .. } => {
                self.pkts_rx += 1;
                self.bytes_rx += u64::from(*bytes);
            }
            TraceEventKind::PktDropped { .. } => self.ttl_drops += 1,
            TraceEventKind::PktExpired { .. } => self.abandoned += 1,
            TraceEventKind::LossEvent { pkts } => self.loss_events += u64::from(*pkts),
            TraceEventKind::CubicState { .. } | TraceEventKind::BbrState { .. } => {
                self.cc_state_updates += 1
            }
            TraceEventKind::CcPhaseChange { phase, at_us } => {
                self.cc_phase_changes += 1;
                // Phase 1 (drain) is entered exactly once, when startup ends.
                if *phase == 1 && self.bbr_startup_exit_us == 0 {
                    self.bbr_startup_exit_us = *at_us;
                }
            }
            TraceEventKind::RateUpdate { .. } => self.rate_updates += 1,
            TraceEventKind::TimerSet { .. } => self.timers_set += 1,
            TraceEventKind::TimerFired { .. } => self.timer_fires += 1,
            TraceEventKind::TimerCancelled { .. } => self.timers_cancelled += 1,
            TraceEventKind::SoftError => self.soft_errors += 1,
            TraceEventKind::State(_)
            | TraceEventKind::StreamReadable
            | TraceEventKind::StreamWritable
            | TraceEventKind::StreamFin => {}
        }
    }

    /// Add another counter set into this one (mux/driver aggregation).
    pub fn merge(&mut self, other: &CounterSet) {
        self.pkts_tx += other.pkts_tx;
        self.bytes_tx += other.bytes_tx;
        self.pkts_rx += other.pkts_rx;
        self.bytes_rx += other.bytes_rx;
        self.retransmits += other.retransmits;
        self.ttl_drops += other.ttl_drops;
        self.abandoned += other.abandoned;
        self.loss_events += other.loss_events;
        self.rate_updates += other.rate_updates;
        self.timers_set += other.timers_set;
        self.timer_fires += other.timer_fires;
        self.timers_cancelled += other.timers_cancelled;
        self.soft_errors += other.soft_errors;
        self.cc_state_updates += other.cc_state_updates;
        self.cc_phase_changes += other.cc_phase_changes;
        // Earliest nonzero startup exit wins across merged connections.
        if other.bbr_startup_exit_us != 0
            && (self.bbr_startup_exit_us == 0
                || other.bbr_startup_exit_us < self.bbr_startup_exit_us)
        {
            self.bbr_startup_exit_us = other.bbr_startup_exit_us;
        }
    }
}

struct TracerState {
    conn: u32,
    counters: CounterSet,
    #[cfg_attr(not(feature = "trace"), allow(dead_code))]
    sink: Option<Rc<RefCell<dyn TraceSink>>>,
}

/// Cheap cloneable per-connection emit handle. Clones share one
/// counter bank and sink slot, so a sink attached through any clone is
/// seen by all of them — endpoints can own a `Tracer` from construction
/// and a backend can attach the run's sink later.
#[derive(Clone)]
pub struct Tracer {
    inner: Rc<RefCell<TracerState>>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.inner.borrow();
        f.debug_struct("Tracer")
            .field("conn", &st.conn)
            .field("counters", &st.counters)
            .field("sink", &st.sink.is_some())
            .finish()
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new(0)
    }
}

impl Tracer {
    /// A standalone tracer for connection id `conn`, no sink attached.
    pub fn new(conn: u32) -> Self {
        Tracer {
            inner: Rc::new(RefCell::new(TracerState {
                conn,
                counters: CounterSet::default(),
                sink: None,
            })),
        }
    }

    /// The registry-assigned connection id.
    pub fn conn(&self) -> u32 {
        self.inner.borrow().conn
    }

    /// Renumber this tracer (all clones see it). Endpoints create their
    /// tracer as id 0; a [`TraceRegistry`] assigns the run-unique id when
    /// the connection is registered.
    pub fn set_conn(&self, conn: u32) {
        self.inner.borrow_mut().conn = conn;
    }

    /// Emit one event: counters update unconditionally; the event is
    /// forwarded to the sink only when one is attached (and only when
    /// the `trace` feature is compiled in).
    #[inline]
    pub fn emit(&self, t_nanos: u64, kind: TraceEventKind) {
        let mut st = self.inner.borrow_mut();
        st.counters.apply(&kind);
        #[cfg(feature = "trace")]
        if let Some(sink) = st.sink.clone() {
            let ev = TraceEvent {
                conn: st.conn,
                t_nanos,
                kind,
            };
            drop(st);
            sink.borrow_mut().emit(&ev);
        }
        #[cfg(not(feature = "trace"))]
        let _ = t_nanos;
    }

    /// Snapshot the counters (struct copy).
    pub fn counters(&self) -> CounterSet {
        self.inner.borrow().counters
    }

    /// Attach (or replace) the event sink. Takes effect for every
    /// clone of this tracer.
    pub fn attach_sink(&self, sink: Rc<RefCell<dyn TraceSink>>) {
        self.inner.borrow_mut().sink = Some(sink);
    }

    /// Detach the sink; counters keep accumulating.
    pub fn detach_sink(&self) {
        self.inner.borrow_mut().sink = None;
    }
}

#[derive(Default)]
struct RegistryState {
    sink: Option<Rc<RefCell<dyn TraceSink>>>,
    conns: Vec<(String, Tracer)>,
}

/// Run-scoped allocator of connection ids and distributor of the run's
/// sink. Cloning shares state, so a backend can hold one clone and the
/// harness another.
#[derive(Clone, Default)]
pub struct TraceRegistry {
    inner: Rc<RefCell<RegistryState>>,
}

impl fmt::Debug for TraceRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.inner.borrow();
        f.debug_struct("TraceRegistry")
            .field("conns", &st.conns.len())
            .field("sink", &st.sink.is_some())
            .finish()
    }
}

impl TraceRegistry {
    /// A fresh registry with no sink.
    pub fn new() -> Self {
        TraceRegistry::default()
    }

    /// Install the sink handed to every subsequently created tracer.
    /// Also attaches it to tracers already handed out.
    pub fn set_sink(&self, sink: Rc<RefCell<dyn TraceSink>>) {
        let mut st = self.inner.borrow_mut();
        for (_, t) in &st.conns {
            t.attach_sink(sink.clone());
        }
        st.sink = Some(sink);
    }

    /// Allocate the next connection id and hand out its tracer.
    pub fn tracer(&self, label: &str) -> Tracer {
        let t = Tracer::new(0);
        self.register(label, &t);
        t
    }

    /// Register an endpoint-owned tracer: assign it the next connection
    /// id, attach the run's sink (if any), and record it under `label`.
    pub fn register(&self, label: &str, t: &Tracer) -> u32 {
        let mut st = self.inner.borrow_mut();
        let id = st.conns.len() as u32;
        t.set_conn(id);
        if let Some(sink) = &st.sink {
            t.attach_sink(sink.clone());
        }
        st.conns.push((label.to_string(), t.clone()));
        id
    }

    /// Snapshot every registered connection: `(id, label, counters)`,
    /// in registration order.
    pub fn connections(&self) -> Vec<(u32, String, CounterSet)> {
        self.inner
            .borrow()
            .conns
            .iter()
            .map(|(label, t)| (t.conn(), label.clone(), t.counters()))
            .collect()
    }
}

/// The do-nothing sink: proves the cost of tracing-with-no-consumer.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline]
    fn emit(&mut self, _ev: &TraceEvent) {}
}

/// Fixed-capacity per-connection ring of the last `cap` events.
#[derive(Debug, Clone)]
struct Ring {
    buf: Vec<TraceEvent>,
    head: usize,
    len: usize,
}

impl Ring {
    fn new(cap: usize) -> Self {
        Ring {
            buf: Vec::with_capacity(cap),
            head: 0,
            len: 0,
        }
    }

    fn push(&mut self, ev: TraceEvent) {
        let cap = self.buf.capacity();
        if cap == 0 {
            return;
        }
        if self.buf.len() < cap {
            self.buf.push(ev);
            self.len = self.buf.len();
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % cap;
        }
    }

    fn events(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.len);
        let cap = self.buf.len();
        for i in 0..self.len {
            out.push(self.buf[(self.head + i) % cap.max(1)]);
        }
        out
    }
}

/// Bounded in-memory flight recorder: keeps the **last N events per
/// connection** in emit order. The only allocations are the one-time
/// ring growth up to capacity per connection; steady-state emission
/// overwrites in place. Dump it when a ledger assertion or scenario
/// check fails to see what the flow was doing just before the end.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    cap: usize,
    rings: BTreeMap<u32, Ring>,
}

impl FlightRecorder {
    /// Recorder keeping the last `cap_per_conn` events of each
    /// connection.
    pub fn new(cap_per_conn: usize) -> Self {
        FlightRecorder {
            cap: cap_per_conn,
            rings: BTreeMap::new(),
        }
    }

    /// Events currently held for `conn`, oldest first.
    pub fn events(&self, conn: u32) -> Vec<TraceEvent> {
        self.rings.get(&conn).map(Ring::events).unwrap_or_default()
    }

    /// Connection ids with at least one recorded event, ascending.
    pub fn conns(&self) -> Vec<u32> {
        self.rings.keys().copied().collect()
    }

    /// Human-readable dump of every ring, for failure diagnostics.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for (conn, ring) in &self.rings {
            let evs = ring.events();
            out.push_str(&format!("conn {} — last {} event(s):\n", conn, evs.len()));
            for ev in evs {
                out.push_str(&format!(
                    "  [{}] {} {:?}\n",
                    ev.time_str(),
                    ev.kind.name(),
                    ev.kind
                ));
            }
        }
        if out.is_empty() {
            out.push_str("flight recorder: no events recorded\n");
        }
        out
    }
}

impl TraceSink for FlightRecorder {
    fn emit(&mut self, ev: &TraceEvent) {
        let cap = self.cap;
        self.rings
            .entry(ev.conn)
            .or_insert_with(|| Ring::new(cap))
            .push(*ev);
    }
}

/// Deterministic qlog-style JSON-lines writer. One JSON object per
/// event, keys in fixed order, all numbers integer-derived — a
/// fixed-seed run reproduces the output byte-for-byte.
#[derive(Debug, Clone, Default)]
pub struct QlogWriter {
    out: String,
}

impl QlogWriter {
    /// A writer with an empty buffer.
    pub fn new() -> Self {
        QlogWriter::default()
    }

    /// The JSON-lines output so far.
    pub fn output(&self) -> &str {
        &self.out
    }

    /// Consume the writer, returning the output.
    pub fn into_output(self) -> String {
        self.out
    }

    fn data_json(kind: &TraceEventKind) -> String {
        match kind {
            TraceEventKind::State(s) => format!("{{\"state\":\"{}\"}}", s.label()),
            TraceEventKind::PktSent {
                kind,
                seq,
                bytes,
                retx,
            } => format!(
                "{{\"kind\":\"{}\",\"seq\":{seq},\"bytes\":{bytes},\"retx\":{retx}}}",
                kind.label()
            ),
            TraceEventKind::PktRecvd { kind, seq, bytes } => format!(
                "{{\"kind\":\"{}\",\"seq\":{seq},\"bytes\":{bytes}}}",
                kind.label()
            ),
            TraceEventKind::PktDropped { seq, age_us } => {
                format!("{{\"seq\":{seq},\"age_us\":{age_us}}}")
            }
            TraceEventKind::PktExpired { seq } => format!("{{\"seq\":{seq}}}"),
            TraceEventKind::RateUpdate {
                rate_bps,
                p_ppm,
                rtt_us,
            } => format!("{{\"rate_bps\":{rate_bps},\"p_ppm\":{p_ppm},\"rtt_us\":{rtt_us}}}"),
            TraceEventKind::LossEvent { pkts } => format!("{{\"pkts\":{pkts}}}"),
            TraceEventKind::CubicState {
                cwnd_bytes,
                w_max_bytes,
                tcp_friendly,
            } => format!(
                "{{\"cwnd\":{cwnd_bytes},\"w_max\":{w_max_bytes},\"tcp_friendly\":{tcp_friendly}}}"
            ),
            TraceEventKind::BbrState {
                phase,
                btlbw_bps,
                min_rtt_us,
            } => format!(
                "{{\"phase\":{phase},\"btlbw_bps\":{btlbw_bps},\"min_rtt_us\":{min_rtt_us}}}"
            ),
            TraceEventKind::CcPhaseChange { phase, at_us } => {
                format!("{{\"phase\":{phase},\"at_us\":{at_us}}}")
            }
            TraceEventKind::TimerSet { kind, at_nanos } => {
                format!(
                    "{{\"kind\":{kind},\"at\":\"{}.{:09}\"}}",
                    at_nanos / 1_000_000_000,
                    at_nanos % 1_000_000_000
                )
            }
            TraceEventKind::TimerFired { kind } => format!("{{\"kind\":{kind}}}"),
            TraceEventKind::TimerCancelled { kind } => format!("{{\"kind\":{kind}}}"),
            TraceEventKind::StreamReadable
            | TraceEventKind::StreamWritable
            | TraceEventKind::StreamFin
            | TraceEventKind::SoftError => "{}".to_string(),
        }
    }
}

impl TraceSink for QlogWriter {
    fn emit(&mut self, ev: &TraceEvent) {
        self.out.push_str(&format!(
            "{{\"time\":\"{}\",\"conn\":{},\"name\":\"{}\",\"data\":{}}}\n",
            ev.time_str(),
            ev.conn,
            ev.kind.name(),
            Self::data_json(&ev.kind)
        ));
    }
}

/// Forward every event to two sinks (e.g. qlog writer + flight
/// recorder in `qtptrace`).
pub struct Tee {
    a: Rc<RefCell<dyn TraceSink>>,
    b: Rc<RefCell<dyn TraceSink>>,
}

impl Tee {
    /// Tee into `a` then `b`, in that order.
    pub fn new(a: Rc<RefCell<dyn TraceSink>>, b: Rc<RefCell<dyn TraceSink>>) -> Self {
        Tee { a, b }
    }
}

impl TraceSink for Tee {
    fn emit(&mut self, ev: &TraceEvent) {
        self.a.borrow_mut().emit(ev);
        self.b.borrow_mut().emit(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, kind: TraceEventKind) -> TraceEvent {
        TraceEvent {
            conn: 0,
            t_nanos: t,
            kind,
        }
    }

    #[test]
    fn counters_follow_events() {
        let tr = Tracer::new(7);
        tr.emit(
            0,
            TraceEventKind::PktSent {
                kind: PktKind::Data,
                seq: 1,
                bytes: 1000,
                retx: false,
            },
        );
        tr.emit(
            1,
            TraceEventKind::PktSent {
                kind: PktKind::Data,
                seq: 1,
                bytes: 1000,
                retx: true,
            },
        );
        tr.emit(
            2,
            TraceEventKind::PktRecvd {
                kind: PktKind::Feedback,
                seq: 0,
                bytes: 40,
            },
        );
        tr.emit(3, TraceEventKind::PktDropped { seq: 5, age_us: 99 });
        tr.emit(4, TraceEventKind::LossEvent { pkts: 3 });
        tr.emit(5, TraceEventKind::SoftError);
        let c = tr.counters();
        assert_eq!(c.pkts_tx, 2);
        assert_eq!(c.bytes_tx, 2000);
        assert_eq!(c.retransmits, 1);
        assert_eq!(c.pkts_rx, 1);
        assert_eq!(c.bytes_rx, 40);
        assert_eq!(c.ttl_drops, 1);
        assert_eq!(c.loss_events, 3);
        assert_eq!(c.soft_errors, 1);
        assert_eq!(tr.conn(), 7);
    }

    #[test]
    fn clones_share_counters_and_sink() {
        let tr = Tracer::new(0);
        let clone = tr.clone();
        clone.emit(
            0,
            TraceEventKind::TimerSet {
                kind: 1,
                at_nanos: 5,
            },
        );
        assert_eq!(tr.counters().timers_set, 1);
        // Sink attached through one clone is visible through the other.
        let rec = Rc::new(RefCell::new(FlightRecorder::new(4)));
        tr.attach_sink(rec.clone());
        clone.emit(1, TraceEventKind::TimerFired { kind: 1 });
        if cfg!(feature = "trace") {
            assert_eq!(rec.borrow().events(0).len(), 1);
        } else {
            assert!(rec.borrow().events(0).is_empty());
        }
        assert_eq!(tr.counters().timer_fires, 1);
    }

    #[test]
    fn registry_assigns_ids_and_distributes_sink() {
        let reg = TraceRegistry::new();
        let a = reg.tracer("tx");
        let rec = Rc::new(RefCell::new(FlightRecorder::new(4)));
        // set_sink after the fact reaches already-created tracers too.
        reg.set_sink(rec.clone());
        let b = reg.tracer("rx");
        assert_eq!(a.conn(), 0);
        assert_eq!(b.conn(), 1);
        a.emit(0, TraceEventKind::State(ConnState::Started));
        b.emit(1, TraceEventKind::State(ConnState::Started));
        let conns = reg.connections();
        assert_eq!(conns.len(), 2);
        assert_eq!(conns[0].1, "tx");
        if cfg!(feature = "trace") {
            assert_eq!(rec.borrow().conns(), vec![0, 1]);
        }
    }

    #[test]
    fn ring_keeps_last_n_in_order() {
        let mut rec = FlightRecorder::new(3);
        for i in 0..10u64 {
            rec.emit(&ev(i, TraceEventKind::TimerFired { kind: 0 }));
        }
        let evs = rec.events(0);
        assert_eq!(evs.len(), 3);
        assert_eq!(
            evs.iter().map(|e| e.t_nanos).collect::<Vec<_>>(),
            vec![7, 8, 9]
        );
    }

    #[test]
    fn recorder_dump_mentions_every_conn() {
        let mut rec = FlightRecorder::new(2);
        for conn in [3u32, 1] {
            rec.emit(&TraceEvent {
                conn,
                t_nanos: 1_500_000_000,
                kind: TraceEventKind::StreamFin,
            });
        }
        let dump = rec.dump();
        assert!(dump.contains("conn 1"));
        assert!(dump.contains("conn 3"));
        assert!(dump.contains("1.500000000"));
        assert!(dump.contains("stream_fin"));
    }

    #[test]
    fn qlog_lines_are_deterministic_json() {
        let mut w = QlogWriter::new();
        w.emit(&ev(
            12_345_678,
            TraceEventKind::RateUpdate {
                rate_bps: 4_000_000,
                p_ppm: 250,
                rtt_us: 40_000,
            },
        ));
        w.emit(&ev(0, TraceEventKind::State(ConnState::Connected)));
        let lines: Vec<&str> = w.output().lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"time\":\"0.012345678\",\"conn\":0,\"name\":\"rate_update\",\"data\":{\"rate_bps\":4000000,\"p_ppm\":250,\"rtt_us\":40000}}"
        );
        assert_eq!(
            lines[1],
            "{\"time\":\"0.000000000\",\"conn\":0,\"name\":\"conn_state\",\"data\":{\"state\":\"connected\"}}"
        );
    }

    #[test]
    fn tee_reaches_both_sinks() {
        let rec = Rc::new(RefCell::new(FlightRecorder::new(4)));
        let qlog = Rc::new(RefCell::new(QlogWriter::new()));
        let mut tee = Tee::new(rec.clone(), qlog.clone());
        tee.emit(&ev(0, TraceEventKind::StreamReadable));
        assert_eq!(rec.borrow().events(0).len(), 1);
        assert!(qlog.borrow().output().contains("stream_readable"));
    }

    #[test]
    fn counter_merge_adds_everything() {
        let mut a = CounterSet {
            pkts_tx: 1,
            soft_errors: 2,
            ..CounterSet::default()
        };
        let b = CounterSet {
            pkts_tx: 3,
            ttl_drops: 4,
            ..CounterSet::default()
        };
        a.merge(&b);
        assert_eq!(a.pkts_tx, 4);
        assert_eq!(a.ttl_drops, 4);
        assert_eq!(a.soft_errors, 2);
    }

    #[test]
    fn cc_counters_track_snapshots_and_first_startup_exit() {
        let mut c = CounterSet::default();
        c.apply(&TraceEventKind::CubicState {
            cwnd_bytes: 10_000,
            w_max_bytes: 20_000,
            tcp_friendly: false,
        });
        c.apply(&TraceEventKind::BbrState {
            phase: 0,
            btlbw_bps: 1_000_000,
            min_rtt_us: 40_000,
        });
        assert_eq!(c.cc_state_updates, 2);
        c.apply(&TraceEventKind::CcPhaseChange {
            phase: 1,
            at_us: 900_000,
        });
        c.apply(&TraceEventKind::CcPhaseChange {
            phase: 2,
            at_us: 1_000_000,
        });
        assert_eq!(c.cc_phase_changes, 2);
        assert_eq!(c.bbr_startup_exit_us, 900_000, "first drain entry sticks");
        // Merge keeps the earliest nonzero exit.
        let mut other = CounterSet {
            bbr_startup_exit_us: 500_000,
            ..CounterSet::default()
        };
        other.merge(&c);
        assert_eq!(other.bbr_startup_exit_us, 500_000);
        let mut zero = CounterSet::default();
        zero.merge(&c);
        assert_eq!(zero.bbr_startup_exit_us, 900_000);
    }

    #[test]
    fn zero_capacity_ring_records_nothing() {
        let mut rec = FlightRecorder::new(0);
        rec.emit(&ev(0, TraceEventKind::StreamFin));
        assert!(rec.events(0).is_empty());
    }
}
