//! # qtp-metrics — deterministic processing-cost accounting
//!
//! The paper's QTPlight claim is about *endpoint processing load*: moving
//! TFRC's loss-event-rate estimation from a resource-limited receiver to the
//! sender "allows the receiver load to be dramatically decreased". Wall-clock
//! profiling of a simulation would measure the simulator, not the protocol,
//! and would not be reproducible. Instead, every protocol component that
//! contributes per-packet work carries a [`CostMeter`] and ticks it on the
//! exact code paths a real implementation would execute; data structures
//! report their live memory footprint through [`StateSize`].
//!
//! This gives two deterministic, machine-independent load measures:
//!
//! * **operations per packet** (by class: comparisons, arithmetic, list
//!   scans, structure updates, allocations), and
//! * **bytes of protocol state held**.
//!
//! Experiment E5 compares these between a standard RFC 3448 receiver and a
//! QTPlight receiver; the Criterion micro-benches cross-check that the op
//! counts track real CPU time on the host.

use std::fmt;

pub mod agg;
pub mod trace;

/// Classes of per-packet work, mirroring what a profiler would attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Branches / comparisons (loss-event grouping tests, threshold checks).
    Compare,
    /// Floating-point or integer arithmetic (averages, equations, rates).
    Arith,
    /// Iteration steps over history or interval structures.
    Scan,
    /// In-place structure mutation (counters, interval bumps).
    Update,
    /// Allocations / element insertions that may allocate.
    Alloc,
}

impl OpClass {
    /// All classes, for iteration and report rows.
    pub const ALL: [OpClass; 5] = [
        OpClass::Compare,
        OpClass::Arith,
        OpClass::Scan,
        OpClass::Update,
        OpClass::Alloc,
    ];

    fn index(self) -> usize {
        match self {
            OpClass::Compare => 0,
            OpClass::Arith => 1,
            OpClass::Scan => 2,
            OpClass::Update => 3,
            OpClass::Alloc => 4,
        }
    }

    /// Short label for report tables.
    pub fn label(self) -> &'static str {
        match self {
            OpClass::Compare => "cmp",
            OpClass::Arith => "arith",
            OpClass::Scan => "scan",
            OpClass::Update => "upd",
            OpClass::Alloc => "alloc",
        }
    }
}

/// An operation counter bank. Cloneable and mergeable so endpoints can
/// aggregate the meters of their components.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CostMeter {
    counts: [u64; 5],
}

impl CostMeter {
    /// A fresh meter with all counters at zero.
    pub fn new() -> Self {
        CostMeter::default()
    }

    /// Record `n` operations of `class`.
    #[inline]
    pub fn tick(&mut self, class: OpClass, n: u64) {
        self.counts[class.index()] += n;
    }

    /// Counter for one class.
    pub fn get(&self, class: OpClass) -> u64 {
        self.counts[class.index()]
    }

    /// Total operations across all classes.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Add another meter's counts into this one.
    pub fn merge(&mut self, other: &CostMeter) {
        for i in 0..self.counts.len() {
            self.counts[i] += other.counts[i];
        }
    }

    /// Reset every counter to zero.
    pub fn reset(&mut self) {
        self.counts = [0; 5];
    }
}

impl fmt::Display for CostMeter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for class in OpClass::ALL {
            if !first {
                write!(f, " ")?;
            }
            first = false;
            write!(f, "{}={}", class.label(), self.get(class))?;
        }
        Ok(())
    }
}

/// Live memory footprint of a protocol data structure, in bytes.
///
/// Implementations report what a real embedded implementation would hold in
/// RAM: element counts times element sizes plus fixed state. (Allocator
/// overhead is deliberately excluded — it is the same for both protocols
/// under comparison.)
pub trait StateSize {
    /// Current number of bytes of state held.
    fn state_bytes(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_and_get() {
        let mut m = CostMeter::new();
        m.tick(OpClass::Compare, 3);
        m.tick(OpClass::Alloc, 1);
        m.tick(OpClass::Compare, 2);
        assert_eq!(m.get(OpClass::Compare), 5);
        assert_eq!(m.get(OpClass::Alloc), 1);
        assert_eq!(m.get(OpClass::Scan), 0);
        assert_eq!(m.total(), 6);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = CostMeter::new();
        a.tick(OpClass::Arith, 10);
        let mut b = CostMeter::new();
        b.tick(OpClass::Arith, 5);
        b.tick(OpClass::Update, 7);
        a.merge(&b);
        assert_eq!(a.get(OpClass::Arith), 15);
        assert_eq!(a.get(OpClass::Update), 7);
        assert_eq!(b.total(), 12, "merge must not mutate the source");
    }

    #[test]
    fn reset_zeroes() {
        let mut m = CostMeter::new();
        m.tick(OpClass::Scan, 9);
        m.reset();
        assert_eq!(m.total(), 0);
    }

    #[test]
    fn display_lists_all_classes() {
        let mut m = CostMeter::new();
        m.tick(OpClass::Compare, 1);
        let s = format!("{m}");
        assert!(s.contains("cmp=1"));
        assert!(s.contains("alloc=0"));
    }

    #[test]
    fn op_class_indices_unique() {
        let mut seen = [false; 5];
        for c in OpClass::ALL {
            assert!(!seen[c.index()]);
            seen[c.index()] = true;
        }
    }
}
