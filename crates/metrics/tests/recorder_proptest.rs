//! Property tests for the [`FlightRecorder`] ring semantics: whatever the
//! interleaving of emissions across connections, each connection's ring
//! holds exactly the **last `cap` events in emission order**. The ledger
//! leans on this when a failing assertion dumps the recorder — the dump
//! must be the true tail of each flow's history, not a shuffled sample.

use proptest::prelude::*;
use qtp_metrics::trace::{FlightRecorder, TraceEvent, TraceEventKind, TraceSink};

const CONNS: u32 = 4;

/// An arbitrary interleaving of (conn, seq) emissions. The seq doubles as
/// a per-event fingerprint so order survives comparison.
fn arb_emits() -> impl Strategy<Value = Vec<(u32, u64)>> {
    prop::collection::vec((0u32..CONNS, any::<u64>()), 0..400)
}

fn event(conn: u32, i: usize, seq: u64) -> TraceEvent {
    TraceEvent {
        t_nanos: i as u64,
        conn,
        kind: TraceEventKind::PktSent {
            kind: qtp_metrics::trace::PktKind::Data,
            seq,
            bytes: 1,
            retx: false,
        },
    }
}

proptest! {
    #[test]
    fn ring_keeps_the_last_cap_events_in_order(
        emits in arb_emits(),
        cap in 1usize..16,
    ) {
        let mut rec = FlightRecorder::new(cap);
        // Reference model: full per-connection history, truncated at the
        // end — the recorder must agree with its tail.
        let mut model: Vec<Vec<TraceEvent>> = vec![Vec::new(); CONNS as usize];
        for (i, (conn, seq)) in emits.iter().enumerate() {
            let ev = event(*conn, i, *seq);
            rec.emit(&ev);
            model[*conn as usize].push(ev);
        }
        for conn in 0..CONNS {
            let full = &model[conn as usize];
            let tail: Vec<TraceEvent> =
                full[full.len().saturating_sub(cap)..].to_vec();
            prop_assert_eq!(
                rec.events(conn),
                tail,
                "conn {} ring is the exact ordered tail", conn
            );
        }
    }

    #[test]
    fn conns_lists_exactly_the_touched_connections(emits in arb_emits()) {
        let mut rec = FlightRecorder::new(8);
        let mut touched = std::collections::BTreeSet::new();
        for (i, (conn, seq)) in emits.iter().enumerate() {
            rec.emit(&event(*conn, i, *seq));
            touched.insert(*conn);
        }
        prop_assert_eq!(rec.conns(), touched.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn zero_capacity_recorder_stays_empty(emits in arb_emits()) {
        let mut rec = FlightRecorder::new(0);
        for (i, (conn, seq)) in emits.iter().enumerate() {
            rec.emit(&event(*conn, i, *seq));
        }
        for conn in 0..CONNS {
            prop_assert!(rec.events(conn).is_empty());
        }
    }
}
