//! # qtp-tfrc — TCP-Friendly Rate Control (RFC 3448) and gTFRC
//!
//! Sans-io implementation of the two congestion-control mechanisms the
//! paper composes into its versatile transport:
//!
//! * **TFRC** (RFC 3448): [`sender::TfrcSender`] paces at the equation rate
//!   ([`equation::throughput`]); [`receiver::TfrcReceiver`] detects losses
//!   ([`detector::LossDetector`]), groups them into loss events, maintains
//!   the loss-interval history ([`loss_history::LossIntervalHistory`]) and
//!   reports `(X_recv, p)` once per RTT.
//! * **gTFRC** ([`gtfrc::GtfrcSender`]): the DiffServ/AF specialisation
//!   `X = max(g, X_tfrc)` used by QTPAF.
//!
//! ## The composition seam
//!
//! [`sender::TfrcSender::on_feedback`] takes the loss event rate `p` as a
//! parameter instead of hard-wiring it to the receiver's report. That is the
//! exact point where the paper's two instances diverge:
//!
//! * *standard TFRC / QTPAF*: `p` = receiver-computed value from the
//!   feedback packet;
//! * *QTPlight*: the receiver sends only SACK-style feedback, and the
//!   **sender** runs [`detector::LossDetector`]-equivalent logic over the
//!   SACK stream plus its own [`loss_history::LossIntervalHistory`] to
//!   compute `p` (see `qtp-core`'s `SenderLossEstimator`).
//!
//! Every per-packet code path ticks a [`qtp_metrics::CostMeter`], giving the
//! deterministic processing-load measurements behind the paper's "light
//! receiver" claim.

pub mod detector;
pub mod equation;
pub mod gtfrc;
pub mod loss_history;
pub mod receiver;
pub mod sender;
pub mod update;

pub use detector::{LossDetector, LostPacket, NDUPACK};
pub use equation::{inverse, throughput};
pub use gtfrc::GtfrcSender;
pub use loss_history::{LossIntervalHistory, N_INTERVALS, WEIGHTS};
pub use receiver::{Feedback, RxAction, TfrcReceiver};
pub use sender::{SenderConfig, TfrcSender, RTT_EWMA_Q, T_MBI};
