//! Shared sender-update arithmetic.
//!
//! The RFC 3448 sender and the `qtp-cc` controllers (CUBIC, BBR-lite) all
//! reconstruct RTT samples the same way, seed from the same RFC 3390
//! initial window and re-arm the same `max(4R, 2s/X)` nofeedback timer.
//! This module is the single copy of that arithmetic; before it existed
//! each formula lived inline in [`crate::sender::TfrcSender`] (and would
//! have been duplicated per controller).
//!
//! Every helper performs the **exact operation sequence** the TFRC sender
//! used to inline, so extracting them is numerics-preserving: fixed-seed
//! runs through the refactored sender stay byte-identical.

use std::time::Duration;

use qtp_simnet::time::SimTime;

/// Maximum backoff interval: X never falls below `s / T_MBI` (§4.3).
pub const T_MBI: Duration = Duration::from_secs(64);

/// EWMA weight for the RTT estimate (§4.3 recommends q = 0.9).
pub const RTT_EWMA_Q: f64 = 0.9;

/// RFC 3390 initial window in bytes: `min(4s, max(2s, 4380))`.
pub fn initial_window(s: u32) -> f64 {
    let s = s as f64;
    (4.0 * s).min((2.0 * s).max(4380.0))
}

/// Handshake-seeded initial rate (§4.2): one initial window per RTT,
/// bytes/second.
pub fn initial_rate(s: u32, rtt: Duration) -> f64 {
    initial_window(s) / rtt.as_secs_f64()
}

/// The absolute rate floor `s / T_MBI`, bytes/second.
pub fn min_rate(s: u32) -> f64 {
    s as f64 / T_MBI.as_secs_f64()
}

/// Reconstruct one RTT sample from a feedback report's echo fields:
/// `(now - ts_echo) - t_delay`, clamped to at least a microsecond so a
/// pathological report can never produce a zero (or negative) sample.
pub fn rtt_sample(now: SimTime, ts_echo: SimTime, t_delay: Duration) -> Duration {
    let raw = now.saturating_since(ts_echo);
    let sample = raw.checked_sub(t_delay).unwrap_or(Duration::ZERO);
    if sample.is_zero() {
        Duration::from_micros(1)
    } else {
        sample
    }
}

/// Fold a sample into the smoothed estimate with the §4.3 EWMA
/// (`q = `[`RTT_EWMA_Q`]); the first sample is taken verbatim.
pub fn rtt_ewma(prev: Option<Duration>, sample: Duration) -> Duration {
    match prev {
        None => sample,
        Some(prev) => Duration::from_secs_f64(
            RTT_EWMA_Q * prev.as_secs_f64() + (1.0 - RTT_EWMA_Q) * sample.as_secs_f64(),
        ),
    }
}

/// The nofeedback interval: `max(4R, 2s/X)` once an RTT is known (§4.3
/// step 2 applied to the timer reset), 2 s before.
pub fn nofeedback_interval(s: u32, x: f64, r: Option<Duration>) -> Duration {
    match r {
        Some(r) => {
            let by_rtt = 4.0 * r.as_secs_f64();
            let by_rate = 2.0 * s as f64 / x;
            Duration::from_secs_f64(by_rtt.max(by_rate))
        }
        None => Duration::from_secs(2),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_window_follows_rfc3390() {
        assert_eq!(initial_window(1000), 4000.0); // 4s < 4380 only when s < 1095
        assert_eq!(initial_window(1500), 4380.0);
        assert_eq!(initial_window(4000), 8000.0); // 2s dominates for big s
    }

    #[test]
    fn rtt_sample_clamps_to_a_microsecond() {
        let now = SimTime::from_secs(1);
        let s = rtt_sample(
            now,
            now - Duration::from_millis(10),
            Duration::from_millis(50),
        );
        assert_eq!(s, Duration::from_micros(1));
    }

    #[test]
    fn rtt_ewma_first_sample_verbatim() {
        let s = Duration::from_millis(80);
        assert_eq!(rtt_ewma(None, s), s);
        let folded = rtt_ewma(Some(Duration::from_millis(100)), Duration::from_millis(200));
        assert!(folded > Duration::from_millis(100) && folded < Duration::from_millis(120));
    }

    #[test]
    fn nofeedback_interval_is_4r_or_2s_over_x() {
        // High rate: 4R dominates.
        let i = nofeedback_interval(1000, 1e6, Some(Duration::from_millis(100)));
        assert_eq!(i, Duration::from_millis(400));
        // Starved rate: 2s/X dominates.
        let i = nofeedback_interval(1000, 100.0, Some(Duration::from_millis(100)));
        assert_eq!(i, Duration::from_secs(20));
        assert_eq!(nofeedback_interval(1000, 1e6, None), Duration::from_secs(2));
    }
}
