//! gTFRC — *guaranteed* TFRC for DiffServ Assured Forwarding networks.
//!
//! The specialisation proposed by the authors' IETF draft
//! (`draft-lochin-ietf-tsvwg-gtfrc-02`) and composed into QTPAF: when the
//! application has negotiated a minimum bandwidth `g` with the network's AF
//! service, the sending rate becomes
//!
//! ```text
//! X = max(g, X_tfrc)
//! ```
//!
//! Rationale: inside the AF class the first `g` of the flow's traffic is
//! marked in-profile (green) by the edge conditioner and is protected by
//! the RIO core queue, so it is *not* subject to congestion on the assured
//! part — losses observed by TFRC mostly hit the out-of-profile excess.
//! Plain TFRC (like TCP) misreads those out-of-profile losses as a signal
//! to slow below the reservation; the `max` prevents exactly that, while
//! above `g` the flow stays TCP-friendly because the excess is governed by
//! the unmodified TFRC equation.

use qtp_simnet::time::{Rate, SimTime};
use std::time::Duration;

use crate::sender::{SenderConfig, TfrcSender};

/// A TFRC sender with a minimum guaranteed rate.
#[derive(Debug, Clone)]
pub struct GtfrcSender {
    inner: TfrcSender,
    /// The bandwidth negotiated with the AF service, bytes/second.
    target_bytes_per_sec: f64,
}

impl GtfrcSender {
    /// `target` is the rate negotiated with the network service (`g`).
    pub fn new(cfg: SenderConfig, target: Rate) -> Self {
        GtfrcSender {
            inner: TfrcSender::new(cfg),
            target_bytes_per_sec: target.bytes_per_sec(),
        }
    }

    /// The negotiated guarantee in bytes/second.
    pub fn target(&self) -> f64 {
        self.target_bytes_per_sec
    }

    /// Change the guarantee at runtime (renegotiation).
    pub fn set_target(&mut self, target: Rate) {
        self.target_bytes_per_sec = target.bytes_per_sec();
    }

    /// The underlying TFRC machine (for inspection).
    pub fn tfrc(&self) -> &TfrcSender {
        &self.inner
    }

    /// See [`TfrcSender::seed_rtt`].
    pub fn seed_rtt(&mut self, now: SimTime, rtt: Duration) {
        self.inner.seed_rtt(now, rtt);
    }

    /// See [`TfrcSender::on_feedback`].
    pub fn on_feedback(
        &mut self,
        now: SimTime,
        ts_echo: SimTime,
        t_delay: Duration,
        x_recv: f64,
        p: f64,
    ) {
        self.inner.on_feedback(now, ts_echo, t_delay, x_recv, p);
    }

    /// See [`TfrcSender::on_nofeedback_timer`].
    pub fn on_nofeedback_timer(&mut self, now: SimTime) {
        self.inner.on_nofeedback_timer(now);
    }

    /// See [`TfrcSender::nofeedback_deadline`].
    pub fn nofeedback_deadline(&self) -> SimTime {
        self.inner.nofeedback_deadline()
    }

    /// The gTFRC control law: `max(g, X_tfrc)` in bytes/second.
    pub fn allowed_rate(&self) -> f64 {
        self.inner.allowed_rate().max(self.target_bytes_per_sec)
    }

    /// Inter-packet gap at the guaranteed-or-better rate.
    pub fn send_interval(&self) -> Duration {
        Duration::from_secs_f64(self.inner.segment_size() as f64 / self.allowed_rate())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: u32 = 1000;
    const RTT: Duration = Duration::from_millis(100);

    fn gtfrc(target_kbps: u64) -> GtfrcSender {
        let mut g = GtfrcSender::new(SenderConfig::new(S), Rate::from_kbps(target_kbps));
        g.seed_rtt(SimTime::ZERO, RTT);
        g
    }

    fn fb(g: &mut GtfrcSender, now: SimTime, x_recv: f64, p: f64) {
        g.on_feedback(now, now - RTT, Duration::ZERO, x_recv, p);
    }

    #[test]
    fn rate_never_below_target() {
        // 800 kbit/s = 100_000 B/s target.
        let mut g = gtfrc(800);
        // Brutal loss: plain TFRC would collapse far below target.
        fb(&mut g, SimTime::from_millis(100), 10_000.0, 0.2);
        assert!(
            g.tfrc().allowed_rate() < 100_000.0,
            "TFRC collapsed as expected"
        );
        assert!((g.allowed_rate() - 100_000.0).abs() < 1e-9, "gTFRC holds g");
    }

    #[test]
    fn behaves_like_tfrc_above_target() {
        // Tiny target: with low loss, the equation dominates.
        let mut g = gtfrc(8); // 1000 B/s
        fb(&mut g, SimTime::from_millis(100), 1e9, 0.001);
        let plain = g.tfrc().allowed_rate();
        assert!(plain > 1000.0);
        assert_eq!(g.allowed_rate(), plain);
    }

    #[test]
    fn send_interval_uses_guaranteed_rate() {
        let mut g = gtfrc(800); // 100 kB/s
        fb(&mut g, SimTime::from_millis(100), 10_000.0, 0.3);
        // 1000 B at 100 kB/s = 10 ms.
        assert_eq!(g.send_interval(), Duration::from_millis(10));
    }

    #[test]
    fn set_target_renegotiates() {
        let mut g = gtfrc(800);
        fb(&mut g, SimTime::from_millis(100), 10_000.0, 0.3);
        g.set_target(Rate::from_kbps(1600));
        assert!((g.allowed_rate() - 200_000.0).abs() < 1e-9);
        assert!((g.target() - 200_000.0).abs() < 1e-9);
    }

    #[test]
    fn nofeedback_timer_does_not_break_guarantee() {
        let mut g = gtfrc(800);
        fb(&mut g, SimTime::from_millis(100), 10_000.0, 0.3);
        g.on_nofeedback_timer(g.nofeedback_deadline());
        assert!(g.allowed_rate() >= 100_000.0);
    }
}
