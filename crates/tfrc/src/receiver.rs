//! The RFC 3448 TFRC **receiver** state machine.
//!
//! This is the component the paper's QTPlight instance removes from light
//! clients: per data packet it runs loss detection, loss-event grouping and
//! (on feedback) the weighted-average-loss-interval computation, and it
//! must hold the loss-interval history in memory. All of that work is
//! metered (see [`qtp_metrics`]) so experiment E5 can compare it against
//! the trivial QTPlight receiver.
//!
//! Responsibilities (RFC 3448 §6):
//! * detect losses from sequence gaps ([`crate::detector::LossDetector`]);
//! * group losses into loss *events* — losses whose (interpolated) sender
//!   timestamps fall within one RTT of the event start belong to the same
//!   event (§5.2);
//! * maintain the loss-interval history and compute `p` (§5.4);
//! * measure the receive rate `X_recv` over each feedback round;
//! * emit feedback once per RTT, or immediately when a new loss event
//!   begins (§6.2).

use std::time::Duration;

use qtp_metrics::{CostMeter, OpClass, StateSize};
use qtp_simnet::time::SimTime;

use crate::detector::LossDetector;
use crate::equation;
use crate::loss_history::LossIntervalHistory;

/// Feedback report produced by the receiver once per RTT (RFC 3448 §3.2.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Feedback {
    /// Sender timestamp of the most recent data packet (for RTT estimation).
    pub ts_echo: SimTime,
    /// Time spent at the receiver between receiving that packet and sending
    /// this feedback (subtracted from the RTT sample).
    pub t_delay: Duration,
    /// Receive rate since the previous feedback, bytes/second.
    pub x_recv: f64,
    /// Receiver-computed loss event rate.
    pub p: f64,
}

/// What the endpoint should do after handing the receiver a data packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RxAction {
    /// A new loss event started: send feedback immediately.
    pub feedback_now: bool,
}

/// RFC 3448 receiver.
#[derive(Debug, Clone)]
pub struct TfrcReceiver {
    /// Nominal segment size (bytes), from connection setup.
    s: u32,
    detector: LossDetector,
    history: LossIntervalHistory,
    /// Sender's current RTT estimate, carried in data-packet headers; used
    /// for loss-event grouping and the feedback cadence.
    rtt_hint: Duration,
    /// Estimated sender timestamp at which the current loss event started.
    last_event_ts: Option<SimTime>,
    /// Sender timestamp and local receive time of the most recent packet.
    last_pkt: Option<(SimTime, SimTime)>,
    /// Payload bytes received since the last feedback was built.
    bytes_since_fb: u64,
    /// When the current feedback round started.
    round_started: Option<SimTime>,
    /// Receive rate reported in the previous feedback (bytes/s).
    last_x_recv: f64,
    /// Aggregated per-packet cost of everything *except* the sub-structures
    /// (which carry their own meters).
    pub meter: CostMeter,
}

impl TfrcReceiver {
    /// `s`: nominal packet payload size in bytes; `initial_rtt_hint`: the
    /// sender's RTT estimate before the first data packet (handshake RTT).
    pub fn new(s: u32, initial_rtt_hint: Duration) -> Self {
        TfrcReceiver {
            s,
            detector: LossDetector::new(),
            history: LossIntervalHistory::new(),
            rtt_hint: initial_rtt_hint,
            last_event_ts: None,
            last_pkt: None,
            bytes_since_fb: 0,
            round_started: None,
            last_x_recv: 0.0,
            meter: CostMeter::new(),
        }
    }

    /// Process one data packet.
    ///
    /// * `now` — local receive time.
    /// * `seq` — packet sequence number.
    /// * `sender_ts` — the sender timestamp carried in the header.
    /// * `rtt_hint` — the sender's RTT estimate carried in the header.
    /// * `payload_bytes` — payload size for `X_recv` accounting.
    pub fn on_data(
        &mut self,
        now: SimTime,
        seq: u64,
        sender_ts: SimTime,
        rtt_hint: Duration,
        payload_bytes: u32,
    ) -> RxAction {
        if !rtt_hint.is_zero() {
            self.rtt_hint = rtt_hint;
        }
        self.last_pkt = Some((sender_ts, now));
        self.bytes_since_fb += payload_bytes as u64;
        if self.round_started.is_none() {
            self.round_started = Some(now);
        }
        self.meter.tick(OpClass::Update, 3);
        self.meter.tick(OpClass::Compare, 2);

        let lost = self.detector.on_packet(seq, sender_ts);
        let mut new_event = false;
        for l in lost {
            new_event |= self.register_loss(now, l.seq, l.est_ts);
        }
        RxAction {
            feedback_now: new_event,
        }
    }

    /// Fold one declared loss into the event structure. Returns true if it
    /// started a *new* loss event.
    fn register_loss(&mut self, now: SimTime, seq: u64, est_ts: SimTime) -> bool {
        self.meter.tick(OpClass::Compare, 2);
        match self.last_event_ts {
            None => {
                // First loss event ever: synthesize the first interval from
                // the current receive rate (RFC 3448 §6.3.1).
                let x_recv = self.current_x_recv(now).max(self.s as f64);
                let p_synth = equation::inverse(self.s, self.rtt_hint, x_recv);
                let first_interval = (1.0 / p_synth).max(1.0);
                self.meter.tick(OpClass::Arith, 8);
                self.history.record_first_loss(seq, first_interval);
                self.last_event_ts = Some(est_ts);
                true
            }
            Some(event_ts) => {
                if est_ts > event_ts + self.rtt_hint {
                    self.history.record_loss_event(seq);
                    self.last_event_ts = Some(est_ts);
                    true
                } else {
                    // Same loss event; nothing to record.
                    false
                }
            }
        }
    }

    /// Receive rate over the current feedback round, bytes/second.
    fn current_x_recv(&self, now: SimTime) -> f64 {
        match self.round_started {
            Some(start) => {
                let dt = now.saturating_since(start).as_secs_f64();
                if dt <= 0.0 {
                    // Degenerate round: fall back to the previous estimate.
                    self.last_x_recv
                } else {
                    self.bytes_since_fb as f64 / dt
                }
            }
            None => 0.0,
        }
    }

    /// Build the periodic feedback report and start a new round.
    /// Returns `None` if no data packet has been received yet.
    pub fn build_feedback(&mut self, now: SimTime) -> Option<Feedback> {
        let (ts_echo, rx_time) = self.last_pkt?;
        let x_recv = self.current_x_recv(now);
        let p = match self.detector.highest_seq() {
            Some(hi) => self.history.loss_event_rate(hi),
            None => 0.0,
        };
        self.meter.tick(OpClass::Arith, 4);
        self.meter.tick(OpClass::Update, 2);
        self.last_x_recv = x_recv;
        self.bytes_since_fb = 0;
        self.round_started = Some(now);
        Some(Feedback {
            ts_echo,
            t_delay: now.saturating_since(rx_time),
            x_recv,
            p,
        })
    }

    /// The feedback cadence: once per (sender-estimated) RTT, per §6.2.
    pub fn feedback_interval(&self) -> Duration {
        self.rtt_hint
    }

    /// Current loss event rate (mostly for tests and instrumentation).
    pub fn loss_event_rate(&mut self) -> f64 {
        match self.detector.highest_seq() {
            Some(hi) => self.history.loss_event_rate(hi),
            None => 0.0,
        }
    }

    /// Total processing operations across all receiver components: the E5
    /// "receiver load" measure.
    pub fn total_ops(&self) -> u64 {
        self.meter.total() + self.detector.meter.total() + self.history.meter.total()
    }
}

impl StateSize for TfrcReceiver {
    fn state_bytes(&self) -> usize {
        self.detector.state_bytes()
            + self.history.state_bytes()
            // Fixed receiver fields an implementation must hold.
            + std::mem::size_of::<u32>()            // s
            + std::mem::size_of::<Duration>()       // rtt_hint
            + std::mem::size_of::<Option<SimTime>>() // last_event_ts
            + std::mem::size_of::<Option<(SimTime, SimTime)>>()
            + std::mem::size_of::<u64>()            // bytes_since_fb
            + std::mem::size_of::<Option<SimTime>>() // round_started
            + std::mem::size_of::<f64>() // last_x_recv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: u32 = 1000;
    const RTT: Duration = Duration::from_millis(100);

    /// Drive a receiver with packets every 10 ms (sender ts == receive time
    /// minus a fixed 50 ms one-way delay), dropping the seqs in `drop`.
    fn drive(n: u64, drop: &[u64]) -> (TfrcReceiver, Vec<Feedback>) {
        let mut rx = TfrcReceiver::new(S, RTT);
        let mut fbs = Vec::new();
        let mut next_fb = SimTime::from_millis(100);
        for seq in 0..n {
            if drop.contains(&seq) {
                continue;
            }
            let sender_ts = SimTime::from_millis(seq * 10);
            let now = sender_ts + Duration::from_millis(50);
            let act = rx.on_data(now, seq, sender_ts, RTT, S);
            if act.feedback_now || now >= next_fb {
                if let Some(fb) = rx.build_feedback(now) {
                    fbs.push(fb);
                }
                next_fb = now + rx.feedback_interval();
            }
        }
        (rx, fbs)
    }

    #[test]
    fn loss_free_stream_reports_p_zero() {
        let (mut rx, fbs) = drive(100, &[]);
        assert!(!fbs.is_empty());
        assert!(fbs.iter().all(|fb| fb.p == 0.0));
        assert_eq!(rx.loss_event_rate(), 0.0);
    }

    #[test]
    fn x_recv_matches_actual_receive_rate() {
        // 1000 B every 10 ms = 100 kB/s.
        let (_, fbs) = drive(200, &[]);
        let last = fbs.last().unwrap();
        assert!(
            (last.x_recv - 100_000.0).abs() < 15_000.0,
            "x_recv={}",
            last.x_recv
        );
    }

    #[test]
    fn first_loss_triggers_immediate_feedback_with_positive_p() {
        let (_, fbs) = drive(50, &[20]);
        let after_loss: Vec<&Feedback> = fbs.iter().filter(|f| f.p > 0.0).collect();
        assert!(
            !after_loss.is_empty(),
            "feedback after the loss must carry p>0"
        );
    }

    #[test]
    fn single_loss_p_reflects_receive_rate_inversion() {
        // With ~100 kB/s receive rate, R=0.1s: the synthetic first interval
        // is 1/inverse(...) which for this rate is on the order of 100+
        // packets, so p should be small but positive.
        let (mut rx, _) = drive(100, &[50]);
        let p = rx.loss_event_rate();
        assert!(p > 0.0 && p < 0.1, "p={p}");
    }

    #[test]
    fn clustered_losses_form_one_event() {
        // Packets 30..34 dropped together: their interpolated timestamps sit
        // within one RTT, so they form ONE loss event -> history has exactly
        // one (synthetic) interval and an open interval.
        let (rx, _) = drive(100, &[30, 31, 32, 33]);
        assert_eq!(rx.history.intervals().len(), 1);
    }

    #[test]
    fn spread_losses_form_separate_events() {
        // Drops 200 packets apart = 2 s apart >> RTT: separate events.
        let (rx, _) = drive(1000, &[100, 300, 500, 700]);
        // First event synthesizes one interval; each subsequent event closes
        // one more: 1 + 3 = 4 intervals.
        assert_eq!(rx.history.intervals().len(), 4);
        // Closed intervals between events are ~200 packets.
        let closed = &rx.history.intervals()[..3];
        assert!(
            closed.iter().all(|&l| (l - 200.0).abs() < 2.0),
            "{closed:?}"
        );
    }

    #[test]
    fn steady_periodic_loss_converges_to_loss_rate() {
        // Every 50th packet dropped -> loss event rate ~ 1/50 = 0.02
        // (events far apart in time, so each loss is its own event).
        let drops: Vec<u64> = (1..40).map(|k| k * 50).collect();
        let (mut rx, _) = drive(2000, &drops);
        let p = rx.loss_event_rate();
        assert!((p - 0.02).abs() < 0.004, "p={p}");
    }

    #[test]
    fn feedback_resets_round_measurement() {
        let mut rx = TfrcReceiver::new(S, RTT);
        let t0 = SimTime::from_secs(1);
        rx.on_data(t0, 0, SimTime::ZERO, RTT, S);
        rx.on_data(
            t0 + Duration::from_millis(10),
            1,
            SimTime::from_millis(10),
            RTT,
            S,
        );
        let fb1 = rx.build_feedback(t0 + Duration::from_millis(20)).unwrap();
        assert!(fb1.x_recv > 0.0);
        // No packets in the next round.
        let fb2 = rx.build_feedback(t0 + Duration::from_millis(120)).unwrap();
        assert_eq!(fb2.x_recv, 0.0);
    }

    #[test]
    fn ts_echo_and_t_delay_enable_rtt_reconstruction() {
        let mut rx = TfrcReceiver::new(S, RTT);
        let sender_ts = SimTime::from_millis(1000);
        let arrive = sender_ts + Duration::from_millis(40); // one-way 40 ms
        rx.on_data(arrive, 0, sender_ts, RTT, S);
        let fb_time = arrive + Duration::from_millis(25); // held 25 ms
        let fb = rx.build_feedback(fb_time).unwrap();
        assert_eq!(fb.ts_echo, sender_ts);
        assert_eq!(fb.t_delay, Duration::from_millis(25));
        // The sender at time `fb_time + 40ms` computes:
        // rtt = now - ts_echo - t_delay = 105 - 40... (1105-1000-25 = 80 ms
        // = the true two-way propagation).
        let sender_now = fb_time + Duration::from_millis(40);
        let rtt = sender_now.saturating_since(fb.ts_echo) - fb.t_delay;
        assert_eq!(rtt, Duration::from_millis(80));
    }

    #[test]
    fn no_feedback_before_any_data() {
        let mut rx = TfrcReceiver::new(S, RTT);
        assert!(rx.build_feedback(SimTime::from_secs(1)).is_none());
    }

    #[test]
    fn receiver_ops_grow_with_loss_rate() {
        // The E5 premise in miniature: a lossier stream costs the RFC 3448
        // receiver more operations per packet (more holes, more events, more
        // history maintenance).
        let (rx_clean, _) = drive(2000, &[]);
        let drops: Vec<u64> = (1..200).map(|k| k * 10).collect();
        let (rx_lossy, _) = drive(2000, &drops);
        let clean_per_pkt = rx_clean.total_ops() as f64 / 2000.0;
        let lossy_per_pkt = rx_lossy.total_ops() as f64 / 1800.0;
        assert!(
            lossy_per_pkt > clean_per_pkt,
            "lossy={lossy_per_pkt}, clean={clean_per_pkt}"
        );
    }

    #[test]
    fn state_bytes_nonzero_and_bounded() {
        let (rx, _) = drive(2000, &[100, 300, 500]);
        let bytes = rx.state_bytes();
        assert!(
            bytes > 50,
            "history+detector state should be visible: {bytes}"
        );
        assert!(bytes < 10_000, "state should stay bounded: {bytes}");
    }
}
