//! Loss-interval history and the weighted average loss interval (RFC 3448 §5).
//!
//! TFRC's loss event rate `p` is the inverse of the **average loss
//! interval**: the weighted mean of the number of packets between
//! consecutive loss events, over the last `n = 8` intervals, with weights
//! `1, 1, 1, 1, 0.8, 0.6, 0.4, 0.2` (most recent first). The *open* interval
//! (packets since the most recent loss event) is included only when doing so
//! **increases** the average — so a long loss-free run raises the allowed
//! rate, but a short one cannot depress it (RFC 3448 §5.4).
//!
//! This structure — a ring of interval lengths plus the weighted-average
//! computation on every feedback — is exactly the state the paper's QTPlight
//! variant evicts from resource-limited receivers. Every operation ticks a
//! [`CostMeter`] so experiment E5 can price it.

use qtp_metrics::{CostMeter, OpClass, StateSize};

/// Number of closed intervals retained (RFC 3448 recommends 8).
pub const N_INTERVALS: usize = 8;

/// RFC 3448 §5.4 weights, most recent interval first.
pub const WEIGHTS: [f64; N_INTERVALS] = [1.0, 1.0, 1.0, 1.0, 0.8, 0.6, 0.4, 0.2];

/// Loss-interval history: closed intervals (most recent first) plus the
/// sequence number where the current (open) interval started.
#[derive(Debug, Clone)]
pub struct LossIntervalHistory {
    /// Closed interval lengths, most recent first; at most `N_INTERVALS`.
    intervals: Vec<f64>,
    /// Sequence number of the first packet of the most recent loss event
    /// (i.e. where the open interval starts), if any loss has occurred.
    open_start_seq: Option<u64>,
    /// Per-operation cost accounting for the E5 experiment.
    pub meter: CostMeter,
}

impl LossIntervalHistory {
    /// An empty history: no loss event seen yet, `p = 0`.
    pub fn new() -> Self {
        LossIntervalHistory {
            intervals: Vec::with_capacity(N_INTERVALS + 1),
            open_start_seq: None,
            meter: CostMeter::new(),
        }
    }

    /// Has any loss event been recorded?
    pub fn has_loss(&self) -> bool {
        self.open_start_seq.is_some()
    }

    /// Sequence where the open interval started (first packet of the most
    /// recent loss event).
    pub fn open_start(&self) -> Option<u64> {
        self.open_start_seq
    }

    /// Record the **first** loss event. RFC 3448 §6.3.1: the first interval
    /// length is synthesized by the caller (from the observed receive rate
    /// via the inverse throughput equation) because no real history exists.
    ///
    /// `synthetic_len` is that computed interval; `event_seq` is the
    /// sequence number of the first packet of the loss event.
    pub fn record_first_loss(&mut self, event_seq: u64, synthetic_len: f64) {
        debug_assert!(self.open_start_seq.is_none(), "first loss already seen");
        self.meter.tick(OpClass::Alloc, 1);
        self.meter.tick(OpClass::Update, 1);
        self.intervals.push(synthetic_len.max(1.0));
        self.open_start_seq = Some(event_seq);
    }

    /// Record a subsequent loss event starting at `event_seq`. Closes the
    /// open interval (its length is the sequence distance between event
    /// starts) and opens a new one.
    pub fn record_loss_event(&mut self, event_seq: u64) {
        let start = self
            .open_start_seq
            .expect("record_first_loss must come first");
        debug_assert!(event_seq > start, "loss events must advance");
        let len = (event_seq - start) as f64;
        self.meter.tick(OpClass::Alloc, 1);
        self.intervals.insert(0, len);
        self.meter.tick(OpClass::Scan, self.intervals.len() as u64);
        if self.intervals.len() > N_INTERVALS {
            self.intervals.pop();
            self.meter.tick(OpClass::Update, 1);
        }
        self.open_start_seq = Some(event_seq);
        self.meter.tick(OpClass::Update, 1);
    }

    /// The weighted average loss interval, including the open interval
    /// `[open_start, highest_seq]` only if that increases the average
    /// (RFC 3448 §5.4's `max(I_tot0, I_tot1)` rule).
    ///
    /// Returns `None` until the first loss event.
    pub fn average_interval(&mut self, highest_seq: u64) -> Option<f64> {
        let open_start = self.open_start_seq?;
        debug_assert!(!self.intervals.is_empty());
        let open_len = (highest_seq.saturating_sub(open_start) + 1) as f64;

        // I_tot0: closed intervals only, weights aligned at the most recent.
        let mut tot0 = 0.0;
        let mut w0 = 0.0;
        for (i, &len) in self.intervals.iter().take(N_INTERVALS).enumerate() {
            tot0 += len * WEIGHTS[i];
            w0 += WEIGHTS[i];
        }
        self.meter
            .tick(OpClass::Scan, self.intervals.len().min(N_INTERVALS) as u64);
        self.meter.tick(
            OpClass::Arith,
            2 * self.intervals.len().min(N_INTERVALS) as u64,
        );

        // I_tot1: open interval becomes index 0, shifting the rest.
        let mut tot1 = open_len * WEIGHTS[0];
        let mut w1 = WEIGHTS[0];
        for (i, &len) in self.intervals.iter().take(N_INTERVALS - 1).enumerate() {
            tot1 += len * WEIGHTS[i + 1];
            w1 += WEIGHTS[i + 1];
        }
        self.meter.tick(
            OpClass::Scan,
            self.intervals.len().min(N_INTERVALS - 1) as u64,
        );
        self.meter.tick(
            OpClass::Arith,
            2 * self.intervals.len().min(N_INTERVALS - 1) as u64 + 2,
        );
        self.meter.tick(OpClass::Compare, 1);

        Some((tot0 / w0).max(tot1 / w1))
    }

    /// The loss event rate `p = 1 / I_mean`, or 0 before any loss.
    pub fn loss_event_rate(&mut self, highest_seq: u64) -> f64 {
        self.meter.tick(OpClass::Arith, 1);
        match self.average_interval(highest_seq) {
            Some(i_mean) => 1.0 / i_mean.max(1.0),
            None => 0.0,
        }
    }

    /// Closed intervals, most recent first (for tests/inspection).
    pub fn intervals(&self) -> &[f64] {
        &self.intervals
    }
}

impl Default for LossIntervalHistory {
    fn default() -> Self {
        Self::new()
    }
}

impl StateSize for LossIntervalHistory {
    fn state_bytes(&self) -> usize {
        // Interval ring + open-interval bookkeeping; what an embedded
        // implementation must keep in RAM per connection.
        self.intervals.len() * std::mem::size_of::<f64>() + std::mem::size_of::<Option<u64>>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// History with first loss at seq 0 (synthetic len 10) and subsequent
    /// loss events every 100 packets.
    fn regular_history(events: usize) -> LossIntervalHistory {
        let mut h = LossIntervalHistory::new();
        h.record_first_loss(0, 10.0);
        for k in 1..events {
            h.record_loss_event(k as u64 * 100);
        }
        h
    }

    #[test]
    fn no_loss_means_p_zero() {
        let mut h = LossIntervalHistory::new();
        assert_eq!(h.loss_event_rate(1000), 0.0);
        assert_eq!(h.average_interval(1000), None);
        assert!(!h.has_loss());
    }

    #[test]
    fn first_loss_uses_synthetic_interval() {
        let mut h = LossIntervalHistory::new();
        h.record_first_loss(50, 42.0);
        assert!(h.has_loss());
        assert_eq!(h.intervals(), &[42.0]);
        // Open interval is short (seq 50..=50 -> len 1), so the average is
        // the synthetic interval.
        let avg = h.average_interval(50).unwrap();
        assert!((avg - 42.0).abs() < 1e-9);
    }

    #[test]
    fn steady_loss_converges_to_interval_length() {
        let mut h = regular_history(20);
        // All 8 retained intervals are exactly 100; open interval short.
        let avg = h.average_interval(1901).unwrap();
        assert!((avg - 100.0).abs() < 1e-9, "avg={avg}");
        let p = h.loss_event_rate(1901);
        assert!((p - 0.01).abs() < 1e-9, "p={p}");
    }

    #[test]
    fn history_retains_at_most_n_intervals() {
        let h = regular_history(30);
        assert_eq!(h.intervals().len(), N_INTERVALS);
        assert!(h.intervals().iter().all(|&l| l == 100.0));
    }

    #[test]
    fn open_interval_raises_average_after_loss_free_run() {
        let mut h = regular_history(10);
        let short = h.average_interval(901).unwrap();
        // A long loss-free run: open interval of ~10_000 packets.
        let long = h.average_interval(10_900).unwrap();
        assert!(long > short * 5.0, "short={short}, long={long}");
        // p drops correspondingly.
        assert!(h.loss_event_rate(10_900) < 0.2 * h.loss_event_rate(901));
    }

    #[test]
    fn short_open_interval_cannot_depress_average() {
        let mut h = regular_history(10);
        // Open interval of length 1 (loss event just started): the average
        // must equal the closed-interval value, not be dragged down.
        let avg_with_tiny_open = h.average_interval(900).unwrap();
        assert!((avg_with_tiny_open - 100.0).abs() < 1e-9);
    }

    #[test]
    fn recent_intervals_weigh_more() {
        let mut h = LossIntervalHistory::new();
        h.record_first_loss(0, 100.0);
        // Seven more events, each interval 100 packets.
        for k in 1..8 {
            h.record_loss_event(k * 100);
        }
        let base = h.average_interval(701).unwrap();
        // One *short* recent interval (10 packets).
        h.record_loss_event(710);
        let after = h.average_interval(711).unwrap();
        assert!(after < base, "recent short interval must lower the mean");
        // The drop is bounded by the weight of a single slot.
        assert!(after > base * 0.5);
    }

    #[test]
    fn meter_ticks_on_every_average() {
        let mut h = regular_history(10);
        let before = h.meter.total();
        let _ = h.average_interval(1000);
        assert!(h.meter.total() > before);
    }

    #[test]
    fn state_bytes_grows_with_intervals() {
        let h1 = regular_history(2);
        let h8 = regular_history(12);
        assert!(h8.state_bytes() > h1.state_bytes());
    }

    #[test]
    #[should_panic(expected = "record_first_loss must come first")]
    fn loss_event_before_first_loss_panics() {
        let mut h = LossIntervalHistory::new();
        h.record_loss_event(10);
    }

    #[test]
    fn weights_match_rfc() {
        assert_eq!(WEIGHTS, [1.0, 1.0, 1.0, 1.0, 0.8, 0.6, 0.4, 0.2]);
        let sum: f64 = WEIGHTS.iter().sum();
        assert!((sum - 6.0).abs() < 1e-9);
    }
}
