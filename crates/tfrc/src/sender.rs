//! The RFC 3448 TFRC **sender** state machine.
//!
//! The sender paces packets at an allowed rate `X` updated on each feedback
//! packet (§4.3): while no loss has been reported it doubles the rate once
//! per RTT (slow-start analogue); once `p > 0` it follows the throughput
//! equation, clamped to at most twice the reported receive rate. A
//! *nofeedback timer* (§4.4) halves the rate when feedback stops arriving.
//!
//! The sender is deliberately agnostic about **where** `p` comes from: the
//! standard TFRC instance passes the receiver-computed value from the
//! feedback packet, while the paper's QTPlight instance computes `p` itself
//! from SACK feedback and passes that. This one-parameter seam is exactly
//! the "composition and specialisation" the paper describes.

use std::time::Duration;

use qtp_metrics::{CostMeter, OpClass};
use qtp_simnet::time::SimTime;

use crate::equation;
use crate::update;

pub use crate::update::{RTT_EWMA_Q, T_MBI};

/// Configuration knobs for the sender.
#[derive(Debug, Clone)]
pub struct SenderConfig {
    /// Segment size in bytes.
    pub s: u32,
    /// Enable §4.5 rate oscillation reduction (adjusts the instantaneous
    /// rate by `sqrt(R_sample / R_sqmean)`). Off by default, as in RFC 3448.
    pub oscillation_reduction: bool,
}

impl SenderConfig {
    pub fn new(s: u32) -> Self {
        SenderConfig {
            s,
            oscillation_reduction: false,
        }
    }
}

/// RFC 3448 sender.
#[derive(Debug, Clone)]
pub struct TfrcSender {
    cfg: SenderConfig,
    /// Allowed transmit rate, bytes/second.
    x: f64,
    /// Smoothed RTT; `None` until the first sample (or handshake seed).
    r: Option<Duration>,
    /// Square-root-EWMA of RTT samples for oscillation reduction.
    r_sqmean: f64,
    /// Most recent reported receive rate (bytes/s).
    x_recv: f64,
    /// Most recent loss event rate in force.
    p: f64,
    /// Time the rate was last doubled during slow start.
    tld: Option<SimTime>,
    /// Absolute deadline of the nofeedback timer.
    nofeedback_deadline: SimTime,
    /// Whether any feedback has ever arrived.
    got_feedback: bool,
    /// Sender-side cost accounting (for the E5 sender-vs-receiver ledger).
    pub meter: CostMeter,
}

impl TfrcSender {
    /// A new sender. Until an RTT is known it may send exactly one packet
    /// ([`TfrcSender::allowed_rate`] returns one packet per second as the
    /// bootstrap rate, per §4.2's "one packet per second" cold start).
    pub fn new(cfg: SenderConfig) -> Self {
        let s = cfg.s as f64;
        TfrcSender {
            cfg,
            x: s, // 1 packet/second until an RTT is known (§4.2)
            r: None,
            r_sqmean: 0.0,
            x_recv: 0.0,
            p: 0.0,
            tld: None,
            nofeedback_deadline: SimTime::from_secs(2), // §4.2: 2 s initial
            got_feedback: false,
            meter: CostMeter::new(),
        }
    }

    /// Seed the RTT from the connection handshake (§4.2): the initial rate
    /// becomes one initial window per RTT, `W_init = min(4s, max(2s, 4380))`
    /// (RFC 3390's initial window).
    pub fn seed_rtt(&mut self, now: SimTime, rtt: Duration) {
        debug_assert!(!rtt.is_zero());
        self.r = Some(rtt);
        self.r_sqmean = rtt.as_secs_f64().sqrt();
        self.x = update::initial_rate(self.cfg.s, rtt);
        self.tld = Some(now);
        self.nofeedback_deadline = now + self.nofeedback_interval();
        self.meter.tick(OpClass::Update, 3);
    }

    /// Current allowed sending rate, bytes/second.
    pub fn allowed_rate(&self) -> f64 {
        self.x
    }

    /// Inter-packet gap at the current allowed rate.
    pub fn send_interval(&self) -> Duration {
        Duration::from_secs_f64(self.cfg.s as f64 / self.x)
    }

    /// Smoothed RTT estimate, if any.
    pub fn rtt(&self) -> Option<Duration> {
        self.r
    }

    /// Loss event rate currently in force.
    pub fn loss_rate(&self) -> f64 {
        self.p
    }

    /// Segment size.
    pub fn segment_size(&self) -> u32 {
        self.cfg.s
    }

    /// Absolute deadline of the nofeedback timer; the endpoint must call
    /// [`TfrcSender::on_nofeedback_timer`] when `now` reaches it.
    pub fn nofeedback_deadline(&self) -> SimTime {
        self.nofeedback_deadline
    }

    /// The nofeedback interval: `max(4R, 2s/X)` once an RTT is known (§4.3
    /// step 2 applied to the timer reset).
    fn nofeedback_interval(&self) -> Duration {
        update::nofeedback_interval(self.cfg.s, self.x, self.r)
    }

    /// Process one feedback report (§4.3).
    ///
    /// * `now` — local time.
    /// * `ts_echo`, `t_delay` — RTT reconstruction fields from the report.
    /// * `x_recv` — receive rate reported, bytes/second.
    /// * `p` — loss event rate **chosen by the caller**: receiver-computed
    ///   for standard TFRC, sender-computed for QTPlight.
    pub fn on_feedback(
        &mut self,
        now: SimTime,
        ts_echo: SimTime,
        t_delay: Duration,
        x_recv: f64,
        p: f64,
    ) {
        self.got_feedback = true;
        self.x_recv = x_recv;
        self.p = p;
        self.meter.tick(OpClass::Update, 3);

        // 1. RTT sample and EWMA (shared with the qtp-cc controllers).
        let sample = update::rtt_sample(now, ts_echo, t_delay);
        let r = update::rtt_ewma(self.r, sample);
        self.r = Some(r);
        self.meter.tick(OpClass::Arith, 4);

        // Oscillation reduction bookkeeping (§4.5).
        if self.cfg.oscillation_reduction {
            let sqrt_sample = sample.as_secs_f64().sqrt();
            self.r_sqmean = if self.r_sqmean == 0.0 {
                sqrt_sample
            } else {
                0.9 * self.r_sqmean + 0.1 * sqrt_sample
            };
            self.meter.tick(OpClass::Arith, 3);
        }

        // 2/3. Rate update.
        let s = self.cfg.s as f64;
        let r_secs = r.as_secs_f64();
        let floor = update::min_rate(self.cfg.s);
        if p > 0.0 {
            let x_calc = equation::throughput(self.cfg.s, r, p);
            self.x = x_calc.min(2.0 * x_recv).max(floor);
            self.tld = None; // slow start is over for good
            self.meter.tick(OpClass::Arith, 10);
        } else {
            // Loss-free: double at most once per RTT (initial slow start).
            let can_double = match self.tld {
                Some(tld) => now.saturating_since(tld) >= r,
                None => true,
            };
            if can_double {
                self.x = (2.0 * self.x)
                    .min(2.0 * x_recv.max(s / r_secs))
                    .max(s / r_secs);
                self.tld = Some(now);
            }
            self.meter.tick(OpClass::Arith, 4);
        }

        // Oscillation reduction: scale the instantaneous rate.
        if self.cfg.oscillation_reduction && self.r_sqmean > 0.0 {
            let adj = sample.as_secs_f64().sqrt() / self.r_sqmean;
            // §4.5 limits the down-scaling; apply a mild clamp.
            self.x *= adj.clamp(0.5, 2.0).recip().clamp(0.5, 1.0);
            self.meter.tick(OpClass::Arith, 3);
        }

        // 4. Restart the nofeedback timer.
        self.nofeedback_deadline = now + self.nofeedback_interval();
    }

    /// The nofeedback timer expired (§4.4): halve the effective rate.
    pub fn on_nofeedback_timer(&mut self, now: SimTime) {
        let floor = update::min_rate(self.cfg.s);
        if !self.got_feedback {
            // Never heard from the receiver: halve the cold-start rate.
            self.x = (self.x / 2.0).max(floor);
        } else if self.p > 0.0 {
            // Receive rate limit drives the equation-mode clamp.
            self.x_recv /= 2.0;
            let x_calc = equation::throughput(self.cfg.s, self.r.unwrap(), self.p);
            self.x = x_calc.min(2.0 * self.x_recv).max(floor);
        } else {
            self.x = (self.x / 2.0).max(floor);
        }
        self.meter.tick(OpClass::Arith, 4);
        self.nofeedback_deadline = now + self.nofeedback_interval();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: u32 = 1000;
    const RTT: Duration = Duration::from_millis(100);

    fn seeded_sender() -> TfrcSender {
        let mut tx = TfrcSender::new(SenderConfig::new(S));
        tx.seed_rtt(SimTime::ZERO, RTT);
        tx
    }

    /// Feedback `ts_echo` chosen so the RTT sample equals `RTT`.
    fn fb(tx: &mut TfrcSender, now: SimTime, x_recv: f64, p: f64) {
        let ts_echo = now - RTT;
        tx.on_feedback(now, ts_echo, Duration::ZERO, x_recv, p);
    }

    #[test]
    fn cold_start_is_one_packet_per_second() {
        let tx = TfrcSender::new(SenderConfig::new(S));
        assert_eq!(tx.allowed_rate(), S as f64);
        assert_eq!(tx.send_interval(), Duration::from_secs(1));
    }

    #[test]
    fn seed_rtt_sets_initial_window_rate() {
        let tx = seeded_sender();
        // W_init = min(4*1000, max(2*1000, 4380)) = 4000 bytes per RTT.
        assert!((tx.allowed_rate() - 40_000.0).abs() < 1e-6);
    }

    #[test]
    fn slow_start_doubles_once_per_rtt() {
        let mut tx = seeded_sender();
        let x0 = tx.allowed_rate();
        // Plenty of receive rate headroom.
        fb(&mut tx, SimTime::from_millis(100), 1e9, 0.0);
        let x1 = tx.allowed_rate();
        assert!((x1 / x0 - 2.0).abs() < 1e-9, "x0={x0}, x1={x1}");
        // A second feedback within the same RTT must NOT double again.
        fb(&mut tx, SimTime::from_millis(150), 1e9, 0.0);
        assert_eq!(tx.allowed_rate(), x1);
        // After a full RTT it may.
        fb(&mut tx, SimTime::from_millis(200), 1e9, 0.0);
        assert!((tx.allowed_rate() / x1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn slow_start_limited_by_twice_receive_rate() {
        let mut tx = seeded_sender();
        // Receiver reports only 30 kB/s: rate may not exceed 60 kB/s.
        fb(&mut tx, SimTime::from_millis(100), 30_000.0, 0.0);
        fb(&mut tx, SimTime::from_millis(200), 30_000.0, 0.0);
        fb(&mut tx, SimTime::from_millis(300), 30_000.0, 0.0);
        assert!(tx.allowed_rate() <= 60_000.0 + 1e-9);
    }

    #[test]
    fn equation_mode_tracks_loss_rate() {
        let mut tx = seeded_sender();
        fb(&mut tx, SimTime::from_millis(100), 1e9, 0.01);
        let expect = equation::throughput(S, RTT, 0.01);
        assert!((tx.allowed_rate() - expect).abs() / expect < 1e-6);
        // Higher loss -> lower rate.
        fb(&mut tx, SimTime::from_millis(200), 1e9, 0.05);
        assert!(tx.allowed_rate() < expect);
    }

    #[test]
    fn equation_mode_clamped_by_receive_rate() {
        let mut tx = seeded_sender();
        // Equation would allow ~112 kB/s at p=0.01 but receiver only sees
        // 20 kB/s.
        fb(&mut tx, SimTime::from_millis(100), 20_000.0, 0.01);
        assert!((tx.allowed_rate() - 40_000.0).abs() < 1e-6);
    }

    #[test]
    fn rate_never_below_floor() {
        let mut tx = seeded_sender();
        fb(&mut tx, SimTime::from_millis(100), 1.0, 0.9);
        let floor = S as f64 / T_MBI.as_secs_f64();
        assert!(tx.allowed_rate() >= floor);
    }

    #[test]
    fn rtt_ewma_converges() {
        let mut tx = seeded_sender();
        // Constant 100 ms samples keep the estimate at 100 ms.
        for k in 1..20u64 {
            fb(&mut tx, SimTime::from_millis(100 * k), 1e9, 0.01);
        }
        let r = tx.rtt().unwrap();
        assert!((r.as_secs_f64() - 0.1).abs() < 1e-6, "r={r:?}");
        // A jump to 200 ms moves the estimate slowly (q=0.9).
        let now = SimTime::from_millis(2000);
        tx.on_feedback(
            now,
            now - Duration::from_millis(200),
            Duration::ZERO,
            1e9,
            0.01,
        );
        let r2 = tx.rtt().unwrap();
        assert!(r2 > r && r2 < Duration::from_millis(120), "r2={r2:?}");
    }

    #[test]
    fn t_delay_subtracted_from_rtt_sample() {
        let mut tx = TfrcSender::new(SenderConfig::new(S));
        let now = SimTime::from_secs(1);
        // Echo 300 ms old but receiver held it 200 ms: true RTT 100 ms.
        tx.on_feedback(
            now,
            now - Duration::from_millis(300),
            Duration::from_millis(200),
            1e6,
            0.0,
        );
        assert_eq!(tx.rtt(), Some(Duration::from_millis(100)));
    }

    #[test]
    fn nofeedback_halves_rate() {
        let mut tx = seeded_sender();
        fb(&mut tx, SimTime::from_millis(100), 1e9, 0.0);
        let x = tx.allowed_rate();
        let deadline = tx.nofeedback_deadline();
        tx.on_nofeedback_timer(deadline);
        assert!((tx.allowed_rate() - x / 2.0).abs() < 1e-9);
        // Deadline moved forward.
        assert!(tx.nofeedback_deadline() > deadline);
    }

    #[test]
    fn nofeedback_in_equation_mode_halves_xrecv_clamp() {
        let mut tx = seeded_sender();
        fb(&mut tx, SimTime::from_millis(100), 20_000.0, 0.01);
        assert!((tx.allowed_rate() - 40_000.0).abs() < 1e-6);
        tx.on_nofeedback_timer(tx.nofeedback_deadline());
        // x_recv 20k -> 10k, clamp 2*x_recv = 20k.
        assert!((tx.allowed_rate() - 20_000.0).abs() < 1e-6);
    }

    #[test]
    fn send_interval_is_s_over_x() {
        let tx = seeded_sender();
        let gap = tx.send_interval();
        let expect = S as f64 / tx.allowed_rate();
        assert!((gap.as_secs_f64() - expect).abs() < 1e-9);
    }

    #[test]
    fn feedback_reconstructs_rtt_through_t_delay_zero_clamp() {
        let mut tx = TfrcSender::new(SenderConfig::new(S));
        let now = SimTime::from_secs(1);
        // Pathological report where t_delay exceeds the echo age: the sample
        // clamps to a microsecond rather than panicking.
        tx.on_feedback(
            now,
            now - Duration::from_millis(10),
            Duration::from_millis(50),
            1e6,
            0.0,
        );
        assert!(tx.rtt().unwrap() <= Duration::from_millis(1));
    }
}
