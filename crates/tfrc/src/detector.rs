//! Receiver-side packet-loss detection (RFC 3448 §5.1).
//!
//! A packet is declared lost once at least [`NDUPACK`] packets with higher
//! sequence numbers have arrived — the same reordering tolerance TCP's
//! three-duplicate-ack rule provides. Because loss-*event* grouping needs
//! the (unknowable) send time of the lost packet, its sender timestamp is
//! estimated by linear interpolation between the timestamps of the packets
//! received immediately before and after the hole, as RFC 3448 prescribes.
//!
//! The detector tolerates arbitrary reordering and duplication: a late
//! packet that fills part of a pending hole shrinks or splits it.

use qtp_metrics::{CostMeter, OpClass, StateSize};
use qtp_simnet::time::SimTime;
use std::collections::VecDeque;

/// Packets-above-a-hole threshold before the hole is declared lost.
pub const NDUPACK: u32 = 3;

/// A declared packet loss with its estimated sender timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LostPacket {
    /// Sequence number that never arrived.
    pub seq: u64,
    /// Interpolated sender timestamp of the missing packet.
    pub est_ts: SimTime,
}

/// A contiguous gap in the received sequence space, pending judgment.
#[derive(Debug, Clone)]
struct Hole {
    /// First missing sequence.
    start: u64,
    /// One past the last missing sequence.
    end: u64,
    /// Sequence/timestamp of the packet just below the hole.
    below_seq: u64,
    below_ts: SimTime,
    /// Sequence/timestamp of the first packet seen above the hole.
    above_seq: u64,
    above_ts: SimTime,
    /// Number of distinct packets received above the hole so far.
    above_count: u32,
}

impl Hole {
    /// Interpolate the sender timestamp for a missing sequence.
    fn estimate_ts(&self, seq: u64) -> SimTime {
        debug_assert!(self.below_seq < seq && seq < self.above_seq);
        let span_seq = (self.above_seq - self.below_seq) as f64;
        let frac = (seq - self.below_seq) as f64 / span_seq;
        let span_ns = self
            .above_ts
            .as_nanos()
            .saturating_sub(self.below_ts.as_nanos()) as f64;
        SimTime::from_nanos(self.below_ts.as_nanos() + (frac * span_ns) as u64)
    }
}

/// Sequence-gap loss detector.
#[derive(Debug, Clone)]
pub struct LossDetector {
    /// Highest sequence received so far, with its sender timestamp.
    highest: Option<(u64, SimTime)>,
    /// Open holes, ordered by ascending `start`.
    holes: VecDeque<Hole>,
    /// Cost accounting for the E5 experiment.
    pub meter: CostMeter,
}

impl LossDetector {
    pub fn new() -> Self {
        LossDetector {
            highest: None,
            holes: VecDeque::new(),
            meter: CostMeter::new(),
        }
    }

    /// Highest sequence number received.
    pub fn highest_seq(&self) -> Option<u64> {
        self.highest.map(|(s, _)| s)
    }

    /// Number of unresolved holes (for inspection/tests).
    pub fn pending_holes(&self) -> usize {
        self.holes.len()
    }

    /// Process an arriving packet; returns any packets now declared lost,
    /// in ascending sequence order.
    pub fn on_packet(&mut self, seq: u64, sender_ts: SimTime) -> Vec<LostPacket> {
        self.meter.tick(OpClass::Compare, 1);
        let Some((hi, hi_ts)) = self.highest else {
            self.highest = Some((seq, sender_ts));
            self.meter.tick(OpClass::Update, 1);
            return Vec::new();
        };

        if seq > hi {
            if seq > hi + 1 {
                // New hole between the old highest and this packet.
                self.holes.push_back(Hole {
                    start: hi + 1,
                    end: seq,
                    below_seq: hi,
                    below_ts: hi_ts,
                    above_seq: seq,
                    above_ts: sender_ts,
                    above_count: 0, // incremented below with all others
                });
                self.meter.tick(OpClass::Alloc, 1);
            }
            self.highest = Some((seq, sender_ts));
            self.meter.tick(OpClass::Update, 1);
        } else {
            // seq <= hi: either fills a hole or is a duplicate.
            self.fill_hole(seq, sender_ts);
        }
        // This arrival counts as an "above" packet for every hole entirely
        // below it.
        for hole in &mut self.holes {
            self.meter.tick(OpClass::Scan, 1);
            if hole.end <= seq {
                hole.above_count += 1;
            }
        }
        self.harvest()
    }

    /// Late arrival: remove `seq` from the hole containing it, splitting if
    /// it lands in the middle. Duplicates (not in any hole) are ignored.
    fn fill_hole(&mut self, seq: u64, sender_ts: SimTime) {
        let mut found = None;
        for (i, h) in self.holes.iter().enumerate() {
            self.meter.tick(OpClass::Scan, 1);
            if h.start <= seq && seq < h.end {
                found = Some(i);
                break;
            }
        }
        let Some(idx) = found else {
            return; // duplicate
        };
        let hole = self.holes[idx].clone();
        self.meter.tick(OpClass::Update, 1);
        let left = if seq > hole.start {
            Some(Hole {
                start: hole.start,
                end: seq,
                below_seq: hole.below_seq,
                below_ts: hole.below_ts,
                above_seq: seq,
                above_ts: sender_ts,
                above_count: hole.above_count,
            })
        } else {
            None
        };
        let right = if seq + 1 < hole.end {
            Some(Hole {
                start: seq + 1,
                end: hole.end,
                below_seq: seq,
                below_ts: sender_ts,
                above_seq: hole.above_seq,
                above_ts: hole.above_ts,
                above_count: hole.above_count,
            })
        } else {
            None
        };
        self.holes.remove(idx);
        // Insert replacements at the same position to keep ordering.
        let mut insert_at = idx;
        if let Some(l) = left {
            self.holes.insert(insert_at, l);
            insert_at += 1;
            self.meter.tick(OpClass::Alloc, 1);
        }
        if let Some(r) = right {
            self.holes.insert(insert_at, r);
            self.meter.tick(OpClass::Alloc, 1);
        }
    }

    /// Declare every hole with enough packets above it.
    fn harvest(&mut self) -> Vec<LostPacket> {
        let mut lost = Vec::new();
        let mut i = 0;
        while i < self.holes.len() {
            self.meter.tick(OpClass::Compare, 1);
            if self.holes[i].above_count >= NDUPACK {
                let hole = self.holes.remove(i).unwrap();
                for seq in hole.start..hole.end {
                    lost.push(LostPacket {
                        seq,
                        est_ts: hole.estimate_ts(seq),
                    });
                    self.meter.tick(OpClass::Arith, 3);
                }
            } else {
                i += 1;
            }
        }
        lost.sort_by_key(|l| l.seq);
        lost
    }
}

impl Default for LossDetector {
    fn default() -> Self {
        Self::new()
    }
}

impl StateSize for LossDetector {
    fn state_bytes(&self) -> usize {
        self.holes.len() * std::mem::size_of::<Hole>()
            + std::mem::size_of::<Option<(u64, SimTime)>>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    /// Feed `seqs` with timestamps seq*10ms; collect all declared losses.
    fn run(seqs: &[u64]) -> Vec<u64> {
        let mut d = LossDetector::new();
        let mut lost = Vec::new();
        for &s in seqs {
            lost.extend(d.on_packet(s, ts(s * 10)).into_iter().map(|l| l.seq));
        }
        lost
    }

    #[test]
    fn in_order_stream_has_no_loss() {
        assert!(run(&[0, 1, 2, 3, 4, 5]).is_empty());
    }

    #[test]
    fn single_gap_declared_after_three_above() {
        // 3 missing; packets 4,5,6 arrive above it.
        assert_eq!(run(&[0, 1, 2, 4, 5]), Vec::<u64>::new());
        assert_eq!(run(&[0, 1, 2, 4, 5, 6]), vec![3]);
    }

    #[test]
    fn multi_packet_hole_all_declared() {
        // 2,3,4 missing.
        assert_eq!(run(&[0, 1, 5, 6, 7]), vec![2, 3, 4]);
    }

    #[test]
    fn reordering_within_three_is_not_loss() {
        // 3 arrives late but before three packets pass above it.
        assert!(run(&[0, 1, 2, 4, 5, 3, 6, 7, 8]).is_empty());
    }

    #[test]
    fn late_fill_splits_hole() {
        // Hole 2..6; packet 4 arrives late, splitting into 2..4 and 5..6.
        // Then enough arrivals above declare both parts.
        let lost = run(&[0, 1, 6, 4, 7, 8]);
        assert_eq!(lost, vec![2, 3, 5]);
    }

    #[test]
    fn duplicates_are_ignored() {
        assert!(run(&[0, 1, 1, 1, 2, 2, 3]).is_empty());
        // Duplicates above a hole still count once each as arrivals above:
        // conservative is fine, but a fully-filled hole never re-declares.
        let lost = run(&[0, 2, 1, 1, 1, 1, 3]);
        assert!(lost.is_empty());
    }

    #[test]
    fn timestamp_interpolation_is_linear() {
        let mut d = LossDetector::new();
        assert!(d.on_packet(0, ts(0)).is_empty());
        // Hole 1..4 between ts 0 (seq 0) and ts 400 (seq 4).
        assert!(d.on_packet(4, ts(400)).is_empty());
        assert!(d.on_packet(5, ts(500)).is_empty());
        // Third packet above the hole declares it.
        let lost = d.on_packet(6, ts(600));
        assert_eq!(lost.len(), 3);
        assert_eq!(
            lost[0],
            LostPacket {
                seq: 1,
                est_ts: ts(100)
            }
        );
        assert_eq!(
            lost[1],
            LostPacket {
                seq: 2,
                est_ts: ts(200)
            }
        );
        assert_eq!(
            lost[2],
            LostPacket {
                seq: 3,
                est_ts: ts(300)
            }
        );
    }

    #[test]
    fn multiple_holes_declared_independently() {
        // Holes at 1 and 3.
        let lost = run(&[0, 2, 4, 5, 6, 7]);
        assert_eq!(lost, vec![1, 3]);
    }

    #[test]
    fn first_packet_not_zero_is_fine() {
        // Sequence numbering can start anywhere; no hole before the first
        // received packet is assumed.
        assert!(run(&[10, 11, 12, 13]).is_empty());
    }

    #[test]
    fn state_grows_with_holes_and_shrinks_after_harvest() {
        let mut d = LossDetector::new();
        d.on_packet(0, ts(0));
        d.on_packet(2, ts(20));
        d.on_packet(4, ts(40));
        let with_holes = d.state_bytes();
        assert_eq!(d.pending_holes(), 2);
        d.on_packet(5, ts(50));
        d.on_packet(6, ts(60)); // declares both holes
        assert_eq!(d.pending_holes(), 0);
        assert!(d.state_bytes() < with_holes);
    }

    #[test]
    fn meter_accumulates() {
        let mut d = LossDetector::new();
        d.on_packet(0, ts(0));
        d.on_packet(5, ts(50));
        assert!(d.meter.total() > 0);
    }
}
