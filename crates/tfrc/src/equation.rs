//! The TCP throughput equation (RFC 3448 §3.1).
//!
//! TFRC's control law: the allowed sending rate is the long-term throughput
//! a conformant TCP would achieve under the same loss event rate `p`,
//! round-trip time `R` and segment size `s`:
//!
//! ```text
//!                               s
//! X = ----------------------------------------------------------
//!     R*sqrt(2*b*p/3) + t_RTO * (3*sqrt(3*b*p/8)) * p * (1+32*p^2)
//! ```
//!
//! with `t_RTO = 4R` and `b = 1` (no delayed-ack accounting), the values
//! RFC 3448 recommends. The first denominator term models fast-retransmit
//! behaviour, the second the timeout regime that dominates at high loss.
//!
//! [`inverse`] solves the equation for `p` given a rate — RFC 3448 §6.3.1
//! needs this to synthesize the first loss interval from the receive rate
//! observed when the very first loss event occurs.

use std::time::Duration;

/// Parameters held constant by RFC 3448's recommended setting.
const B: f64 = 1.0;

/// Throughput in **bytes per second** for segment size `s` (bytes),
/// round-trip time `r`, and loss event rate `p` in `(0, 1]`.
///
/// Returns `f64::INFINITY` when `p == 0` (the equation only applies once a
/// loss event has occurred; callers handle the loss-free regime separately).
/// Panics in debug builds if `p` is outside `[0, 1]` or `r` is zero.
pub fn throughput(s: u32, r: Duration, p: f64) -> f64 {
    debug_assert!(
        (0.0..=1.0).contains(&p),
        "loss event rate out of range: {p}"
    );
    debug_assert!(!r.is_zero(), "RTT must be positive");
    if p <= 0.0 {
        return f64::INFINITY;
    }
    let s = s as f64;
    let r = r.as_secs_f64();
    let t_rto = 4.0 * r;
    let term_fast = r * (2.0 * B * p / 3.0).sqrt();
    let term_timeout = t_rto * (3.0 * (3.0 * B * p / 8.0).sqrt()) * p * (1.0 + 32.0 * p * p);
    s / (term_fast + term_timeout)
}

/// Solve `throughput(s, r, p) == x_bytes_per_sec` for `p` by bisection.
///
/// Returns a loss event rate in `[1e-9, 1]`. Rates higher than the loss-free
/// maximum map to the smallest representable `p`; rates lower than the
/// `p = 1` throughput map to `p = 1`.
pub fn inverse(s: u32, r: Duration, x_bytes_per_sec: f64) -> f64 {
    const P_MIN: f64 = 1e-9;
    const P_MAX: f64 = 1.0;
    if x_bytes_per_sec >= throughput(s, r, P_MIN) {
        return P_MIN;
    }
    if x_bytes_per_sec <= throughput(s, r, P_MAX) {
        return P_MAX;
    }
    let (mut lo, mut hi) = (P_MIN, P_MAX); // throughput decreasing in p
    for _ in 0..100 {
        let mid = (lo + hi) / 2.0;
        if throughput(s, r, mid) > x_bytes_per_sec {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    (lo + hi) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: u32 = 1000;
    const RTT: Duration = Duration::from_millis(100);

    #[test]
    fn zero_loss_is_unbounded() {
        assert_eq!(throughput(S, RTT, 0.0), f64::INFINITY);
    }

    #[test]
    fn known_value_at_one_percent_loss() {
        // Hand-computed: p=0.01, R=0.1s, s=1000B.
        // term_fast = 0.1*sqrt(2*0.01/3) = 0.1*0.0816497 = 0.00816497
        // term_to   = 0.4*3*sqrt(3*0.01/8)*0.01*(1+32*0.0001)
        //           = 0.4*3*0.0612372*0.01*1.0032 = 0.000737196
        // X = 1000/(0.00816497+0.000737196) = 112_346 B/s (approx)
        let x = throughput(S, RTT, 0.01);
        assert!((x - 112_346.0).abs() / 112_346.0 < 0.001, "x={x}");
    }

    #[test]
    fn known_value_at_ten_percent_loss() {
        // At p=0.1 the timeout term dominates.
        // term_fast = 0.1*sqrt(0.2/3)=0.1*0.2581989=0.02581989
        // term_to = 0.4*3*sqrt(0.0375)*0.1*(1+0.32)
        //         = 0.4*3*0.19364917*0.1*1.32 = 0.030674
        // X = 1000/0.056494 = 17_700 B/s approx
        let x = throughput(S, RTT, 0.1);
        assert!((x - 17_700.0).abs() / 17_700.0 < 0.01, "x={x}");
    }

    #[test]
    fn monotonically_decreasing_in_p() {
        let mut last = f64::INFINITY;
        for i in 1..=1000 {
            let p = i as f64 / 1000.0;
            let x = throughput(S, RTT, p);
            assert!(x < last, "not decreasing at p={p}");
            last = x;
        }
    }

    #[test]
    fn decreasing_in_rtt() {
        let x1 = throughput(S, Duration::from_millis(10), 0.01);
        let x2 = throughput(S, Duration::from_millis(100), 0.01);
        let x3 = throughput(S, Duration::from_millis(500), 0.01);
        assert!(x1 > x2 && x2 > x3);
        // With the timeout term ∝ R as well, throughput is ~1/R.
        assert!((x1 / x2 - 10.0).abs() < 0.5);
    }

    #[test]
    fn proportional_to_segment_size() {
        let x1 = throughput(500, RTT, 0.02);
        let x2 = throughput(1000, RTT, 0.02);
        assert!((x2 / x1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn inverse_roundtrips() {
        for &p in &[0.001, 0.01, 0.05, 0.1, 0.3] {
            let x = throughput(S, RTT, p);
            let p_back = inverse(S, RTT, x);
            assert!((p_back - p).abs() / p < 1e-6, "p={p}, p_back={p_back}");
        }
    }

    #[test]
    fn inverse_clamps_extremes() {
        assert_eq!(inverse(S, RTT, f64::INFINITY), 1e-9);
        let floor = throughput(S, RTT, 1.0);
        assert_eq!(inverse(S, RTT, floor / 2.0), 1.0);
    }

    #[test]
    fn equation_matches_tcp_sanity_scale() {
        // At p=0.02, R=100ms, s=1460: classic "TCP-friendly" throughput is
        // around 1 Mbit/s (PFTK model). Check the order of magnitude.
        let x = throughput(1460, RTT, 0.02) * 8.0; // bits/s
        assert!((500_000.0..2_000_000.0).contains(&x), "x={x}");
    }
}
