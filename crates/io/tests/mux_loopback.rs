//! Multi-flow mux over real UDP sockets on 127.0.0.1: ONE client socket
//! and ONE server socket carry ≥ 64 concurrent QTP connections through
//! capability negotiation and fully-reliable transfer, with server-side
//! connections created on first frame and torn down/reaped afterwards.

use qtp_core::session::{ConnectionPlan, Profile};
use qtp_core::{CapabilitySet, Probe, QtpReceiver, QtpReceiverConfig, QtpSender, ServerPolicy};
use qtp_io::mux::{drive_mux_pair, Accepted, ConnId, MuxDriver};
use qtp_simnet::prelude::*;
use std::time::Duration;

const FLOWS: u32 = 64;
const PACKETS: u64 = 12;
const PAYLOAD: u64 = 1000;

/// Flow id convention used throughout the mux tests/examples: connection
/// `i` owns data flow `2i` and feedback flow `2i + 1`.
fn flow_pair(i: u32) -> (FlowId, FlowId) {
    (2 * i, 2 * i + 1)
}

#[test]
fn one_socket_carries_64_reliable_flows() {
    // Server: one socket, connections accepted on first frame (the SYN).
    let mut server: MuxDriver<QtpReceiver> = MuxDriver::bind("127.0.0.1:0").expect("bind server");
    server.set_acceptor(|_, frame| {
        // Data flows are even by convention; the paired feedback flow is
        // the next odd id.
        if frame.flow % 2 != 0 {
            return None;
        }
        Some(Accepted {
            endpoint: QtpReceiver::new(
                frame.flow,
                frame.flow + 1,
                0,
                QtpReceiverConfig::default(),
                Probe::new(),
            ),
            flows: vec![frame.flow, frame.flow + 1],
        })
    });
    let server_addr = server.local_addr().expect("server addr");

    // Client: one socket, 64 senders added explicitly.
    let mut client: MuxDriver<QtpSender> = MuxDriver::bind("127.0.0.1:0").expect("bind client");
    let mut conns: Vec<ConnId> = Vec::new();
    for i in 0..FLOWS {
        let (data, fb) = flow_pair(i);
        let cfg = ConnectionPlan::new(Profile::qtp_af(Rate::from_kbps(500)))
            .finite(PACKETS)
            .sender_config();
        let sender = QtpSender::new(data, 0, cfg, Probe::new());
        conns.push(
            client
                .add_connection(server_addr, vec![data, fb], sender)
                .expect("register sender"),
        );
    }
    assert_eq!(client.conn_count(), FLOWS as usize);

    let ok = drive_mux_pair(
        &mut client,
        &mut server,
        Duration::from_secs(120),
        |c, _| {
            conns.iter().all(|id| {
                let tx = c.endpoint(*id).unwrap();
                // all_acked() is vacuously true before anything is sent.
                tx.sent_new() == PACKETS && tx.all_acked()
            })
        },
    )
    .expect("mux event loop error");
    assert!(ok, "64-flow transfer timed out");

    // Every connection negotiated the same profile the pure policy yields,
    // and every byte of every flow was delivered exactly once.
    let expected = ServerPolicy::default().negotiate(CapabilitySet::qtp_af(Rate::from_kbps(500)));
    assert_eq!(
        server.conn_count(),
        FLOWS as usize,
        "one server conn per flow"
    );
    for (i, id) in conns.iter().enumerate() {
        let tx = client.endpoint(*id).unwrap();
        assert_eq!(tx.negotiated(), Some(expected), "conn {i} negotiated");
        assert!(tx.all_acked(), "conn {i} fully acked");
        assert_eq!(tx.sent_new(), PACKETS, "conn {i} sent its backlog");

        let (data, _) = flow_pair(i as u32);
        let srv_id = server
            .route(client.local_addr().unwrap(), data)
            .expect("server route for data flow");
        let rx = server.endpoint(srv_id).unwrap();
        assert_eq!(rx.negotiated(), Some(expected));
        assert_eq!(rx.delivered_packets(), PACKETS, "conn {i} delivered");
        assert_eq!(
            server.conn_stats(srv_id).unwrap().delivered_bytes,
            PACKETS * PAYLOAD,
            "conn {i} delivered bytes"
        );
    }
    assert_eq!(server.stats().conns_accepted, u64::from(FLOWS));
    assert!(server.stats().datagrams_received >= u64::from(FLOWS) * PACKETS);

    // Lifecycle tail: tear half down explicitly, reap the rest once idle.
    let client_addr = client.local_addr().unwrap();
    for i in 0..FLOWS / 2 {
        let (data, _) = flow_pair(i);
        let id = server.route(client_addr, data).unwrap();
        assert!(server.close(id).is_some());
    }
    assert_eq!(server.conn_count(), (FLOWS / 2) as usize);
    std::thread::sleep(Duration::from_millis(20));
    let reaped = server.reap_stale(Duration::from_millis(10));
    assert_eq!(reaped.len(), (FLOWS / 2) as usize, "idle conns reaped");
    assert_eq!(server.conn_count(), 0);
}

/// The mux and the single-connection UdpDriver speak the same wire
/// protocol: a mux-accepted receiver serves a mux client with one flow,
/// negotiating exactly what the pure policy dictates even when a second,
/// unrelated peer's garbage datagrams hit the same socket mid-handshake.
#[test]
fn mux_isolates_flows_from_foreign_traffic() {
    let mut server: MuxDriver<QtpReceiver> = MuxDriver::bind("127.0.0.1:0").unwrap();
    server.set_acceptor(|_, frame| {
        (frame.flow % 2 == 0).then(|| Accepted {
            endpoint: QtpReceiver::new(
                frame.flow,
                frame.flow + 1,
                0,
                QtpReceiverConfig::default(),
                Probe::new(),
            ),
            flows: vec![frame.flow, frame.flow + 1],
        })
    });
    let server_addr = server.local_addr().unwrap();

    let mut client: MuxDriver<QtpSender> = MuxDriver::bind("127.0.0.1:0").unwrap();
    let cfg = ConnectionPlan::new(Profile::qtp_af(Rate::from_kbps(500)))
        .finite(PACKETS)
        .sender_config();
    let conn = client
        .add_connection(
            server_addr,
            vec![0, 1],
            QtpSender::new(0, 0, cfg, Probe::new()),
        )
        .unwrap();

    // Foreign noise into the server socket from a third party.
    let noise = std::net::UdpSocket::bind("127.0.0.1:0").unwrap();
    for _ in 0..10 {
        noise
            .send_to(b"definitely not a frame", server_addr)
            .unwrap();
    }

    let ok = drive_mux_pair(&mut client, &mut server, Duration::from_secs(30), |c, _| {
        let tx = c.endpoint(conn).unwrap();
        tx.sent_new() == PACKETS && tx.all_acked()
    })
    .unwrap();
    assert!(ok, "transfer with foreign noise timed out");
    assert_eq!(
        server.stats().datagrams_rejected,
        10,
        "noise counted, not routed"
    );
    assert_eq!(server.conn_count(), 1, "no connection accepted for garbage");
}
