//! Stream data plane over real sockets: a 1 MiB file goes through
//! `SendStream::send` on one side of a loopback socket (pair) and comes
//! out byte-exact through `RecvStream::recv` on the other, and the
//! wire-level FIN / FIN-ACK close completes — on the one-socket-per-end
//! [`UdpDriver`] and on the multiplexed [`MuxDriver`] with plan-driven
//! accept ([`accept_sessions`]).
//!
//! The mux test also pins the timer no-leak property: a session that
//! completed its wire close and is then dropped from the mux leaves no
//! entry behind in the [`TimerWheel`], and nothing resurrects one.

use qtp_core::session::{ConnectionPlan, Profile, Session};
use qtp_core::stream::{RecvStream, SendStream, StreamConfig, StreamError};
use qtp_io::{accept_sessions, drive_mux_pair, MuxDriver, UdpDriver};
use qtp_simnet::time::Rate;
use std::time::{Duration, Instant};

const FILE_LEN: usize = 1024 * 1024;
const SLICE: Duration = Duration::from_micros(300);
const DEADLINE: Duration = Duration::from_secs(60);

/// Deterministic pseudo-random payload, position-dependent so any
/// reordering or loss of a chunk breaks the byte-exact comparison.
fn test_file() -> Vec<u8> {
    (0..FILE_LEN as u64)
        .map(|i| (i.wrapping_mul(2654435761) >> 7) as u8)
        .collect()
}

fn stream_plan() -> ConnectionPlan {
    ConnectionPlan::new(Profile::qtp_af(Rate::from_mbps(200)))
        .stream(StreamConfig::with_send_buf(256 * 1024))
}

/// Push as much of `file` into the stream as the send buffer accepts,
/// then finish it once everything has been submitted.
fn feed(send: &SendStream, file: &[u8], offset: &mut usize) {
    while *offset < file.len() {
        let end = (*offset + 8 * 1024).min(file.len());
        match send.send(&file[*offset..end]) {
            Ok(()) => *offset = end,
            Err(StreamError::Full) => break,
            Err(e) => panic!("send failed: {e}"),
        }
    }
    if *offset == file.len() && !send.is_finished() {
        send.finish();
    }
}

fn drain(recv: &RecvStream, into: &mut Vec<u8>) {
    while let Some(m) = recv.recv() {
        into.extend(m);
    }
}

#[test]
fn udp_stream_transfer_is_byte_exact_and_closes() {
    let file = test_file();
    let plan = stream_plan();

    let rx_sess = Session::receiver(0, 1, 0, &plan);
    let recv = rx_sess.recv_stream().expect("receiver stream");
    let mut rx = UdpDriver::server(rx_sess, "127.0.0.1:0").unwrap();
    let peer = rx.local_addr().unwrap();

    let tx_sess = Session::sender(0, 1, &plan);
    let send = tx_sess.send_stream().expect("sender stream");
    let mut tx = UdpDriver::client(tx_sess, "127.0.0.1:0", peer).unwrap();

    let start = Instant::now();
    let mut offset = 0usize;
    let mut received = Vec::with_capacity(file.len());
    while start.elapsed() < DEADLINE {
        feed(&send, &file, &mut offset);
        tx.drive_once(SLICE).unwrap();
        rx.drive_once(SLICE).unwrap();
        drain(&recv, &mut received);
        if recv.is_finished() && tx.endpoint().is_closed() {
            break;
        }
    }

    assert_eq!(received.len(), file.len(), "all bytes arrived");
    assert_eq!(received, file, "byte-exact over UDP loopback");
    assert!(recv.is_finished(), "receiver saw the FIN");
    assert!(tx.endpoint().is_closed(), "FIN / FIN-ACK completed");
}

#[test]
fn mux_stream_transfer_with_plan_accept_and_timer_drain() {
    let file = test_file();
    let plan = stream_plan();

    // Server side: no pre-registered connections at all — sessions come
    // from the plan template when the client's offer arrives.
    let mut server: MuxDriver<Session> = MuxDriver::bind("127.0.0.1:0").unwrap();
    let accepts = accept_sessions(&mut server, plan.clone());
    let server_addr = server.local_addr().unwrap();

    let mut client: MuxDriver<Session> = MuxDriver::bind("127.0.0.1:0").unwrap();
    let tx_sess = Session::sender(0, 0, &plan);
    let send = tx_sess.send_stream().expect("sender stream");
    let tx_id = client
        .add_connection(server_addr, vec![0, 1], tx_sess)
        .unwrap();

    let mut offset = 0usize;
    let mut received = Vec::with_capacity(file.len());
    let mut recv: Option<RecvStream> = None;
    let mut rx_id = None;
    let ok = drive_mux_pair(&mut client, &mut server, DEADLINE, |c, s| {
        feed(&send, &file, &mut offset);
        if recv.is_none() {
            if let Some(ev) = accepts.pop() {
                let id = s
                    .route(ev.peer, ev.data_flow)
                    .expect("accepted conn routed");
                recv = s.endpoint(id).and_then(|sess| sess.recv_stream());
                rx_id = Some(id);
            }
        }
        let Some(r) = &recv else { return false };
        drain(r, &mut received);
        r.is_finished() && c.endpoint(tx_id).is_some_and(|sess| sess.is_closed())
    })
    .unwrap();
    assert!(ok, "mux transfer timed out");

    assert_eq!(received.len(), file.len(), "all bytes arrived");
    assert_eq!(received, file, "byte-exact over the mux");
    let recv = recv.expect("plan acceptor produced a session");
    assert!(recv.is_finished());
    assert!(accepts.is_empty(), "exactly one connection was accepted");
    assert_eq!(server.stats().conns_accepted, 1);

    // Satellite property: dropping the closed sessions leaves no timer
    // wheel entries behind — `cancel_conn` purges in-flight entries and a
    // closed endpoint never re-arms.
    let rx_id = rx_id.unwrap();
    let tx_sess = client.close(tx_id).expect("client conn was live");
    assert!(tx_sess.is_closed());
    server.close(rx_id).expect("server conn was live");
    assert_eq!(client.timer_count(), 0, "client wheel purged");
    assert_eq!(server.timer_count(), 0, "server wheel purged");
    assert_eq!(client.poll_timeout(), None);
    assert_eq!(server.poll_timeout(), None);

    // Nothing resurrects an entry: late datagrams for the dropped
    // connections are unroutable, and driving both muxes arms nothing.
    for _ in 0..20 {
        client.drive_once(SLICE).unwrap();
        server.drive_once(SLICE).unwrap();
    }
    assert_eq!(client.timer_count(), 0, "no timer leaked after drop");
    assert_eq!(server.timer_count(), 0, "no timer leaked after drop");
    assert_eq!(client.conn_count(), 0);
    assert_eq!(server.conn_count(), 0);
}
