//! Property tests for the UDP datagram frame: every encodable frame
//! round-trips exactly, and no prefix truncation of a valid encoding is
//! accepted.

use proptest::prelude::*;
use qtp_io::frame::{Frame, FrameError, FIXED_LEN};

fn arb_frame() -> impl Strategy<Value = Frame> {
    (
        any::<u32>(),
        any::<u64>(),
        any::<u32>(),
        prop::collection::vec(any::<u8>(), 0..256),
    )
        .prop_map(|(flow, seq, wire_size, header)| Frame {
            flow,
            seq,
            wire_size,
            header,
        })
}

proptest! {
    #[test]
    fn frame_roundtrips(frame in arb_frame()) {
        let bytes = frame.encode().unwrap();
        prop_assert_eq!(bytes.len(), FIXED_LEN + frame.header.len());
        let decoded = Frame::decode(&bytes).unwrap();
        prop_assert_eq!(decoded, frame);
    }

    #[test]
    fn truncations_rejected(frame in arb_frame(), cut in 0usize..300) {
        let bytes = frame.encode().unwrap();
        let cut = cut.min(bytes.len().saturating_sub(1));
        let err = Frame::decode(&bytes[..cut]);
        prop_assert!(err.is_err(), "prefix of length {} must not decode", cut);
    }

    #[test]
    fn trailing_bytes_rejected(frame in arb_frame(), extra in 1usize..16) {
        let mut bytes = frame.encode().unwrap();
        bytes.extend(std::iter::repeat(0xEE).take(extra));
        let is_len_mismatch =
            matches!(Frame::decode(&bytes), Err(FrameError::LengthMismatch { .. }));
        prop_assert!(is_len_mismatch);
    }
}
