//! Property tests for the UDP datagram frame: every encodable frame
//! round-trips exactly, no prefix truncation of a valid encoding is
//! accepted, and — the adversarial half — `decode` is total: random
//! buffers, mutated bytes and oversized datagrams all map to `Err` or to a
//! canonical frame, never to a panic.

use proptest::prelude::*;
use qtp_io::frame::{Frame, FrameError, FIXED_LEN, MAX_FRAME_LEN};

fn arb_frame() -> impl Strategy<Value = Frame> {
    (
        any::<u32>(),
        any::<u64>(),
        any::<u32>(),
        prop::collection::vec(any::<u8>(), 0..256),
    )
        .prop_map(|(flow, seq, wire_size, header)| Frame {
            flow,
            seq,
            wire_size,
            header,
        })
}

proptest! {
    #[test]
    fn frame_roundtrips(frame in arb_frame()) {
        let bytes = frame.encode().unwrap();
        prop_assert_eq!(bytes.len(), FIXED_LEN + frame.header.len());
        let decoded = Frame::decode(&bytes).unwrap();
        prop_assert_eq!(decoded, frame);
    }

    #[test]
    fn truncations_rejected(frame in arb_frame(), cut in 0usize..300) {
        let bytes = frame.encode().unwrap();
        let cut = cut.min(bytes.len().saturating_sub(1));
        let err = Frame::decode(&bytes[..cut]);
        prop_assert!(err.is_err(), "prefix of length {} must not decode", cut);
    }

    #[test]
    fn trailing_bytes_rejected(frame in arb_frame(), extra in 1usize..16) {
        let mut bytes = frame.encode().unwrap();
        bytes.extend(std::iter::repeat(0xEE).take(extra));
        let is_len_mismatch =
            matches!(Frame::decode(&bytes), Err(FrameError::LengthMismatch { .. }));
        prop_assert!(is_len_mismatch);
    }

    #[test]
    fn decode_is_total_on_arbitrary_bytes(
        buf in prop::collection::vec(any::<u8>(), 0..(MAX_FRAME_LEN + 64))
    ) {
        // Whatever arrives on the socket, decode returns — and anything it
        // accepts is canonical (re-encodes to the identical bytes).
        if let Ok(frame) = Frame::decode(&buf) {
            prop_assert_eq!(frame.encode().unwrap(), buf);
        }
    }

    #[test]
    fn mutated_valid_frames_never_panic_and_stay_canonical(
        frame in arb_frame(),
        idx in 0usize..512,
        xor in 1u8..=255,
    ) {
        // Flip one byte anywhere in a valid encoding. The decoder must
        // either reject the mutation or accept a frame that re-encodes to
        // exactly the mutated buffer (no silent reinterpretation).
        let mut bytes = frame.encode().unwrap();
        let idx = idx % bytes.len();
        bytes[idx] ^= xor;
        if let Ok(mutated) = Frame::decode(&bytes) {
            prop_assert_eq!(mutated.encode().unwrap(), bytes);
        }
    }

    #[test]
    fn oversized_inputs_always_rejected(
        frame in arb_frame(),
        pad in 1usize..256,
    ) {
        // Anything beyond MAX_FRAME_LEN is rejected on length alone, even
        // when it starts with a fully valid frame encoding.
        let mut bytes = frame.encode().unwrap();
        bytes.resize(MAX_FRAME_LEN + pad, 0xEE);
        prop_assert_eq!(
            Frame::decode(&bytes),
            Err(FrameError::Oversized(MAX_FRAME_LEN + pad))
        );
    }

    #[test]
    fn fixed_prologue_only_never_accepted_with_declared_header(
        mut prefix in prop::collection::vec(any::<u8>(), FIXED_LEN..FIXED_LEN + 8)
    ) {
        // Force plausible magic/version so parsing reaches the length
        // check, then declare more header bytes than are present.
        prefix[0] = 0x51;
        prefix[1] = 0x54;
        prefix[2] = 1;
        let declared = (prefix.len() - FIXED_LEN) as u16 + 1;
        prefix[19..21].copy_from_slice(&declared.to_be_bytes());
        let is_len_mismatch =
            matches!(Frame::decode(&prefix), Err(FrameError::LengthMismatch { .. }));
        prop_assert!(is_len_mismatch);
    }
}
