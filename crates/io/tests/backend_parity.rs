//! The acceptance test for the backend seam: the *same*
//! [`ConnectionPlan`]s run unchanged on all three backends — the
//! deterministic simulator, one blocking UDP socket pair per connection,
//! and the single-socket connection multiplexer — and every backend
//! negotiates the identical service and honours the same completion
//! semantics.

use qtp_core::session::{Backend, ConnectionPlan, Profile, SessionEvent, SimBackend};
use qtp_core::{CapabilitySet, ServerPolicy};
use qtp_io::backend::{MuxBackend, UdpBackend};
use qtp_simnet::time::Rate;
use std::time::Duration;

const PACKETS: u64 = 10;
const PAYLOAD: u64 = 1000;

/// One plan per capability corner: reliable gTFRC, light, TTL-partial,
/// plain TFRC.
fn plans() -> Vec<ConnectionPlan> {
    vec![
        ConnectionPlan::new(Profile::qtp_af(Rate::from_kbps(400)))
            .label("af")
            .finite(PACKETS),
        ConnectionPlan::new(Profile::qtp_light())
            .label("light")
            .finite(PACKETS),
        ConnectionPlan::new(Profile::qtp_light_partial(Duration::from_millis(400)).unwrap())
            .label("ttl")
            .finite(PACKETS),
        ConnectionPlan::new(Profile::tfrc())
            .label("tfrc")
            .finite(PACKETS),
    ]
}

#[test]
fn same_plans_run_on_all_three_backends() {
    let plans = plans();
    let mut backends: Vec<Box<dyn Backend>> = vec![
        Box::new(SimBackend::isolated(
            Rate::from_mbps(10),
            Duration::from_millis(5),
            0.0,
        )),
        Box::new(UdpBackend::default()),
        Box::new(MuxBackend::default()),
    ];

    let expected: Vec<Option<CapabilitySet>> = plans
        .iter()
        .map(|p| Some(ServerPolicy::default().negotiate(p.profile.caps())))
        .collect();

    for backend in &mut backends {
        let outcomes = backend.run(&plans).expect("backend run");
        assert_eq!(outcomes.len(), plans.len(), "[{}]", backend.name());
        for (o, want) in outcomes.iter().zip(&expected) {
            // Identical negotiated service on every backend: negotiation
            // is a pure function of offer × policy, not of the I/O path.
            assert_eq!(
                &o.negotiated,
                want,
                "[{}] {}: negotiated service",
                backend.name(),
                o.label
            );
            assert!(
                o.completion_s.is_some(),
                "[{}] {}: completed",
                backend.name(),
                o.label
            );
            // Both ends observed the handshake as a typed event.
            assert!(
                o.tx_events
                    .iter()
                    .any(|e| matches!(e, SessionEvent::Connected { .. })),
                "[{}] {}: sender Connected event",
                backend.name(),
                o.label
            );
            assert!(
                o.rx_events
                    .iter()
                    .any(|e| matches!(e, SessionEvent::Connected { .. })),
                "[{}] {}: receiver Connected event",
                backend.name(),
                o.label
            );
        }
        // The fully-reliable plan delivered every byte, whatever carried it.
        assert_eq!(
            outcomes[0].delivered_bytes,
            PACKETS * PAYLOAD,
            "[{}] reliable delivery",
            backend.name()
        );
    }
}
