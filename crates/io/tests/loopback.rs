//! End-to-end tests over real UDP sockets on 127.0.0.1: capability
//! negotiation, reliable transfer, and the differential check that the
//! simulator backend and the socket backend agree on what the protocol
//! *does* (same negotiated capabilities, same delivered ADU sequence) for
//! a loss-free run.

use qtp_core::session::{attach_pair, ConnectionPlan, Profile};
use qtp_core::{
    CapabilitySet, Probe, QtpReceiver, QtpReceiverConfig, QtpSender, QtpSenderConfig, ServerPolicy,
};
use qtp_io::{drive_pair, UdpDriver};
use qtp_simnet::prelude::*;
use std::time::Duration;

const PACKETS: u64 = 40;
const PAYLOAD: u64 = 1000;

/// Run one QTP connection over two loopback UDP sockets until the transfer
/// completes (or a generous wall-clock deadline passes). Returns the
/// drivers for post-run inspection.
fn run_loopback(
    cfg: QtpSenderConfig,
    done_needs_acks: bool,
) -> (UdpDriver<QtpSender>, UdpDriver<QtpReceiver>) {
    let receiver = QtpReceiver::new(0, 1, 0, QtpReceiverConfig::default(), Probe::new());
    let mut rx = UdpDriver::server(receiver, "127.0.0.1:0").expect("bind receiver");
    let peer = rx.local_addr().expect("local addr");

    let sender = QtpSender::new(0, 1, cfg, Probe::new());
    let mut tx = UdpDriver::client(sender, "127.0.0.1:0", peer).expect("bind sender");

    // Gate on delivered *bytes*: under unreliable profiles the receiver
    // hands every arriving packet up immediately whatever its order, so
    // this predicate doesn't silently require in-order arrival the way the
    // cum-ack-based `delivered_packets()` would.
    let done = drive_pair(&mut tx, &mut rx, Duration::from_secs(30), |tx, rx| {
        rx.delivered_bytes() >= PACKETS * PAYLOAD && (!done_needs_acks || tx.endpoint().all_acked())
    })
    .expect("event loop error");
    assert!(done, "loopback transfer timed out");
    (tx, rx)
}

#[test]
fn reliable_transfer_over_loopback_completes() {
    let cfg = ConnectionPlan::new(Profile::qtp_af(Rate::from_kbps(500)))
        .finite(PACKETS)
        .sender_config();
    let (tx, rx) = run_loopback(cfg.clone(), true);

    // Handshake: both ends converged on the same negotiated profile, and it
    // is exactly what the default server policy yields for this offer.
    let expected = ServerPolicy::default().negotiate(cfg.offered);
    assert_eq!(tx.endpoint().negotiated(), Some(expected));
    assert_eq!(rx.endpoint().negotiated(), Some(expected));

    // Reliable delivery: every ADU, in order, exactly once.
    assert_eq!(rx.endpoint().delivered_packets(), PACKETS);
    assert_eq!(rx.endpoint().cum_ack(), PACKETS);
    assert_eq!(rx.delivered_bytes(), PACKETS * PAYLOAD);
    assert!(tx.endpoint().all_acked(), "sender saw every ack");
    assert_eq!(tx.endpoint().sent_new(), PACKETS);

    // Real datagrams actually crossed the sockets.
    assert!(tx.stats().datagrams_sent >= PACKETS);
    assert!(rx.stats().datagrams_received >= PACKETS);
    assert!(rx.stats().datagrams_sent > 0, "feedback flowed back");
}

/// The differential backbone: the same protocol configuration, run once
/// through the discrete-event simulator and once over real sockets, must
/// negotiate the same `CapabilitySet` and deliver the same ADU sequence.
#[test]
fn sim_and_socket_backends_agree_loss_free() {
    let plan = ConnectionPlan::new(Profile::qtp_af(Rate::from_kbps(500))).finite(PACKETS);
    let cfg = plan.sender_config();

    // --- simulator backend, loss-free path -----------------------------
    let mut b = NetworkBuilder::new();
    let s = b.host();
    let r = b.host();
    b.duplex_link(
        s,
        r,
        LinkConfig::new(Rate::from_mbps(10), Duration::from_millis(5)),
    );
    let mut sim = b.build(7);
    let h = attach_pair(&mut sim, s, r, "diff", &plan);
    sim.run_until(SimTime::from_secs(60));
    let sim_delivered_bytes = sim.stats().flow(h.data_flow).bytes_app_delivered;
    let sim_delivered_pkts = sim_delivered_bytes / PAYLOAD;

    // --- socket backend, loopback ---------------------------------------
    let (tx, rx) = run_loopback(cfg.clone(), true);

    // Negotiation agrees (and matches the pure negotiation function, which
    // is what the simulator's endpoints run too).
    let expected = ServerPolicy::default().negotiate(cfg.offered);
    assert_eq!(tx.endpoint().negotiated(), Some(expected));
    assert_eq!(rx.endpoint().negotiated(), Some(expected));

    // Delivery agrees: same number of ADUs, same bytes, and — because this
    // profile delivers strictly in order from sequence 0 — the identical
    // ADU sequence 0..PACKETS on both backends.
    assert_eq!(sim_delivered_pkts, PACKETS, "sim delivered everything");
    assert_eq!(rx.endpoint().delivered_packets(), sim_delivered_pkts);
    assert_eq!(rx.delivered_bytes(), sim_delivered_bytes);
    assert_eq!(rx.endpoint().cum_ack(), PACKETS);
}

#[test]
fn qtp_light_negotiates_identically_on_both_backends() {
    // The QTPlight offer exercises the other half of the capability space
    // (SenderLoss feedback, no reliability). Negotiation is the part that
    // must agree exactly; unreliable delivery counts are not compared
    // (raw UDP makes no ordering/loss promises).
    let cfg = ConnectionPlan::new(Profile::qtp_light())
        .finite(PACKETS)
        .sender_config();
    let offered: CapabilitySet = cfg.offered;

    let (tx, rx) = run_loopback(cfg, false);
    let expected = ServerPolicy::default().negotiate(offered);
    assert_eq!(tx.endpoint().negotiated(), Some(expected));
    assert_eq!(rx.endpoint().negotiated(), Some(expected));
    assert!(rx.delivered_bytes() >= PACKETS * PAYLOAD);
}
