//! A blocking, single-thread UDP event loop for sans-io endpoints.
//!
//! [`UdpDriver`] owns one `std::net::UdpSocket`, one
//! [`Endpoint`](qtp_core::Endpoint) and one [`WallClock`], and drives the
//! endpoint exactly like the simulator does — datagram in, timers fired,
//! commands drained — except that "datagram" now means a real UDP payload
//! ([`Frame`]-encoded) and "time" is the monotonic wall clock:
//!
//! ```text
//! loop {
//!     fire due timers            // endpoint.on_timer(now, token)
//!     wait = min(next deadline, slice)
//!     recv with timeout(wait)    // endpoint.handle_datagram(now, frame)
//!     drain outbox               // Transmit -> socket, SetTimer -> heap,
//! }                              // Deliver  -> byte counter
//! ```
//!
//! Timers keep the simulator's fire-and-forget contract: the heap never
//! cancels an entry, endpoints discard stale generations themselves (see
//! [`TimerGens`](qtp_core::TimerGens)). The driver is strictly
//! single-threaded and blocking; running the two ends of a connection in
//! one thread (tests, the `udp_loopback` example) just alternates
//! [`UdpDriver::drive_once`] calls with a short slice — see
//! [`drive_pair`].

use qtp_core::driver::{Command, Endpoint, Outbox, Transmit};
use qtp_simnet::time::SimTime;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::io;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::time::Duration;

use crate::clock::WallClock;
use crate::frame::{Frame, MAX_FRAME_LEN};

/// Smallest read timeout handed to the OS (zero means "block forever" to
/// `set_read_timeout`, which is exactly what we never want).
const MIN_WAIT: Duration = Duration::from_micros(100);

/// Counters describing what a driver has done so far.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DriverStats {
    /// Frames sent on the socket.
    pub datagrams_sent: u64,
    /// Frames received and handed to the endpoint.
    pub datagrams_received: u64,
    /// Datagrams dropped: not frame-decodable or from an unexpected peer.
    pub datagrams_rejected: u64,
    /// Timer events delivered to the endpoint (stale ones included).
    pub timers_fired: u64,
    /// Soft per-datagram socket errors absorbed by the loop (ICMP
    /// port-unreachable reflections and the like). A run that "times out"
    /// with a large count here was most likely talking to a dead peer.
    pub soft_errors: u64,
}

impl DriverStats {
    /// The socket-level counters in the cross-backend
    /// [`CounterSet`](qtp_metrics::trace::CounterSet) currency. Fields the
    /// driver cannot observe (retransmits, TTL drops, …) stay zero — those
    /// live on the endpoints' own tracers.
    pub fn counter_set(&self) -> qtp_metrics::trace::CounterSet {
        qtp_metrics::trace::CounterSet {
            pkts_tx: self.datagrams_sent,
            pkts_rx: self.datagrams_received,
            timer_fires: self.timers_fired,
            soft_errors: self.soft_errors,
            ..Default::default()
        }
    }
}

/// Drives one [`Endpoint`] over one UDP socket.
pub struct UdpDriver<E: Endpoint> {
    ep: E,
    out: Outbox,
    socket: UdpSocket,
    peer: Option<SocketAddr>,
    clock: WallClock,
    /// Armed wakeups, earliest first; equal deadlines tie-break by arming
    /// order (middle element), matching the simulator's insertion-order
    /// event tie-break. Entries are never removed before they fire;
    /// endpoints filter stale generations.
    timers: BinaryHeap<Reverse<(SimTime, u64, u64)>>,
    /// Monotonic arming counter feeding the heap's tie-break.
    next_timer_seq: u64,
    /// Transmissions emitted before the peer address is known (a server
    /// learns its peer from the first datagram).
    pending_tx: VecDeque<Transmit>,
    /// Per-driver datagram counter, stamped into frames as `seq`.
    next_seq: u64,
    /// Application bytes delivered by the endpoint (`Command::Deliver`).
    delivered_bytes: u64,
    started: bool,
    stats: DriverStats,
    recv_buf: Vec<u8>,
}

impl<E: Endpoint> UdpDriver<E> {
    /// Wrap `ep` over an already-bound socket. The peer is learned from the
    /// first arriving datagram (server role) unless [`Self::set_peer`] is
    /// called first (client role).
    pub fn new(ep: E, socket: UdpSocket) -> io::Result<Self> {
        socket.set_nonblocking(false)?;
        Ok(UdpDriver {
            ep,
            out: Outbox::new(),
            socket,
            peer: None,
            clock: WallClock::new(),
            timers: BinaryHeap::new(),
            next_timer_seq: 0,
            pending_tx: VecDeque::new(),
            next_seq: 0,
            delivered_bytes: 0,
            started: false,
            stats: DriverStats::default(),
            // One byte beyond the frame bound, so an over-long datagram
            // reads as > MAX_FRAME_LEN and is rejected instead of being
            // silently truncated into something decodable.
            recv_buf: vec![0; MAX_FRAME_LEN + 1],
        })
    }

    /// Bind a socket on `bind_addr` and connect it (logically) to `peer` —
    /// the initiating side of a connection.
    pub fn client(ep: E, bind_addr: impl ToSocketAddrs, peer: SocketAddr) -> io::Result<Self> {
        let mut d = Self::new(ep, UdpSocket::bind(bind_addr)?)?;
        d.set_peer(peer);
        Ok(d)
    }

    /// Bind a socket on `bind_addr` and wait for a peer to show up — the
    /// listening side of a connection.
    pub fn server(ep: E, bind_addr: impl ToSocketAddrs) -> io::Result<Self> {
        Self::new(ep, UdpSocket::bind(bind_addr)?)
    }

    /// Fix the remote address datagrams are sent to. Queued transmissions
    /// are flushed on the next [`Self::drive_once`].
    pub fn set_peer(&mut self, peer: SocketAddr) {
        self.peer = Some(peer);
    }

    /// The socket's local address (useful after binding to port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// The wrapped endpoint.
    pub fn endpoint(&self) -> &E {
        &self.ep
    }

    /// Application bytes the endpoint has delivered so far.
    pub fn delivered_bytes(&self) -> u64 {
        self.delivered_bytes
    }

    /// Driver activity counters.
    pub fn stats(&self) -> DriverStats {
        self.stats
    }

    /// Deadline of the earliest armed timer, if any (the computed recv
    /// timeout in the loop sketch above).
    pub fn poll_timeout(&self) -> Option<SimTime> {
        self.timers.peek().map(|Reverse((at, _, _))| *at)
    }

    /// Run `Endpoint::on_start` (once) and flush its commands.
    pub fn start(&mut self) -> io::Result<()> {
        if self.started {
            return Ok(());
        }
        self.started = true;
        self.out.now = self.clock.now();
        self.ep.on_start(&mut self.out);
        self.flush()
    }

    /// One iteration of the event loop: fire due timers, then block on the
    /// socket for at most `slice` (shortened to the next timer deadline),
    /// then dispatch whatever arrived. Returns `true` if a datagram was
    /// processed.
    pub fn drive_once(&mut self, slice: Duration) -> io::Result<bool> {
        self.start()?;
        self.fire_due_timers()?;

        // How long may we sleep in recv without missing a deadline?
        let now = self.clock.now();
        let wait = match self.poll_timeout() {
            Some(at) => at.saturating_since(now).min(slice),
            None => slice,
        };
        self.socket.set_read_timeout(Some(wait.max(MIN_WAIT)))?;

        match self.socket.recv_from(&mut self.recv_buf) {
            Ok((n, from)) => {
                if self.peer.is_some() && self.peer != Some(from) {
                    self.stats.datagrams_rejected += 1;
                    return Ok(false);
                }
                match Frame::decode(&self.recv_buf[..n]) {
                    Ok(frame) => {
                        // Latch the peer only off a valid frame, so stray
                        // traffic can never lock out the real client.
                        if self.peer.is_none() {
                            self.peer = Some(from);
                        }
                        self.stats.datagrams_received += 1;
                        self.out.now = self.clock.now();
                        self.ep
                            .handle_datagram(&mut self.out, frame.wire_size, &frame.header);
                        self.flush()?;
                        Ok(true)
                    }
                    Err(_) => {
                        self.stats.datagrams_rejected += 1;
                        Ok(false)
                    }
                }
            }
            // Timeouts are the loop's idle path; connection-reset style
            // errors are per-datagram soft failures on UDP (e.g. a prior
            // send hit ICMP port-unreachable — the SYN retransmit timer
            // handles recovery), never reasons to kill the event loop.
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                Ok(false)
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::ConnectionReset | io::ErrorKind::ConnectionRefused
                ) =>
            {
                self.stats.soft_errors += 1;
                Ok(false)
            }
            Err(e) => Err(e),
        }
    }

    /// Deliver every timer whose deadline has passed. Stale generations are
    /// delivered too — filtering them is the endpoint's job, matching the
    /// simulator's fire-and-forget contract.
    fn fire_due_timers(&mut self) -> io::Result<()> {
        loop {
            let now = self.clock.now();
            match self.timers.peek() {
                Some(Reverse((at, _, _))) if *at <= now => {
                    let Reverse((_, _, token)) = self.timers.pop().unwrap();
                    self.stats.timers_fired += 1;
                    self.out.now = now;
                    self.ep.on_timer(&mut self.out, token);
                    self.flush()?;
                }
                _ => return Ok(()),
            }
        }
    }

    /// Apply the endpoint's buffered commands, in order.
    fn flush(&mut self) -> io::Result<()> {
        while let Some(cmd) = self.out.poll_cmd() {
            match cmd {
                Command::Transmit(t) => {
                    if self.peer.is_some() {
                        self.send_frame(t)?;
                    } else {
                        self.pending_tx.push_back(t);
                    }
                }
                Command::SetTimer { at, token } => {
                    self.next_timer_seq += 1;
                    self.timers.push(Reverse((at, self.next_timer_seq, token)));
                }
                Command::Deliver { bytes, .. } => self.delivered_bytes += bytes,
            }
        }
        // A freshly learned peer releases anything queued before it.
        while self.peer.is_some() {
            match self.pending_tx.pop_front() {
                Some(t) => self.send_frame(t)?,
                None => break,
            }
        }
        Ok(())
    }

    fn send_frame(&mut self, t: Transmit) -> io::Result<()> {
        let peer = self.peer.expect("send_frame requires a peer");
        self.next_seq += 1;
        let frame = Frame {
            flow: t.flow,
            seq: self.next_seq,
            wire_size: t.wire_size,
            header: t.header,
        };
        let bytes = frame
            .encode()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        self.socket.send_to(&bytes, peer)?;
        self.stats.datagrams_sent += 1;
        Ok(())
    }
}

/// Annotate a socket error with which driver of a pair raised it, keeping
/// the original [`io::ErrorKind`] so callers can still match on it.
pub(crate) fn annotate_side(side: &str, e: io::Error) -> io::Error {
    io::Error::new(e.kind(), format!("{side}: {e}"))
}

/// Drive two endpoints of one connection in a single thread, alternating
/// short [`UdpDriver::drive_once`] slices, until `done` reports completion
/// or `deadline` (wall time) expires. Returns whether `done` was reached.
///
/// Socket errors are never swallowed: a hard failure on either side aborts
/// the loop immediately, with the error annotated by side (`"a side"` /
/// `"b side"`, in argument order) and its [`io::ErrorKind`] preserved.
pub fn drive_pair<A: Endpoint, B: Endpoint>(
    a: &mut UdpDriver<A>,
    b: &mut UdpDriver<B>,
    deadline: Duration,
    mut done: impl FnMut(&UdpDriver<A>, &UdpDriver<B>) -> bool,
) -> io::Result<bool> {
    const SLICE: Duration = Duration::from_micros(300);
    let start = std::time::Instant::now();
    loop {
        a.drive_once(SLICE)
            .map_err(|e| annotate_side("a side", e))?;
        b.drive_once(SLICE)
            .map_err(|e| annotate_side("b side", e))?;
        if done(a, b) {
            return Ok(true);
        }
        if start.elapsed() > deadline {
            return Ok(false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echoes every datagram back with its header reversed, and counts.
    struct Echo {
        flow: u32,
        got: u64,
    }

    impl Endpoint for Echo {
        fn handle_datagram(&mut self, out: &mut Outbox, wire_size: u32, header: &[u8]) {
            self.got += 1;
            let mut back = header.to_vec();
            back.reverse();
            out.send_new(self.flow, 0, wire_size, back);
        }
    }

    /// Sends one datagram on start, records the reply.
    struct Pinger {
        flow: u32,
        reply: Option<Vec<u8>>,
    }

    impl Endpoint for Pinger {
        fn on_start(&mut self, out: &mut Outbox) {
            out.send_new(self.flow, 0, 64, vec![1, 2, 3]);
        }
        fn handle_datagram(&mut self, _out: &mut Outbox, _wire_size: u32, header: &[u8]) {
            self.reply = Some(header.to_vec());
        }
    }

    #[test]
    fn ping_pong_over_loopback() {
        let mut server = UdpDriver::server(Echo { flow: 9, got: 0 }, "127.0.0.1:0").unwrap();
        let server_addr = server.local_addr().unwrap();
        let mut client = UdpDriver::client(
            Pinger {
                flow: 9,
                reply: None,
            },
            "127.0.0.1:0",
            server_addr,
        )
        .unwrap();
        let ok = drive_pair(&mut client, &mut server, Duration::from_secs(5), |c, _| {
            c.endpoint().reply.is_some()
        })
        .unwrap();
        assert!(ok, "echo round-trip timed out");
        assert_eq!(client.endpoint().reply.as_deref(), Some(&[3, 2, 1][..]));
        assert_eq!(server.endpoint().got, 1);
        assert_eq!(client.stats().datagrams_sent, 1);
        assert_eq!(client.stats().datagrams_received, 1);
    }

    #[test]
    fn timers_fire_in_deadline_order() {
        struct TimerBox {
            fired: Vec<u64>,
        }
        impl Endpoint for TimerBox {
            fn on_start(&mut self, out: &mut Outbox) {
                // Armed out of order on purpose.
                out.set_timer_at(out.now + Duration::from_millis(30), 3);
                out.set_timer_at(out.now + Duration::from_millis(10), 1);
                out.set_timer_at(out.now + Duration::from_millis(20), 2);
            }
            fn on_timer(&mut self, _out: &mut Outbox, token: u64) {
                self.fired.push(token);
            }
        }
        let mut d = UdpDriver::server(TimerBox { fired: Vec::new() }, "127.0.0.1:0").unwrap();
        let t0 = std::time::Instant::now();
        while d.endpoint().fired.len() < 3 && t0.elapsed() < Duration::from_secs(5) {
            d.drive_once(Duration::from_millis(5)).unwrap();
        }
        assert_eq!(d.endpoint().fired, vec![1, 2, 3]);
        assert_eq!(d.stats().timers_fired, 3);
    }

    #[test]
    fn drive_pair_surfaces_socket_errors_with_side_attribution() {
        // An endpoint whose very first transmit cannot be framed: the send
        // path fails with InvalidData, and drive_pair must abort with that
        // error (annotated by side) instead of spinning to the deadline.
        struct Unframable;
        impl Endpoint for Unframable {
            fn on_start(&mut self, out: &mut Outbox) {
                out.send_new(0, 0, 64, vec![0; crate::frame::MAX_FRAME_LEN]);
            }
        }
        let mut server = UdpDriver::server(Echo { flow: 0, got: 0 }, "127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let mut client = UdpDriver::client(Unframable, "127.0.0.1:0", addr).unwrap();
        let err = drive_pair(&mut client, &mut server, Duration::from_secs(5), |_, _| {
            false
        })
        .expect_err("unframable transmit must surface as an error");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(
            err.to_string().contains("a side"),
            "error names the failing side: {err}"
        );
    }

    #[test]
    fn garbage_datagrams_are_rejected_and_do_not_poison_the_peer() {
        let mut server = UdpDriver::server(Echo { flow: 1, got: 0 }, "127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let raw = UdpSocket::bind("127.0.0.1:0").unwrap();
        raw.send_to(b"definitely not a frame", addr).unwrap();
        let t0 = std::time::Instant::now();
        while server.stats().datagrams_rejected == 0 && t0.elapsed() < Duration::from_secs(5) {
            server.drive_once(Duration::from_millis(5)).unwrap();
        }
        assert_eq!(server.stats().datagrams_rejected, 1);
        assert_eq!(server.endpoint().got, 0);

        // The stray traffic must not have latched the peer: a legitimate
        // client arriving afterwards still gets through.
        let mut client = UdpDriver::client(
            Pinger {
                flow: 1,
                reply: None,
            },
            "127.0.0.1:0",
            addr,
        )
        .unwrap();
        let ok = drive_pair(&mut client, &mut server, Duration::from_secs(5), |c, _| {
            c.endpoint().reply.is_some()
        })
        .unwrap();
        assert!(ok, "real client locked out after garbage datagram");
        assert_eq!(server.endpoint().got, 1);
    }
}
