//! Monotonic wall clock mapped onto the protocol's [`SimTime`] axis.
//!
//! The QTP state machines timestamp everything in [`SimTime`] — nanoseconds
//! since "the start". In the simulator that origin is the simulation epoch;
//! over real I/O it is the moment the driver's clock was created. Mapping
//! `Instant` onto the same axis keeps every protocol computation (RTT from
//! echoed timestamps, feedback rounds, TTL staleness) identical across
//! backends.
//!
//! Both endpoints of a connection measure RTT via *echoed* timestamps
//! (each side only ever subtracts its own clock readings), so the two
//! drivers' epochs don't need to be synchronized.

use qtp_simnet::time::SimTime;
use std::time::Instant;

/// Monotonic clock anchored at its creation instant.
#[derive(Debug, Clone, Copy)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    /// Anchor a new clock at the current instant (t = `SimTime::ZERO`).
    pub fn new() -> Self {
        WallClock {
            epoch: Instant::now(),
        }
    }

    /// Current time on the protocol axis: nanoseconds since the anchor.
    pub fn now(&self) -> SimTime {
        SimTime::from_nanos(self.epoch.elapsed().as_nanos() as u64)
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn clock_is_monotonic_and_starts_near_zero() {
        let c = WallClock::new();
        let t0 = c.now();
        assert!(t0 < SimTime::from_secs(1), "fresh clock reads near zero");
        std::thread::sleep(Duration::from_millis(5));
        let t1 = c.now();
        assert!(t1 > t0);
        assert!(t1.saturating_since(t0) >= Duration::from_millis(4));
    }
}
