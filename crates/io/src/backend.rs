//! Real-socket [`Backend`] bindings: the same [`ConnectionPlan`]s that run
//! on the deterministic simulator (`qtp_core::session::SimBackend`) run
//! here over actual UDP sockets on loopback — one blocking socket pair per
//! connection ([`UdpBackend`]) or every connection multiplexed over a
//! single socket pair ([`MuxBackend`]).
//!
//! Both backends mount [`Session`]s in the existing drivers (a `Session`
//! implements the `Endpoint` seam), so the protocol behaviour is exactly
//! the driver behaviour; what this module adds is plan wiring, a shared
//! completion rule and outcome extraction. Times in the outcomes are
//! wall-clock, so socket-backend reports are *not* byte-deterministic —
//! the deterministic claims all live on the sim backend.

use qtp_core::session::{Backend, ConnectionOutcome, ConnectionPlan, Session};
use qtp_sack::ReliabilityMode;
use std::io;
use std::rc::Rc;
use std::time::{Duration, Instant};

use crate::driver::{annotate_side, UdpDriver};
use crate::mux::{drive_mux_pair, Accepted, ConnId, MuxConfig, MuxDriver, MuxStats};

/// Driver time slice used by both backends' event loops.
const SLICE: Duration = Duration::from_micros(300);

/// Client-side completion rule shared by the socket backends: a finite
/// transfer is done when its backlog has been transmitted — and, when
/// the [effective](ConnectionPlan::effective_reliability) reliability is
/// `Full`, acknowledged. Keying on the negotiated mode (not the offer)
/// matters: a policy-downgraded connection never retransmits, so one
/// dropped datagram would leave `all_acked()` false forever and spin the
/// loop to the deadline. Open-ended apps (greedy, CBR) run until the
/// backend's deadline.
fn tx_complete(plan: &ConnectionPlan, tx: &Session) -> bool {
    let Some(packets) = plan.finite_packets() else {
        return false;
    };
    let sent_all = tx.sent_new() >= packets;
    if plan.effective_reliability(tx.negotiated()) == ReliabilityMode::Full {
        sent_all && tx.all_acked()
    } else {
        sent_all
    }
}

fn outcome(
    label: String,
    completion_s: Option<f64>,
    horizon_s: f64,
    tx: &Session,
    rx: Option<&Session>,
) -> ConnectionOutcome {
    let delivered = rx.map(|r| r.delivered_bytes()).unwrap_or(0);
    let elapsed = completion_s.unwrap_or(horizon_s);
    ConnectionOutcome {
        label,
        negotiated: tx.negotiated(),
        delivered_bytes: delivered,
        completion_s,
        goodput_bps: if elapsed > 0.0 {
            delivered as f64 * 8.0 / elapsed
        } else {
            0.0
        },
        tx_events: tx.events().drain(),
        rx_events: rx.map(|r| r.events().drain()).unwrap_or_default(),
        tx: tx.probe().snapshot(),
        rx: rx.map(|r| r.probe().snapshot()).unwrap_or_default(),
    }
}

// ---------------------------------------------------------------------------
// UdpBackend
// ---------------------------------------------------------------------------

/// One blocking UDP socket pair per connection, on 127.0.0.1 — the
/// [`UdpDriver`] binding of the backend seam. All pairs are driven
/// round-robin from one thread.
#[derive(Debug, Clone)]
pub struct UdpBackend {
    /// Wall-clock bound for the whole run.
    pub deadline: Duration,
}

impl UdpBackend {
    /// A backend with the given wall-clock deadline.
    pub fn new(deadline: Duration) -> UdpBackend {
        UdpBackend { deadline }
    }
}

impl Default for UdpBackend {
    fn default() -> Self {
        UdpBackend::new(Duration::from_secs(30))
    }
}

impl Backend for UdpBackend {
    fn name(&self) -> &'static str {
        "udp"
    }

    fn run(&mut self, plans: &[ConnectionPlan]) -> io::Result<Vec<ConnectionOutcome>> {
        // Data travels on flow 0, feedback on flow 1; each pair has its
        // own sockets so the ids never collide across connections.
        let mut pairs: Vec<(UdpDriver<Session>, UdpDriver<Session>)> = Vec::new();
        for plan in plans {
            let rx = UdpDriver::server(Session::receiver(0, 1, 0, plan), "127.0.0.1:0")?;
            let peer = rx.local_addr()?;
            let tx = UdpDriver::client(Session::sender(0, 1, plan), "127.0.0.1:0", peer)?;
            pairs.push((tx, rx));
        }

        // Sweeps a pair is still driven after completing, so trailing
        // in-flight datagrams (an unreliable flow's last packets, final
        // feedback) drain before the pair stops being serviced. Without
        // the skip, every completed pair would keep blocking in recv for
        // up to 2×SLICE per sweep, throttling the still-active flows.
        const DRAIN_SWEEPS: u32 = 3;
        let start = Instant::now();
        let mut completion: Vec<Option<f64>> = vec![None; plans.len()];
        let mut drained: Vec<u32> = vec![0; plans.len()];
        loop {
            let mut all_done = true;
            for (i, (tx, rx)) in pairs.iter_mut().enumerate() {
                if completion[i].is_some() {
                    if drained[i] >= DRAIN_SWEEPS {
                        continue;
                    }
                    drained[i] += 1;
                }
                tx.drive_once(SLICE)
                    .map_err(|e| annotate_side("sender side", e))?;
                rx.drive_once(SLICE)
                    .map_err(|e| annotate_side("receiver side", e))?;
                if completion[i].is_none() && tx_complete(&plans[i], tx.endpoint()) {
                    completion[i] = Some(start.elapsed().as_secs_f64());
                }
                // "Done" means completed AND drained — the last pair to
                // complete gets its drain sweeps too.
                if completion[i].is_none() || drained[i] < DRAIN_SWEEPS {
                    all_done = false;
                }
            }
            if all_done || start.elapsed() > self.deadline {
                break;
            }
        }

        let horizon_s = self.deadline.as_secs_f64();
        Ok(plans
            .iter()
            .zip(&pairs)
            .enumerate()
            .map(|(i, (plan, (tx, rx)))| {
                outcome(
                    plan.display_label(i),
                    completion[i],
                    horizon_s,
                    tx.endpoint(),
                    Some(rx.endpoint()),
                )
            })
            .collect())
    }
}

// ---------------------------------------------------------------------------
// MuxBackend
// ---------------------------------------------------------------------------

/// Socket-level counters from one [`MuxBackend::run`], per side. The
/// [`MuxStats::counter_set`] view is the cross-backend currency; the raw
/// stats keep the mux-only fields (backlog / timer-wheel high-water).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MuxRunStats {
    /// The client-side mux (all senders).
    pub client: MuxStats,
    /// The server-side mux (all receivers).
    pub server: MuxStats,
}

/// Every connection multiplexed over ONE client socket and ONE server
/// socket — the [`MuxDriver`] binding of the backend seam. The server
/// accepts each connection on its first frame; connection `i` owns data
/// flow `2i` and feedback flow `2i + 1`.
#[derive(Debug, Clone)]
pub struct MuxBackend {
    /// Wall-clock bound for the whole run.
    pub deadline: Duration,
    /// Mux tuning (the connection cap is raised to fit the plans).
    pub mux: MuxConfig,
    /// Counters of the most recent [`Backend::run`], for reports.
    pub last_stats: Option<MuxRunStats>,
}

impl MuxBackend {
    /// A backend with the given wall-clock deadline and default tuning.
    pub fn new(deadline: Duration) -> MuxBackend {
        MuxBackend {
            deadline,
            mux: MuxConfig::default(),
            last_stats: None,
        }
    }
}

impl Default for MuxBackend {
    fn default() -> Self {
        MuxBackend::new(Duration::from_secs(60))
    }
}

impl Backend for MuxBackend {
    fn name(&self) -> &'static str {
        "mux"
    }

    fn run(&mut self, plans: &[ConnectionPlan]) -> io::Result<Vec<ConnectionOutcome>> {
        let mux_cfg = MuxConfig {
            max_conns: (2 * plans.len()).max(self.mux.max_conns),
            ..self.mux.clone()
        };
        let mut server: MuxDriver<Session> = MuxDriver::bind_with("127.0.0.1:0", mux_cfg.clone())?;
        let accept_plans: Rc<Vec<ConnectionPlan>> = Rc::new(plans.to_vec());
        server.set_acceptor(move |_, frame| {
            if frame.flow % 2 != 0 {
                return None;
            }
            let plan = accept_plans.get((frame.flow / 2) as usize)?;
            Some(Accepted {
                endpoint: Session::receiver(frame.flow, frame.flow + 1, 0, plan),
                flows: vec![frame.flow, frame.flow + 1],
            })
        });
        let server_addr = server.local_addr()?;

        let mut client: MuxDriver<Session> = MuxDriver::bind_with("127.0.0.1:0", mux_cfg)?;
        let mut conns: Vec<ConnId> = Vec::with_capacity(plans.len());
        for (i, plan) in plans.iter().enumerate() {
            let data = 2 * i as u32;
            conns.push(client.add_connection(
                server_addr,
                vec![data, data + 1],
                Session::sender(data, 0, plan),
            )?);
        }

        let start = Instant::now();
        let mut completion: Vec<Option<f64>> = vec![None; plans.len()];
        drive_mux_pair(&mut client, &mut server, self.deadline, |c, _| {
            let mut all_done = true;
            for (i, (plan, id)) in plans.iter().zip(&conns).enumerate() {
                if completion[i].is_some() {
                    continue;
                }
                let tx = c.endpoint(*id).expect("client conn is live");
                if tx_complete(plan, tx) {
                    completion[i] = Some(start.elapsed().as_secs_f64());
                } else {
                    all_done = false;
                }
            }
            all_done
        })?;

        let client_addr = client.local_addr()?;
        self.last_stats = Some(MuxRunStats {
            client: client.stats(),
            server: server.stats(),
        });
        let horizon_s = self.deadline.as_secs_f64();
        Ok(plans
            .iter()
            .zip(&conns)
            .enumerate()
            .map(|(i, (plan, id))| {
                let tx = client.endpoint(*id).expect("client conn is live");
                let rx = server
                    .route(client_addr, 2 * i as u32)
                    .and_then(|rid| server.endpoint(rid));
                outcome(plan.display_label(i), completion[i], horizon_s, tx, rx)
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qtp_core::session::Profile;
    use qtp_core::{CapabilitySet, ServerPolicy};
    use qtp_simnet::time::Rate;

    fn mixed_plans(packets: u64) -> Vec<ConnectionPlan> {
        vec![
            ConnectionPlan::new(Profile::qtp_af(Rate::from_kbps(500)))
                .label("af")
                .finite(packets),
            ConnectionPlan::new(Profile::qtp_light())
                .label("light")
                .finite(packets),
        ]
    }

    #[test]
    fn udp_backend_runs_mixed_plans() {
        let plans = mixed_plans(12);
        let outcomes = UdpBackend::default().run(&plans).expect("udp run");
        assert_eq!(outcomes.len(), 2);
        for o in &outcomes {
            assert!(o.completion_s.is_some(), "{} completed", o.label);
        }
        // The reliable connection delivered everything; negotiation
        // matches the pure policy function.
        assert_eq!(outcomes[0].delivered_bytes, 12 * 1000);
        assert_eq!(
            outcomes[0].negotiated,
            Some(ServerPolicy::default().negotiate(CapabilitySet::qtp_af(Rate::from_kbps(500))))
        );
    }

    #[test]
    fn mux_backend_runs_mixed_plans_over_one_socket_pair() {
        let plans = mixed_plans(10);
        let outcomes = MuxBackend::default().run(&plans).expect("mux run");
        assert_eq!(outcomes.len(), 2);
        for o in &outcomes {
            assert!(o.completion_s.is_some(), "{} completed", o.label);
        }
        assert_eq!(outcomes[0].delivered_bytes, 10 * 1000);
        assert!(outcomes[1].negotiated.is_some());
    }
}
