//! Connection multiplexing: one UDP socket, many QTP flows.
//!
//! [`UdpDriver`](crate::UdpDriver) binds one socket per endpoint — fine for
//! a demo, hopeless for a server. [`MuxDriver`] is the scaling seam the
//! ROADMAP calls for: it owns **one** `std::net::UdpSocket` and routes
//! datagrams among N concurrent [`Endpoint`] instances keyed by
//! `(peer_addr, flow_id)`, QUIC-style:
//!
//! ```text
//! loop {                                  // MuxDriver::drive_once
//!     flush backlogged sends              // WouldBlock retries
//!     advance timer wheel, fire due       // endpoint.on_timer per conn
//!     while socket ready (level-trig.):   // set_nonblocking(true)
//!         recv; decode frame
//!         route (peer, frame.flow) -> conn, else acceptor -> new conn
//!         endpoint.handle_datagram; drain outbox
//!     if nothing happened: sleep min(slice, next deadline)
//! }
//! ```
//!
//! * **Routing** — every connection registers the flow ids it owns with its
//!   peer address (a QTP connection owns two: data + feedback). The route
//!   table is the hot path; see the `mux_micro` criterion bench.
//! * **Timers** — a [`TimerWheel`] holds every armed wakeup, tagged by
//!   connection so teardown can purge them. The wheel keeps the
//!   simulator's fire-and-forget contract: it never cancels an entry on
//!   re-arm; endpoints discard stale generations via
//!   [`TimerGens`](qtp_core::TimerGens).
//! * **Lifecycle** — connections appear either explicitly
//!   ([`MuxDriver::add_connection`], the client role) or on the first
//!   decodable frame from an unknown `(peer, flow)` via the acceptor
//!   callback (the server role); they disappear explicitly
//!   ([`MuxDriver::close`]) or through idle reaping
//!   ([`MuxDriver::reap_stale`]).
//!
//! `MuxDriver` is generic over the endpoint type: a homogeneous mux
//! (`MuxDriver<QtpReceiver>` on a server) keeps typed access to its
//! endpoints, and `MuxDriver<Box<dyn Endpoint>>` mixes senders and
//! receivers on one socket. Strictly single-threaded, like everything else
//! in this crate; batching (recvmmsg/GSO) and async runtimes layer on top
//! of this seam later.

use qtp_core::driver::{Command, Endpoint, Outbox, Transmit};
use qtp_simnet::packet::FlowId;
use qtp_simnet::time::SimTime;
use std::collections::{BTreeMap, VecDeque};
use std::io;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::time::Duration;

use crate::clock::WallClock;
use crate::frame::{Frame, MAX_FRAME_LEN};

/// Identifier of one multiplexed connection, unique for the lifetime of a
/// [`MuxDriver`] (ids are never reused after [`MuxDriver::close`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConnId(u64);

impl ConnId {
    /// Build an id from its raw value — for driving a [`TimerWheel`]
    /// directly (tests, benchmarks). Ids used with a [`MuxDriver`] always
    /// come from the driver itself.
    pub fn from_raw(raw: u64) -> Self {
        ConnId(raw)
    }

    /// The raw value.
    pub fn as_raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for ConnId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "conn#{}", self.0)
    }
}

// ---------------------------------------------------------------------------
// Timer wheel
// ---------------------------------------------------------------------------

/// Slots per wheel revolution. With the default 1 ms granularity one
/// revolution covers 256 ms; anything further out parks in the overflow
/// list until its revolution comes around.
const WHEEL_SLOTS: usize = 256;

#[derive(Debug, Clone)]
struct TimerEntry {
    at: SimTime,
    /// Arming order, the tie-break for equal deadlines (matching the
    /// simulator's insertion-order event tie-break).
    seq: u64,
    conn: ConnId,
    token: u64,
}

/// A hashed timer wheel over all connections of a mux.
///
/// Entries are bucketed by deadline into [`WHEEL_SLOTS`] slots of fixed
/// granularity; [`TimerWheel::advance`] drains every entry due at `now`, in
/// exact `(deadline, arming order)` order — the granularity affects only
/// bucketing cost, never fire order. Entries are tagged with their
/// [`ConnId`] so [`TimerWheel::cancel_conn`] can purge a torn-down
/// connection wholesale; individual timers are fire-and-forget, exactly
/// like the simulator's (endpoints filter stale generations themselves, see
/// [`TimerGens`](qtp_core::TimerGens)).
#[derive(Debug)]
pub struct TimerWheel {
    granularity_ns: u64,
    slots: Vec<Vec<TimerEntry>>,
    /// Entries more than one revolution ahead of the cursor.
    overflow: Vec<TimerEntry>,
    /// Tick index the wheel has been advanced to (inclusive).
    cursor: u64,
    next_seq: u64,
    armed: usize,
    /// Cached earliest deadline, so the idle path reads the sleep bound
    /// without scanning every slot. Entry removal (advance/cancel) only
    /// marks it dirty; [`TimerWheel::next_deadline`] recomputes lazily —
    /// and the driver consults it only on idle iterations, where nothing
    /// just fired and the cache is almost always still clean.
    earliest: std::cell::Cell<Option<SimTime>>,
    earliest_dirty: std::cell::Cell<bool>,
}

impl TimerWheel {
    /// A wheel with the given slot width. Sub-slot deadline precision is
    /// preserved; the width only sizes the buckets.
    pub fn new(granularity: Duration) -> Self {
        TimerWheel {
            granularity_ns: (granularity.as_nanos() as u64).max(1),
            slots: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            overflow: Vec::new(),
            cursor: 0,
            next_seq: 0,
            armed: 0,
            earliest: std::cell::Cell::new(None),
            earliest_dirty: std::cell::Cell::new(false),
        }
    }

    fn tick_of(&self, at: SimTime) -> u64 {
        at.as_nanos() / self.granularity_ns
    }

    /// Arm a wakeup for `conn` at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, conn: ConnId, token: u64) {
        self.next_seq += 1;
        let entry = TimerEntry {
            at,
            seq: self.next_seq,
            conn,
            token,
        };
        self.armed += 1;
        if !self.earliest_dirty.get() {
            self.earliest.set(Some(match self.earliest.get() {
                Some(e) => e.min(at),
                None => at,
            }));
        }
        let tick = self.tick_of(at);
        if tick >= self.cursor + WHEEL_SLOTS as u64 {
            self.overflow.push(entry);
        } else {
            // Already-due entries land in the cursor slot, which the next
            // advance always rescans.
            let slot = tick.max(self.cursor) % WHEEL_SLOTS as u64;
            self.slots[slot as usize].push(entry);
        }
    }

    /// Drain every entry due at `now`, ordered by `(deadline, arming
    /// order)`, and move the cursor up to `now`'s tick.
    pub fn advance(&mut self, now: SimTime) -> Vec<(ConnId, u64)> {
        let now_tick = self.tick_of(now).max(self.cursor);
        let mut due: Vec<TimerEntry> = Vec::new();

        // Overflow: fire what is due outright, refile what has entered the
        // coming revolution, keep the rest parked.
        let horizon = now_tick + WHEEL_SLOTS as u64;
        let mut i = 0;
        while i < self.overflow.len() {
            if self.overflow[i].at <= now {
                due.push(self.overflow.swap_remove(i));
            } else if self.tick_of(self.overflow[i].at) < horizon {
                let e = self.overflow.swap_remove(i);
                let slot = self.tick_of(e.at).max(now_tick) % WHEEL_SLOTS as u64;
                self.slots[slot as usize].push(e);
            } else {
                i += 1;
            }
        }

        // Visit each slot between the cursor and now's tick at most once
        // (a revolution covers them all). Only the final slot can hold
        // not-yet-due entries; they stay put and are rescanned next time.
        let span = (now_tick - self.cursor).min(WHEEL_SLOTS as u64 - 1);
        for t in self.cursor..=self.cursor + span {
            let slot = &mut self.slots[(t % WHEEL_SLOTS as u64) as usize];
            let mut j = 0;
            while j < slot.len() {
                if slot[j].at <= now {
                    due.push(slot.swap_remove(j));
                } else {
                    j += 1;
                }
            }
        }
        self.cursor = now_tick;

        due.sort_by_key(|e| (e.at, e.seq));
        self.armed -= due.len();
        if !due.is_empty() {
            self.earliest_dirty.set(true);
        }
        due.into_iter().map(|e| (e.conn, e.token)).collect()
    }

    /// Earliest armed deadline, if any (the idle-sleep bound). O(1) while
    /// the cache is clean; one slot scan right after entries were removed.
    pub fn next_deadline(&self) -> Option<SimTime> {
        if self.earliest_dirty.get() {
            self.earliest.set(
                self.slots
                    .iter()
                    .flatten()
                    .chain(self.overflow.iter())
                    .map(|e| e.at)
                    .min(),
            );
            self.earliest_dirty.set(false);
        }
        self.earliest.get()
    }

    /// Drop every entry belonging to `conn` (connection teardown).
    pub fn cancel_conn(&mut self, conn: ConnId) {
        for slot in self
            .slots
            .iter_mut()
            .chain(std::iter::once(&mut self.overflow))
        {
            slot.retain(|e| e.conn != conn);
        }
        self.armed = self.slots.iter().map(Vec::len).sum::<usize>() + self.overflow.len();
        self.earliest_dirty.set(true);
    }

    /// Number of armed entries.
    pub fn len(&self) -> usize {
        self.armed
    }

    /// Whether no entries are armed.
    pub fn is_empty(&self) -> bool {
        self.armed == 0
    }
}

// ---------------------------------------------------------------------------
// The mux driver
// ---------------------------------------------------------------------------

/// Tuning knobs for a [`MuxDriver`].
#[derive(Debug, Clone)]
pub struct MuxConfig {
    /// Timer wheel slot width.
    pub timer_granularity: Duration,
    /// Most datagrams dispatched per [`MuxDriver::drive_once`] call before
    /// yielding back to the timer path (level-triggered fairness bound).
    pub recv_batch: usize,
    /// Most concurrent connections; the acceptor is not consulted beyond
    /// this (the datagram counts as unroutable).
    pub max_conns: usize,
}

impl Default for MuxConfig {
    fn default() -> Self {
        MuxConfig {
            timer_granularity: Duration::from_millis(1),
            recv_batch: 256,
            max_conns: 4096,
        }
    }
}

/// What an acceptor returns for a connection it admits: the endpoint plus
/// every flow id to route to it (which must include the triggering flow).
pub struct Accepted<E> {
    /// The freshly built endpoint (driven from the triggering datagram on).
    pub endpoint: E,
    /// Flow ids owned by this connection, from the triggering peer.
    pub flows: Vec<FlowId>,
}

type Acceptor<E> = Box<dyn FnMut(SocketAddr, &Frame) -> Option<Accepted<E>>>;

/// Per-connection activity counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ConnStats {
    /// Frames sent on behalf of this connection.
    pub datagrams_sent: u64,
    /// Frames routed to this connection.
    pub datagrams_received: u64,
    /// Application bytes the endpoint delivered (`Command::Deliver`).
    pub delivered_bytes: u64,
    /// Last send or receive on this connection (mux clock axis); the
    /// reaper's staleness measure.
    pub last_activity: SimTime,
}

/// Whole-mux activity counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MuxStats {
    /// Frames sent on the socket.
    pub datagrams_sent: u64,
    /// Frames received and routed to a connection.
    pub datagrams_received: u64,
    /// Datagrams dropped because they don't decode as frames.
    pub datagrams_rejected: u64,
    /// Valid frames with no route and no (or a declining) acceptor.
    pub datagrams_unroutable: u64,
    /// Timer events delivered (stale generations included).
    pub timers_fired: u64,
    /// Connections created by the acceptor.
    pub conns_accepted: u64,
    /// Connections removed by [`MuxDriver::close`] (reaping included).
    pub conns_closed: u64,
    /// Connections removed by [`MuxDriver::reap_stale`].
    pub conns_reaped: u64,
    /// Sends deferred because the socket buffer was full (`WouldBlock`).
    pub sends_requeued: u64,
    /// Soft per-datagram socket errors absorbed (ICMP reflections etc.).
    pub soft_errors: u64,
    /// Deepest the `WouldBlock` send backlog ever got (frames).
    pub tx_backlog_high_water: u64,
    /// Most timer entries armed in the wheel at once (stale generations
    /// included): the timer-state footprint of the whole mux.
    pub timer_wheel_high_water: u64,
}

impl MuxStats {
    /// The mux's activity as a [`CounterSet`], the cross-backend
    /// observability currency: datagrams map to packets, timer and
    /// soft-error counters carry over, everything per-connection (bytes,
    /// retransmits, drops) stays zero — those live with the endpoints'
    /// own tracers.
    ///
    /// [`CounterSet`]: qtp_metrics::trace::CounterSet
    pub fn counter_set(&self) -> qtp_metrics::trace::CounterSet {
        qtp_metrics::trace::CounterSet {
            pkts_tx: self.datagrams_sent,
            pkts_rx: self.datagrams_received,
            timer_fires: self.timers_fired,
            soft_errors: self.soft_errors,
            ..Default::default()
        }
    }
}

struct Conn<E> {
    /// The endpoint. `None` only transiently, while one of its callbacks
    /// runs (taken out so the command drain can borrow the mux freely
    /// without structurally mutating the connection map on the hot path).
    ep: Option<E>,
    peer: SocketAddr,
    flows: Vec<FlowId>,
    stats: ConnStats,
}

/// Drives N [`Endpoint`]s over one UDP socket.
pub struct MuxDriver<E: Endpoint> {
    socket: UdpSocket,
    clock: WallClock,
    cfg: MuxConfig,
    wheel: TimerWheel,
    conns: BTreeMap<ConnId, Conn<E>>,
    routes: BTreeMap<(SocketAddr, FlowId), ConnId>,
    acceptor: Option<Acceptor<E>>,
    out: Outbox,
    next_conn: u64,
    /// Per-mux datagram counter, stamped into frames as `seq` (tracing).
    next_seq: u64,
    /// Encoded frames whose send hit `WouldBlock`; retried first thing
    /// every `drive_once`, in order. While non-empty, fresh sends queue
    /// behind it so the datagram stream never reorders.
    tx_backlog: VecDeque<(ConnId, SocketAddr, Vec<u8>)>,
    recv_buf: Vec<u8>,
    stats: MuxStats,
}

impl<E: Endpoint> MuxDriver<E> {
    /// Bind a mux on `bind_addr` with default tuning.
    pub fn bind(bind_addr: impl ToSocketAddrs) -> io::Result<Self> {
        Self::bind_with(bind_addr, MuxConfig::default())
    }

    /// Bind a mux on `bind_addr` with explicit tuning.
    pub fn bind_with(bind_addr: impl ToSocketAddrs, cfg: MuxConfig) -> io::Result<Self> {
        let socket = UdpSocket::bind(bind_addr)?;
        socket.set_nonblocking(true)?;
        Ok(MuxDriver {
            socket,
            clock: WallClock::new(),
            wheel: TimerWheel::new(cfg.timer_granularity),
            cfg,
            conns: BTreeMap::new(),
            routes: BTreeMap::new(),
            acceptor: None,
            out: Outbox::new(),
            next_conn: 0,
            next_seq: 0,
            tx_backlog: VecDeque::new(),
            recv_buf: vec![0; MAX_FRAME_LEN + 1],
            stats: MuxStats::default(),
        })
    }

    /// The socket's local address (useful after binding to port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// Install the accept-on-first-frame callback: consulted whenever a
    /// decodable frame arrives from an unknown `(peer, flow)`. Returning
    /// `None` drops the datagram (counted as unroutable).
    pub fn set_acceptor(
        &mut self,
        acceptor: impl FnMut(SocketAddr, &Frame) -> Option<Accepted<E>> + 'static,
    ) {
        self.acceptor = Some(Box::new(acceptor));
    }

    /// Register a connection to `peer` owning `flows` (the client role:
    /// the endpoint's `on_start` runs immediately, typically emitting a
    /// SYN). Fails if any `(peer, flow)` route is already taken, if
    /// `flows` is empty, or at the connection cap.
    pub fn add_connection(
        &mut self,
        peer: SocketAddr,
        flows: Vec<FlowId>,
        endpoint: E,
    ) -> io::Result<ConnId> {
        let id = self.register(peer, flows, endpoint)?;
        self.drive_endpoint(id, |ep, out| ep.on_start(out))?;
        Ok(id)
    }

    fn register(&mut self, peer: SocketAddr, flows: Vec<FlowId>, ep: E) -> io::Result<ConnId> {
        if flows.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a connection must own at least one flow id",
            ));
        }
        if self.conns.len() >= self.cfg.max_conns {
            return Err(io::Error::new(
                io::ErrorKind::OutOfMemory,
                format!("connection cap ({}) reached", self.cfg.max_conns),
            ));
        }
        for f in &flows {
            if self.routes.contains_key(&(peer, *f)) {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    format!("route ({peer}, flow {f}) already taken"),
                ));
            }
        }
        let id = ConnId(self.next_conn);
        self.next_conn += 1;
        for f in &flows {
            self.routes.insert((peer, *f), id);
        }
        self.conns.insert(
            id,
            Conn {
                ep: Some(ep),
                peer,
                flows,
                stats: ConnStats {
                    last_activity: self.clock.now(),
                    ..ConnStats::default()
                },
            },
        );
        Ok(id)
    }

    /// Tear a connection down: unroute its flows, purge its timers, return
    /// its endpoint for inspection. `None` if already gone.
    pub fn close(&mut self, id: ConnId) -> Option<E> {
        let conn = self.conns.remove(&id)?;
        for f in &conn.flows {
            self.routes.remove(&(conn.peer, *f));
        }
        self.wheel.cancel_conn(id);
        self.stats.conns_closed += 1;
        conn.ep
    }

    /// Close every connection with no send/receive activity for at least
    /// `idle`, returning the reaped endpoints.
    pub fn reap_stale(&mut self, idle: Duration) -> Vec<(ConnId, E)> {
        let now = self.clock.now();
        let stale: Vec<ConnId> = self
            .conns
            .iter()
            .filter(|(_, c)| now.saturating_since(c.stats.last_activity) >= idle)
            .map(|(id, _)| *id)
            .collect();
        stale
            .into_iter()
            .filter_map(|id| {
                let ep = self.close(id)?;
                self.stats.conns_reaped += 1;
                Some((id, ep))
            })
            .collect()
    }

    /// The endpoint of a live connection.
    pub fn endpoint(&self, id: ConnId) -> Option<&E> {
        self.conns.get(&id).and_then(|c| c.ep.as_ref())
    }

    /// Activity counters of a live connection.
    pub fn conn_stats(&self, id: ConnId) -> Option<ConnStats> {
        self.conns.get(&id).map(|c| c.stats)
    }

    /// Ids of every live connection, ascending.
    pub fn conn_ids(&self) -> Vec<ConnId> {
        self.conns.keys().copied().collect()
    }

    /// Number of live connections.
    pub fn conn_count(&self) -> usize {
        self.conns.len()
    }

    /// The connection a `(peer, flow)` datagram would route to.
    pub fn route(&self, peer: SocketAddr, flow: FlowId) -> Option<ConnId> {
        self.routes.get(&(peer, flow)).copied()
    }

    /// Whole-mux activity counters.
    pub fn stats(&self) -> MuxStats {
        self.stats
    }

    /// Earliest armed timer deadline across all connections.
    pub fn poll_timeout(&self) -> Option<SimTime> {
        self.wheel.next_deadline()
    }

    /// Number of armed timer entries across all connections (stale
    /// generations included until they fire). A connection that completed
    /// its close handshake stops re-arming, so this drains to zero once
    /// its last in-flight timer fires — the no-leak property the
    /// `mux_stream` tests pin down.
    pub fn timer_count(&self) -> usize {
        self.wheel.len()
    }

    /// One iteration of the readiness loop: retry backlogged sends, fire
    /// due timers, then drain the socket level-triggered (up to the batch
    /// bound). Sleeps at most `slice` only when the socket was quiet and
    /// no timer fired — any received datagram counts as activity, routed
    /// or not, so a garbage flood cannot put the loop to sleep while real
    /// traffic queues behind it. Returns the number of datagrams
    /// dispatched to endpoints.
    pub fn drive_once(&mut self, slice: Duration) -> io::Result<usize> {
        self.flush_backlog()?;
        let fired = self.fire_due_timers()?;

        let mut handled = 0usize;
        let mut received = 0usize;
        for _ in 0..self.cfg.recv_batch {
            match self.socket.recv_from(&mut self.recv_buf) {
                Ok((n, from)) => {
                    received += 1;
                    match Frame::decode(&self.recv_buf[..n]) {
                        Ok(frame) => {
                            if self.ingest(from, frame)? {
                                handled += 1;
                            }
                        }
                        Err(_) => self.stats.datagrams_rejected += 1,
                    };
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                // Soft per-datagram failures on UDP (ICMP port-unreachable
                // reflected onto the socket): never loop-fatal, the armed
                // protocol timers handle recovery.
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::ConnectionReset | io::ErrorKind::ConnectionRefused
                    ) =>
                {
                    self.stats.soft_errors += 1;
                }
                Err(e) => return Err(e),
            }
        }

        if received == 0 && fired == 0 {
            // A pending send backlog still bounds the nap: retrying only
            // needs the peer to have drained a little, so come back soon
            // rather than busy-spinning or oversleeping.
            let mut wait = match self.wheel.next_deadline() {
                Some(at) => at.saturating_since(self.clock.now()).min(slice),
                None => slice,
            };
            if !self.tx_backlog.is_empty() {
                wait = wait.min(Duration::from_micros(100));
            }
            if wait > Duration::ZERO {
                std::thread::sleep(wait);
            }
        }
        Ok(handled)
    }

    /// Route one already-received datagram, exactly as the recv loop does —
    /// the ingress seam for alternative receive paths (recvmmsg batching)
    /// and the `mux_micro` routing benchmark. Returns whether the datagram
    /// reached an endpoint.
    pub fn handle_datagram_from(&mut self, from: SocketAddr, buf: &[u8]) -> io::Result<bool> {
        match Frame::decode(buf) {
            Ok(frame) => self.ingest(from, frame),
            Err(_) => {
                self.stats.datagrams_rejected += 1;
                Ok(false)
            }
        }
    }

    fn ingest(&mut self, from: SocketAddr, frame: Frame) -> io::Result<bool> {
        let id = match self.routes.get(&(from, frame.flow)) {
            Some(&id) => id,
            None => match self.try_accept(from, &frame)? {
                Some(id) => id,
                None => {
                    self.stats.datagrams_unroutable += 1;
                    return Ok(false);
                }
            },
        };
        self.stats.datagrams_received += 1;
        let now = self.clock.now();
        if let Some(conn) = self.conns.get_mut(&id) {
            conn.stats.datagrams_received += 1;
            conn.stats.last_activity = now;
        }
        self.drive_endpoint(id, |ep, out| {
            ep.handle_datagram(out, frame.wire_size, &frame.header)
        })?;
        Ok(true)
    }

    fn try_accept(&mut self, from: SocketAddr, frame: &Frame) -> io::Result<Option<ConnId>> {
        if self.conns.len() >= self.cfg.max_conns {
            return Ok(None);
        }
        let Some(acceptor) = self.acceptor.as_mut() else {
            return Ok(None);
        };
        let Some(Accepted { endpoint, flows }) = acceptor(from, frame) else {
            return Ok(None);
        };
        if !flows.contains(&frame.flow) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "acceptor admitted flow {} without routing it (flows {:?})",
                    frame.flow, flows
                ),
            ));
        }
        let id = self.register(from, flows, endpoint)?;
        self.stats.conns_accepted += 1;
        self.drive_endpoint(id, |ep, out| ep.on_start(out))?;
        Ok(Some(id))
    }

    /// Deliver every due timer. Stale generations are delivered too —
    /// filtering them is the endpoint's job ([`TimerGens`]
    /// fire-and-forget contract), but timers of closed connections are
    /// dropped here.
    ///
    /// [`TimerGens`]: qtp_core::TimerGens
    fn fire_due_timers(&mut self) -> io::Result<usize> {
        let due = self.wheel.advance(self.clock.now());
        let mut fired = 0usize;
        for (id, token) in due {
            if !self.conns.contains_key(&id) {
                continue;
            }
            self.stats.timers_fired += 1;
            fired += 1;
            self.drive_endpoint(id, |ep, out| ep.on_timer(out, token))?;
        }
        Ok(fired)
    }

    /// Run one endpoint callback and apply its commands. The endpoint is
    /// taken out of its slot for the duration so the outbox drain can
    /// borrow the rest of the mux freely — no structural map mutation on
    /// the hot path; nothing in the drain re-enters endpoints, so this is
    /// not observable from outside.
    fn drive_endpoint(
        &mut self,
        id: ConnId,
        f: impl FnOnce(&mut E, &mut Outbox),
    ) -> io::Result<()> {
        let Some(conn) = self.conns.get_mut(&id) else {
            return Ok(());
        };
        let peer = conn.peer;
        let Some(mut ep) = conn.ep.take() else {
            return Ok(());
        };
        self.out.now = self.clock.now();
        f(&mut ep, &mut self.out);
        let res = self.flush_cmds(id, peer);
        if let Some(conn) = self.conns.get_mut(&id) {
            conn.ep = Some(ep);
        }
        res
    }

    fn flush_cmds(&mut self, id: ConnId, peer: SocketAddr) -> io::Result<()> {
        while let Some(cmd) = self.out.poll_cmd() {
            match cmd {
                Command::Transmit(t) => self.send_frame(id, peer, t)?,
                Command::SetTimer { at, token } => {
                    self.wheel.schedule(at, id, token);
                    self.stats.timer_wheel_high_water = self
                        .stats
                        .timer_wheel_high_water
                        .max(self.wheel.len() as u64);
                }
                Command::Deliver { bytes, .. } => {
                    if let Some(conn) = self.conns.get_mut(&id) {
                        conn.stats.delivered_bytes += bytes;
                    }
                }
            }
        }
        Ok(())
    }

    fn send_frame(&mut self, id: ConnId, peer: SocketAddr, t: Transmit) -> io::Result<()> {
        self.next_seq += 1;
        let frame = Frame {
            flow: t.flow,
            seq: self.next_seq,
            wire_size: t.wire_size,
            header: t.header,
        };
        let bytes = frame
            .encode()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let now = self.clock.now();
        // While older frames sit in the backlog, every new frame must queue
        // behind them — sending around the backlog would reorder the
        // datagram stream the moment the socket buffer fills.
        let sent = if self.tx_backlog.is_empty() {
            match self.socket.send_to(&bytes, peer) {
                Ok(_) => true,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.tx_backlog.push_back((id, peer, bytes));
                    self.stats.sends_requeued += 1;
                    self.note_backlog_depth();
                    false
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::ConnectionReset | io::ErrorKind::ConnectionRefused
                    ) =>
                {
                    self.stats.soft_errors += 1;
                    false
                }
                Err(e) => return Err(e),
            }
        } else {
            self.tx_backlog.push_back((id, peer, bytes));
            self.stats.sends_requeued += 1;
            self.note_backlog_depth();
            false
        };
        if let Some(conn) = self.conns.get_mut(&id) {
            conn.stats.last_activity = now;
            if sent {
                conn.stats.datagrams_sent += 1;
            }
        }
        if sent {
            self.stats.datagrams_sent += 1;
        }
        Ok(())
    }

    fn note_backlog_depth(&mut self) {
        self.stats.tx_backlog_high_water = self
            .stats
            .tx_backlog_high_water
            .max(self.tx_backlog.len() as u64);
    }

    fn flush_backlog(&mut self) -> io::Result<()> {
        while let Some((id, peer, bytes)) = self.tx_backlog.front() {
            match self.socket.send_to(bytes, *peer) {
                Ok(_) => {
                    self.stats.datagrams_sent += 1;
                    let id = *id;
                    self.tx_backlog.pop_front();
                    if let Some(conn) = self.conns.get_mut(&id) {
                        conn.stats.datagrams_sent += 1;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::ConnectionReset | io::ErrorKind::ConnectionRefused
                    ) =>
                {
                    self.stats.soft_errors += 1;
                    self.tx_backlog.pop_front();
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }
}

/// Drive the two muxes of a test/example rig in one thread, alternating
/// short [`MuxDriver::drive_once`] slices until `done` or `deadline`.
/// Socket errors surface immediately, annotated by side (argument order).
pub fn drive_mux_pair<A: Endpoint, B: Endpoint>(
    a: &mut MuxDriver<A>,
    b: &mut MuxDriver<B>,
    deadline: Duration,
    mut done: impl FnMut(&MuxDriver<A>, &MuxDriver<B>) -> bool,
) -> io::Result<bool> {
    const SLICE: Duration = Duration::from_micros(300);
    let start = std::time::Instant::now();
    loop {
        a.drive_once(SLICE)
            .map_err(|e| crate::driver::annotate_side("a side", e))?;
        b.drive_once(SLICE)
            .map_err(|e| crate::driver::annotate_side("b side", e))?;
        if done(a, b) {
            return Ok(true);
        }
        if start.elapsed() > deadline {
            return Ok(false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn wheel_fires_in_deadline_then_arming_order() {
        let mut w = TimerWheel::new(Duration::from_millis(1));
        let c = ConnId(1);
        w.schedule(t(30), c, 3);
        w.schedule(t(10), c, 1);
        w.schedule(t(10), c, 11); // same deadline, armed later
        w.schedule(t(20), c, 2);
        assert_eq!(w.len(), 4);
        assert_eq!(w.next_deadline(), Some(t(10)));
        assert_eq!(w.advance(t(5)), vec![]);
        assert_eq!(w.advance(t(10)), vec![(c, 1), (c, 11)]);
        assert_eq!(w.advance(t(40)), vec![(c, 2), (c, 3)]);
        assert!(w.is_empty());
        assert_eq!(w.next_deadline(), None);
    }

    #[test]
    fn wheel_sub_slot_deadlines_do_not_fire_early() {
        let mut w = TimerWheel::new(Duration::from_millis(1));
        let c = ConnId(0);
        w.schedule(SimTime::from_micros(1500), c, 7);
        // Same slot as 1.0-1.999 ms, but not due at 1.2 ms.
        assert_eq!(w.advance(SimTime::from_micros(1200)), vec![]);
        assert_eq!(w.advance(SimTime::from_micros(1500)), vec![(c, 7)]);
    }

    #[test]
    fn wheel_handles_far_deadlines_via_overflow() {
        let mut w = TimerWheel::new(Duration::from_millis(1));
        let c = ConnId(2);
        // Far beyond one 256-slot revolution.
        w.schedule(t(10_000), c, 42);
        w.schedule(t(5), c, 1);
        assert_eq!(w.advance(t(100)), vec![(c, 1)]);
        assert_eq!(w.advance(t(9_999)), vec![]);
        assert_eq!(w.advance(t(10_000)), vec![(c, 42)]);
        // A big jump straight over an overflow deadline still fires it.
        w.schedule(t(90_000), c, 43);
        assert_eq!(w.advance(t(200_000)), vec![(c, 43)]);
    }

    #[test]
    fn wheel_cached_deadline_stays_exact_through_removals() {
        let mut w = TimerWheel::new(Duration::from_millis(1));
        let (a, b) = (ConnId(1), ConnId(2));
        w.schedule(t(10), a, 1);
        w.schedule(t(20), b, 2);
        w.schedule(t(10_000), a, 3); // overflow
        assert_eq!(w.next_deadline(), Some(t(10)));
        // Firing invalidates the cache; the next query recomputes.
        assert_eq!(w.advance(t(15)), vec![(a, 1)]);
        assert_eq!(w.next_deadline(), Some(t(20)));
        // Scheduling after a query keeps the cache exact.
        w.schedule(t(18), b, 4);
        assert_eq!(w.next_deadline(), Some(t(18)));
        // Cancellation invalidates too, across slots and overflow.
        w.cancel_conn(b);
        assert_eq!(w.next_deadline(), Some(t(10_000)));
        w.cancel_conn(a);
        assert_eq!(w.next_deadline(), None);
    }

    #[test]
    fn wheel_cancel_conn_purges_only_that_connection() {
        let mut w = TimerWheel::new(Duration::from_millis(1));
        let (a, b) = (ConnId(1), ConnId(2));
        w.schedule(t(10), a, 1);
        w.schedule(t(10), b, 2);
        w.schedule(t(10_000), a, 3); // overflow entry
        w.schedule(t(20), b, 4);
        w.cancel_conn(a);
        assert_eq!(w.len(), 2);
        assert_eq!(w.advance(t(20_000)), vec![(b, 2), (b, 4)]);
    }

    /// Echoes every datagram back with the header reversed, on `reply_flow`.
    struct Echo {
        reply_flow: FlowId,
        got: Rc<RefCell<u64>>,
    }
    impl Endpoint for Echo {
        fn handle_datagram(&mut self, out: &mut Outbox, wire_size: u32, header: &[u8]) {
            *self.got.borrow_mut() += 1;
            let mut back = header.to_vec();
            back.reverse();
            out.send_new(self.reply_flow, 0, wire_size, back);
        }
    }

    /// Sends one datagram on start, remembers replies.
    struct Pinger {
        flow: FlowId,
        payload: Vec<u8>,
        reply: Option<Vec<u8>>,
    }
    impl Endpoint for Pinger {
        fn on_start(&mut self, out: &mut Outbox) {
            out.send_new(self.flow, 0, 64, self.payload.clone());
        }
        fn handle_datagram(&mut self, _out: &mut Outbox, _wire_size: u32, header: &[u8]) {
            self.reply = Some(header.to_vec());
        }
    }

    #[test]
    fn mux_routes_many_flows_between_two_sockets() {
        const N: u32 = 8;
        let mut server: MuxDriver<Echo> = MuxDriver::bind("127.0.0.1:0").unwrap();
        let got = Rc::new(RefCell::new(0u64));
        let got2 = got.clone();
        server.set_acceptor(move |_, frame| {
            Some(Accepted {
                endpoint: Echo {
                    reply_flow: frame.flow,
                    got: got2.clone(),
                },
                flows: vec![frame.flow],
            })
        });
        let server_addr = server.local_addr().unwrap();

        let mut client: MuxDriver<Pinger> = MuxDriver::bind("127.0.0.1:0").unwrap();
        let mut ids = Vec::new();
        for f in 0..N {
            let id = client
                .add_connection(
                    server_addr,
                    vec![f],
                    Pinger {
                        flow: f,
                        payload: vec![f as u8, 1, 2],
                        reply: None,
                    },
                )
                .unwrap();
            ids.push(id);
        }
        let ok = drive_mux_pair(&mut client, &mut server, Duration::from_secs(5), |c, _| {
            ids.iter()
                .all(|id| c.endpoint(*id).unwrap().reply.is_some())
        })
        .unwrap();
        assert!(ok, "all {N} echoes should complete");
        assert_eq!(*got.borrow(), u64::from(N));
        assert_eq!(server.conn_count(), N as usize);
        assert_eq!(server.stats().conns_accepted, u64::from(N));
        for (f, id) in ids.iter().enumerate() {
            // Each pinger got *its own* payload back, so routing never
            // crossed flows.
            assert_eq!(
                client.endpoint(*id).unwrap().reply.as_deref(),
                Some(&[2, 1, f as u8][..])
            );
        }
    }

    #[test]
    fn duplicate_routes_are_rejected() {
        let mut mux: MuxDriver<Pinger> = MuxDriver::bind("127.0.0.1:0").unwrap();
        let peer: SocketAddr = "127.0.0.1:9".parse().unwrap();
        mux.add_connection(
            peer,
            vec![1, 2],
            Pinger {
                flow: 1,
                payload: vec![],
                reply: None,
            },
        )
        .unwrap();
        let err = mux
            .add_connection(
                peer,
                vec![2],
                Pinger {
                    flow: 2,
                    payload: vec![],
                    reply: None,
                },
            )
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::AlreadyExists);
        // Same flow to a *different* peer is a different route.
        let other: SocketAddr = "127.0.0.1:10".parse().unwrap();
        mux.add_connection(
            other,
            vec![2],
            Pinger {
                flow: 2,
                payload: vec![],
                reply: None,
            },
        )
        .unwrap();
        assert_eq!(mux.conn_count(), 2);
    }

    #[test]
    fn close_unroutes_and_cancels_timers() {
        struct Rearming;
        impl Endpoint for Rearming {
            fn on_start(&mut self, out: &mut Outbox) {
                out.set_timer_at(out.now + Duration::from_millis(5), 1);
            }
            fn on_timer(&mut self, out: &mut Outbox, token: u64) {
                out.set_timer_at(out.now + Duration::from_millis(5), token + 1);
            }
        }
        let mut mux: MuxDriver<Rearming> = MuxDriver::bind("127.0.0.1:0").unwrap();
        let peer: SocketAddr = "127.0.0.1:9".parse().unwrap();
        let id = mux.add_connection(peer, vec![1], Rearming).unwrap();
        assert!(mux.poll_timeout().is_some());
        assert!(mux.close(id).is_some());
        assert_eq!(mux.poll_timeout(), None, "timers purged with the conn");
        assert_eq!(mux.route(peer, 1), None, "route removed");
        assert!(mux.close(id).is_none(), "double close is a no-op");
        // Late datagrams for the closed conn are unroutable, not fatal.
        let frame = Frame {
            flow: 1,
            seq: 1,
            wire_size: 64,
            header: vec![1],
        };
        let routed = mux
            .handle_datagram_from(peer, &frame.encode().unwrap())
            .unwrap();
        assert!(!routed);
        assert_eq!(mux.stats().datagrams_unroutable, 1);
    }

    #[test]
    fn reaper_removes_only_idle_connections() {
        let mut mux: MuxDriver<Pinger> = MuxDriver::bind("127.0.0.1:0").unwrap();
        let peer: SocketAddr = "127.0.0.1:9".parse().unwrap();
        let a = mux
            .add_connection(
                peer,
                vec![1],
                Pinger {
                    flow: 1,
                    payload: vec![],
                    reply: None,
                },
            )
            .unwrap();
        std::thread::sleep(Duration::from_millis(30));
        // Fresh activity on a second connection.
        let b = mux
            .add_connection(
                peer,
                vec![2],
                Pinger {
                    flow: 2,
                    payload: vec![],
                    reply: None,
                },
            )
            .unwrap();
        let reaped = mux.reap_stale(Duration::from_millis(25));
        assert_eq!(
            reaped.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            vec![a]
        );
        assert_eq!(mux.conn_count(), 1);
        assert!(mux.endpoint(b).is_some());
        assert_eq!(mux.stats().conns_reaped, 1);
    }

    #[test]
    fn acceptor_must_route_the_triggering_flow() {
        let mut mux: MuxDriver<Echo> = MuxDriver::bind("127.0.0.1:0").unwrap();
        mux.set_acceptor(|_, _frame| {
            Some(Accepted {
                endpoint: Echo {
                    reply_flow: 99,
                    got: Rc::new(RefCell::new(0)),
                },
                flows: vec![99], // bug: does not include the triggering flow
            })
        });
        let peer: SocketAddr = "127.0.0.1:9".parse().unwrap();
        let frame = Frame {
            flow: 7,
            seq: 1,
            wire_size: 64,
            header: vec![],
        };
        let err = mux
            .handle_datagram_from(peer, &frame.encode().unwrap())
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn garbage_and_unroutable_datagrams_are_counted_not_fatal() {
        let mut mux: MuxDriver<Echo> = MuxDriver::bind("127.0.0.1:0").unwrap();
        let peer: SocketAddr = "127.0.0.1:9".parse().unwrap();
        assert!(!mux.handle_datagram_from(peer, b"not a frame").unwrap());
        assert_eq!(mux.stats().datagrams_rejected, 1);
        let frame = Frame {
            flow: 3,
            seq: 1,
            wire_size: 64,
            header: vec![],
        };
        // No acceptor installed: valid frame, nowhere to go.
        assert!(!mux
            .handle_datagram_from(peer, &frame.encode().unwrap())
            .unwrap());
        assert_eq!(mux.stats().datagrams_unroutable, 1);
    }

    #[test]
    fn connection_cap_stops_accepting() {
        let cfg = MuxConfig {
            max_conns: 1,
            ..MuxConfig::default()
        };
        let mut mux: MuxDriver<Echo> = MuxDriver::bind_with("127.0.0.1:0", cfg).unwrap();
        mux.set_acceptor(|_, frame| {
            Some(Accepted {
                endpoint: Echo {
                    reply_flow: frame.flow,
                    got: Rc::new(RefCell::new(0)),
                },
                flows: vec![frame.flow],
            })
        });
        let peer: SocketAddr = "127.0.0.1:9".parse().unwrap();
        for flow in [1u32, 2u32] {
            let frame = Frame {
                flow,
                seq: 1,
                wire_size: 64,
                header: vec![],
            };
            mux.handle_datagram_from(peer, &frame.encode().unwrap())
                .unwrap();
        }
        assert_eq!(mux.conn_count(), 1, "second accept blocked by the cap");
        assert_eq!(mux.stats().datagrams_unroutable, 1);
    }
}
