//! # qtp-io — run QTP over real UDP sockets
//!
//! The deployment path the paper argues for: the versatile transport as a
//! userspace protocol over UDP, in the tradition of QUIC implementations
//! that keep the protocol state machine sans-io and push all I/O into a
//! thin driver.
//!
//! The QTP endpoints in `qtp-core` implement the
//! [`Endpoint`](qtp_core::Endpoint) driver seam — datagrams and timers in,
//! buffered commands out. This crate supplies the real-I/O driver half:
//!
//! * [`frame`] — explicit on-the-wire framing of the metadata the
//!   simulator carried implicitly (flow id, datagram seq, accounted wire
//!   size) plus the encoded transport header;
//! * [`clock`] — a monotonic wall clock mapped onto the protocol's
//!   `SimTime` axis, so every timestamp-based computation (RTT, feedback
//!   rounds, TTL reliability) is backend-independent;
//! * [`driver`] — [`UdpDriver`], a blocking single-thread event loop over
//!   one `std::net::UdpSocket`: fire due timers → `recv` with the computed
//!   timeout → dispatch → drain commands to the socket;
//! * [`mux`] — [`MuxDriver`], the connection multiplexer: one non-blocking
//!   socket carrying many concurrent endpoints, routed by
//!   `(peer, flow id)`, with a per-connection [`TimerWheel`],
//!   accept-on-first-frame, teardown and stale-flow reaping.
//!
//! Zero runtime dependencies beyond `std`, by workspace policy.
//!
//! ## Example
//!
//! Complete a capability handshake and a reliable 20-packet transfer
//! between two sockets on loopback, both driven from one thread:
//!
//! ```
//! use qtp_core::{qtp_af_sender, AppModel, Probe, QtpReceiver, QtpReceiverConfig, QtpSender};
//! use qtp_io::{drive_pair, UdpDriver};
//! use qtp_simnet::time::Rate;
//! use std::time::Duration;
//!
//! let mut cfg = qtp_af_sender(Rate::from_kbps(500));
//! cfg.app = AppModel::Finite { packets: 20 };
//!
//! let receiver = QtpReceiver::new(0, 1, 0, QtpReceiverConfig::default(), Probe::new());
//! let mut rx = UdpDriver::server(receiver, "127.0.0.1:0").unwrap();
//! let peer = rx.local_addr().unwrap();
//!
//! let sender = QtpSender::new(0, 1, cfg, Probe::new());
//! let mut tx = UdpDriver::client(sender, "127.0.0.1:0", peer).unwrap();
//!
//! let done = drive_pair(&mut tx, &mut rx, Duration::from_secs(20), |tx, rx| {
//!     rx.endpoint().delivered_packets() == 20 && tx.endpoint().all_acked()
//! })
//! .unwrap();
//! assert!(done, "transfer did not complete");
//! assert_eq!(rx.delivered_bytes(), 20 * 1000);
//! ```

pub mod accept;
pub mod backend;
pub mod clock;
pub mod driver;
pub mod frame;
pub mod mux;

pub use accept::{accept_sessions, AcceptEvent, AcceptQueue};
pub use backend::{MuxBackend, UdpBackend};
pub use clock::WallClock;
pub use driver::{drive_pair, DriverStats, UdpDriver};
pub use frame::{Frame, FrameError};
pub use mux::{
    drive_mux_pair, Accepted, ConnId, ConnStats, MuxConfig, MuxDriver, MuxStats, TimerWheel,
};
