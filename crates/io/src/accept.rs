//! Plan-driven session accept for the mux: surface incoming connections
//! as events instead of pre-registering them.
//!
//! [`MuxBackend`](crate::MuxBackend) knows its plan list up front, so its
//! acceptor indexes plans by flow id. A real server doesn't — a chat
//! responder, a file sink — it has one *policy* (profile, reliability,
//! stream config) and wants a session materialised whenever a new peer
//! shows up. [`accept_sessions`] installs exactly that: every capability
//! offer arriving on an unknown even flow id becomes a receiver
//! [`Session`] built from a plan template, routed on the QTP flow-pair
//! convention (data on `2k`, feedback on `2k + 1`), and announced on an
//! [`AcceptQueue`] the application drains between drive calls.
//!
//! The triggering frame itself is delivered to the fresh session (the mux
//! accept contract), so the handshake proceeds with no extra round trip.

use qtp_core::session::{ConnectionPlan, Session};
use qtp_core::wire;
use qtp_simnet::packet::FlowId;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::net::SocketAddr;
use std::rc::Rc;

use crate::mux::{Accepted, MuxDriver};

/// One accepted connection, announced when its first frame arrived.
///
/// The mux assigns the [`ConnId`](crate::ConnId) *after* the acceptor
/// returns, so the event carries the routing key instead: look the
/// connection up with [`MuxDriver::route`]`(peer, data_flow)` and fetch
/// its session (and from it the [`RecvStream`](qtp_core::RecvStream) and
/// event queue) with [`MuxDriver::endpoint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AcceptEvent {
    /// Socket address the connection arrived from.
    pub peer: SocketAddr,
    /// Data flow id the connection owns (feedback is `data_flow + 1`).
    pub data_flow: FlowId,
}

/// Queue of [`AcceptEvent`]s produced by [`accept_sessions`]. Cheap to
/// clone; all clones share the queue.
#[derive(Debug, Clone, Default)]
pub struct AcceptQueue {
    inner: Rc<RefCell<VecDeque<AcceptEvent>>>,
}

impl AcceptQueue {
    /// Pop the oldest unclaimed accept event.
    pub fn pop(&self) -> Option<AcceptEvent> {
        self.inner.borrow_mut().pop_front()
    }

    /// Number of unclaimed accept events.
    pub fn len(&self) -> usize {
        self.inner.borrow().len()
    }

    /// Whether no accept events are pending.
    pub fn is_empty(&self) -> bool {
        self.inner.borrow().is_empty()
    }
}

/// Install a plan-template acceptor on a server mux: every capability
/// offer from an unknown `(peer, even flow)` becomes a receiver
/// [`Session`] built from `template`, and an [`AcceptEvent`] is pushed on
/// the returned queue.
///
/// Non-offer frames on unknown flows (stray data, reordered leftovers of
/// a reaped connection) do not create sessions — they count as
/// unroutable, and the peer's handshake retransmission will establish the
/// connection properly.
pub fn accept_sessions(server: &mut MuxDriver<Session>, template: ConnectionPlan) -> AcceptQueue {
    let queue = AcceptQueue::default();
    let q = queue.clone();
    server.set_acceptor(move |peer, frame| {
        if frame.flow % 2 != 0 || !wire::carries_capabilities(&frame.header) {
            return None;
        }
        let session = Session::receiver(frame.flow, frame.flow + 1, 0, &template);
        q.inner.borrow_mut().push_back(AcceptEvent {
            peer,
            data_flow: frame.flow,
        });
        Some(Accepted {
            endpoint: session,
            flows: vec![frame.flow, frame.flow + 1],
        })
    });
    queue
}
