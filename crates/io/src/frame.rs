//! On-the-wire framing of QTP datagrams for real UDP transport.
//!
//! Inside the simulator a packet carries metadata the network "knows" for
//! free: the flow id, the accounted wire size (simulated payload is never
//! materialized) and the opaque transport header. Over a real socket those
//! must be explicit, so every UDP datagram is one frame:
//!
//! ```text
//!  0      2      3        7           15          19          21
//! +------+------+--------+-----------+-----------+-----------+----------+
//! | magic| ver  | flow   | seq (uid) | wire_size | header_len| header…  |
//! | u16  | u8   | u32    | u64       | u32       | u16       | bytes    |
//! +------+------+--------+-----------+-----------+-----------+----------+
//! ```
//!
//! All integers are big-endian. `seq` is a per-driver datagram counter
//! (the real-I/O analogue of the simulator's packet uid, for tracing).
//! `wire_size` is the *accounted* size — transport header + simulated
//! payload + IP overhead — which the receiving endpoint uses for payload
//! and rate bookkeeping exactly as in the simulator; the UDP datagram
//! itself stays header-sized, so loopback tests don't shovel bulk data.
//! `header_len` must match the remaining bytes exactly: trailing garbage
//! is rejected rather than ignored.

/// Frame magic: "QT" big-endian.
pub const MAGIC: u16 = 0x5154;
/// Current frame version.
pub const VERSION: u8 = 1;
/// Fixed bytes before the variable-length header.
pub const FIXED_LEN: usize = 2 + 1 + 4 + 8 + 4 + 2;
/// Largest encoded frame (and therefore UDP datagram) the protocol will
/// produce or accept. QTP transport headers are tens of bytes; anything
/// approaching this bound is foreign or hostile traffic and is rejected
/// *before* any length field is trusted.
pub const MAX_FRAME_LEN: usize = 2048;

/// A decoded datagram frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Flow the datagram belongs to (data vs feedback direction).
    pub flow: u32,
    /// Per-driver datagram counter (tracing only; endpoints don't read it).
    pub seq: u64,
    /// Accounted on-wire size (header + simulated payload + IP overhead).
    pub wire_size: u32,
    /// Encoded transport header.
    pub header: Vec<u8>,
}

/// Frame decode errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Shorter than the fixed prologue, or header bytes missing.
    Truncated,
    /// First two bytes are not [`MAGIC`].
    BadMagic(u16),
    /// Unknown version byte.
    BadVersion(u8),
    /// `header_len` disagrees with the actual remaining length.
    LengthMismatch { declared: u16, actual: usize },
    /// Transport header longer than [`MAX_FRAME_LEN`] allows.
    HeaderTooLong(usize),
    /// Input longer than [`MAX_FRAME_LEN`] (never a QTP frame).
    Oversized(usize),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "frame truncated"),
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:#06x}"),
            FrameError::BadVersion(v) => write!(f, "unsupported frame version {v}"),
            FrameError::LengthMismatch { declared, actual } => {
                write!(f, "header length {declared} declared, {actual} present")
            }
            FrameError::HeaderTooLong(n) => write!(f, "transport header of {n} bytes unframable"),
            FrameError::Oversized(n) => {
                write!(
                    f,
                    "datagram of {n} bytes exceeds the {MAX_FRAME_LEN}-byte frame bound"
                )
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl Frame {
    /// Encode into a fresh datagram buffer.
    pub fn encode(&self) -> Result<Vec<u8>, FrameError> {
        if FIXED_LEN + self.header.len() > MAX_FRAME_LEN {
            return Err(FrameError::HeaderTooLong(self.header.len()));
        }
        let header_len = u16::try_from(self.header.len())
            .map_err(|_| FrameError::HeaderTooLong(self.header.len()))?;
        let mut out = Vec::with_capacity(FIXED_LEN + self.header.len());
        out.extend_from_slice(&MAGIC.to_be_bytes());
        out.push(VERSION);
        out.extend_from_slice(&self.flow.to_be_bytes());
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&self.wire_size.to_be_bytes());
        out.extend_from_slice(&header_len.to_be_bytes());
        out.extend_from_slice(&self.header);
        Ok(out)
    }

    /// Decode one UDP datagram. Total: never panics, whatever the input —
    /// adversarial, truncated, or oversized buffers all map to an error.
    pub fn decode(buf: &[u8]) -> Result<Frame, FrameError> {
        if buf.len() > MAX_FRAME_LEN {
            return Err(FrameError::Oversized(buf.len()));
        }
        if buf.len() < FIXED_LEN {
            return Err(FrameError::Truncated);
        }
        let magic = u16::from_be_bytes([buf[0], buf[1]]);
        if magic != MAGIC {
            return Err(FrameError::BadMagic(magic));
        }
        if buf[2] != VERSION {
            return Err(FrameError::BadVersion(buf[2]));
        }
        let flow = u32::from_be_bytes(buf[3..7].try_into().unwrap());
        let seq = u64::from_be_bytes(buf[7..15].try_into().unwrap());
        let wire_size = u32::from_be_bytes(buf[15..19].try_into().unwrap());
        let declared = u16::from_be_bytes(buf[19..21].try_into().unwrap());
        let rest = &buf[FIXED_LEN..];
        if rest.len() != declared as usize {
            // Distinguish truncation from trailing garbage only in the
            // error detail; both are rejected.
            return Err(FrameError::LengthMismatch {
                declared,
                actual: rest.len(),
            });
        }
        Ok(Frame {
            flow,
            seq,
            wire_size,
            header: rest.to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Frame {
        Frame {
            flow: 7,
            seq: 123_456_789,
            wire_size: 1049,
            header: vec![3, 0, 0, 0, 0, 0, 0, 0, 42],
        }
    }

    #[test]
    fn roundtrip() {
        let f = sample();
        let bytes = f.encode().unwrap();
        assert_eq!(bytes.len(), FIXED_LEN + f.header.len());
        assert_eq!(Frame::decode(&bytes).unwrap(), f);
    }

    #[test]
    fn empty_header_roundtrips() {
        let f = Frame {
            flow: 0,
            seq: 0,
            wire_size: 0,
            header: Vec::new(),
        };
        assert_eq!(Frame::decode(&f.encode().unwrap()).unwrap(), f);
    }

    #[test]
    fn truncation_rejected() {
        let bytes = sample().encode().unwrap();
        for cut in 0..FIXED_LEN {
            assert_eq!(Frame::decode(&bytes[..cut]), Err(FrameError::Truncated));
        }
        // Cutting into the header is a length mismatch.
        assert!(matches!(
            Frame::decode(&bytes[..bytes.len() - 1]),
            Err(FrameError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = sample().encode().unwrap();
        bytes.push(0xFF);
        assert!(matches!(
            Frame::decode(&bytes),
            Err(FrameError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        let mut bytes = sample().encode().unwrap();
        bytes[0] = 0xAB;
        assert!(matches!(
            Frame::decode(&bytes),
            Err(FrameError::BadMagic(_))
        ));
        let mut bytes = sample().encode().unwrap();
        bytes[2] = 99;
        assert_eq!(Frame::decode(&bytes), Err(FrameError::BadVersion(99)));
    }

    #[test]
    fn oversized_header_unencodable() {
        let f = Frame {
            flow: 1,
            seq: 1,
            wire_size: 1,
            header: vec![0; usize::from(u16::MAX) + 1],
        };
        assert_eq!(
            f.encode(),
            Err(FrameError::HeaderTooLong(usize::from(u16::MAX) + 1))
        );
        // The bound is MAX_FRAME_LEN, well below what u16 could declare.
        let f = Frame {
            header: vec![0; MAX_FRAME_LEN - FIXED_LEN + 1],
            ..f
        };
        assert!(matches!(f.encode(), Err(FrameError::HeaderTooLong(_))));
        // Exactly at the bound still encodes and round-trips.
        let f = Frame {
            header: vec![7; MAX_FRAME_LEN - FIXED_LEN],
            ..f
        };
        let bytes = f.encode().unwrap();
        assert_eq!(bytes.len(), MAX_FRAME_LEN);
        assert_eq!(Frame::decode(&bytes).unwrap(), f);
    }

    #[test]
    fn oversized_datagrams_rejected_before_parsing() {
        // A giant buffer is rejected on length alone, even if it starts
        // with valid magic/version bytes.
        let mut bytes = sample().encode().unwrap();
        bytes.resize(MAX_FRAME_LEN + 1, 0);
        assert_eq!(
            Frame::decode(&bytes),
            Err(FrameError::Oversized(MAX_FRAME_LEN + 1))
        );
    }
}
