//! Property tests for [`ReceiverBuffer`] against a brute-force oracle.
//!
//! The oracle keeps one status per sequence (on-time, expired-on-arrival,
//! or skipped-by-FWD) and recomputes every aggregate from scratch after
//! each operation. The real buffer maintains the same aggregates
//! incrementally across run flushes, TTL expiries, and forward jumps —
//! exactly the paths the stream data plane leans on for partial
//! reliability accounting (TTL-expired hole skipping, duplicates arriving
//! after a drop, and FIN-driven forwards that land out of order).

use std::collections::BTreeMap;

use proptest::prelude::*;
use qtp_sack::reassembly::{Arrival, ReceiverBuffer};
use qtp_sack::SeqRange;

const SEQ_SPACE: u64 = 40;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Arrived with usable payload.
    OnTime,
    /// Arrived, but its first arrival was TTL-expired: acked, not delivered.
    Expired,
    /// Never arrived; the cumulative ack was forwarded past it.
    Skipped,
}

/// Brute-force model of the receiver buffer.
#[derive(Debug, Default)]
struct Oracle {
    cum: u64,
    status: BTreeMap<u64, Status>,
}

impl Oracle {
    fn advance(&mut self) {
        while self.status.contains_key(&self.cum) {
            self.cum += 1;
        }
    }

    /// Returns true when the arrival is new (mirrors [`Arrival::New`]).
    fn arrive(&mut self, seq: u64, expired: bool) -> bool {
        if seq < self.cum || self.status.contains_key(&seq) {
            return false;
        }
        let st = if expired {
            Status::Expired
        } else {
            Status::OnTime
        };
        self.status.insert(seq, st);
        self.advance();
        true
    }

    fn forward(&mut self, new_cum: u64) {
        if new_cum <= self.cum {
            return;
        }
        for seq in self.cum..new_cum {
            self.status.entry(seq).or_insert(Status::Skipped);
        }
        self.cum = new_cum;
        self.advance();
    }

    fn delivered(&self) -> u64 {
        self.status
            .iter()
            .filter(|(&s, &st)| s < self.cum && st == Status::OnTime)
            .count() as u64
    }

    fn skipped(&self) -> u64 {
        self.status
            .values()
            .filter(|&&st| st == Status::Skipped)
            .count() as u64
    }

    fn expired(&self) -> u64 {
        self.status
            .values()
            .filter(|&&st| st == Status::Expired)
            .count() as u64
    }

    /// Sequences buffered out of order (arrived, at or above the cum ack).
    fn buffered(&self) -> Vec<u64> {
        self.status
            .iter()
            .filter(|(&s, &st)| s >= self.cum && st != Status::Skipped)
            .map(|(&s, _)| s)
            .collect()
    }

    /// Maximal contiguous ranges over the buffered sequences.
    fn buffered_ranges(&self) -> Vec<SeqRange> {
        let mut out: Vec<SeqRange> = Vec::new();
        for s in self.buffered() {
            match out.last_mut() {
                Some(r) if r.end == s => r.end = s + 1,
                _ => out.push(SeqRange::new(s, s + 1)),
            }
        }
        out
    }
}

/// Arbitrary interleavings of on-time arrivals, expired arrivals, and
/// forward jumps over a small sequence space (small enough that
/// duplicates — including duplicates of previously dropped sequences —
/// occur constantly).
fn arb_ops() -> impl Strategy<Value = Vec<(u8, u64)>> {
    prop::collection::vec((0u8..3, 0u64..SEQ_SPACE), 1..250)
}

proptest! {
    #[test]
    fn reassembly_matches_oracle(ops in arb_ops()) {
        let mut buf = ReceiverBuffer::new();
        let mut oracle = Oracle::default();

        for (kind, seq) in ops {
            match kind {
                0 => {
                    let before = oracle.cum;
                    let arrival = buf.on_packet(seq);
                    let fresh = oracle.arrive(seq, false);
                    match arrival {
                        Arrival::Duplicate => prop_assert!(!fresh),
                        Arrival::New { delivered } => {
                            prop_assert!(fresh);
                            prop_assert_eq!(delivered, oracle.cum - before);
                        }
                    }
                }
                1 => {
                    let before = oracle.cum;
                    let arrival = buf.on_expired(seq);
                    let fresh = oracle.arrive(seq, true);
                    match arrival {
                        Arrival::Duplicate => prop_assert!(!fresh),
                        Arrival::New { delivered } => {
                            prop_assert!(fresh);
                            prop_assert_eq!(delivered, oracle.cum - before);
                        }
                    }
                }
                _ => {
                    // Forward targets sometimes land beyond everything seen,
                    // sometimes backwards — both must be handled.
                    buf.on_forward(seq);
                    oracle.forward(seq);
                }
            }
            buf.settle_expired();

            prop_assert_eq!(buf.cum_ack(), oracle.cum, "cum_ack");
            prop_assert_eq!(buf.delivered_total(), oracle.delivered(), "delivered");
            prop_assert_eq!(buf.skipped_total(), oracle.skipped(), "skipped");
            prop_assert_eq!(buf.expired_total(), oracle.expired(), "expired");
            prop_assert_eq!(buf.buffered(), oracle.buffered().len() as u64, "buffered");

            // With a block budget larger than the sequence space, SACK must
            // cover exactly the buffered sequences as maximal contiguous
            // ranges.
            let mut blocks = buf.sack_blocks(SEQ_SPACE as usize);
            blocks.sort_by_key(|r| r.start);
            prop_assert_eq!(blocks, oracle.buffered_ranges());
        }

        // Every sequence is accounted for exactly once: delivered, skipped,
        // or expired — except on-time arrivals still buffered out of order,
        // which are counted only once the cum ack passes them.
        let pending_on_time = oracle
            .status
            .iter()
            .filter(|(&s, &st)| s >= oracle.cum && st == Status::OnTime)
            .count() as u64;
        prop_assert_eq!(
            buf.delivered_total() + buf.skipped_total() + buf.expired_total(),
            oracle.status.len() as u64 - pending_on_time,
            "conservation of sequences"
        );
    }

    #[test]
    fn duplicate_after_drop_never_revives(seqs in prop::collection::vec(0u64..SEQ_SPACE, 1..100)) {
        // Every sequence arrives expired first; later copies (the sender
        // retransmitting before it learns of the ack) must all be
        // duplicates and must never add delivered payload.
        let mut buf = ReceiverBuffer::new();
        let mut seen = std::collections::BTreeSet::new();
        for seq in seqs {
            let arrival = buf.on_expired(seq);
            if seen.insert(seq) {
                let is_new = matches!(arrival, Arrival::New { .. });
                prop_assert!(is_new);
            } else {
                prop_assert_eq!(arrival, Arrival::Duplicate);
            }
            prop_assert_eq!(buf.on_packet(seq), Arrival::Duplicate);
            prop_assert_eq!(buf.delivered_total(), 0, "expired payload never delivers");
        }
        prop_assert_eq!(buf.expired_total(), seen.len() as u64);
    }

    #[test]
    fn duplicating_adversary_changes_nothing(
        ops in arb_ops(),
        lags in prop::collection::vec(0usize..16, 8),
    ) {
        // A duplicating path delivers a second copy of an arrival some
        // ops later (the lag models the duplicate's own jitter). Every
        // injected copy must report `Duplicate`, deliver zero payload,
        // and the final state must be indistinguishable from the clean
        // run — the "no double-count, no corrupted reassembly" half of
        // the duplicate-delivery contract (the no-double-`Readable` half
        // is covered end-to-end in the bench hostile-path suite).
        let mut clean = ReceiverBuffer::new();
        let mut dup = ReceiverBuffer::new();
        // Injected copies keyed by the op index before which they land.
        let mut pending: BTreeMap<usize, Vec<(u8, u64)>> = BTreeMap::new();

        let apply = |buf: &mut ReceiverBuffer, kind: u8, seq: u64| match kind {
            0 => buf.on_packet(seq),
            1 => buf.on_expired(seq),
            _ => {
                buf.on_forward(seq);
                Arrival::Duplicate
            }
        };

        for (i, &(kind, seq)) in ops.iter().enumerate() {
            for (k, s) in pending.remove(&i).unwrap_or_default() {
                let delivered_before = dup.delivered_total();
                let arrival = apply(&mut dup, k, s);
                dup.settle_expired();
                prop_assert_eq!(arrival, Arrival::Duplicate, "copy of {} revived", s);
                prop_assert_eq!(dup.delivered_total(), delivered_before,
                    "copy of {} double-counted payload", s);
            }
            apply(&mut clean, kind, seq);
            clean.settle_expired();
            apply(&mut dup, kind, seq);
            dup.settle_expired();
            if kind < 2 {
                let at = i + 1 + lags[i % lags.len()];
                pending.entry(at).or_default().push((kind, seq));
            }
        }
        // Copies scheduled past the end of the op list arrive last.
        for (_, copies) in pending {
            for (k, s) in copies {
                prop_assert_eq!(apply(&mut dup, k, s), Arrival::Duplicate);
                dup.settle_expired();
            }
        }

        prop_assert_eq!(dup.cum_ack(), clean.cum_ack());
        prop_assert_eq!(dup.delivered_total(), clean.delivered_total());
        prop_assert_eq!(dup.skipped_total(), clean.skipped_total());
        prop_assert_eq!(dup.expired_total(), clean.expired_total());
        prop_assert_eq!(dup.buffered(), clean.buffered());
        let blocks = |b: &mut ReceiverBuffer| {
            let mut v = b.sack_blocks(SEQ_SPACE as usize);
            v.sort_by_key(|r| r.start);
            v
        };
        prop_assert_eq!(
            blocks(&mut dup),
            blocks(&mut clean),
            "SACK geometry diverged"
        );
    }

    #[test]
    fn forward_is_idempotent_and_monotone(ops in arb_ops(), jump in 0u64..SEQ_SPACE) {
        // A FIN-driven forward that arrives out of order (after data that
        // already passed it, or repeated) must not disturb the counters.
        let mut buf = ReceiverBuffer::new();
        let mut oracle = Oracle::default();
        for (kind, seq) in ops {
            match kind {
                0 => {
                    buf.on_packet(seq);
                    oracle.arrive(seq, false);
                }
                1 => {
                    buf.on_expired(seq);
                    oracle.arrive(seq, true);
                }
                _ => {
                    buf.on_forward(seq);
                    oracle.forward(seq);
                }
            }
        }
        buf.settle_expired();
        buf.on_forward(jump);
        oracle.forward(jump);
        buf.settle_expired();
        let (cum, delivered, skipped) =
            (buf.cum_ack(), buf.delivered_total(), buf.skipped_total());
        prop_assert_eq!(cum, oracle.cum);
        // Replaying the same forward (a retransmitted FIN) changes nothing.
        buf.on_forward(jump);
        buf.settle_expired();
        prop_assert_eq!(buf.cum_ack(), cum);
        prop_assert_eq!(buf.delivered_total(), delivered);
        prop_assert_eq!(buf.skipped_total(), skipped);
    }
}
