//! The receiver side of selective acknowledgment: reassembly and SACK
//! block generation (RFC 2018 semantics).
//!
//! The receiver tracks a cumulative ack point (`cum_ack` = next expected
//! sequence) plus the set of out-of-order sequences. From these it builds
//! SACK blocks to report upstream, **most recently changed first** and
//! bounded in number, exactly as RFC 2018 §4 prescribes (TCP fits 3–4
//! blocks in its option space; QTP's wire format carries up to
//! [`MAX_SACK_BLOCKS`]).
//!
//! This tiny structure is the *entire* per-packet state of a QTPlight
//! receiver, which is the point of the paper's §3: compare its meter and
//! [`ReceiverBuffer::state_bytes`] against the RFC 3448 receiver's.

use qtp_metrics::{CostMeter, OpClass, StateSize};

use crate::ranges::{RangeSet, SeqRange};

/// Largest number of SACK blocks ever reported in one feedback packet.
pub const MAX_SACK_BLOCKS: usize = 4;

/// What happened when a data packet arrived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arrival {
    /// Sequence was already received (or below the cumulative ack).
    Duplicate,
    /// New sequence; `delivered` sequences became deliverable in order
    /// (0 if the packet left a gap outstanding).
    New { delivered: u64 },
}

/// Receiver-side reassembly state.
#[derive(Debug, Clone)]
pub struct ReceiverBuffer {
    /// Next expected in-order sequence; everything below is delivered.
    cum_ack: u64,
    /// Received out-of-order sequences (all `>= cum_ack`).
    ooo: RangeSet,
    /// Recently changed received blocks, most recent first (for RFC 2018's
    /// ordering rule). Entries may be stale; they are re-validated against
    /// `ooo` when blocks are generated.
    recent: Vec<SeqRange>,
    /// Total sequences delivered in order to the application.
    delivered_total: u64,
    /// Sequences skipped by sender `FWD` instructions (expired ADUs under
    /// partial reliability) — counted separately from deliveries.
    skipped_total: u64,
    /// Sequences that arrived but were dropped at the receiver because
    /// their TTL had expired ([`ReceiverBuffer::on_expired`]). They are
    /// acknowledged like any arrival — the hole they would otherwise leave
    /// is skipped — but never handed to the application.
    expired_total: u64,
    /// Expired sequences still at or above `cum_ack`: when the cumulative
    /// ack later passes one (a run flush or FWD counts it as delivered),
    /// [`ReceiverBuffer::settle_expired`] reclassifies it.
    expired: RangeSet,
    /// Per-packet processing cost (the QTPlight receiver's entire load).
    pub meter: CostMeter,
}

impl ReceiverBuffer {
    pub fn new() -> Self {
        ReceiverBuffer {
            cum_ack: 0,
            ooo: RangeSet::new(),
            recent: Vec::new(),
            delivered_total: 0,
            skipped_total: 0,
            expired_total: 0,
            expired: RangeSet::new(),
            meter: CostMeter::new(),
        }
    }

    /// Next expected sequence (the cumulative ack to report).
    pub fn cum_ack(&self) -> u64 {
        self.cum_ack
    }

    /// Sequences delivered in order so far.
    pub fn delivered_total(&self) -> u64 {
        self.delivered_total
    }

    /// Sequences skipped under partial reliability.
    pub fn skipped_total(&self) -> u64 {
        self.skipped_total
    }

    /// Sequences dropped at the receiver because their TTL expired.
    pub fn expired_total(&self) -> u64 {
        self.expired_total
    }

    /// Out-of-order sequences currently buffered.
    pub fn buffered(&self) -> u64 {
        self.ooo.len()
    }

    /// Process an arriving sequence number.
    pub fn on_packet(&mut self, seq: u64) -> Arrival {
        self.meter.tick(OpClass::Compare, 1);
        if seq < self.cum_ack || self.ooo.contains(seq) {
            return Arrival::Duplicate;
        }
        if seq == self.cum_ack {
            // In-order: advance through any buffered run.
            self.cum_ack += 1;
            let mut delivered = 1;
            if let Some(first) = self.ooo.first() {
                self.meter.tick(OpClass::Compare, 1);
                if first == self.cum_ack {
                    // The buffered run starting here becomes deliverable.
                    let run_end = self
                        .ooo
                        .iter()
                        .next()
                        .map(|r| r.end)
                        .unwrap_or(self.cum_ack);
                    delivered += run_end - self.cum_ack;
                    self.cum_ack = run_end;
                    self.ooo.remove_below(run_end);
                    self.meter.tick(OpClass::Update, 2);
                }
            }
            self.delivered_total += delivered;
            self.meter.tick(OpClass::Update, 2);
            // No `note_recent`: an in-order arrival creates no SACK block
            // (anything it merged with was delivered and vanished), so the
            // common case costs nothing beyond the counter updates.
            return Arrival::New { delivered };
        }
        // Out of order: buffer it.
        self.ooo.insert(seq);
        self.meter.tick(OpClass::Alloc, 1);
        self.note_recent(SeqRange::new(seq, seq + 1));
        Arrival::New { delivered: 0 }
    }

    /// Process a sequence that arrived **too late to use** (its TTL
    /// expired in flight, judged by the caller). The sequence is
    /// acknowledged exactly like [`ReceiverBuffer::on_packet`] — it fills
    /// its hole, advances the cumulative ack, appears in SACK blocks, and
    /// duplicates of it are still detected — but it is counted in
    /// [`ReceiverBuffer::expired_total`] instead of contributing payload.
    /// Sequences an expired arrival *releases* (a buffered run it makes
    /// contiguous) still count as delivered: they arrived on time and were
    /// only waiting for the hole.
    ///
    /// Returns the same [`Arrival`] as `on_packet`, so callers can tell a
    /// hole-filling expiry (`New`) from a duplicate of one.
    pub fn on_expired(&mut self, seq: u64) -> Arrival {
        let arrival = self.on_packet(seq);
        if matches!(arrival, Arrival::New { .. }) {
            self.expired_total += 1;
            if seq < self.cum_ack {
                // Flushed immediately: `on_packet` counted it as
                // delivered; reclassify just this one sequence.
                self.delivered_total -= 1;
            } else {
                // Buffered out of order: it will be counted as delivered
                // when the cumulative ack eventually passes it; remember
                // it so `settle_expired` can reclassify it then.
                self.expired.insert(seq);
            }
            self.meter.tick(OpClass::Update, 1);
        }
        self.settle_expired();
        arrival
    }

    /// Reclassify expired sequences the cumulative ack has passed (a run
    /// flush or FWD counted them as delivered when releasing the buffered
    /// run). Callers using [`ReceiverBuffer::on_expired`] should invoke
    /// this after `on_packet`/`on_forward` too, so the delivered count
    /// never includes payload that was dropped on arrival; `on_expired`
    /// calls it itself.
    pub fn settle_expired(&mut self) {
        if self.expired.is_empty() {
            return;
        }
        let passed: u64 = self
            .expired
            .iter()
            .take_while(|r| r.start < self.cum_ack)
            .map(|r| r.end.min(self.cum_ack) - r.start)
            .sum();
        if passed > 0 {
            self.delivered_total -= passed;
            self.expired.remove_below(self.cum_ack);
            self.meter.tick(OpClass::Update, 1);
        }
    }

    /// Sender instruction to skip everything below `new_cum` (partial
    /// reliability FWD, like PR-SCTP's FORWARD-TSN). Buffered sequences in
    /// the skipped region still count as delivered data.
    pub fn on_forward(&mut self, new_cum: u64) {
        self.meter.tick(OpClass::Compare, 1);
        if new_cum <= self.cum_ack {
            return;
        }
        // Buffered sequences inside the skipped window were real arrivals.
        let buffered_inside: u64 = self
            .ooo
            .iter()
            .take_while(|r| r.start < new_cum)
            .map(|r| r.end.min(new_cum) - r.start)
            .sum();
        self.skipped_total += (new_cum - self.cum_ack) - buffered_inside;
        self.delivered_total += buffered_inside;
        self.cum_ack = new_cum;
        self.ooo.remove_below(new_cum);
        self.meter.tick(OpClass::Update, 3);
        // The jump may make a buffered run contiguous with the new cum.
        if let Some(first) = self.ooo.first() {
            if first == self.cum_ack {
                let run_end = self.ooo.iter().next().map(|r| r.end).unwrap();
                self.delivered_total += run_end - self.cum_ack;
                self.cum_ack = run_end;
                self.ooo.remove_below(run_end);
                self.meter.tick(OpClass::Update, 2);
            }
        }
    }

    /// Record that a block changed recently (for block ordering).
    fn note_recent(&mut self, r: SeqRange) {
        self.recent.retain(|x| x.start != r.start || x.end != r.end);
        self.recent.insert(0, r);
        self.recent.truncate(2 * MAX_SACK_BLOCKS);
        self.meter.tick(OpClass::Update, 1);
    }

    /// Build up to `max` SACK blocks: the out-of-order ranges, most
    /// recently changed first (RFC 2018 §4's "most recently reported
    /// first" rule), deduplicated, each a maximal contiguous range.
    pub fn sack_blocks(&mut self, max: usize) -> Vec<SeqRange> {
        let mut blocks: Vec<SeqRange> = Vec::with_capacity(max);
        // Current maximal ranges above the cumulative ack.
        let live: Vec<SeqRange> = self.ooo.iter().collect();
        self.meter.tick(OpClass::Scan, live.len() as u64);
        // Most-recent hints first: map each hint to the live range
        // containing it (hints may be stale after merges).
        for hint in &self.recent {
            if blocks.len() >= max {
                break;
            }
            if let Some(r) = live
                .iter()
                .find(|r| r.start <= hint.start && hint.start < r.end)
            {
                if !blocks.contains(r) {
                    blocks.push(*r);
                }
            }
        }
        // Fill remaining slots with any uncovered live ranges (ascending).
        for r in &live {
            if blocks.len() >= max {
                break;
            }
            if !blocks.contains(r) {
                blocks.push(*r);
            }
        }
        blocks
    }
}

impl Default for ReceiverBuffer {
    fn default() -> Self {
        Self::new()
    }
}

impl StateSize for ReceiverBuffer {
    fn state_bytes(&self) -> usize {
        self.ooo.state_bytes()
            + self.expired.state_bytes()
            + self.recent.len() * std::mem::size_of::<SeqRange>()
            + 3 * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_delivery() {
        let mut b = ReceiverBuffer::new();
        for seq in 0..5 {
            assert_eq!(b.on_packet(seq), Arrival::New { delivered: 1 });
        }
        assert_eq!(b.cum_ack(), 5);
        assert_eq!(b.delivered_total(), 5);
        assert_eq!(b.buffered(), 0);
        assert!(b.sack_blocks(4).is_empty());
    }

    #[test]
    fn gap_buffers_then_flushes() {
        let mut b = ReceiverBuffer::new();
        b.on_packet(0);
        assert_eq!(b.on_packet(2), Arrival::New { delivered: 0 });
        assert_eq!(b.on_packet(3), Arrival::New { delivered: 0 });
        assert_eq!(b.buffered(), 2);
        // The missing packet flushes the whole run.
        assert_eq!(b.on_packet(1), Arrival::New { delivered: 3 });
        assert_eq!(b.cum_ack(), 4);
        assert_eq!(b.buffered(), 0);
    }

    #[test]
    fn duplicates_detected_everywhere() {
        let mut b = ReceiverBuffer::new();
        b.on_packet(0);
        b.on_packet(2);
        assert_eq!(b.on_packet(0), Arrival::Duplicate, "below cum_ack");
        assert_eq!(b.on_packet(2), Arrival::Duplicate, "buffered");
    }

    #[test]
    fn sack_blocks_report_ooo_ranges() {
        let mut b = ReceiverBuffer::new();
        b.on_packet(0);
        b.on_packet(2);
        b.on_packet(3);
        b.on_packet(6);
        let blocks = b.sack_blocks(4);
        assert_eq!(blocks.len(), 2);
        assert!(blocks.contains(&SeqRange::new(2, 4)));
        assert!(blocks.contains(&SeqRange::new(6, 7)));
    }

    #[test]
    fn most_recent_block_first() {
        let mut b = ReceiverBuffer::new();
        b.on_packet(0);
        b.on_packet(5); // older block
        b.on_packet(10); // newer block
        let blocks = b.sack_blocks(4);
        assert_eq!(blocks[0], SeqRange::new(10, 11), "most recent first");
        assert_eq!(blocks[1], SeqRange::new(5, 6));
        // Touching the old block promotes it.
        b.on_packet(6);
        let blocks = b.sack_blocks(4);
        assert_eq!(blocks[0], SeqRange::new(5, 7));
    }

    #[test]
    fn block_count_is_bounded() {
        let mut b = ReceiverBuffer::new();
        b.on_packet(0);
        for k in 1..20 {
            b.on_packet(k * 2); // 19 isolated blocks
        }
        assert_eq!(b.sack_blocks(4).len(), 4);
        assert_eq!(b.sack_blocks(MAX_SACK_BLOCKS).len(), MAX_SACK_BLOCKS);
    }

    #[test]
    fn forward_skips_missing_data() {
        let mut b = ReceiverBuffer::new();
        b.on_packet(0);
        b.on_packet(3); // 1, 2 missing
        b.on_forward(3);
        assert_eq!(b.cum_ack(), 4, "jump merges with the buffered 3");
        assert_eq!(b.skipped_total(), 2);
        assert_eq!(b.delivered_total(), 2, "0 and 3 were real arrivals");
    }

    #[test]
    fn forward_backwards_is_ignored() {
        let mut b = ReceiverBuffer::new();
        for seq in 0..5 {
            b.on_packet(seq);
        }
        b.on_forward(2);
        assert_eq!(b.cum_ack(), 5);
        assert_eq!(b.skipped_total(), 0);
    }

    #[test]
    fn forward_counts_buffered_as_delivered() {
        let mut b = ReceiverBuffer::new();
        b.on_packet(2);
        b.on_packet(4);
        b.on_forward(5); // skips 0,1,3; 2 and 4 arrived
        assert_eq!(b.cum_ack(), 5);
        assert_eq!(b.skipped_total(), 3);
        assert_eq!(b.delivered_total(), 2);
        assert_eq!(b.buffered(), 0);
    }

    #[test]
    fn expired_in_order_acks_without_delivering() {
        let mut b = ReceiverBuffer::new();
        b.on_packet(0);
        assert_eq!(b.on_expired(1), Arrival::New { delivered: 1 });
        assert_eq!(b.cum_ack(), 2, "expired arrival still fills its hole");
        assert_eq!(b.delivered_total(), 1, "only seq 0 delivered payload");
        assert_eq!(b.expired_total(), 1);
        assert_eq!(b.on_expired(1), Arrival::Duplicate, "re-sent after drop");
        assert_eq!(b.expired_total(), 1, "duplicates don't recount");
    }

    #[test]
    fn expired_releasing_a_buffered_run_delivers_the_run() {
        let mut b = ReceiverBuffer::new();
        b.on_packet(0);
        b.on_packet(2); // on-time, buffered behind the hole at 1
        b.on_packet(3);
        assert_eq!(b.on_expired(1), Arrival::New { delivered: 3 });
        assert_eq!(b.cum_ack(), 4);
        // 0, 2, 3 were on time; the expired 1 is acked but not delivered.
        assert_eq!(b.delivered_total(), 3);
        assert_eq!(b.expired_total(), 1);
    }

    #[test]
    fn buffered_expired_is_reclassified_when_the_hole_fills() {
        let mut b = ReceiverBuffer::new();
        b.on_packet(0);
        assert_eq!(b.on_expired(2), Arrival::New { delivered: 0 });
        assert_eq!(b.delivered_total(), 1);
        // The on-time packet 1 flushes the run 1..3 — but 2 was expired.
        assert_eq!(b.on_packet(1), Arrival::New { delivered: 2 });
        b.settle_expired();
        assert_eq!(b.cum_ack(), 3);
        assert_eq!(b.delivered_total(), 2, "0 and 1 delivered, 2 dropped");
        assert_eq!(b.expired_total(), 1);
    }

    #[test]
    fn forward_past_buffered_expired_settles() {
        let mut b = ReceiverBuffer::new();
        b.on_expired(3); // buffered, expired
        b.on_packet(4); // buffered, on time
        b.on_forward(5); // sender skips 0..5
        b.settle_expired();
        assert_eq!(b.cum_ack(), 5);
        assert_eq!(b.skipped_total(), 3, "0,1,2 never arrived");
        assert_eq!(b.delivered_total(), 1, "only 4 carried usable payload");
        assert_eq!(b.expired_total(), 1);
    }

    #[test]
    fn per_packet_cost_is_constant_scale() {
        // The QTPlight receiver premise: cost per packet must not grow with
        // stream length (no history structure).
        let mut b = ReceiverBuffer::new();
        for seq in 0..100 {
            b.on_packet(seq);
        }
        let after_100 = b.meter.total();
        for seq in 100..10_000 {
            b.on_packet(seq);
        }
        let per_pkt_early = after_100 as f64 / 100.0;
        let per_pkt_late = (b.meter.total() - after_100) as f64 / 9_900.0;
        assert!(
            (per_pkt_late / per_pkt_early) < 1.5,
            "in-order cost must be flat: early={per_pkt_early}, late={per_pkt_late}"
        );
    }

    #[test]
    fn state_bytes_tracks_fragmentation() {
        let mut b = ReceiverBuffer::new();
        b.on_packet(0);
        let tidy = b.state_bytes();
        for k in 1..10 {
            b.on_packet(k * 2);
        }
        assert!(b.state_bytes() > tidy);
    }
}
