//! # qtp-sack — selective acknowledgment substrate (RFC 2018 semantics)
//!
//! The second mechanism the paper composes: SACK provides the reliability
//! half of the versatile transport, and — re-purposed as lightweight
//! feedback — the information a QTPlight **sender** needs to estimate the
//! loss event rate itself (paper §3).
//!
//! * [`ranges::RangeSet`] — sorted/disjoint/coalesced sequence ranges, the
//!   data structure under everything here;
//! * [`reassembly::ReceiverBuffer`] — receiver state: cumulative ack,
//!   out-of-order buffer, RFC 2018 block generation (most recent first,
//!   bounded count), FWD handling for partial reliability;
//! * [`scoreboard::Scoreboard`] — sender state: SACK bookkeeping, DupThresh
//!   loss declaration with original send timestamps, retransmission counts;
//! * [`reliability::ReliabilityPolicy`] — the negotiable service levels:
//!   `None`, `Full`, `PartialTtl`, `PartialRetx` deciding
//!   retransmit-vs-abandon per lost sequence.
//!
//! Everything is sans-io and metered (see [`qtp_metrics`]): the receiver
//! buffer's meter *is* the QTPlight receiver's entire per-packet cost.

pub mod ranges;
pub mod reassembly;
pub mod reliability;
pub mod scoreboard;

pub use ranges::{RangeSet, SeqRange};
pub use reassembly::{Arrival, ReceiverBuffer, MAX_SACK_BLOCKS};
pub use reliability::{Adu, LossDecision, ReliabilityMode, ReliabilityPolicy};
pub use scoreboard::{SackDigest, Scoreboard, DUP_THRESH};
