//! Reliability policies: the negotiable service levels of the versatile
//! transport (paper §1: "partial/full reliability" is feature (1) of the
//! negotiation).
//!
//! Policies act at the **sender** on application data units (ADUs). When a
//! sequence is declared lost the policy decides: retransmit, or abandon and
//! move the receiver past it with a `FWD` instruction (like PR-SCTP's
//! FORWARD-TSN). This keeps the receiver simple — a QTPlight requirement.

use qtp_simnet::time::SimTime;
use std::collections::BTreeMap;
use std::time::Duration;

use crate::ranges::SeqRange;

/// Per-connection (or per-ADU-class) reliability mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReliabilityMode {
    /// Pure datagram service: never retransmit (plain TFRC streaming).
    None,
    /// Retransmit every loss until acknowledged (QTPAF).
    Full,
    /// Retransmit only while the ADU is younger than this age; stale media
    /// frames are abandoned (typical streaming profile).
    PartialTtl(Duration),
    /// Give each sequence at most this many retransmissions.
    PartialRetx(u32),
}

impl ReliabilityMode {
    /// Does this mode ever retransmit?
    pub fn retransmits(&self) -> bool {
        !matches!(self, ReliabilityMode::None)
    }

    /// Stable wire code for negotiation (see `qtp-core`'s handshake).
    pub fn wire_code(&self) -> u8 {
        match self {
            ReliabilityMode::None => 0,
            ReliabilityMode::Full => 1,
            ReliabilityMode::PartialTtl(_) => 2,
            ReliabilityMode::PartialRetx(_) => 3,
        }
    }
}

/// An application data unit: a contiguous run of sequences submitted
/// together, sharing a deadline/retransmission budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Adu {
    /// Application-assigned id (monotonically increasing).
    pub id: u64,
    /// Sequence range occupied by the ADU.
    pub seqs: SeqRange,
    /// When the application submitted it.
    pub submitted_at: SimTime,
}

/// The sender-side policy engine: maps sequences to ADUs and answers
/// "should this lost sequence be retransmitted, or abandoned?".
#[derive(Debug, Clone)]
pub struct ReliabilityPolicy {
    mode: ReliabilityMode,
    /// ADUs by first sequence; pruned as the cumulative ack advances.
    adus: BTreeMap<u64, Adu>,
    next_adu_id: u64,
    /// Abandoned sequences are reported once through `take_forward_point`.
    abandon_high_water: u64,
}

/// Decision for one lost sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LossDecision {
    /// Retransmit the sequence.
    Retransmit,
    /// Abandon it (the caller should emit a FWD past it eventually).
    Abandon,
}

impl ReliabilityPolicy {
    pub fn new(mode: ReliabilityMode) -> Self {
        ReliabilityPolicy {
            mode,
            adus: BTreeMap::new(),
            next_adu_id: 0,
            abandon_high_water: 0,
        }
    }

    /// The configured mode.
    pub fn mode(&self) -> ReliabilityMode {
        self.mode
    }

    /// Register a newly submitted ADU covering `seqs`.
    pub fn register_adu(&mut self, seqs: SeqRange, now: SimTime) -> u64 {
        let id = self.next_adu_id;
        self.next_adu_id += 1;
        self.adus.insert(
            seqs.start,
            Adu {
                id,
                seqs,
                submitted_at: now,
            },
        );
        id
    }

    /// The ADU containing `seq`, if still tracked.
    pub fn adu_of(&self, seq: u64) -> Option<&Adu> {
        self.adus
            .range(..=seq)
            .next_back()
            .map(|(_, adu)| adu)
            .filter(|adu| adu.seqs.contains(seq))
    }

    /// Decide the fate of a lost sequence. `retx_count` is how many times it
    /// has already been retransmitted.
    pub fn on_loss(&mut self, seq: u64, now: SimTime, retx_count: u32) -> LossDecision {
        let decision = match self.mode {
            ReliabilityMode::None => LossDecision::Abandon,
            ReliabilityMode::Full => LossDecision::Retransmit,
            ReliabilityMode::PartialTtl(ttl) => match self.adu_of(seq) {
                Some(adu) if now.saturating_since(adu.submitted_at) < ttl => {
                    LossDecision::Retransmit
                }
                // Unknown ADU (already pruned => old) or expired: abandon.
                _ => LossDecision::Abandon,
            },
            ReliabilityMode::PartialRetx(limit) => {
                if retx_count < limit {
                    LossDecision::Retransmit
                } else {
                    LossDecision::Abandon
                }
            }
        };
        if decision == LossDecision::Abandon {
            self.abandon_high_water = self.abandon_high_water.max(seq + 1);
        }
        decision
    }

    /// If any sequence at or above the current cumulative ack has been
    /// abandoned, the receiver must be moved past it: returns the FWD point
    /// (one past the highest abandoned sequence) when it exceeds `cum_ack`.
    pub fn forward_point(&self, cum_ack: u64) -> Option<u64> {
        (self.abandon_high_water > cum_ack).then_some(self.abandon_high_water)
    }

    /// Drop ADU records wholly below `cum_ack` (fully delivered or passed).
    pub fn prune(&mut self, cum_ack: u64) {
        self.adus.retain(|_, adu| adu.seqs.end > cum_ack);
    }

    /// Number of ADUs currently tracked.
    pub fn tracked_adus(&self) -> usize {
        self.adus.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn full_always_retransmits() {
        let mut p = ReliabilityPolicy::new(ReliabilityMode::Full);
        p.register_adu(SeqRange::new(0, 10), ts(0));
        for retx in 0..20 {
            assert_eq!(p.on_loss(5, ts(100_000), retx), LossDecision::Retransmit);
        }
        assert_eq!(p.forward_point(0), None);
    }

    #[test]
    fn none_never_retransmits() {
        let mut p = ReliabilityPolicy::new(ReliabilityMode::None);
        p.register_adu(SeqRange::new(0, 10), ts(0));
        assert_eq!(p.on_loss(3, ts(1), 0), LossDecision::Abandon);
        assert_eq!(p.forward_point(0), Some(4));
    }

    #[test]
    fn ttl_retransmits_fresh_abandons_stale() {
        let ttl = Duration::from_millis(100);
        let mut p = ReliabilityPolicy::new(ReliabilityMode::PartialTtl(ttl));
        p.register_adu(SeqRange::new(0, 5), ts(0));
        p.register_adu(SeqRange::new(5, 10), ts(500));
        // Fresh loss within TTL.
        assert_eq!(p.on_loss(7, ts(550), 0), LossDecision::Retransmit);
        // Same ADU, too old.
        assert_eq!(p.on_loss(7, ts(601), 0), LossDecision::Abandon);
        // First ADU long expired.
        assert_eq!(p.on_loss(2, ts(550), 0), LossDecision::Abandon);
        assert_eq!(p.forward_point(0), Some(8));
    }

    #[test]
    fn ttl_unknown_adu_is_abandoned() {
        let mut p = ReliabilityPolicy::new(ReliabilityMode::PartialTtl(Duration::from_secs(1)));
        // No ADU registered covering seq 3.
        assert_eq!(p.on_loss(3, ts(10), 0), LossDecision::Abandon);
    }

    #[test]
    fn retx_budget_enforced() {
        let mut p = ReliabilityPolicy::new(ReliabilityMode::PartialRetx(2));
        p.register_adu(SeqRange::new(0, 10), ts(0));
        assert_eq!(p.on_loss(4, ts(10), 0), LossDecision::Retransmit);
        assert_eq!(p.on_loss(4, ts(20), 1), LossDecision::Retransmit);
        assert_eq!(p.on_loss(4, ts(30), 2), LossDecision::Abandon);
        assert_eq!(p.forward_point(0), Some(5));
        assert_eq!(p.forward_point(10), None, "already past it");
    }

    #[test]
    fn adu_lookup_by_contained_seq() {
        let mut p = ReliabilityPolicy::new(ReliabilityMode::Full);
        let a = p.register_adu(SeqRange::new(0, 3), ts(0));
        let b = p.register_adu(SeqRange::new(3, 8), ts(5));
        assert_eq!(p.adu_of(0).unwrap().id, a);
        assert_eq!(p.adu_of(2).unwrap().id, a);
        assert_eq!(p.adu_of(3).unwrap().id, b);
        assert_eq!(p.adu_of(7).unwrap().id, b);
        assert!(p.adu_of(8).is_none());
    }

    #[test]
    fn prune_drops_delivered_adus() {
        let mut p = ReliabilityPolicy::new(ReliabilityMode::Full);
        p.register_adu(SeqRange::new(0, 3), ts(0));
        p.register_adu(SeqRange::new(3, 8), ts(5));
        assert_eq!(p.tracked_adus(), 2);
        p.prune(3);
        assert_eq!(p.tracked_adus(), 1);
        p.prune(8);
        assert_eq!(p.tracked_adus(), 0);
    }

    #[test]
    fn wire_codes_are_distinct() {
        let modes = [
            ReliabilityMode::None,
            ReliabilityMode::Full,
            ReliabilityMode::PartialTtl(Duration::from_secs(1)),
            ReliabilityMode::PartialRetx(3),
        ];
        let mut codes: Vec<u8> = modes.iter().map(|m| m.wire_code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), 4);
    }
}
