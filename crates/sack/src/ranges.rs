//! A set of `u64` values stored as sorted, disjoint, half-open ranges.
//!
//! The workhorse of both SACK endpoints: the receiver's out-of-order set,
//! the sender's sacked/lost sets. Insertions merge adjacent ranges, so the
//! memory footprint is proportional to *fragmentation*, not to the number
//! of sequence numbers — the property that makes SACK state cheap.

use std::fmt;

/// Half-open range `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeqRange {
    pub start: u64,
    pub end: u64,
}

impl SeqRange {
    /// Construct; panics if `end <= start` in debug builds.
    pub fn new(start: u64, end: u64) -> Self {
        debug_assert!(start < end, "empty or inverted range {start}..{end}");
        SeqRange { start, end }
    }

    /// Number of sequence numbers covered.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Never empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Does the range contain `seq`?
    pub fn contains(&self, seq: u64) -> bool {
        self.start <= seq && seq < self.end
    }
}

impl fmt::Display for SeqRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

/// Sorted, disjoint, coalesced set of ranges.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RangeSet {
    /// Invariant: sorted by `start`; `ranges[i].end < ranges[i+1].start`
    /// (strictly — adjacent ranges are merged).
    ranges: Vec<SeqRange>,
}

impl RangeSet {
    pub fn new() -> Self {
        RangeSet { ranges: Vec::new() }
    }

    /// Number of stored ranges (fragmentation measure).
    pub fn range_count(&self) -> usize {
        self.ranges.len()
    }

    /// Total sequence numbers covered.
    pub fn len(&self) -> u64 {
        self.ranges.iter().map(|r| r.len()).sum()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Is `seq` in the set?
    pub fn contains(&self, seq: u64) -> bool {
        self.ranges
            .binary_search_by(|r| {
                if seq < r.start {
                    std::cmp::Ordering::Greater
                } else if seq >= r.end {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// Insert a single value. Returns true if it was newly added.
    pub fn insert(&mut self, seq: u64) -> bool {
        self.insert_range(SeqRange::new(seq, seq + 1)) > 0
    }

    /// Insert a range; returns how many values were newly added.
    pub fn insert_range(&mut self, r: SeqRange) -> u64 {
        // Fast paths for the dominant streaming pattern: sequences arriving
        // in order above the highest stored range (extend or append at the
        // tail) are O(1) instead of two binary searches plus a splice.
        match self.ranges.last_mut() {
            None => {
                self.ranges.push(r);
                return r.len();
            }
            Some(last) if r.start == last.end => {
                last.end = r.end.max(last.end);
                return r.len();
            }
            Some(last) if r.start > last.end => {
                self.ranges.push(r);
                return r.len();
            }
            _ => {}
        }
        // Find the window of existing ranges overlapping or adjacent to r.
        let start_idx = self.ranges.partition_point(|x| x.end < r.start);
        let end_idx = self.ranges.partition_point(|x| x.start <= r.end);
        if start_idx == end_idx {
            // No overlap/adjacency: plain insert.
            self.ranges.insert(start_idx, r);
            return r.len();
        }
        let merged_start = self.ranges[start_idx].start.min(r.start);
        let merged_end = self.ranges[end_idx - 1].end.max(r.end);
        let existing: u64 = self.ranges[start_idx..end_idx]
            .iter()
            .map(|x| x.len())
            .sum();
        self.ranges.splice(
            start_idx..end_idx,
            [SeqRange::new(merged_start, merged_end)],
        );
        (merged_end - merged_start) - existing
    }

    /// Remove a single value. Returns true if it was present.
    pub fn remove(&mut self, seq: u64) -> bool {
        let Some(idx) = self.ranges.iter().position(|r| r.contains(seq)) else {
            return false;
        };
        let r = self.ranges[idx];
        match (seq == r.start, seq + 1 == r.end) {
            (true, true) => {
                self.ranges.remove(idx);
            }
            (true, false) => self.ranges[idx] = SeqRange::new(seq + 1, r.end),
            (false, true) => self.ranges[idx] = SeqRange::new(r.start, seq),
            (false, false) => {
                self.ranges[idx] = SeqRange::new(r.start, seq);
                self.ranges.insert(idx + 1, SeqRange::new(seq + 1, r.end));
            }
        }
        true
    }

    /// Remove every value in `[r.start, r.end)`. Returns how many values
    /// were actually removed.
    pub fn remove_range(&mut self, r: SeqRange) -> u64 {
        let mut removed = 0;
        let mut out: Vec<SeqRange> = Vec::with_capacity(self.ranges.len() + 1);
        for &x in &self.ranges {
            if x.end <= r.start || x.start >= r.end {
                out.push(x);
                continue;
            }
            // Overlap: keep the parts outside [r.start, r.end).
            let overlap = x.end.min(r.end) - x.start.max(r.start);
            removed += overlap;
            if x.start < r.start {
                out.push(SeqRange::new(x.start, r.start));
            }
            if x.end > r.end {
                out.push(SeqRange::new(r.end, x.end));
            }
        }
        self.ranges = out;
        removed
    }

    /// Drop every value `< cutoff` (e.g. when the cumulative ack advances).
    pub fn remove_below(&mut self, cutoff: u64) {
        self.ranges.retain_mut(|r| {
            if r.end <= cutoff {
                false
            } else {
                if r.start < cutoff {
                    r.start = cutoff;
                }
                true
            }
        });
    }

    /// First (lowest) value, if any.
    pub fn first(&self) -> Option<u64> {
        self.ranges.first().map(|r| r.start)
    }

    /// One past the highest value, if any.
    pub fn max_end(&self) -> Option<u64> {
        self.ranges.last().map(|r| r.end)
    }

    /// Iterate stored ranges in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = SeqRange> + '_ {
        self.ranges.iter().copied()
    }

    /// Number of stored values strictly greater than `seq`.
    pub fn count_above(&self, seq: u64) -> u64 {
        let mut n = 0;
        for r in self.ranges.iter().rev() {
            if r.end <= seq + 1 {
                break;
            }
            let lo = r.start.max(seq + 1);
            n += r.end - lo;
        }
        n
    }

    /// The gaps between stored ranges within `[lo, hi)` — i.e. values in
    /// `[lo, hi)` that are *not* in the set, as maximal ranges.
    pub fn holes_within(&self, lo: u64, hi: u64) -> Vec<SeqRange> {
        let mut holes = Vec::new();
        let mut cursor = lo;
        for r in &self.ranges {
            if r.end <= lo {
                continue;
            }
            if r.start >= hi {
                break;
            }
            if r.start > cursor {
                holes.push(SeqRange::new(cursor, r.start.min(hi)));
            }
            cursor = cursor.max(r.end);
            if cursor >= hi {
                break;
            }
        }
        if cursor < hi {
            holes.push(SeqRange::new(cursor, hi));
        }
        holes
    }

    /// Debug invariant check (used by property tests).
    pub fn check_invariants(&self) -> Result<(), String> {
        for w in self.ranges.windows(2) {
            if w[0].end >= w[1].start {
                return Err(format!(
                    "ranges not disjoint/coalesced: {} then {}",
                    w[0], w[1]
                ));
            }
        }
        for r in &self.ranges {
            if r.start >= r.end {
                return Err(format!("degenerate range {r}"));
            }
        }
        Ok(())
    }

    /// Approximate live memory of the structure (for state accounting).
    pub fn state_bytes(&self) -> usize {
        self.ranges.len() * std::mem::size_of::<SeqRange>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ranges: &[(u64, u64)]) -> RangeSet {
        let mut s = RangeSet::new();
        for &(a, b) in ranges {
            s.insert_range(SeqRange::new(a, b));
        }
        s.check_invariants().unwrap();
        s
    }

    #[test]
    fn insert_single_values() {
        let mut s = RangeSet::new();
        assert!(s.insert(5));
        assert!(!s.insert(5), "duplicate");
        assert!(s.insert(7));
        assert!(s.contains(5));
        assert!(!s.contains(6));
        assert!(s.contains(7));
        assert_eq!(s.len(), 2);
        assert_eq!(s.range_count(), 2);
    }

    #[test]
    fn adjacent_inserts_coalesce() {
        let mut s = RangeSet::new();
        s.insert(1);
        s.insert(2);
        s.insert(3);
        assert_eq!(s.range_count(), 1);
        assert_eq!(s.len(), 3);
        s.check_invariants().unwrap();
    }

    #[test]
    fn bridging_insert_merges_ranges() {
        let mut s = set(&[(0, 2), (4, 6)]);
        assert_eq!(s.range_count(), 2);
        let added = s.insert_range(SeqRange::new(2, 4));
        assert_eq!(added, 2);
        assert_eq!(s.range_count(), 1);
        assert_eq!(s.len(), 6);
    }

    #[test]
    fn overlapping_insert_counts_only_new() {
        let mut s = set(&[(0, 5)]);
        let added = s.insert_range(SeqRange::new(3, 8));
        assert_eq!(added, 3);
        assert_eq!(s.len(), 8);
        assert_eq!(s.range_count(), 1);
    }

    #[test]
    fn containment_binary_search() {
        let s = set(&[(10, 20), (30, 40), (50, 60)]);
        for seq in [10, 19, 30, 39, 50, 59] {
            assert!(s.contains(seq), "{seq}");
        }
        for seq in [0, 9, 20, 29, 40, 49, 60, 100] {
            assert!(!s.contains(seq), "{seq}");
        }
    }

    #[test]
    fn remove_splits_ranges() {
        let mut s = set(&[(0, 5)]);
        assert!(s.remove(2));
        assert!(!s.remove(2));
        assert_eq!(s.range_count(), 2);
        assert_eq!(s.len(), 4);
        assert!(!s.contains(2));
        s.check_invariants().unwrap();
        // Removing at the edges shrinks rather than splits.
        assert!(s.remove(0));
        assert!(s.remove(4));
        assert_eq!(s.len(), 2);
        s.check_invariants().unwrap();
    }

    #[test]
    fn remove_below_trims_and_drops() {
        let mut s = set(&[(0, 5), (10, 15), (20, 25)]);
        s.remove_below(12);
        assert_eq!(s.len(), 8); // 12..15 + 20..25
        assert!(!s.contains(11));
        assert!(s.contains(12));
        s.check_invariants().unwrap();
    }

    #[test]
    fn count_above_counts_strictly_greater() {
        let s = set(&[(0, 3), (10, 13)]);
        assert_eq!(s.count_above(0), 5); // 1,2,10,11,12
        assert_eq!(s.count_above(5), 3);
        assert_eq!(s.count_above(12), 0);
        assert_eq!(s.count_above(100), 0);
    }

    #[test]
    fn holes_within_finds_gaps() {
        let s = set(&[(2, 4), (6, 8)]);
        let holes = s.holes_within(0, 10);
        assert_eq!(
            holes,
            vec![
                SeqRange::new(0, 2),
                SeqRange::new(4, 6),
                SeqRange::new(8, 10)
            ]
        );
        // Window entirely inside a stored range has no holes.
        assert!(s.holes_within(2, 4).is_empty());
        // Window past everything is all hole.
        assert_eq!(s.holes_within(20, 22), vec![SeqRange::new(20, 22)]);
    }

    #[test]
    fn remove_range_carves_and_counts() {
        let mut s = set(&[(0, 10), (20, 30)]);
        let removed = s.remove_range(SeqRange::new(5, 25));
        assert_eq!(removed, 10); // 5..10 and 20..25
        assert_eq!(s.len(), 10);
        assert!(s.contains(4) && !s.contains(5));
        assert!(!s.contains(24) && s.contains(25));
        s.check_invariants().unwrap();
        // Removing a region with no overlap is a no-op.
        assert_eq!(s.remove_range(SeqRange::new(100, 200)), 0);
    }

    #[test]
    fn remove_range_middle_splits() {
        let mut s = set(&[(0, 10)]);
        assert_eq!(s.remove_range(SeqRange::new(3, 7)), 4);
        assert_eq!(s.range_count(), 2);
        assert_eq!(s.len(), 6);
        s.check_invariants().unwrap();
    }

    #[test]
    fn first_and_max_end() {
        let s = set(&[(5, 7), (9, 12)]);
        assert_eq!(s.first(), Some(5));
        assert_eq!(s.max_end(), Some(12));
        assert_eq!(RangeSet::new().first(), None);
    }

    #[test]
    fn seq_range_accessors() {
        let r = SeqRange::new(3, 7);
        assert_eq!(r.len(), 4);
        assert!(r.contains(3) && r.contains(6));
        assert!(!r.contains(7));
        assert_eq!(format!("{r}"), "[3, 7)");
    }
}
